"""repro — a full-system reproduction of "A4: Microarchitecture-Aware LLC
Management for Datacenter Servers with Emerging I/O Devices" (ISCA 2025).

The package is organised bottom-up:

* :mod:`repro.sim` — discrete-event engine;
* :mod:`repro.cache` — MLCs, non-inclusive LLC, inclusive directory;
* :mod:`repro.uncore` — memory controller, PCIe ports, IIO/DDIO agent;
* :mod:`repro.rdt` — CAT way masks and occupancy monitoring;
* :mod:`repro.devices` — NIC and NVMe SSD models;
* :mod:`repro.workloads` — DPDK/FIO/X-Mem microbenchmarks and the paper's
  real-world workload analogues;
* :mod:`repro.telemetry` — PCM-style counters and latency percentiles;
* :mod:`repro.core` — **the paper's contribution**: the A4 controller, its
  staged variants (A4-a..d), and the Default/Isolate baselines;
* :mod:`repro.experiments` — harness + regeneration of every figure.

Quickstart::

    from repro.experiments import harness, scenarios
    result = harness.run(scenarios.microbenchmark_scenario(scheme="a4"))
    print(result.summary())
"""

__version__ = "1.0.0"
