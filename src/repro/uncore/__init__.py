"""Uncore models: memory controller, PCIe ports, and the IIO/DDIO agent."""

from repro.uncore.memory import MemoryController
from repro.uncore.pcie import PcieComplex, PciePort, PerfCtrlSts
from repro.uncore.iio import IIOAgent
from repro.uncore.msr import IIO_LLC_WAYS, MsrFile

__all__ = [
    "MemoryController",
    "PcieComplex",
    "PciePort",
    "PerfCtrlSts",
    "IIOAgent",
    "IIO_LLC_WAYS",
    "MsrFile",
]
