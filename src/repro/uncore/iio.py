"""IIO agent: the device-facing entry into the cache hierarchy.

All inbound (device-to-host) and outbound (host-to-device) DMA flows pass
through here.  For inbound writes the agent consults the originating PCIe
port's ``perfctrlsts`` register to choose between the **allocating flow**
(DDIO: write-update in place, else write-allocate into the DCA ways) and the
**non-allocating flow** (write to memory, invalidating cached copies) — the
exact mechanism A4's selective DCA disabling manipulates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence, Tuple

from repro.uncore.pcie import PciePort

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle with cache.hierarchy
    from repro.cache.hierarchy import CacheHierarchy


class IIOAgent:
    """Bridges device DMA to the cache hierarchy, respecting per-port DCA."""

    __slots__ = ("hierarchy",)

    def __init__(self, hierarchy: "CacheHierarchy"):
        self.hierarchy = hierarchy

    def inbound_write(self, now: float, port: PciePort, addr: int, stream: str) -> None:
        """A device DMA-writes one line to host address ``addr``."""
        port.inbound_write_lines += 1
        self.hierarchy.dma_write(now, addr, stream, allocating=port.dca_enabled)

    def inbound_write_burst(
        self, now: float, port: PciePort, base_addr: int, lines: int, stream: str
    ) -> None:
        """DMA-write ``lines`` consecutive lines starting at ``base_addr``."""
        port.inbound_write_lines += lines
        self.hierarchy.dma_write_burst(
            now, base_addr, lines, stream, port.dca_enabled
        )

    def inbound_write_multi(
        self,
        now: float,
        port: PciePort,
        spans: Sequence[Tuple[int, int, str]],
    ) -> None:
        """DMA-write several ``(base_addr, lines, stream)`` spans at once.

        Equivalent to one :meth:`inbound_write_burst` per span; devices
        that spread a service quantum across many buffers use this so the
        whole quantum crosses the agent in one call."""
        total = 0
        for _, lines, _ in spans:
            total += lines
        port.inbound_write_lines += total
        self.hierarchy.dma_write_multi(now, spans, port.dca_enabled)

    def outbound_read(self, now: float, port: PciePort, addr: int, stream: str) -> None:
        """A device DMA-reads one line from host address ``addr`` (egress)."""
        port.inbound_read_lines += 1
        self.hierarchy.dma_read(now, addr, stream)
