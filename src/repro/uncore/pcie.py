"""PCIe root ports and the hidden per-port DCA knob.

Skylake-SP exposes, per PCIe port, a ``perfctrlsts_0`` register whose
``NoSnoopOpWrEn`` and ``Use_Allocating_Flow_Wr`` bits steer that port's
inbound writes either through the allocating (DDIO) flow into the LLC's DCA
ways or through the non-allocating flow to memory.  A4's F2 flips these bits
for storage ports only — the paper's "little-known knob".

This module models the register faithfully enough that the controller code
reads like the real thing: DCA is active for a port iff
``Use_Allocating_Flow_Wr`` is set and ``NoSnoopOpWrEn`` is clear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro import obsv
from repro.telemetry.counters import CounterBank


class PortConfigError(RuntimeError):
    """Raised for invalid PCIe port register operations."""


class TransientPortError(PortConfigError):
    """A ``perfctrlsts_0`` write that did not stick (config-space access
    glitch).  The previous register value stays active and the write is
    safe to retry.  Raised only by the fault-injection layer."""


@dataclass
class PerfCtrlSts:
    """The two bits of ``perfctrlsts_0`` that matter for DCA routing."""

    use_allocating_flow_wr: bool = True
    no_snoop_op_wr_en: bool = False

    @property
    def dca_enabled(self) -> bool:
        return self.use_allocating_flow_wr and not self.no_snoop_op_wr_en


@dataclass
class PciePort:
    """One root port; devices attach to exactly one port."""

    port_id: int
    name: str = ""
    perfctrlsts: PerfCtrlSts = field(default_factory=PerfCtrlSts)
    inbound_write_lines: int = 0
    inbound_read_lines: int = 0

    @property
    def dca_enabled(self) -> bool:
        return self.perfctrlsts.dca_enabled

    def disable_dca(self) -> None:
        """A4's F2 knob: reroute this port's writes to the memory flow."""
        self.perfctrlsts.no_snoop_op_wr_en = True
        self.perfctrlsts.use_allocating_flow_wr = False
        self._trace_dca(False)

    def enable_dca(self) -> None:
        self.perfctrlsts.no_snoop_op_wr_en = False
        self.perfctrlsts.use_allocating_flow_wr = True
        self._trace_dca(True)

    def _trace_dca(self, enabled: bool) -> None:
        if obsv.TRACER is not None:
            obsv.TRACER.emit(
                obsv.KIND_DCA,
                self.name or f"port{self.port_id}",
                {"port": self.port_id, "enabled": enabled},
            )


class PcieComplex:
    """The socket's set of root ports, addressable by id or name."""

    def __init__(self, counters: CounterBank):
        self.counters = counters
        self._ports: Dict[int, PciePort] = {}

    def add_port(self, port_id: int, name: str = "") -> PciePort:
        if port_id in self._ports:
            raise ValueError(f"port {port_id} already exists")
        port = PciePort(port_id, name or f"port{port_id}")
        self._ports[port_id] = port
        return port

    def port(self, port_id: int) -> PciePort:
        return self._ports[port_id]

    def ports(self) -> Dict[int, PciePort]:
        return dict(self._ports)

    def total_inbound_write_lines(self) -> int:
        """PCIe write throughput = system I/O read traffic (paper §5.4)."""
        return sum(p.inbound_write_lines for p in self._ports.values())
