"""Memory controller with bandwidth accounting and contention latency.

Transfers are counted per stream (for the per-epoch memory-bandwidth series
the paper plots) and fed into a decayed utilisation estimate.  CPU-visible
memory latency grows with utilisation following an M/D/1-style queueing
curve, so streaming antagonists measurably slow down everyone's misses —
the paper's "memory bandwidth abuse" guardrail in §5.5 relies on this signal.
"""

from __future__ import annotations

from repro.platform import DEFAULT_PLATFORM, PlatformSpec
from repro.telemetry.counters import CounterBank


class MemoryController:
    """DRAM interface; all units are cache lines and cycles."""

    __slots__ = (
        "counters",
        "_scounters",
        "bandwidth",
        "base_latency",
        "window",
        "_window_start",
        "_window_lines",
        "_utilization",
        "total_reads",
        "total_writes",
    )

    def __init__(
        self,
        counters: CounterBank,
        bandwidth_lines_per_cycle: float = DEFAULT_PLATFORM.memory_bandwidth_lines_per_cycle,
        base_latency: float = DEFAULT_PLATFORM.memory_cycles,
        window_cycles: float = 2_000.0,
    ):
        if bandwidth_lines_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        self.counters = counters
        self._scounters: dict = {}
        self.bandwidth = bandwidth_lines_per_cycle
        self.base_latency = base_latency
        self.window = window_cycles
        self._window_start = 0.0
        self._window_lines = 0
        self._utilization = 0.0
        self.total_reads = 0
        self.total_writes = 0

    @classmethod
    def for_platform(
        cls, counters: CounterBank, platform: PlatformSpec, **overrides
    ) -> "MemoryController":
        """A controller with ``platform``'s DRAM bandwidth and latency."""
        return cls(
            counters,
            bandwidth_lines_per_cycle=platform.memory_bandwidth_lines_per_cycle,
            base_latency=platform.memory_cycles,
            **overrides,
        )

    # -- traffic -------------------------------------------------------------

    def read(self, now: float, lines: int, stream: str) -> None:
        self.total_reads += lines
        counters = self._scounters.get(stream)
        if counters is None:
            counters = self._scounters[stream] = self.counters.stream(stream)
        counters.mem_reads += lines
        if now - self._window_start >= self.window:
            self._roll_window(now)
        self._window_lines += lines

    def write(self, now: float, lines: int, stream: str) -> None:
        self.total_writes += lines
        counters = self._scounters.get(stream)
        if counters is None:
            counters = self._scounters[stream] = self.counters.stream(stream)
        counters.mem_writes += lines
        if now - self._window_start >= self.window:
            self._roll_window(now)
        self._window_lines += lines

    def _account(self, now: float, lines: int) -> None:
        if now - self._window_start >= self.window:
            self._roll_window(now)
        self._window_lines += lines

    def time_shift(self, delta: float) -> None:
        """Shift the utilisation window's anchor with the clock (interval
        sampling); keeps the decayed estimate intact across a skip instead
        of collapsing it over one huge 'elapsed' window."""
        self._window_start += delta

    def _roll_window(self, now: float) -> None:
        elapsed = max(now - self._window_start, self.window)
        inst = self._window_lines / elapsed / self.bandwidth
        # Exponential decay keeps the estimate smooth across windows.
        self._utilization = 0.5 * self._utilization + 0.5 * min(inst, 1.0)
        self._window_start = now
        self._window_lines = 0

    # -- latency ---------------------------------------------------------------

    @property
    def utilization(self) -> float:
        return self._utilization

    def access_latency(self) -> float:
        """Current load-to-use DRAM latency including queueing."""
        rho = min(self._utilization, 0.92)
        return self.base_latency * (1.0 + 0.5 * rho / (1.0 - rho))
