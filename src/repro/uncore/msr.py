"""Model-specific registers the DDIO literature manipulates.

Skylake-SP exposes the **IIO LLC WAYS** register (MSR ``0xC8B``): a bitmask
selecting which LLC ways DDIO may write-allocate into (two left-most ways
by default).  Farshin et al. (ATC'20) tune it to give I/O more or less LLC
— the main *hardware-tuning* alternative to A4's allocation approach, and
the subject of the ``ablation-ddio-ways`` study.

The façade keeps MSR semantics: `rdmsr`/`wrmsr` by address, bit 0 = way 0.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache.llc import LastLevelCache

IIO_LLC_WAYS = 0xC8B
"""Address of the IIO LLC WAYS register on Skylake-SP."""


def ways_to_mask(ways) -> int:
    return sum(1 << way for way in ways)


def mask_to_ways(mask: int) -> tuple:
    return tuple(bit for bit in range(32) if mask & (1 << bit))


class MsrFile:
    """`/dev/cpu/*/msr`-style access to the modelled registers."""

    def __init__(self, llc: "LastLevelCache"):
        self._llc = llc

    def rdmsr(self, address: int) -> int:
        if address == IIO_LLC_WAYS:
            return ways_to_mask(self._llc.dca_ways)
        raise ValueError(f"unmodelled MSR {address:#x}")

    def wrmsr(self, address: int, value: int) -> None:
        if address == IIO_LLC_WAYS:
            self._llc.set_dca_ways(mask_to_ways(value))
            return
        raise ValueError(f"unmodelled MSR {address:#x}")
