"""Per-phase engine attribution: where did the wall time and cycles go.

:class:`PhaseProfiler` hangs off :class:`repro.sim.engine.Simulator` (the
``profiler`` slot, ``None`` by default — one pointer compare per
``run_until`` call when off).  The harness points :attr:`label` at the
controller's current FSM phase before each epoch, so a profiled run
answers "how much simulation happened while A4 sat in ``expanding`` vs
``stable``" — the cycle/wall-time attribution ``tools/bench.py
--profile`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class PhaseStats:
    """Accumulated attribution for one label."""

    wall_s: float = 0.0
    events: int = 0
    cycles: float = 0.0
    windows: int = 0
    """``run_until`` windows (epochs, for harness-driven runs)."""


class PhaseProfiler:
    """Accumulates (wall seconds, engine events, simulated cycles) per
    label; the engine records one entry per ``run_until`` window."""

    def __init__(self) -> None:
        self.label = "run"
        self.phases: Dict[str, PhaseStats] = {}

    def record(
        self, label: str, wall_s: float, events: int, cycles: float
    ) -> None:
        stats = self.phases.get(label)
        if stats is None:
            stats = self.phases[label] = PhaseStats()
        stats.wall_s += wall_s
        stats.events += events
        stats.cycles += cycles
        stats.windows += 1

    @property
    def total_wall(self) -> float:
        return sum(s.wall_s for s in self.phases.values())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            label: {
                "wall_s": stats.wall_s,
                "events": stats.events,
                "cycles": stats.cycles,
                "windows": stats.windows,
            }
            for label, stats in sorted(self.phases.items())
        }

    def into_registry(self, registry) -> None:
        """Export attribution as labeled gauges (``phase=<label>``)."""
        for label, stats in self.phases.items():
            registry.gauge(
                "repro_profile_wall_seconds",
                help="engine wall time attributed to this phase",
                phase=label,
            ).set(stats.wall_s)
            registry.gauge(
                "repro_profile_events",
                help="engine events attributed to this phase",
                phase=label,
            ).set(stats.events)

    def table(self) -> str:
        """Human-readable attribution table, widest wall share first."""
        total = self.total_wall or 1.0
        lines = [
            f"{'phase':<12} {'windows':>8} {'wall_s':>9} {'share':>7} "
            f"{'events':>12} {'events/s':>12} {'cycles':>14}"
        ]
        ordered = sorted(
            self.phases.items(), key=lambda kv: kv[1].wall_s, reverse=True
        )
        for label, stats in ordered:
            rate = stats.events / stats.wall_s if stats.wall_s else 0.0
            lines.append(
                f"{label:<12} {stats.windows:>8} {stats.wall_s:>9.3f} "
                f"{100 * stats.wall_s / total:>6.1f}% {stats.events:>12,} "
                f"{rate:>12,.0f} {stats.cycles:>14,.0f}"
            )
        return "\n".join(lines)

    def clear(self) -> None:
        self.phases.clear()
        self.label = "run"
