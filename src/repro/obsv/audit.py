"""The controller decision audit trail.

Every consequential A4 action — reallocation, degraded-mode entry/exit,
antagonist detection, restoration, bypass halt, revert verdict — records a
:class:`Decision`: *when* (epoch), *what* (action), *why* (reason), and
*on what evidence* (``inputs``: the sanitized telemetry values the
controller actually compared, plus the thresholds they crossed).  The
trail is the answer to "why did the controller do that at epoch N" that
``repro.core.a4``'s human-readable ``events`` list only gestures at.

Decisions mirror into the tracer as ``decision`` events (same action /
reason / inputs in ``data``), so a JSONL trace export is self-contained
and ``tools/obsv.py explain-epoch N`` works from the file alone.

Action vocabulary (``Decision.action``):

``reallocate``, ``degraded_enter``, ``degraded_exit``, ``detect_storage``,
``detect_cpu``, ``restore``, ``bypass_halt``, ``revert``,
``revert_verdict``, ``bloat_treat``, ``bloat_restore``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.obsv.tracer import KIND_DECISION, Tracer

ACTION_REALLOCATE = "reallocate"
ACTION_DEGRADED_ENTER = "degraded_enter"
ACTION_DEGRADED_EXIT = "degraded_exit"


@dataclass
class Decision:
    """One controller decision with the evidence behind it."""

    epoch: int
    action: str
    reason: str
    inputs: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """Multi-line human rendering (the ``explain-epoch`` CLI body)."""
        lines = [f"[{self.action}] {self.reason} (epoch {self.epoch})"]
        lines.extend(_format_inputs(self.inputs, indent="    "))
        return "\n".join(lines)


def _format_inputs(inputs: Dict[str, Any], indent: str) -> List[str]:
    lines: List[str] = []
    for key in sorted(inputs):
        value = inputs[key]
        if isinstance(value, dict) and value:
            lines.append(f"{indent}{key}:")
            for sub in sorted(value):
                lines.append(f"{indent}    {sub}: {_fmt(value[sub])}")
        else:
            lines.append(f"{indent}{key}: {_fmt(value)}")
    return lines


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, dict):
        parts = ", ".join(f"{k}={_fmt(v)}" for k, v in sorted(value.items()))
        return "{" + parts + "}"
    return str(value)


class AuditTrail:
    """Bounded store of :class:`Decision` records, optionally mirrored
    into a :class:`~repro.obsv.tracer.Tracer`."""

    DEFAULT_CAPACITY = 8192

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        tracer: Optional[Tracer] = None,
    ):
        if capacity < 1:
            raise ValueError("audit capacity must be positive")
        self.capacity = capacity
        self.tracer = tracer
        self.records: Deque[Decision] = deque(maxlen=capacity)
        self.dropped = 0
        self.platform: Optional[str] = None
        """``name@sha`` token of the platform whose decisions this trail
        audits (set by the harness at run start)."""

    def record(
        self,
        action: str,
        reason: str,
        inputs: Optional[Dict[str, Any]] = None,
        epoch: Optional[int] = None,
    ) -> Decision:
        if epoch is None:
            epoch = self.tracer.epoch if self.tracer is not None else -1
        if len(self.records) == self.capacity:
            self.dropped += 1
        decision = Decision(
            epoch=epoch, action=action, reason=reason, inputs=inputs or {}
        )
        self.records.append(decision)
        if self.tracer is not None:
            self.tracer.emit(
                KIND_DECISION,
                action,
                {"reason": reason, "inputs": decision.inputs},
            )
        return decision

    # -- queries ------------------------------------------------------------

    def decisions(self, action: Optional[str] = None) -> List[Decision]:
        if action is None:
            return list(self.records)
        return [d for d in self.records if d.action == action]

    def for_epoch(self, epoch: int) -> List[Decision]:
        return [d for d in self.records if d.epoch == epoch]

    def explain(self, epoch: int) -> str:
        """Render every decision taken at ``epoch`` (or note the absence)."""
        decisions = self.for_epoch(epoch)
        if not decisions:
            return f"epoch {epoch}: no controller decisions recorded"
        lines = [f"epoch {epoch}: {len(decisions)} decision(s)"]
        lines.extend(d.describe() for d in decisions)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)
