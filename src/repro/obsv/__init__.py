"""Zero-cost-when-off observability: tracing, metrics, audit, profiling.

The layer is three cooperating pieces plus a profiler, all process-global
and **off by default**:

* :data:`TRACER` — a bounded ring buffer of typed :class:`TraceEvent`\\ s
  (epoch boundaries, CLOS mask writes, DCA toggles, controller phase
  transitions, fault injections, cache-zone resizes), exported to JSONL
  and Chrome ``chrome://tracing`` trace-event JSON
  (:mod:`repro.obsv.export`).
* :data:`AUDIT` — the controller decision audit trail: every A4
  reallocation / degrade / detection / restoration records its inputs
  (the sanitized telemetry values and the thresholds crossed) and the
  chosen action.  Decisions mirror into the tracer as ``decision``
  events, so one JSONL file carries the whole story and
  ``tools/obsv.py explain-epoch`` can replay it post-run.
* the **metrics registry** (:mod:`repro.obsv.metrics`) — process-wide
  counters/gauges/histograms with labels, exported as Prometheus text
  and a JSON snapshot.  Unlike the tracer it always exists (it is
  passive until someone observes into it) and also hosts the shared
  stats-dict merge helpers used by the run cache and the chaos sweep.
* :data:`PROFILER` — per-phase wall/cycle/event attribution recorded by
  :meth:`repro.sim.engine.Simulator.run_until` (see
  :mod:`repro.obsv.profile`).

Every emit site in the simulator, controller, and fault layer is guarded
by a single ``obsv.TRACER is not None`` (or ``obsv.AUDIT``/``profiler``)
check: with the layer disabled no event objects are built, no dicts are
allocated, and runs are bit-identical to a tree without the layer.
Enable with :func:`enable` (or ``--trace`` / ``--metrics-out`` on the
figures CLI), tear down with :func:`disable`.
"""

from __future__ import annotations

from typing import Optional

from repro.obsv.audit import AuditTrail, Decision
from repro.obsv.metrics import (
    MetricsRegistry,
    get_registry,
    merge_counts,
    set_registry,
)
from repro.obsv.profile import PhaseProfiler
from repro.obsv.tracer import (
    KIND_CHECKPOINT,
    KIND_CONTROL,
    KIND_DCA,
    KIND_DECISION,
    KIND_EPOCH,
    KIND_FAULT,
    KIND_JOB,
    KIND_MASK,
    KIND_PHASE,
    KIND_PLATFORM,
    KIND_SAMPLE,
    KIND_SPAN,
    KIND_ZONE,
    TraceEvent,
    Tracer,
)

TRACER: Optional[Tracer] = None
"""The process-wide event tracer; ``None`` while observability is off."""

AUDIT: Optional[AuditTrail] = None
"""The process-wide decision audit trail; ``None`` while off."""

PROFILER: Optional[PhaseProfiler] = None
"""The process-wide engine profiler; ``None`` while off."""


def enable(
    capacity: int = Tracer.DEFAULT_CAPACITY,
    audit_capacity: int = AuditTrail.DEFAULT_CAPACITY,
    profile: bool = True,
) -> Tracer:
    """Turn the observability layer on (idempotent: replaces any previous
    tracer/trail/profiler with fresh, empty ones) and return the tracer."""
    global TRACER, AUDIT, PROFILER
    TRACER = Tracer(capacity)
    AUDIT = AuditTrail(audit_capacity, tracer=TRACER)
    PROFILER = PhaseProfiler() if profile else None
    return TRACER


def disable() -> None:
    """Turn the layer off; emit sites go back to their no-op fast path."""
    global TRACER, AUDIT, PROFILER
    TRACER = None
    AUDIT = None
    PROFILER = None


def enabled() -> bool:
    return TRACER is not None


__all__ = [
    "AUDIT",
    "AuditTrail",
    "Decision",
    "KIND_CHECKPOINT",
    "KIND_CONTROL",
    "KIND_DCA",
    "KIND_DECISION",
    "KIND_EPOCH",
    "KIND_FAULT",
    "KIND_JOB",
    "KIND_MASK",
    "KIND_PHASE",
    "KIND_PLATFORM",
    "KIND_SAMPLE",
    "KIND_SPAN",
    "KIND_ZONE",
    "MetricsRegistry",
    "PROFILER",
    "PhaseProfiler",
    "TRACER",
    "TraceEvent",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "merge_counts",
    "set_registry",
]
