"""Zero-cost-when-off observability: tracing, metrics, audit, profiling.

The layer is three cooperating pieces plus a profiler, all process-global
and **off by default**:

* :data:`TRACER` — a bounded ring buffer of typed :class:`TraceEvent`\\ s
  (epoch boundaries, CLOS mask writes, DCA toggles, controller phase
  transitions, fault injections, cache-zone resizes), exported to JSONL
  and Chrome ``chrome://tracing`` trace-event JSON
  (:mod:`repro.obsv.export`).
* :data:`AUDIT` — the controller decision audit trail: every A4
  reallocation / degrade / detection / restoration records its inputs
  (the sanitized telemetry values and the thresholds crossed) and the
  chosen action.  Decisions mirror into the tracer as ``decision``
  events, so one JSONL file carries the whole story and
  ``tools/obsv.py explain-epoch`` can replay it post-run.
* the **metrics registry** (:mod:`repro.obsv.metrics`) — process-wide
  counters/gauges/histograms with labels, exported as Prometheus text
  and a JSON snapshot.  Unlike the tracer it always exists (it is
  passive until someone observes into it) and also hosts the shared
  stats-dict merge helpers used by the run cache and the chaos sweep.
* :data:`PROFILER` — per-phase wall/cycle/event attribution recorded by
  :meth:`repro.sim.engine.Simulator.run_until` (see
  :mod:`repro.obsv.profile`).

Every emit site in the simulator, controller, and fault layer is guarded
by a single ``obsv.TRACER is not None`` (or ``obsv.AUDIT``/``profiler``)
check: with the layer disabled no event objects are built, no dicts are
allocated, and runs are bit-identical to a tree without the layer.
Enable with :func:`enable` (or ``--trace`` / ``--metrics-out`` on the
figures CLI), tear down with :func:`disable`.
"""

from __future__ import annotations

import os
from typing import Any, Optional

from repro.obsv.audit import AuditTrail, Decision
from repro.obsv.metrics import (
    MetricsRegistry,
    get_registry,
    merge_counts,
    set_registry,
)
from repro.obsv.profile import PhaseProfiler
from repro.obsv.tracer import (
    ENV_TRACE_CONTEXT,
    ENV_TRACE_SPOOL,
    KIND_CHECKPOINT,
    KIND_CONTROL,
    KIND_DCA,
    KIND_DECISION,
    KIND_EPOCH,
    KIND_FAULT,
    KIND_JOB,
    KIND_MASK,
    KIND_PHASE,
    KIND_PLATFORM,
    KIND_PROGRESS,
    KIND_SAMPLE,
    KIND_SPAN,
    KIND_TENANT,
    KIND_ZONE,
    TraceContext,
    TraceEvent,
    Tracer,
)

TRACER: Optional[Tracer] = None
"""The process-wide event tracer; ``None`` while observability is off."""

AUDIT: Optional[AuditTrail] = None
"""The process-wide decision audit trail; ``None`` while off."""

PROFILER: Optional[PhaseProfiler] = None
"""The process-wide engine profiler; ``None`` while off."""


def enable(
    capacity: int = Tracer.DEFAULT_CAPACITY,
    audit_capacity: int = AuditTrail.DEFAULT_CAPACITY,
    profile: bool = True,
    context: Optional[TraceContext] = None,
    sink: Optional[Any] = None,
) -> Tracer:
    """Turn the observability layer on (idempotent: replaces any previous
    tracer/trail/profiler with fresh, empty ones) and return the tracer.

    ``context`` stamps every event with run/job identity;``sink`` (a
    :class:`repro.obsv.spool.TraceSink`) spools segments to disk so the
    trace survives the process."""
    global TRACER, AUDIT, PROFILER
    _register_at_fork()
    TRACER = Tracer(capacity, context=context, sink=sink)
    AUDIT = AuditTrail(audit_capacity, tracer=TRACER)
    PROFILER = PhaseProfiler() if profile else None
    return TRACER


def enable_from_env(environ=None) -> Optional[Tracer]:
    """Enable tracing from worker-side environment variables.

    :data:`ENV_TRACE_SPOOL` names the spool directory this process should
    shard into; :data:`ENV_TRACE_CONTEXT` carries the encoded
    :class:`TraceContext`.  Returns None (layer untouched) when no spool
    is requested — the zero-cost-off path for un-traced jobs.  Never
    raises: an unusable spool directory falls back to in-memory-only
    tracing so observability can't take a worker down."""
    env = os.environ if environ is None else environ
    spool_root = env.get(ENV_TRACE_SPOOL, "")
    if not spool_root:
        return None
    from repro.obsv.spool import TraceSink

    context = TraceContext.from_env(env.get(ENV_TRACE_CONTEXT, ""))
    try:
        sink: Optional[Any] = TraceSink(spool_root)
    except (OSError, ValueError):
        sink = None
    return enable(context=context, sink=sink)


def disable() -> None:
    """Turn the layer off; emit sites go back to their no-op fast path."""
    global TRACER, AUDIT, PROFILER
    TRACER = None
    AUDIT = None
    PROFILER = None


def enabled() -> bool:
    return TRACER is not None


_at_fork_registered = False


def _fork_child() -> None:
    if TRACER is not None:
        TRACER.after_fork()


def _register_at_fork() -> None:
    """Make forked children re-stamp their pid (once per process)."""
    global _at_fork_registered
    if _at_fork_registered or not hasattr(os, "register_at_fork"):
        return
    os.register_at_fork(after_in_child=_fork_child)
    _at_fork_registered = True


__all__ = [
    "AUDIT",
    "AuditTrail",
    "Decision",
    "ENV_TRACE_CONTEXT",
    "ENV_TRACE_SPOOL",
    "KIND_CHECKPOINT",
    "KIND_CONTROL",
    "KIND_DCA",
    "KIND_DECISION",
    "KIND_EPOCH",
    "KIND_FAULT",
    "KIND_JOB",
    "KIND_MASK",
    "KIND_PHASE",
    "KIND_PLATFORM",
    "KIND_PROGRESS",
    "KIND_SAMPLE",
    "KIND_SPAN",
    "KIND_TENANT",
    "KIND_ZONE",
    "MetricsRegistry",
    "PROFILER",
    "PhaseProfiler",
    "TRACER",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "disable",
    "enable",
    "enable_from_env",
    "enabled",
    "get_registry",
    "merge_counts",
    "set_registry",
]
