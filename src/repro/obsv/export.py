"""Exporters: JSONL traces, Chrome trace-event JSON, Prometheus text.

Three formats, all lossless where it matters:

* **JSONL** — one :class:`~repro.obsv.tracer.TraceEvent` per line;
  :func:`read_jsonl` reloads to *identical* event objects (the round
  trip is locked by tests), which is what lets ``tools/obsv.py`` work
  from a file long after the run's process is gone.
* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` /
  Perfetto.  Instant events map to ``ph: "i"`` at their simulated
  timestamp (cycles rendered as microseconds); ``span`` and ``epoch``
  events map to ``ph: "X"`` complete events with their wall-clock
  duration.  :func:`validate_chrome_trace` checks the schema the viewer
  actually requires.
* **Prometheus text exposition** — counters/gauges/histograms from a
  :class:`~repro.obsv.metrics.MetricsRegistry`; :func:`parse_prometheus`
  is the matching (strict, subset) parser used by tests and the CI
  smoke.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.obsv.metrics import Histogram, MetricsRegistry
from repro.obsv.tracer import KIND_EPOCH, KIND_SPAN, TraceEvent

PathLike = Union[str, Path]


# -- JSONL ------------------------------------------------------------------


def write_jsonl(events: Iterable[TraceEvent], path: PathLike) -> int:
    """Write one compact JSON object per event; returns the line count."""
    count = 0
    with open(path, "w") as handle:
        for event in events:
            handle.write(
                json.dumps(asdict(event), sort_keys=True, separators=(",", ":"))
            )
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> List[TraceEvent]:
    """Reload a JSONL trace into :class:`TraceEvent` objects."""
    events: List[TraceEvent] = []
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                events.append(TraceEvent(**obj))
            except (json.JSONDecodeError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{line_no}: not a trace event line ({exc})"
                ) from None
    return events


# -- Chrome trace-event format ---------------------------------------------


def to_chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, Any]:
    """Render events in the Trace Event Format's JSON object form.

    Simulated time (cycles) is written as the ``ts`` microsecond field —
    the viewer's units are nominal; relative placement is what matters.
    Wall-clock durations (spans, per-epoch simulation time) become ``X``
    complete events scaled so they remain visible alongside.

    Each event lands on the *recorded* emitting process (``event.pid``;
    legacy pid-0 traces collapse onto the synthetic process 1), with the
    kind as the thread row — a merged multi-worker spool renders as one
    track group per worker.  Real pids additionally get a
    ``process_name`` metadata event labelling the track with the run/job
    identity they carried."""
    trace_events: List[Dict[str, Any]] = []
    named_pids: Dict[int, bool] = {}
    for event in events:
        pid = event.pid or 1
        if event.pid and event.pid not in named_pids:
            named_pids[event.pid] = True
            label = f"worker {event.pid}"
            if event.run_id:
                label += f" run={event.run_id}"
            if event.job_id is not None:
                label += f" job={event.job_id}/a{event.attempt}"
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": label},
                }
            )
        entry: Dict[str, Any] = {
            "name": event.name,
            "cat": event.kind,
            "pid": pid,
            "tid": event.kind,
            "ts": event.ts,
            "args": {"epoch": event.epoch, **event.data},
        }
        if event.kind in (KIND_SPAN, KIND_EPOCH) and event.wall > 0:
            entry["ph"] = "X"
            entry["dur"] = event.wall * 1e6
        else:
            entry["ph"] = "i"
            entry["s"] = "g"  # instant scope: global
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], path: PathLike) -> int:
    doc = to_chrome_trace(events)
    with open(path, "w") as handle:
        json.dump(doc, handle, separators=(",", ":"))
        handle.write("\n")
    return len(doc["traceEvents"])


_CHROME_PHASES = {"B", "E", "X", "i", "I", "C", "M", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(doc: Any) -> None:
    """Raise :class:`ValueError` unless ``doc`` satisfies the trace-event
    schema ``chrome://tracing`` requires (object form, per-event required
    keys, ``dur`` on complete events)."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not object form: missing 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, entry in enumerate(events):
        if not isinstance(entry, dict):
            raise ValueError(f"traceEvents[{i}]: not an object")
        for required in ("name", "ph", "ts", "pid", "tid"):
            if required not in entry:
                raise ValueError(f"traceEvents[{i}]: missing {required!r}")
        phase = entry["ph"]
        if phase not in _CHROME_PHASES:
            raise ValueError(f"traceEvents[{i}]: unknown phase {phase!r}")
        if not isinstance(entry["ts"], (int, float)):
            raise ValueError(f"traceEvents[{i}]: non-numeric ts")
        if phase == "X" and not isinstance(entry.get("dur"), (int, float)):
            raise ValueError(f"traceEvents[{i}]: complete event without dur")


# -- Prometheus text exposition --------------------------------------------


def _label_str(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"'
        for key, value in labels
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    seen_header = set()
    for name, labels, metric in registry.items():
        if name not in seen_header:
            seen_header.add(name)
            help_text = registry.help_of(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {registry.type_of(name)}")
        if isinstance(metric, Histogram):
            for bound, count in zip(metric.buckets, metric.counts):
                bucket_labels = labels + (("le", f"{bound:g}"),)
                lines.append(
                    f"{name}_bucket{_label_str(bucket_labels)} {count}"
                )
            inf_labels = labels + (("le", "+Inf"),)
            lines.append(
                f"{name}_bucket{_label_str(inf_labels)} {metric.count}"
            )
            lines.append(
                f"{name}_sum{_label_str(labels)} {_fmt_value(metric.sum)}"
            )
            lines.append(f"{name}_count{_label_str(labels)} {metric.count}")
        else:
            lines.append(
                f"{name}{_label_str(labels)} {_fmt_value(metric.value)}"
            )
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: PathLike) -> None:
    with open(path, "w") as handle:
        handle.write(render_prometheus(registry))


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse text exposition back into ``{name{labels}: value}``.

    Strict about structure (raises :class:`ValueError` on a malformed
    line) but limited to the subset :func:`render_prometheus` emits —
    enough for round-trip tests and the CI smoke's 'output parses'
    assertion."""
    samples: Dict[str, float] = {}
    for line_no, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {line_no}: malformed comment {raw!r}")
            continue
        try:
            series, value_text = line.rsplit(None, 1)
            value = float(value_text)
        except ValueError:
            raise ValueError(
                f"line {line_no}: not a sample line {raw!r}"
            ) from None
        if "{" in series and not series.endswith("}"):
            raise ValueError(f"line {line_no}: unterminated labels {raw!r}")
        samples[series] = value
    if not samples:
        raise ValueError("no samples found")
    return samples
