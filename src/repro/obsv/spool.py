"""Crash-safe trace spooling: per-process JSONL shards + merge reader.

The ring-buffer tracer (:mod:`repro.obsv.tracer`) dies with its process,
which is exactly when its contents matter most — a SIGKILLed worker takes
its last epochs of telemetry with it.  The spool fixes that:

* :class:`TraceSink` hangs off ``Tracer.sink`` and buffers every emitted
  event into a pending segment.  When the segment fills (or
  ``flush_interval`` wall seconds pass, or :meth:`TraceSink.flush` is
  called), the segment is written as its own JSONL shard via
  *tmp-file + atomic rename* — a crash mid-write never leaves a torn
  shard, only a stale ``.tmp`` that readers ignore.  Total spool size is
  bounded by ``budget_bytes``; when a flush would exceed it the oldest
  shards (by mtime, then name) are evicted first, so the spool behaves
  like the ring buffer: recent history wins.
* :func:`read_spool` stitches every shard in a directory back into one
  stream ordered by the cross-process merge key ``(ts, pid, seq)``.
* :func:`read_pid_tail` pulls the last N events of one process in
  ``seq`` order — the flight recorder's salvage primitive
  (:mod:`repro.obsv.flight`).
* :func:`follow_spool` is a polling generator over a live spool
  directory (``tools/obsv.py tail --follow``): it yields events from
  each shard exactly once, in order within the batch, as shards appear.

Shards are named ``events-<pid>-<first_seq:08d>.jsonl`` so a directory
listing alone reveals which process wrote what and in what order.
Everything here is plain files — no daemon, no IPC — which is what makes
the supervisor able to salvage a victim's telemetry after ``kill -9``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.obsv.export import read_jsonl, write_jsonl
from repro.obsv.tracer import KIND_CHECKPOINT, KIND_PROGRESS, TraceEvent

PathLike = Union[str, Path]

SHARD_PREFIX = "events-"
SHARD_SUFFIX = ".jsonl"

DEFAULT_SEGMENT_EVENTS = 256
DEFAULT_BUDGET_BYTES = 8 * 1024 * 1024
DEFAULT_FLUSH_INTERVAL = 2.0

FLUSH_KINDS = frozenset({KIND_PROGRESS, KIND_CHECKPOINT})
"""Event kinds that force a segment flush: progress marks an epoch
boundary (live tailers want it now) and checkpoint marks a resume point
(the flight recorder must be able to salvage everything up to it)."""


def shard_name(pid: int, first_seq: int) -> str:
    return f"{SHARD_PREFIX}{pid}-{first_seq:08d}{SHARD_SUFFIX}"


def parse_shard_name(name: str) -> Optional[Tuple[int, int]]:
    """``(pid, first_seq)`` from a shard filename, or None for non-shards
    (tmp leftovers, foreign files)."""
    if not (name.startswith(SHARD_PREFIX) and name.endswith(SHARD_SUFFIX)):
        return None
    stem = name[len(SHARD_PREFIX) : -len(SHARD_SUFFIX)]
    pid_text, _, seq_text = stem.rpartition("-")
    if not pid_text or not seq_text:
        return None
    try:
        return int(pid_text), int(seq_text)
    except ValueError:
        return None


def list_shards(root: PathLike) -> List[Path]:
    """Shard files under ``root``, oldest-first by ``(mtime, name)`` —
    the eviction order."""
    root = Path(root)
    if not root.is_dir():
        return []
    shards = [
        path
        for path in root.iterdir()
        if path.is_file() and parse_shard_name(path.name) is not None
    ]
    return sorted(shards, key=lambda p: (p.stat().st_mtime, p.name))


class TraceSink:
    """Spools tracer events to bounded, atomically-written JSONL shards.

    Attach via ``obsv.enable(sink=TraceSink(root))`` (or hand one to an
    existing tracer).  The sink never raises out of :meth:`offer` — a
    full disk or unwritable spool degrades to dropped segments, counted
    in :attr:`write_errors`, never a crashed run.
    """

    def __init__(
        self,
        root: PathLike,
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        flush_interval: float = DEFAULT_FLUSH_INTERVAL,
    ):
        if segment_events < 1:
            raise ValueError("segment_events must be positive")
        if budget_bytes < 1:
            raise ValueError("budget_bytes must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_events = segment_events
        self.budget_bytes = budget_bytes
        self.flush_interval = flush_interval
        self.pending: List[TraceEvent] = []
        self.segments_written = 0
        self.events_spooled = 0
        self.shards_evicted = 0
        self.write_errors = 0
        self._last_flush = time.monotonic()

    # -- ingest ------------------------------------------------------------

    def offer(self, event: TraceEvent) -> None:
        """Buffer one event; flush when the segment fills, goes stale, or
        the event marks an epoch/checkpoint boundary."""
        self.pending.append(event)
        if (
            len(self.pending) >= self.segment_events
            or event.kind in FLUSH_KINDS
            or (
                self.flush_interval > 0
                and time.monotonic() - self._last_flush >= self.flush_interval
            )
        ):
            self.flush()

    def flush(self) -> Optional[Path]:
        """Write the pending segment as one atomic shard; returns its path
        (None when there was nothing pending or the write failed)."""
        self._last_flush = time.monotonic()
        if not self.pending:
            return None
        segment, self.pending = self.pending, []
        first = segment[0]
        path = self.root / shard_name(first.pid, first.seq)
        tmp = path.with_name(path.name + ".tmp")
        try:
            write_jsonl(segment, tmp)
            os.replace(tmp, path)
        except OSError:
            self.write_errors += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return None
        self.segments_written += 1
        self.events_spooled += len(segment)
        self._evict()
        return path

    def close(self) -> None:
        """Flush any tail segment (call when the run ends)."""
        self.flush()

    # -- budget ------------------------------------------------------------

    def _evict(self) -> None:
        """Drop oldest shards until the spool fits the disk budget.  The
        newest shard always survives even if it alone exceeds the budget."""
        shards = list_shards(self.root)
        sizes = []
        for path in shards:
            try:
                sizes.append(path.stat().st_size)
            except OSError:
                sizes.append(0)
        total = sum(sizes)
        index = 0
        while total > self.budget_bytes and index < len(shards) - 1:
            try:
                shards[index].unlink()
                self.shards_evicted += 1
            except OSError:
                pass
            total -= sizes[index]
            index += 1


# -- readers ----------------------------------------------------------------


def read_spool(root: PathLike) -> List[TraceEvent]:
    """All events across every shard under ``root``, merged into one
    stream ordered by ``(ts, pid, seq)``.  Torn/tmp files are skipped."""
    events: List[TraceEvent] = []
    for path in list_shards(root):
        try:
            events.extend(read_jsonl(path))
        except (OSError, ValueError):
            continue
    events.sort(key=lambda e: (e.ts, e.pid, e.seq))
    return events


def spool_pids(root: PathLike) -> List[int]:
    """Distinct writer pids present in a spool directory."""
    pids: Set[int] = set()
    for path in list_shards(root):
        parsed = parse_shard_name(path.name)
        if parsed is not None:
            pids.add(parsed[0])
    return sorted(pids)


def read_pid_tail(
    root: PathLike, pid: int, limit: int = 128
) -> List[TraceEvent]:
    """The last ``limit`` events one process spooled, in ``seq`` order.

    This is the flight recorder's salvage path: after the supervisor
    kills (or loses) a worker it reads the victim's freshest telemetry
    straight off disk."""
    mine: List[TraceEvent] = []
    for path in list_shards(root):
        parsed = parse_shard_name(path.name)
        if parsed is None or parsed[0] != pid:
            continue
        try:
            mine.extend(e for e in read_jsonl(path) if e.pid == pid)
        except (OSError, ValueError):
            continue
    mine.sort(key=lambda e: e.seq)
    return mine[-limit:] if limit > 0 else mine


def follow_spool(
    root: PathLike,
    poll_interval: float = 0.25,
    max_seconds: Optional[float] = None,
) -> Iterator[TraceEvent]:
    """Yield events from a live spool directory as shards land.

    Each shard is consumed exactly once (atomic renames mean a shard is
    complete the moment it is visible); within each polling batch events
    are ordered by ``(ts, pid, seq)``.  Runs until ``max_seconds``
    elapses (forever when None) — callers break out on their own
    condition (KeyboardInterrupt, job settled)."""
    seen: Dict[str, bool] = {}
    deadline = (
        time.monotonic() + max_seconds if max_seconds is not None else None
    )
    while True:
        batch: List[TraceEvent] = []
        for path in list_shards(root):
            if path.name in seen:
                continue
            seen[path.name] = True
            try:
                batch.extend(read_jsonl(path))
            except (OSError, ValueError):
                continue
        batch.sort(key=lambda e: (e.ts, e.pid, e.seq))
        for event in batch:
            yield event
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(poll_interval)
