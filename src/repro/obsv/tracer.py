"""The structured event tracer: a bounded ring buffer of typed events.

Events are small frozen-shape dataclasses carrying simulated time, the
epoch index the harness was in when they fired, a ``kind`` from the fixed
taxonomy below, a short ``name``, and a JSON-safe ``data`` dict.  The
buffer is a ``deque(maxlen=capacity)`` — a run that out-produces the
capacity drops its *oldest* events and counts them in
:attr:`Tracer.dropped`; tracing never grows without bound and never
raises.

Event taxonomy (``kind``):

=============  =========================================================
``epoch``      one per monitoring epoch (index, sim time, event count,
               wall seconds spent simulating it)
``clos_write`` a committed CAT mask write (clos, way span)
``dca``        a PCIe port DCA toggle (port, enabled)
``phase``      a controller FSM phase transition (from, to)
``zone``       an LP-zone geometry change (expand / contract / reset)
``fault``      one injected fault (the fault layer's counter names)
``control``    control-plane incidents (parked / recovered applies)
``decision``   a mirrored audit-trail decision (action, reason, inputs)
``span``       a timed section (wall-seconds duration in ``wall``)
``platform``   run header: the microarchitecture spec fingerprint of the
               server producing the trace (one per ``Server.run``)
``job``        a job-service lifecycle step (submit / dedup / shed /
               claim / failed / requeue / recover / done / dead / kill)
=============  =========================================================

``data`` values must stay JSON-round-trippable (numbers, strings, bools,
lists, nested dicts) so a JSONL export reloads to identical events —
``tests/test_obsv.py`` locks that round trip.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

KIND_EPOCH = "epoch"
KIND_MASK = "clos_write"
KIND_DCA = "dca"
KIND_PHASE = "phase"
KIND_ZONE = "zone"
KIND_FAULT = "fault"
KIND_CONTROL = "control"
KIND_DECISION = "decision"
KIND_SPAN = "span"
KIND_PLATFORM = "platform"
KIND_CHECKPOINT = "checkpoint"
KIND_SAMPLE = "sample"
KIND_JOB = "job"

ALL_KINDS = (
    KIND_EPOCH,
    KIND_MASK,
    KIND_DCA,
    KIND_PHASE,
    KIND_ZONE,
    KIND_FAULT,
    KIND_CONTROL,
    KIND_DECISION,
    KIND_SPAN,
    KIND_PLATFORM,
    KIND_CHECKPOINT,
    KIND_SAMPLE,
    KIND_JOB,
)


@dataclass
class TraceEvent:
    """One traced occurrence.  ``ts`` is simulated cycles; ``wall`` is a
    wall-clock duration in seconds (spans and epoch events, else 0)."""

    ts: float
    epoch: int
    kind: str
    name: str
    data: Dict[str, Any] = field(default_factory=dict)
    wall: float = 0.0


class Tracer:
    """Bounded, process-wide event sink.

    The harness keeps :attr:`epoch` and :attr:`now` current, so emit
    sites deep in the substrate (CAT, PCIe, the fault injector) tag
    events with simulation context without threading it through every
    call signature.
    """

    DEFAULT_CAPACITY = 65536

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        """Events evicted from the ring (oldest-first) after it filled."""
        self.epoch = -1
        """Current epoch index (-1 outside a run)."""
        self.now = 0.0
        """Current simulated time, mirrored by the harness."""
        self.platform: Optional[str] = None
        """``name@sha`` token of the platform that last ran (trace header;
        also emitted as a ``platform`` event carrying the full spec)."""

    def emit(
        self,
        kind: str,
        name: str,
        data: Optional[Dict[str, Any]] = None,
        ts: Optional[float] = None,
        wall: float = 0.0,
    ) -> TraceEvent:
        if len(self.events) == self.capacity:
            self.dropped += 1
        event = TraceEvent(
            ts=self.now if ts is None else ts,
            epoch=self.epoch,
            kind=kind,
            name=name,
            data={} if data is None else data,
            wall=wall,
        )
        self.events.append(event)
        return event

    @contextmanager
    def span(
        self, name: str, data: Optional[Dict[str, Any]] = None
    ) -> Iterator[None]:
        """Time a section of host work and emit one ``span`` event."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                KIND_SPAN, name, data, wall=time.perf_counter() - started
            )

    # -- queries (post-run inspection & tests) -----------------------------

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_epoch(self, epoch: int) -> List[TraceEvent]:
        return [e for e in self.events if e.epoch == epoch]

    def counts(self) -> Dict[str, int]:
        """Event count per kind (the ``summary`` CLI's first table)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self.epoch = -1
        self.now = 0.0

    def __len__(self) -> int:
        return len(self.events)
