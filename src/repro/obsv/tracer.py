"""The structured event tracer: a bounded ring buffer of typed events.

Events are small frozen-shape dataclasses carrying simulated time, the
epoch index the harness was in when they fired, a ``kind`` from the fixed
taxonomy below, a short ``name``, and a JSON-safe ``data`` dict.  The
buffer is a ``deque(maxlen=capacity)`` — a run that out-produces the
capacity drops its *oldest* events and counts them in
:attr:`Tracer.dropped`; tracing never grows without bound and never
raises.

Event taxonomy (``kind``):

=============  =========================================================
``epoch``      one per monitoring epoch (index, sim time, event count,
               wall seconds spent simulating it)
``clos_write`` a committed CAT mask write (clos, way span)
``dca``        a PCIe port DCA toggle (port, enabled)
``phase``      a controller FSM phase transition (from, to)
``zone``       an LP-zone geometry change (expand / contract / reset)
``fault``      one injected fault (the fault layer's counter names)
``control``    control-plane incidents (parked / recovered applies)
``decision``   a mirrored audit-trail decision (action, reason, inputs)
``span``       a timed section (wall-seconds duration in ``wall``)
``platform``   run header: the microarchitecture spec fingerprint of the
               server producing the trace (one per ``Server.run``)
``job``        a job-service lifecycle step (submit / dedup / shed /
               claim / failed / requeue / recover / done / dead / kill)
``progress``   per-epoch run progress (epochs done / total, events/s,
               ETA seconds) — the live-streaming payload
=============  =========================================================

``data`` values must stay JSON-round-trippable (numbers, strings, bools,
lists, nested dicts) so a JSONL export reloads to identical events —
``tests/test_obsv.py`` locks that round trip.

Cross-process correlation: every event is additionally stamped with the
emitting process id (``pid``), a per-process monotonically increasing
sequence number (``seq``), and the ambient :class:`TraceContext`
(``run_id`` / ``job_id`` / ``attempt`` — the job service propagates it
into workers via the environment).  ``(ts, pid, seq)`` is the merge key
the spool reader (:mod:`repro.obsv.spool`) orders shards by, and
``(pid, seq)`` alone totally orders one process's events.
"""

from __future__ import annotations

import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

KIND_EPOCH = "epoch"
KIND_MASK = "clos_write"
KIND_DCA = "dca"
KIND_PHASE = "phase"
KIND_ZONE = "zone"
KIND_FAULT = "fault"
KIND_CONTROL = "control"
KIND_DECISION = "decision"
KIND_SPAN = "span"
KIND_PLATFORM = "platform"
KIND_CHECKPOINT = "checkpoint"
KIND_SAMPLE = "sample"
KIND_JOB = "job"
KIND_PROGRESS = "progress"
KIND_TENANT = "tenant"

ALL_KINDS = (
    KIND_EPOCH,
    KIND_MASK,
    KIND_DCA,
    KIND_PHASE,
    KIND_ZONE,
    KIND_FAULT,
    KIND_CONTROL,
    KIND_DECISION,
    KIND_SPAN,
    KIND_PLATFORM,
    KIND_CHECKPOINT,
    KIND_SAMPLE,
    KIND_JOB,
    KIND_PROGRESS,
    KIND_TENANT,
)


@dataclass(frozen=True)
class TraceContext:
    """The ambient identity stamped on every event a tracer emits.

    ``run_id`` names the logical run (the job service uses the job's
    content key prefix), ``job_id``/``attempt`` tie events back to the
    durable store row.  Propagated into worker processes through the
    environment (:data:`ENV_TRACE_CONTEXT`) so events from any process
    of one job correlate."""

    run_id: str = ""
    job_id: Optional[int] = None
    attempt: int = 0

    def to_env(self) -> str:
        """A compact, shell-safe encoding for worker environments."""
        return f"{self.run_id}|{'' if self.job_id is None else self.job_id}|{self.attempt}"

    @classmethod
    def from_env(cls, value: str) -> "TraceContext":
        """Inverse of :meth:`to_env`; tolerant of malformed values (a bad
        context must never take a worker down)."""
        parts = (value or "").split("|")
        run_id = parts[0] if parts else ""
        job_id: Optional[int] = None
        attempt = 0
        try:
            if len(parts) > 1 and parts[1]:
                job_id = int(parts[1])
            if len(parts) > 2 and parts[2]:
                attempt = int(parts[2])
        except ValueError:
            pass
        return cls(run_id=run_id, job_id=job_id, attempt=attempt)


ENV_TRACE_CONTEXT = "REPRO_TRACE_CONTEXT"
"""Environment variable carrying :meth:`TraceContext.to_env` into
spawned worker processes."""

ENV_TRACE_SPOOL = "REPRO_TRACE_SPOOL"
"""Environment variable naming a spool directory; a worker seeing it
enables tracing with a :class:`~repro.obsv.spool.TraceSink` attached."""


@dataclass
class TraceEvent:
    """One traced occurrence.  ``ts`` is simulated cycles; ``wall`` is a
    wall-clock duration in seconds (spans and epoch events, else 0).

    ``pid``/``seq`` plus the trace-context fields (``run_id``,
    ``job_id``, ``attempt``) make events from different processes
    correlatable and mergeable; they default to the pre-context values so
    older JSONL traces reload unchanged."""

    ts: float
    epoch: int
    kind: str
    name: str
    data: Dict[str, Any] = field(default_factory=dict)
    wall: float = 0.0
    pid: int = 0
    seq: int = 0
    run_id: str = ""
    job_id: Optional[int] = None
    attempt: int = 0

    @property
    def order_key(self):
        """The cross-shard merge key: ``(ts, pid, seq)``."""
        return (self.ts, self.pid, self.seq)


class Tracer:
    """Bounded, process-wide event sink.

    The harness keeps :attr:`epoch` and :attr:`now` current, so emit
    sites deep in the substrate (CAT, PCIe, the fault injector) tag
    events with simulation context without threading it through every
    call signature.
    """

    DEFAULT_CAPACITY = 65536

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        context: Optional[TraceContext] = None,
        sink: Optional[Any] = None,
    ):
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        """Events evicted from the ring (oldest-first) after it filled."""
        self.epoch = -1
        """Current epoch index (-1 outside a run)."""
        self.now = 0.0
        """Current simulated time, mirrored by the harness."""
        self.platform: Optional[str] = None
        """``name@sha`` token of the platform that last ran (trace header;
        also emitted as a ``platform`` event carrying the full spec)."""
        self.pid = os.getpid()
        """Emitting process id, stamped on every event (refreshed by
        :meth:`after_fork` in forked children)."""
        self.seq = 0
        """Per-process monotonically increasing sequence number; with
        ``pid`` it totally orders one process's events."""
        self.context = context
        """Ambient :class:`TraceContext` (or None outside the service)."""
        self.sink: Optional[Any] = sink
        """Optional spool sink (:class:`repro.obsv.spool.TraceSink`);
        every emitted event is offered to it."""
        self.progress: Optional[Dict[str, Any]] = None
        """Latest ``progress`` event payload (the supervisor heartbeat
        thread reads this to push live progress into the job store)."""

    def emit(
        self,
        kind: str,
        name: str,
        data: Optional[Dict[str, Any]] = None,
        ts: Optional[float] = None,
        wall: float = 0.0,
    ) -> TraceEvent:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.seq += 1
        ctx = self.context
        event = TraceEvent(
            ts=self.now if ts is None else ts,
            epoch=self.epoch,
            kind=kind,
            name=name,
            data={} if data is None else data,
            wall=wall,
            pid=self.pid,
            seq=self.seq,
            run_id=ctx.run_id if ctx is not None else "",
            job_id=ctx.job_id if ctx is not None else None,
            attempt=ctx.attempt if ctx is not None else 0,
        )
        self.events.append(event)
        if kind == KIND_PROGRESS:
            self.progress = event.data
        if self.sink is not None:
            self.sink.offer(event)
        return event

    def after_fork(self) -> None:
        """Re-stamp process identity in a forked child.

        Registered via ``os.register_at_fork`` by :func:`repro.obsv.enable`
        so a child that inherits an enabled tracer doesn't keep emitting
        under the parent's pid.  The inherited ring and seq are reset —
        the child's stream starts fresh; a sink is *not* inherited (shard
        files must not be shared across processes)."""
        self.pid = os.getpid()
        self.seq = 0
        self.events.clear()
        self.dropped = 0
        self.sink = None
        self.progress = None

    @contextmanager
    def span(
        self, name: str, data: Optional[Dict[str, Any]] = None
    ) -> Iterator[None]:
        """Time a section of host work and emit one ``span`` event."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                KIND_SPAN, name, data, wall=time.perf_counter() - started
            )

    # -- queries (post-run inspection & tests) -----------------------------

    def by_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_epoch(self, epoch: int) -> List[TraceEvent]:
        return [e for e in self.events if e.epoch == epoch]

    def counts(self) -> Dict[str, int]:
        """Event count per kind (the ``summary`` CLI's first table)."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
        self.epoch = -1
        self.now = 0.0

    def __len__(self) -> int:
        return len(self.events)
