"""The flight recorder: post-mortem crash reports from spooled telemetry.

When the supervisor settles a job that died — unclean worker death,
stale-heartbeat SIGKILL, or a retryable failure — the worker's in-memory
tracer is gone, but its :class:`~repro.obsv.spool.TraceSink` shards are
still on disk.  :func:`write_crash_report` salvages the victim's last
spooled events and freezes them, together with the durable job row and
the failure classification, into one JSON artifact next to the job's
result path (``<result>.crash.json``).  That file is the "black box":
``tools/obsv.py`` can replay the final seconds of a worker that no
longer exists, and the CI service smoke asserts the salvaged tail
matches the shard the worker actually wrote.

Reports are plain JSON (not JSONL) because they are single, final
documents; the embedded events use the same dict shape as the JSONL
export so :func:`read_crash_report` reloads them as real
:class:`TraceEvent` objects.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obsv.spool import read_pid_tail
from repro.obsv.tracer import TraceEvent

PathLike = Union[str, Path]

CRASH_SUFFIX = ".crash.json"
DEFAULT_SALVAGE_EVENTS = 128
FORMAT = "repro-crash-report-v1"


def crash_report_path(result_path: PathLike) -> Path:
    """Where a job's crash report lives: beside its result artifact."""
    result_path = Path(result_path)
    return result_path.with_name(result_path.name + CRASH_SUFFIX)


def salvage_events(
    spool_root: PathLike, pid: int, limit: int = DEFAULT_SALVAGE_EVENTS
) -> List[TraceEvent]:
    """The victim's freshest spooled events (``seq`` order, last ``limit``).

    Returns ``[]`` when the spool directory is missing or the worker
    never flushed a shard — a crash report with no events is still worth
    writing (it carries the job row and failure category)."""
    root = Path(spool_root)
    if not root.is_dir():
        return []
    return read_pid_tail(root, pid, limit=limit)


def write_crash_report(
    result_path: PathLike,
    job: Dict[str, Any],
    reason: str,
    category: str,
    spool_root: Optional[PathLike],
    pid: int,
    error: str = "",
    limit: int = DEFAULT_SALVAGE_EVENTS,
) -> Path:
    """Emit the crash artifact; returns its path.

    ``job`` is the durable store row as a dict, ``reason`` is the settle
    path that fired (``worker_death`` / ``stale_heartbeat`` /
    ``retryable_failure``), ``category`` the failure taxonomy label, and
    ``error`` the worker's recorded exception text (empty for signals).
    The write is atomic (tmp + rename) so a supervisor crash mid-report
    never leaves a torn artifact."""
    events = (
        salvage_events(spool_root, pid, limit=limit)
        if spool_root is not None
        else []
    )
    report = {
        "format": FORMAT,
        "reason": reason,
        "category": category,
        "error": error,
        "pid": pid,
        "job": job,
        "salvaged_events": len(events),
        "events": [asdict(event) for event in events],
    }
    path = crash_report_path(result_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def read_crash_report(
    path: PathLike,
) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Reload a crash report: ``(header, events)`` where ``header`` is the
    report minus its event list and ``events`` are real TraceEvents."""
    with open(path) as handle:
        report = json.load(handle)
    if report.get("format") != FORMAT:
        raise ValueError(f"{path}: not a crash report (format field)")
    raw_events = report.pop("events", [])
    events = [TraceEvent(**obj) for obj in raw_events]
    return report, events
