"""Process-wide metrics registry: counters, gauges, histograms with labels.

Naming conventions (enforced by habit, checked by review, documented in
``docs/observability.md``):

* every metric is prefixed ``repro_``;
* second token is the owning subsystem (``runcache``, ``dispatch``,
  ``manager``, ``faults``, ``epoch``, ``trace``, ``profile``);
* monotonically increasing counts end in ``_total``; point-in-time
  values carry a unit suffix (``_seconds``, ``_events``) where one
  exists;
* labels are few and low-cardinality (``manager``, ``phase``, ``kind``).

The registry is always importable and always cheap: metrics are plain
attribute bumps, and nothing walks the registry until an exporter
(:func:`repro.obsv.export.render_prometheus` or :meth:`snapshot`) asks.

This module also hosts the shared **stats-dict merge helpers**
(:func:`counts_of` / :func:`merge_counts` / :func:`diff_counts`) that the
run cache's worker-stats merge and the chaos sweep's fault aggregation
both use — previously each had its own hand-rolled field loop.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

LabelValue = Union[str, int, float, bool]
Labels = Tuple[Tuple[str, str], ...]

DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Histogram bucket upper bounds (seconds-flavoured, Prometheus style)."""


# -- shared stats-dict helpers ---------------------------------------------


def counts_of(stats: Any) -> Dict[str, Union[int, float]]:
    """The numeric fields of a stats carrier as a plain dict.

    Accepts a mapping or a dataclass instance (``CacheStats``,
    ``FaultCounters``, ``DispatchStats``, ...); non-numeric fields are
    skipped, bools are not treated as numbers."""
    if is_dataclass(stats) and not isinstance(stats, type):
        items = [(f.name, getattr(stats, f.name)) for f in fields(stats)]
    elif isinstance(stats, Mapping):
        items = list(stats.items())
    else:
        raise TypeError(f"cannot extract counts from {type(stats).__name__}")
    return {
        name: value
        for name, value in items
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def merge_counts(target: Any, source: Any) -> Any:
    """Add ``source``'s numeric stats into ``target`` and return it.

    Both sides may be mappings or dataclass instances.  Keys missing from
    ``target`` are created when it is a mapping and ignored when it is a
    dataclass (a dataclass's shape is its contract)."""
    increments = counts_of(source)
    if is_dataclass(target) and not isinstance(target, type):
        own = counts_of(target)
        for name, value in increments.items():
            if name in own:
                setattr(target, name, own[name] + value)
    elif isinstance(target, dict):
        for name, value in increments.items():
            target[name] = target.get(name, 0) + value
    else:
        raise TypeError(f"cannot merge counts into {type(target).__name__}")
    return target


def diff_counts(after: Any, before: Any) -> Dict[str, Union[int, float]]:
    """``after - before`` per shared numeric field (a worker's delta)."""
    a, b = counts_of(after), counts_of(before)
    return {name: value - b.get(name, 0) for name, value in a.items()}


# -- metric primitives ------------------------------------------------------


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A point-in-time value that may go either way."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def inc(self, amount: Union[int, float] = 1) -> None:
        self.value += amount

    def dec(self, amount: Union[int, float] = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative counts, Prometheus-shaped)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1

    def reset(self) -> None:
        """Zero every bucket (collectors that recompute from durable
        state call this so repeated collection doesn't double-count)."""
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def quantile_bound(self, q: float) -> float:
        """Upper bound of the bucket containing quantile ``q`` (coarse,
        +Inf reported as the largest finite bound)."""
        if not self.count:
            return 0.0
        rank = q * self.count
        for bound, cumulative in zip(self.buckets, self.counts):
            if cumulative >= rank:
                return bound
        return self.buckets[-1]

    def quantile(self, q: float) -> float:
        """Interpolated quantile ``q`` (see :func:`histogram_quantile`)."""
        return histogram_quantile(self.buckets, self.counts, self.count, q)


def histogram_quantile(
    buckets: Sequence[float],
    counts: Sequence[int],
    count: int,
    q: float,
) -> float:
    """Estimate quantile ``q`` from cumulative bucket counts, the way
    PromQL's ``histogram_quantile`` does: rank into the first bucket whose
    cumulative count covers it, then interpolate linearly inside that
    bucket (lower edge = previous bound, 0 for the first bucket).

    Edge buckets behave like Prometheus: an empty histogram reports 0.0;
    a rank landing in the +Inf overflow bucket (observations above the
    largest finite bound) clamps to the largest finite bound — there is
    nothing to interpolate toward.  ``q`` outside [0, 1] raises."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if count <= 0:
        return 0.0
    rank = q * count
    previous_cum = 0
    previous_bound = 0.0
    for bound, cumulative in zip(buckets, counts):
        if cumulative >= rank:
            in_bucket = cumulative - previous_cum
            if in_bucket <= 0:
                return bound
            fraction = (rank - previous_cum) / in_bucket
            return previous_bound + fraction * (bound - previous_bound)
        previous_cum = cumulative
        previous_bound = bound
    return float(buckets[-1]) if buckets else 0.0


Metric = Union[Counter, Gauge, Histogram]

_TYPE_NAMES = {Counter: "counter", Gauge: "gauge", Histogram: "histogram"}


def _labels_key(labels: Dict[str, LabelValue]) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Name + labels -> metric, with get-or-create accessors.

    Re-requesting a name with a different metric type is an error — one
    name, one type, any number of label sets."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Labels], Metric] = {}
        self._types: Dict[str, type] = {}
        self._help: Dict[str, str] = {}

    def _get(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Dict[str, LabelValue],
        **kwargs: Any,
    ) -> Metric:
        known = self._types.get(name)
        if known is not None and known is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{_TYPE_NAMES[known]}, requested {_TYPE_NAMES[cls]}"
            )
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(**kwargs)
            self._types[name] = cls
            if help:
                self._help[name] = help
        elif help and name not in self._help:
            self._help[name] = help
        return metric

    def counter(
        self, name: str, help: str = "", **labels: LabelValue
    ) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: LabelValue) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: LabelValue,
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    # -- iteration / export -------------------------------------------------

    def items(self) -> List[Tuple[str, Labels, Metric]]:
        """(name, labels, metric) triples, sorted for stable output."""
        return [
            (name, labels, metric)
            for (name, labels), metric in sorted(self._metrics.items())
        ]

    def type_of(self, name: str) -> str:
        return _TYPE_NAMES[self._types[name]]

    def help_of(self, name: str) -> str:
        return self._help.get(name, "")

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable dump of every metric."""
        out: Dict[str, Any] = {}
        for name, labels, metric in self.items():
            entry = out.setdefault(
                name,
                {
                    "type": self.type_of(name),
                    "help": self.help_of(name),
                    "series": [],
                },
            )
            if isinstance(metric, Histogram):
                value: Any = {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
            else:
                value = metric.value
            entry["series"].append({"labels": dict(labels), "value": value})
        return out

    def clear(self) -> None:
        self._metrics.clear()
        self._types.clear()
        self._help.clear()


_registry: Optional[MetricsRegistry] = None


def get_registry() -> MetricsRegistry:
    """The process-wide registry, created on first use."""
    global _registry
    if _registry is None:
        _registry = MetricsRegistry()
    return _registry


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Swap the process-wide registry (tests use this for isolation)."""
    global _registry
    _registry = registry


# -- collectors -------------------------------------------------------------


def collect_process(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Pull the scattered process-wide stats into the registry: run-cache
    hit/miss accounting and pool-dispatch incidents.  Imports lazily so
    this low-level module never drags the experiment stack in."""
    from repro.experiments import parallel, runcache

    registry = registry or get_registry()
    cache = runcache.get_cache()
    for name, value in counts_of(cache.stats).items():
        registry.gauge(
            f"repro_runcache_{name}_total",
            help=f"run-cache {name} this process",
        ).set(value)
    registry.gauge(
        "repro_runcache_enabled", help="1 when the run cache is on"
    ).set(int(cache.enabled))
    for name, value in counts_of(parallel.dispatch_stats).items():
        registry.gauge(
            f"repro_dispatch_{name}_total",
            help=f"pool-dispatch {name} this process",
        ).set(value)
    return registry


SERVICE_SLO_BUCKETS = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)
"""Bucket bounds (seconds) for the service queue-wait / run-duration
SLO histograms — wider than :data:`DEFAULT_BUCKETS` because figure jobs
run for seconds to minutes."""


def collect_service(
    store: Any, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Absorb a :class:`repro.service.store.JobStore`'s durable state:
    live queue depth, per-state job counts, the incident counters
    (retries, resumes, shed, deduped, recovered, corrupt rows, crashes),
    and the SLO histograms — queue wait (created -> claimed) and run
    duration (claimed -> done) per job attempt that reached those marks.
    Takes the store as an argument — this module never imports the
    service."""
    registry = registry or get_registry()
    registry.gauge(
        "repro_service_queue_depth",
        help="jobs queued, running, or awaiting a retry decision",
    ).set(store.queue_depth())
    for state, count in store.state_counts().items():
        registry.gauge(
            "repro_service_jobs",
            help="jobs per state-machine state",
            state=state.lower(),
        ).set(count)
    for name, value in store.counters().items():
        registry.gauge(
            f"repro_service_{name}_total",
            help=f"job-service {name} incidents (durable)",
        ).set(value)
    queue_wait = registry.histogram(
        "repro_service_queue_wait_seconds",
        help="submit-to-claim latency per job that has been claimed",
        buckets=SERVICE_SLO_BUCKETS,
    )
    run_duration = registry.histogram(
        "repro_service_run_duration_seconds",
        help="claim-to-done latency per completed job",
        buckets=SERVICE_SLO_BUCKETS,
    )
    # Recomputed from the durable rows each collection — reset so a
    # polling `metrics` loop doesn't compound observations.
    queue_wait.reset()
    run_duration.reset()
    for job in store.jobs():
        claimed_at = getattr(job, "claimed_at", None)
        if claimed_at is None:
            continue
        queue_wait.observe(max(0.0, claimed_at - job.created_at))
        if job.state == "DONE":
            run_duration.observe(max(0.0, job.updated_at - claimed_at))
    return registry


def collect_robustness(
    stats: Mapping[str, Union[int, float]],
    manager: str,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Absorb a manager's ``robustness_stats()`` dict (apply retries,
    sanitizer holdovers, watchdog state) as labeled gauges."""
    registry = registry or get_registry()
    for name, value in stats.items():
        registry.gauge(
            f"repro_manager_{name}",
            help=f"manager robustness counter {name}",
            manager=manager,
        ).set(value)
    return registry


def collect_tenants(
    slos,
    scheme: str,
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Absorb per-tenant SLO rows (:class:`~repro.experiments.report.
    TenantSlo`) as tenant-labeled gauges, one series per tenant × scheme —
    the export a fleet dashboard would scrape per co-location cell."""
    registry = registry or get_registry()
    for slo in slos:
        labels = dict(
            tenant=slo.tenant, tenant_class=slo.tenant_class, scheme=scheme
        )
        registry.gauge(
            "repro_tenant_p99_latency_cycles",
            help="measured per-tenant p99 request latency",
            **labels,
        ).set(slo.p99_latency)
        registry.gauge(
            "repro_tenant_throughput_per_epoch",
            help="measured per-tenant completed requests per epoch",
            **labels,
        ).set(slo.throughput)
        registry.gauge(
            "repro_tenant_slo_attainment",
            help="worst declared-axis SLO attainment, capped at 1.0",
            **labels,
        ).set(slo.attainment)
        registry.gauge(
            "repro_tenant_slo_met",
            help="1 when every declared SLO axis is met",
            **labels,
        ).set(1.0 if slo.met else 0.0)
    return registry
