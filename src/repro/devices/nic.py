"""NIC model: DMA-writes arriving packets into per-core Rx rings.

The NIC runs as one simulation process.  Arriving packets are sprayed
round-robin (RSS-style) across its rings; each packet is a burst of
DMA writes through the IIO agent, so whether the lines land in the DCA
ways or memory is decided by the NIC's PCIe port register — exactly the
knob A4 manipulates.  A full ring drops the packet.
"""

from __future__ import annotations

from typing import List

from repro.devices.packetgen import PacketGenerator
from repro.devices.ring import RxRing
from repro.sim.engine import Simulator
from repro.telemetry.counters import CounterBank
from repro.uncore.iio import IIOAgent
from repro.uncore.pcie import PciePort


class NicConfig:
    """Geometry of one NIC's receive side."""

    def __init__(self, ring_entries: int = 16, slot_lines: int = 24):
        if ring_entries <= 0 or slot_lines <= 0:
            raise ValueError("NIC geometry must be positive")
        self.ring_entries = ring_entries
        self.slot_lines = slot_lines
        """Buffer lines reserved per descriptor (max packet = 1514 B = 24)."""


class Nic:
    """A receive-side NIC with one ring per consumer core."""

    __slots__ = (
        "name",
        "stream",
        "port",
        "iio",
        "generator",
        "rings",
        "counters",
        "_next_ring",
        "packets_delivered",
        "packets_dropped",
    )

    def __init__(
        self,
        name: str,
        stream: str,
        port: PciePort,
        iio: IIOAgent,
        generator: PacketGenerator,
        rings: List[RxRing],
        counters: CounterBank,
    ):
        self.name = name
        self.stream = stream
        self.port = port
        self.iio = iio
        self.generator = generator
        self.rings = rings
        self.counters = counters
        self._next_ring = 0
        self.packets_delivered = 0
        self.packets_dropped = 0

    def start(self, sim: Simulator) -> None:
        sim.spawn_restartable(f"{self.name}-rx", self, "_rx_body", sim)

    def _rx_body(self, sim: Simulator):
        # Already restartable as written: the single yield ends the loop
        # body and all state lives on ``self`` / the generator's RNG.
        counters = self.counters.stream(self.stream)
        while True:
            lines = self.generator.next_packet_lines()
            ring = self.rings[self._next_ring]
            self._next_ring = (self._next_ring + 1) % len(self.rings)
            entry = ring.push(lines, sim.now)
            if entry is None:
                self.packets_dropped += 1
                counters.packets_dropped += 1
            else:
                self.packets_delivered += 1
                self.iio.inbound_write_burst(
                    sim.now, self.port, entry.buffer_addr, lines, self.stream
                )
            yield self.generator.next_gap()
