"""Receive descriptor ring shared between a NIC and one consumer core.

Each entry owns a fixed buffer of ``slot_lines`` host cache lines.  The NIC
fills entries in order (head), the consumer drains them in order (tail) —
matching a DPDK-style run-to-completion Rx ring.  When the ring is full the
NIC drops the packet, which is how offered load beyond the consumer's
capacity shows up as loss rather than unbounded queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class RingEntry:
    """One Rx descriptor slot."""

    index: int
    buffer_addr: int
    packet_lines: int = 0
    arrival_time: float = 0.0
    filled: bool = False


class RxRing:
    """Fixed-size single-producer / single-consumer descriptor ring."""

    def __init__(self, base_addr: int, entries: int, slot_lines: int):
        if entries <= 0 or slot_lines <= 0:
            raise ValueError("ring geometry must be positive")
        self.base_addr = base_addr
        self.slot_lines = slot_lines
        self.entries = [
            RingEntry(i, base_addr + i * slot_lines) for i in range(entries)
        ]
        self._head = 0  # next slot the NIC fills
        self._tail = 0  # next slot the consumer drains
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return self._count == len(self.entries)

    @property
    def empty(self) -> bool:
        return self._count == 0

    def push(self, packet_lines: int, now: float) -> Optional[RingEntry]:
        """Producer side: claim the head slot for an arriving packet.

        Returns None when the ring is full (the packet is dropped).
        """
        if self.full:
            return None
        entry = self.entries[self._head]
        entry.packet_lines = packet_lines
        entry.arrival_time = now
        entry.filled = True
        self._head = (self._head + 1) % len(self.entries)
        self._count += 1
        return entry

    def peek(self) -> Optional[RingEntry]:
        """Consumer side: the oldest filled entry, without removing it."""
        if self.empty:
            return None
        return self.entries[self._tail]

    def pop(self) -> RingEntry:
        """Consumer side: release the oldest filled entry back to the NIC."""
        if self.empty:
            raise IndexError("pop from empty ring")
        entry = self.entries[self._tail]
        entry.filled = False
        self._tail = (self._tail + 1) % len(self.entries)
        self._count -= 1
        return entry
