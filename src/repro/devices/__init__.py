"""I/O device models: NIC with Rx rings, NVMe SSD, and traffic generation."""

from repro.devices.ring import RxRing, RingEntry
from repro.devices.nic import Nic, NicConfig
from repro.devices.nvme import NvmeSsd, NvmeConfig, NvmeCommand
from repro.devices.packetgen import PacketGenerator, PacketGenConfig

__all__ = [
    "RxRing",
    "RingEntry",
    "Nic",
    "NicConfig",
    "NvmeSsd",
    "NvmeConfig",
    "NvmeCommand",
    "PacketGenerator",
    "PacketGenConfig",
]
