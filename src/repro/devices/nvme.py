"""NVMe SSD model (the paper's RAID-0 of four Samsung 980 PROs).

Two-stage service model, run as a quantum-based simulation process:

* **Admission** — command issue is serialised: one command enters service
  per ``command_overhead_cycles`` (doorbell, FTL lookup, DMA setup).  This
  bounds small-block throughput and yields the paper's Fig. 5a shape —
  throughput grows with block size and saturates around the 128 KB-paper-
  equivalent block.
* **Transfer** — up to ``parallelism`` admitted commands share the array's
  aggregate bandwidth (flash-channel / RAID-lane concurrency), their data
  DMA-written progressively through the IIO agent as it transfers.

The concurrency is what floods the DCA ways at large blocks: with deep
queues, ``parallelism`` × ``block_lines`` unconsumed lines are in flight,
far exceeding DCA capacity — the paper's storage-driven DMA leak (O2).
Whether those writes allocate into the LLC or stream to memory is decided
by the device's PCIe port register (A4's selective-DCA knob).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional
from collections import deque

from repro.platform import DEFAULT_PLATFORM, PlatformSpec
from repro.sim.engine import Simulator
from repro.telemetry.counters import CounterBank
from repro.uncore.iio import IIOAgent
from repro.uncore.pcie import PciePort


@dataclass
class NvmeConfig:
    bandwidth_lines_per_cycle: float = DEFAULT_PLATFORM.ssd_bandwidth_lines_per_cycle
    command_overhead_cycles: float = 60.0
    """Serialised per-command issue cost; sets the block size at which
    throughput saturates."""
    parallelism: int = 24
    """Concurrent transfers (flash channels x RAID lanes)."""
    quantum_cycles: float = 150.0
    """Service-loop timestep of the processor-sharing model."""

    def __post_init__(self) -> None:
        if self.bandwidth_lines_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        if self.parallelism <= 0:
            raise ValueError("parallelism must be positive")
        if self.quantum_cycles <= 0:
            raise ValueError("quantum must be positive")

    def peak_throughput(self, lines: int) -> float:
        """Achievable lines/cycle at a block size (admission- or
        bandwidth-bound, whichever binds)."""
        admission = lines / self.command_overhead_cycles
        return min(self.bandwidth_lines_per_cycle, admission)

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **overrides) -> "NvmeConfig":
        """An SSD config drawing its bandwidth from ``platform``."""
        overrides.setdefault(
            "bandwidth_lines_per_cycle", platform.ssd_bandwidth_lines_per_cycle
        )
        return cls(**overrides)


@dataclass
class NvmeCommand:
    """One read command: DMA the block into ``buffer_addr``..+``lines``."""

    stream: str
    buffer_addr: int
    lines: int
    submitted_at: float = 0.0
    admitted_at: float = 0.0
    completed_at: float = 0.0
    on_complete: Optional[Callable[[float, "NvmeCommand"], None]] = None
    _written: int = field(default=0, repr=False)
    _credit: float = field(default=0.0, repr=False)


class NvmeSsd:
    """A logical NVMe namespace with internal transfer concurrency."""

    __slots__ = (
        "name",
        "port",
        "iio",
        "counters",
        "cfg",
        "_queue",
        "_active",
        "_admission_credit",
        "_started",
        "_pending_stall",
        "_mid_quantum",
        "_stall_taken",
        "commands_completed",
        "lines_transferred",
        "stalls_injected",
    )

    def __init__(
        self,
        name: str,
        port: PciePort,
        iio: IIOAgent,
        counters: CounterBank,
        cfg: Optional[NvmeConfig] = None,
    ):
        self.name = name
        self.port = port
        self.iio = iio
        self.counters = counters
        self.cfg = cfg or NvmeConfig()
        self._queue: Deque[NvmeCommand] = deque()
        self._active: List[NvmeCommand] = []
        self._admission_credit = 0.0
        self._started = False
        self._pending_stall = 0.0
        self._mid_quantum = False
        self._stall_taken = False
        self.commands_completed = 0
        self.lines_transferred = 0
        self.stalls_injected = 0

    def inject_stall(self, cycles: float) -> None:
        """Freeze the service engine for ``cycles`` (a firmware hiccup /
        garbage-collection pause; used by the fault injector).  Queued and
        in-flight commands are preserved — service merely pauses."""
        if cycles > 0:
            self._pending_stall += cycles
            self.stalls_injected += 1

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + len(self._active)

    def time_shift(self, delta: float) -> None:
        """Shift the absolute timestamps of queued/in-flight commands by
        ``delta`` (interval-sampling clock skip)."""
        for command in list(self._queue) + self._active:
            command.submitted_at += delta
            command.admitted_at += delta
            command.completed_at += delta

    def submit(self, sim: Simulator, command: NvmeCommand) -> None:
        command.submitted_at = sim.now
        self._queue.append(command)
        if not self._started:
            self._started = True
            sim.spawn_restartable(f"{self.name}-engine", self, "_engine", sim)

    def _engine(self, sim: Simulator):
        # Restartable body: the quantum/stall position lives in the
        # ``_mid_quantum``/``_stall_taken`` flags rather than in the
        # generator frame, so a rebuilt generator resumes in the right leg
        # of the service loop after a checkpoint restore.
        cfg = self.cfg
        while True:
            if not self._mid_quantum:
                self._mid_quantum = True
                yield cfg.quantum_cycles
                continue
            if self._pending_stall > 0.0 and not self._stall_taken:
                self._stall_taken = True
                stall, self._pending_stall = self._pending_stall, 0.0
                yield stall
                continue
            self._mid_quantum = False
            self._stall_taken = False
            self._admit(sim)
            self._transfer(sim)

    def _admit(self, sim: Simulator) -> None:
        cfg = self.cfg
        self._admission_credit = min(
            self._admission_credit + cfg.quantum_cycles,
            2.0 * cfg.command_overhead_cycles,
        )
        while (
            self._queue
            and len(self._active) < cfg.parallelism
            and self._admission_credit >= cfg.command_overhead_cycles
        ):
            self._admission_credit -= cfg.command_overhead_cycles
            command = self._queue.popleft()
            command.admitted_at = sim.now
            self._active.append(command)

    def _transfer(self, sim: Simulator) -> None:
        if not self._active:
            return
        cfg = self.cfg
        share = cfg.bandwidth_lines_per_cycle * cfg.quantum_cycles / len(self._active)
        finished: List[NvmeCommand] = []
        spans: List[tuple] = []
        for command in self._active:
            command._credit += share
            burst = min(int(command._credit), command.lines - command._written)
            if burst > 0:
                command._credit -= burst
                spans.append(
                    (
                        command.buffer_addr + command._written,
                        burst,
                        command.stream,
                    )
                )
                command._written += burst
                self.lines_transferred += burst
            if command._written >= command.lines:
                finished.append(command)
        if spans:
            # All of this quantum's per-command bursts happen at the same
            # timestamp, so they cross the IIO agent as one multi-span call.
            self.iio.inbound_write_multi(sim.now, self.port, spans)
        for command in finished:
            self._active.remove(command)
            command.completed_at = sim.now
            self.commands_completed += 1
            if command.on_complete is not None:
                command.on_complete(sim.now, command)
