"""Client-side traffic generation (the paper's DPDK Pktgen machine).

Produces a deterministic-with-jitter arrival process at a configured line
rate.  The paper's client saturates a 100 Gbps link; the simulated default
rate is the capacity-scaled equivalent
(``PlatformSpec.nic_line_rate_lines_per_cycle``).
"""

from __future__ import annotations

import random
import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.platform import DEFAULT_PLATFORM

IMIX_SIMPLE: Tuple[Tuple[int, float], ...] = (
    (64, 7 / 12),
    (576, 4 / 12),
    (1514, 1 / 12),
)
"""The classic 'simple IMIX' size mix (bytes, probability)."""


@dataclass
class PacketGenConfig:
    packet_bytes: int = 1024
    line_rate_lines_per_cycle: float = DEFAULT_PLATFORM.nic_line_rate_lines_per_cycle
    line_bytes: int = DEFAULT_PLATFORM.line_bytes
    jitter: float = 0.2
    """Fractional uniform jitter on inter-arrival gaps (0 = periodic)."""
    size_mix: Optional[Sequence[Tuple[int, float]]] = None
    """Optional (bytes, weight) mixture, e.g. :data:`IMIX_SIMPLE`; when set,
    each packet's size is drawn from it and ``packet_bytes`` only bounds
    the ring slot size."""

    def __post_init__(self) -> None:
        if self.packet_bytes <= 0:
            raise ValueError("packet_bytes must be positive")
        if self.line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        if self.line_rate_lines_per_cycle <= 0:
            raise ValueError("line rate must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.size_mix is not None:
            total = sum(weight for _, weight in self.size_mix)
            if not self.size_mix or abs(total - 1.0) > 1e-6:
                raise ValueError("size_mix weights must sum to 1")
            if any(size <= 0 for size, _ in self.size_mix):
                raise ValueError("size_mix sizes must be positive")

    def lines_for(self, size_bytes: int) -> int:
        """Cache lines one ``size_bytes`` packet occupies."""
        return max(1, math.ceil(size_bytes / self.line_bytes))

    @property
    def packet_lines(self) -> int:
        return self.lines_for(self.packet_bytes)

    @property
    def max_packet_lines(self) -> int:
        """Slot sizing: the largest packet the generator can emit."""
        if self.size_mix is None:
            return self.packet_lines
        return max(self.lines_for(size) for size, _ in self.size_mix)

    @property
    def mean_packet_lines(self) -> float:
        if self.size_mix is None:
            return float(self.packet_lines)
        return sum(
            self.lines_for(size) * weight for size, weight in self.size_mix
        )

    @property
    def mean_gap_cycles(self) -> float:
        """Inter-arrival gap that achieves the configured line rate."""
        return self.mean_packet_lines / self.line_rate_lines_per_cycle


class PacketGenerator:
    """Yields successive packet sizes and inter-arrival gaps.

    The config-derived per-packet constants (mean gap, jitter, fixed
    packet size) are snapshotted at construction: ``mean_gap_cycles`` is
    a property that re-derives the size mix's expectation, far too much
    work to repeat once per simulated packet.
    """

    __slots__ = (
        "cfg",
        "rng",
        "_mix",
        "rate_scale",
        "_mean_gap",
        "_jitter",
        "_fixed_packet_lines",
    )

    def __init__(self, cfg: PacketGenConfig, rng: random.Random):
        self.cfg = cfg
        self.rng = rng
        self._mix = list(cfg.size_mix) if cfg.size_mix is not None else None
        self.rate_scale = 1.0
        """Instantaneous rate multiplier (>1 = burst storm; set by the
        fault injector, reset to 1.0 when the storm ends)."""
        self._mean_gap = cfg.mean_gap_cycles
        self._jitter = cfg.jitter
        self._fixed_packet_lines = (
            cfg.packet_lines if self._mix is None else None
        )

    def next_packet_lines(self) -> int:
        """Size of the next packet in cache lines."""
        if self._mix is None:
            return self._fixed_packet_lines
        draw = self.rng.random()
        cumulative = 0.0
        for size, weight in self._mix:
            cumulative += weight
            if draw <= cumulative:
                return self.cfg.lines_for(size)
        return self.cfg.lines_for(self._mix[-1][0])

    def next_gap(self) -> float:
        gap = self._mean_gap
        if self._jitter:
            spread = self._jitter * gap
            gap += self.rng.uniform(-spread, spread)
        if self.rate_scale != 1.0:
            # Guarded so the unstormed arrival process is bit-identical.
            gap /= self.rate_scale
        return max(gap, 0.1)
