"""A `pcm.x`-style monitor over a running scenario.

Prints one block per monitoring interval with the counters the paper's
daemon consumes: per-workload IPC, LLC/MLC hit ladders, DCA miss rate, I/O
throughput, and system memory bandwidth.

Usage::

    python -m repro.tools.pcm --scenario microbench --scheme a4 --epochs 8
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List

from repro.experiments.scenarios import (
    build_server,
    hpw_heavy_workloads,
    lpw_heavy_workloads,
    microbenchmark_workloads,
)
from repro.telemetry.pcm import EpochSample

SCENARIOS: Dict[str, Callable] = {
    "microbench": microbenchmark_workloads,
    "hpw-heavy": hpw_heavy_workloads,
    "lpw-heavy": lpw_heavy_workloads,
}


def format_epoch(sample: EpochSample) -> str:
    """Render one monitoring interval the way pcm.x prints its table."""
    lines = [
        f"--- epoch {sample.index} @ {sample.time:.0f} cycles ---",
        f"{'stream':<12} {'IPC':>6} {'MLChit%':>8} {'LLChit%':>8} "
        f"{'DCAmiss%':>9} {'IO l/c':>8} {'leaks':>6}",
    ]
    for name in sorted(sample.streams):
        s = sample.streams[name]
        lines.append(
            f"{name:<12} {s.ipc:>6.3f} {100 * (1 - s.mlc_miss_rate):>8.1f} "
            f"{100 * s.llc_hit_rate:>8.1f} {100 * s.dca_miss_rate:>9.1f} "
            f"{s.io_throughput_lines_per_cycle:>8.4f} "
            f"{s.counters.dma_leaks:>6}"
        )
    lines.append(
        f"memory: read {sample.mem_read_bw:.4f} write {sample.mem_write_bw:.4f} "
        f"lines/cycle; PCIe wr {sample.pcie_write_lines} lines "
        f"(storage share {100 * sample.storage_io_share():.0f}%)"
    )
    return "\n".join(lines)


def monitor(
    scenario: str = "microbench",
    scheme: str = "default",
    epochs: int = 8,
    seed: int = 0xA4,
    echo: Callable[[str], None] = print,
) -> List[EpochSample]:
    """Run a scenario, printing each epoch's counters; returns the samples."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; have {sorted(SCENARIOS)}")
    server = build_server(SCENARIOS[scenario](), scheme=scheme, seed=seed)
    samples: List[EpochSample] = []
    for _ in range(epochs):
        server.sim.run_until(server.sim.now + server.epoch_cycles)
        sample = server.pcm.sample(server.sim.now)
        samples.append(sample)
        if server.manager is not None:
            server.manager.on_epoch(sample)
        echo(format_epoch(sample))
    return samples


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.pcm",
        description="PCM-style per-epoch counter monitor.",
    )
    parser.add_argument("--scenario", default="microbench", choices=sorted(SCENARIOS))
    parser.add_argument("--scheme", default="default")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0xA4)
    args = parser.parse_args(argv)
    monitor(args.scenario, args.scheme, args.epochs, args.seed)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
