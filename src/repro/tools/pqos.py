"""A pqos-style (intel-cmt-cat) front end for the simulated CAT.

Accepts the real tool's allocation syntax — ``llc:<clos>=<hexmask>`` and
core association ``llc:<clos>=<hexmask>;cpus:<clos>=<a>-<b>`` style pieces
— applies them to a scenario, runs it briefly, and shows the resulting
masks and per-stream LLC occupancy (the CMT view).

Usage::

    python -m repro.tools.pqos --show
    python -m repro.tools.pqos -e "llc:1=0x060" -a "llc:1=0-3" --epochs 4
"""

from __future__ import annotations

import argparse
from typing import List, Tuple

from repro.experiments.harness import Server
from repro.experiments.scenarios import build_server, microbenchmark_workloads
from repro.rdt.cat import ClosConfigError


def parse_mask_spec(spec: str) -> Tuple[int, List[int]]:
    """Parse ``llc:<clos>=<hexmask>`` into (clos, way list).

    The mask uses the real CAT convention: bit 0 = way 0.
    """
    try:
        prefix, value = spec.split("=", 1)
        kind, clos_text = prefix.split(":", 1)
        if kind != "llc":
            raise ValueError
        clos = int(clos_text)
        mask = int(value, 16)
    except ValueError:
        raise ClosConfigError(
            f"bad allocation spec {spec!r}; expected llc:<clos>=<hexmask>"
        ) from None
    ways = [bit for bit in range(32) if mask & (1 << bit)]
    if not ways:
        raise ClosConfigError(f"empty mask in {spec!r}")
    return clos, ways


def parse_assoc_spec(spec: str) -> Tuple[int, List[int]]:
    """Parse ``llc:<clos>=<a>-<b>`` / ``llc:<clos>=<a>,<b>,...`` core lists."""
    try:
        prefix, value = spec.split("=", 1)
        _, clos_text = prefix.split(":", 1)
        clos = int(clos_text)
    except ValueError:
        raise ClosConfigError(
            f"bad association spec {spec!r}; expected llc:<clos>=<cores>"
        ) from None
    cores: List[int] = []
    for piece in value.split(","):
        if "-" in piece:
            lo, hi = piece.split("-", 1)
            cores.extend(range(int(lo), int(hi) + 1))
        else:
            cores.append(int(piece))
    if not cores:
        raise ClosConfigError(f"no cores in {spec!r}")
    return clos, cores


def show_state(server: Server) -> str:
    """Render CLOS masks, associations, and CMT-style occupancy."""
    lines = ["CLOS masks:"]
    for clos in range(server.cat.num_clos):
        mask = server.cat.mask(clos)
        bits = sum(1 << w for w in mask)
        lines.append(f"  COS{clos}: 0x{bits:03x}  ways {mask[0]}-{mask[-1]}")
    lines.append("core associations:")
    for core, clos in sorted(server.cat.associations().items()):
        lines.append(f"  core {core}: COS{clos}")
    lines.append("LLC occupancy (lines per stream):")
    for stream, count in sorted(server.monitor.per_stream().items()):
        lines.append(f"  {stream:<12} {count}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.pqos",
        description="pqos-style CAT control over the simulated testbed.",
    )
    parser.add_argument(
        "-e", "--alloc", action="append", default=[],
        help="allocation, e.g. llc:1=0x060",
    )
    parser.add_argument(
        "-a", "--assoc", action="append", default=[],
        help="association, e.g. llc:1=0-3",
    )
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0xA4)
    parser.add_argument("--show", action="store_true", help="state only")
    args = parser.parse_args(argv)

    server = build_server(
        microbenchmark_workloads(), scheme="default", seed=args.seed
    )
    for spec in args.alloc:
        clos, ways = parse_mask_spec(spec)
        server.cat.set_mask(clos, ways)
    for spec in args.assoc:
        clos, cores = parse_assoc_spec(spec)
        for core in cores:
            server.cat.associate(core, clos)
    if not args.show:
        server.run(epochs=args.epochs, warmup=1)
    print(show_state(server))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
