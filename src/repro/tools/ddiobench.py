"""ddio-bench-style DDIO effectiveness probe.

The original tool (Farshin et al., ATC'20) measures how well DDIO serves a
NIC at different ring sizes/rates by reading the IIO counters.  This
analogue sweeps a device's in-flight footprint (ring size or block size)
and reports the consumer's DCA hit rate, the DMA-leak fraction, and where
the footprint crosses the platform's DCA capacity.

Usage::

    python -m repro.tools.ddiobench --device nic
    python -m repro.tools.ddiobench --device ssd --platform icelake-sp
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.harness import Server
from repro.platform import PlatformSpec, get_platform
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload

KB = 1024
MB = 1024 * KB


@dataclass
class ProbeResult:
    """One sweep point of the DDIO probe.

    Carries the probed platform's DCA capacity so the crossing verdict is
    self-contained (two probes on different specs can coexist in one
    process without consulting any global geometry)."""

    label: str
    footprint_lines: int
    dca_hit_rate: float
    leak_fraction: float
    consumer_latency: float
    dca_capacity_lines: int

    @property
    def exceeds_dca(self) -> bool:
        return self.footprint_lines > self.dca_capacity_lines


def probe_nic(
    ring_entries_sweep=(4, 8, 16, 32),
    packet_bytes: int = 1024,
    epochs: int = 5,
    seed: int = 0xA4,
    platform: Optional[PlatformSpec] = None,
) -> List[ProbeResult]:
    """Sweep the Rx-ring footprint, as ddio-bench does with ring sizes."""
    platform = get_platform(platform)
    results = []
    lines_per_packet = platform.packet_lines(packet_bytes)
    for entries in ring_entries_sweep:
        server = Server(cores=6, seed=seed, platform=platform)
        workload = DpdkWorkload(
            name="probe", touch=True, cores=4, packet_bytes=packet_bytes,
            ring_entries=entries,
        )
        server.add_workload(workload)
        run = server.run(epochs=epochs, warmup=1)
        agg = run.aggregate("probe")
        window = run.window
        dma = sum(s.streams["probe"].counters.dma_writes for s in window)
        results.append(
            ProbeResult(
                label=f"{entries} entries/ring",
                footprint_lines=entries * lines_per_packet * 4,
                dca_hit_rate=1.0 - agg.dca_miss_rate,
                leak_fraction=agg.dma_leaks / dma if dma else 0.0,
                consumer_latency=agg.avg_latency,
                dca_capacity_lines=platform.dca_capacity_lines,
            )
        )
    return results


def probe_ssd(
    block_sweep=(32 * KB, 128 * KB, 512 * KB, 2 * MB),
    epochs: int = 5,
    seed: int = 0xA4,
    platform: Optional[PlatformSpec] = None,
) -> List[ProbeResult]:
    """Sweep the storage block size (in-flight footprint = parallelism x
    block)."""
    platform = get_platform(platform)
    results = []
    for block_bytes in block_sweep:
        server = Server(cores=6, seed=seed, platform=platform)
        workload = FioWorkload(
            name="probe", block_bytes=block_bytes, cores=4, io_depth=32
        )
        server.add_workload(workload)
        run = server.run(epochs=epochs, warmup=1)
        agg = run.aggregate("probe")
        window = run.window
        dma = sum(s.streams["probe"].counters.dma_writes for s in window)
        results.append(
            ProbeResult(
                label=f"{block_bytes // KB}KB blocks",
                footprint_lines=workload.block_lines
                * workload.nvme_cfg.parallelism,
                dca_hit_rate=1.0 - agg.dca_miss_rate,
                leak_fraction=agg.dma_leaks / dma if dma else 0.0,
                consumer_latency=agg.avg_latency,
                dca_capacity_lines=platform.dca_capacity_lines,
            )
        )
    return results


def render(
    results: List[ProbeResult], platform: Optional[PlatformSpec] = None
) -> str:
    platform = get_platform(platform)
    lines = [
        f"DCA capacity: {platform.dca_capacity_lines} lines "
        f"({len(platform.dca_ways)} ways x {platform.llc_way_lines}) "
        f"on {platform.name}",
        f"{'config':<18} {'footprint':>10} {'DCAhit%':>8} {'leak%':>7} "
        f"{'latency':>9} {'>DCA?':>6}",
    ]
    for r in results:
        lines.append(
            f"{r.label:<18} {r.footprint_lines:>10} {100 * r.dca_hit_rate:>8.1f} "
            f"{100 * r.leak_fraction:>7.1f} {r.consumer_latency:>9.0f} "
            f"{'yes' if r.exceeds_dca else 'no':>6}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.ddiobench",
        description="Probe DDIO effectiveness vs device footprint.",
    )
    parser.add_argument("--device", choices=("nic", "ssd"), default="nic")
    parser.add_argument("--epochs", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0xA4)
    parser.add_argument(
        "--platform",
        default=None,
        help="microarchitecture preset (default: skylake-sp)",
    )
    args = parser.parse_args(argv)
    platform = get_platform(args.platform)
    probe = probe_nic if args.device == "nic" else probe_ssd
    print(
        render(
            probe(epochs=args.epochs, seed=args.seed, platform=platform),
            platform,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
