"""Operator tools: simulated analogues of the paper artifact's tooling.

* :mod:`repro.tools.pcm`       — Intel PCM-style live counter monitor;
* :mod:`repro.tools.pqos`      — intel-cmt-cat/pqos-style CAT inspection
  and allocation with `llc:<clos>=<mask>` syntax;
* :mod:`repro.tools.ddiobench` — ddio-bench-style DDIO effectiveness
  probe (DCA hit rate vs. device footprint and rate).
"""
