"""IOCA-style per-tenant LLC partitioning controller.

The competing design point from IOCA ("I/O-Aware LLC Management for
Network-Centric Multi-Tenant Platforms", PAPERS.md), reproduced as a
baseline: where A4 classifies *workloads* into priority groups and manages
way zones microarchitecturally (DCA leak/bloat, trash way, inclusive-way
avoidance), IOCA partitions the LLC *per tenant* and feeds back on each
tenant's service-level signal.

The reproduction keeps IOCA's three load-bearing ideas and none of A4's:

* **Per-tenant partitions.**  Every tenant owns one contiguous way span;
  all of the tenant's workloads (each with its own CLOS) share that span.
* **I/O awareness at placement.**  Tenants running I/O workloads are laid
  out left-most, overlapping the platform's DCA ways, so device DMA lands
  inside the owning tenant's partition instead of thrashing a neighbour —
  IOCA's answer to leaky DMA.  (It has no equivalent of A4's inclusive-way
  avoidance or trash way; that *is* the comparison.)
* **A conservative feedback FSM.**  Per epoch the controller checks each
  latency-critical tenant against its SLO (p99 latency when declared, an
  LLC hit-rate floor otherwise).  Sustained pressure — ``patience``
  consecutive bad epochs — triggers exactly one way move from the widest
  best-effort tenant to the most pressured tenant, followed by a
  ``cooldown`` during which the new partition must prove itself.  The FSM
  (:meth:`IocaManager.fsm_step`) is a pure function of its small state so
  it can be unit-tested without a server.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro import obsv
from repro.core.manager import LlcManager
from repro.platform import DEFAULT_PLATFORM, PlatformSpec
from repro.telemetry.pcm import EpochSample

STATE_MONITOR = "MONITOR"
STATE_ADJUST = "ADJUST"
STATE_COOLDOWN = "COOLDOWN"

DEFAULT_HIT_FLOOR = 0.5
"""Fallback pressure signal for latency-critical tenants without an
explicit p99 SLO: average LLC hit rate below this counts as pressure."""


class IocaManager(LlcManager):
    """Per-tenant partitioning with SLO feedback (the IOCA baseline)."""

    name = "ioca"

    def __init__(
        self,
        platform: PlatformSpec = DEFAULT_PLATFORM,
        min_ways: int = 1,
        patience: int = 2,
        cooldown: int = 3,
        hit_floor: float = DEFAULT_HIT_FLOOR,
    ):
        super().__init__()
        self.platform = platform
        self.total_ways = platform.llc_ways
        self.min_ways = min_ways
        self.patience = patience
        self.cooldown = cooldown
        self.hit_floor = hit_floor
        # FSM state (all of it — fsm_step reads/writes nothing else).
        self.state = STATE_MONITOR
        self.streak = 0
        self.cooldown_left = 0
        self.transitions: List[Tuple[str, str]] = []
        """(from_state, to_state) log, for tests and the audit trail."""
        self.adjustments = 0
        # Partition layout.
        self._order: List[str] = []
        """Tenant names, left to right across the LLC."""
        self._spans: Dict[str, int] = {}
        """Tenant name -> way count."""

    # -- placement ---------------------------------------------------------

    def on_attach(self) -> None:
        tenants = list(self.server.tenants())
        io_tenants = {
            w.tenant.name for w in self.server.workloads if w.info().is_io
        }
        # I/O tenants first so their partitions overlap the DCA ways at
        # the left edge; launch order preserved within each group.
        ordered = [t for t in tenants if t.name in io_tenants]
        ordered += [t for t in tenants if t.name not in io_tenants]
        total_cores = sum(t.core_budget for t in ordered) or 1
        shares = [
            max(
                self.min_ways,
                round(t.core_budget / total_cores * self.total_ways),
            )
            for t in ordered
        ]
        while sum(shares) > self.total_ways and max(shares) > self.min_ways:
            shares[shares.index(max(shares))] -= 1
        while sum(shares) < self.total_ways:
            shares[shares.index(min(shares))] += 1
        self._order = [t.name for t in ordered]
        self._spans = dict(zip(self._order, shares))
        self._apply_layout()

    def on_workload_change(self) -> None:
        self.on_attach()

    def _apply_layout(self) -> None:
        cursor = 0
        for tenant in self._order:
            span = self._spans[tenant]
            first = min(cursor, self.total_ways - 1)
            last = min(cursor + span - 1, self.total_ways - 1)
            for workload in self.server.tenant_workloads(tenant):
                self.set_ways(workload.name, first, last)
            cursor = last + 1
        if obsv.TRACER is not None:
            obsv.TRACER.emit(
                obsv.KIND_TENANT,
                "ioca_layout",
                {"spans": dict(self._spans), "order": list(self._order)},
            )

    # -- feedback ----------------------------------------------------------

    def fsm_step(self, pressured: bool) -> bool:
        """Advance the controller FSM one epoch; True = fire an adjustment.

        Pure in the FSM state (``state``/``streak``/``cooldown_left``):
        MONITOR accumulates a streak of pressured epochs and fires through
        a transient ADJUST once the streak reaches ``patience``; COOLDOWN
        ignores pressure for ``cooldown`` epochs so the moved way's effect
        is observed before the next move.
        """
        if self.state == STATE_COOLDOWN:
            self.cooldown_left -= 1
            if self.cooldown_left <= 0:
                self._transition(STATE_MONITOR)
            return False
        # MONITOR
        if not pressured:
            self.streak = 0
            return False
        self.streak += 1
        if self.streak < self.patience:
            return False
        self.streak = 0
        self._transition(STATE_ADJUST)
        self._transition(STATE_COOLDOWN)
        self.cooldown_left = self.cooldown
        return True

    def _transition(self, to_state: str) -> None:
        self.transitions.append((self.state, to_state))
        self.state = to_state

    def _pressure(self, sample: EpochSample) -> Dict[str, float]:
        """Pressure score per latency-critical tenant (0 = within SLO).

        With a p99 SLO: relative overshoot of the worst stream's p99.
        Without: shortfall of the tenant's average hit rate below the
        floor.  Only positive scores are returned.
        """
        scores: Dict[str, float] = {}
        groups = self.tenant_streams(sample)
        for tenant in self.server.tenants():
            if not tenant.latency_critical:
                continue
            streams = groups.get(tenant.name)
            if not streams:
                continue
            if tenant.slo_p99_latency is not None:
                worst = max(
                    (s.latency.p99 for s in streams if s.latency.count),
                    default=0.0,
                )
                if worst > tenant.slo_p99_latency:
                    scores[tenant.name] = (
                        worst / tenant.slo_p99_latency - 1.0
                    )
            else:
                hit = sum(s.llc_hit_rate for s in streams) / len(streams)
                if hit < self.hit_floor:
                    scores[tenant.name] = self.hit_floor - hit
        return scores

    def on_epoch(self, sample: EpochSample) -> None:
        self.retry_pending()
        scores = self._pressure(sample)
        if not self.fsm_step(bool(scores)):
            return
        victim = max(scores, key=scores.get)
        donor = self._donor(victim)
        if donor is None:
            return
        self._spans[donor] -= 1
        self._spans[victim] += 1
        self.adjustments += 1
        self._apply_layout()
        if obsv.TRACER is not None:
            obsv.TRACER.emit(
                obsv.KIND_TENANT,
                "ioca_adjust",
                {"to": victim, "from": donor, "score": scores[victim]},
            )

    def _donor(self, victim: str) -> Optional[str]:
        """Widest best-effort tenant still above ``min_ways`` (falling back
        to any non-victim tenant with slack when every tenant is LC)."""
        tenants = self.server.tenants()
        best_effort = {t.name for t in tenants.best_effort()}
        candidates = [
            name
            for name in self._order
            if name != victim and self._spans[name] > self.min_ways
        ]
        preferred = [n for n in candidates if n in best_effort]
        pool = preferred or candidates
        if not pool:
            return None
        return max(pool, key=lambda n: self._spans[n])

    # -- reporting ---------------------------------------------------------

    def tenant_spans(self) -> Dict[str, int]:
        return dict(self._spans)

    def robustness_stats(self) -> Dict[str, int]:
        stats = super().robustness_stats()
        stats["ioca_adjustments"] = self.adjustments
        return stats
