"""Baseline LLC-management schemes the paper compares against (§6).

* **Default** — all workloads share the whole LLC; no CAT masks are set
  and DCA stays enabled for every device.
* **Isolate** — static workload-wise isolation: each workload receives a
  contiguous block of LLC ways proportional to its core count, assigned
  left to right in launch order.  DCA stays enabled.  (Its rigidity —
  ignoring cache sensitivity and working-set size — is what Figs. 11–13
  show losing to even the Default model.)
"""

from __future__ import annotations

from repro.core.manager import LlcManager
from repro.platform import DEFAULT_PLATFORM
from repro.telemetry.pcm import EpochSample


class DefaultManager(LlcManager):
    """Share everything: the hardware default."""

    name = "default"

    def on_epoch(self, sample: EpochSample) -> None:
        """The Default model never reacts."""


class IsolateManager(LlcManager):
    """Static per-workload LLC partitions proportional to core counts."""

    name = "isolate"

    def __init__(self, ways: int = DEFAULT_PLATFORM.llc_ways):
        super().__init__()
        self.total_ways = ways

    def on_attach(self) -> None:
        workloads = self.server.workloads
        total_cores = sum(w.num_cores for w in workloads) or 1
        # Provisional proportional share, at least one way each.
        shares = [
            max(1, round(w.num_cores / total_cores * self.total_ways))
            for w in workloads
        ]
        # Trim overshoot from the largest shares, grow undershoot on the
        # smallest, so shares sum to the way count (when feasible).
        while sum(shares) > self.total_ways and max(shares) > 1:
            shares[shares.index(max(shares))] -= 1
        while sum(shares) < self.total_ways:
            shares[shares.index(min(shares))] += 1
        cursor = 0
        for workload, share in zip(workloads, shares):
            first = min(cursor, self.total_ways - 1)
            last = min(cursor + share - 1, self.total_ways - 1)
            self.set_ways(workload.name, first, last)
            cursor = last + 1 if last + 1 < self.total_ways else self.total_ways - 1

    def on_epoch(self, sample: EpochSample) -> None:
        """Static: never reallocates during execution."""

    def on_workload_change(self) -> None:
        """Launch/termination re-derives the static proportional split."""
        self.on_attach()
