"""The A4 runtime LLC-management controller (paper §5, Fig. 9).

Per monitoring epoch (the paper's 1 second), the controller:

1. **Restores** workloads whose antagonistic phase ended (§5.6);
2. **Detects** storage-driven DMA leak (§5.4: T2/T3/T4 → disable that
   device's DCA via its PCIe port register, demote the workload to LPW) and
   non-I/O antagonists (§5.5: T5 → pseudo LLC bypassing);
3. Runs the **allocation state machine**:

   * ``baseline``  — the epoch right after (re)allocation to the *initial
     partitions*; HPW LLC hit rates recorded here are the T1 reference;
   * ``expanding`` — every ``expand_interval`` epochs LP Zone grows one way
     leftward until an HPW's hit rate drops more than T1 (then one step is
     rolled back) or the leftmost extent is reached;
   * ``stable``    — monitors for phase changes (hit-rate fluctuations
     beyond T1); after ``stable_interval`` epochs it temporarily
   * ``reverting`` — re-applies the initial partitions for
     ``revert_interval`` epoch(s) to measure the *highest attainable* hit
     rate; a gap beyond T1 triggers full reallocation, otherwise the stable
     allocation is restored.

4. Advances **pseudo LLC bypassing**: each identified antagonist is squeezed
   one way per epoch from LP Zone toward the right-most standard way
   (way[8]), ceasing on >10% instability in its own metric or system memory
   bandwidth.

The controller is hardened against glitchy telemetry and flaky control
writes (see :mod:`repro.core.guard` and :mod:`repro.faults`): every epoch
sample passes a :class:`~repro.core.guard.SampleSanitizer` before the
detectors see it, failed CAT/DCA applies follow the base-class
retry/backoff contract, and an
:class:`~repro.core.guard.OscillationWatchdog` catches reallocation
flip-flop — when fluctuation-driven reallocations re-trigger faster than
any real phase change would, the FSM enters a ``degraded`` phase that pins
the safe initial partitions (an Isolate-style static layout) for a
cooldown window before re-deriving a fresh allocation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro import obsv
from repro.core import detectors
from repro.core.detectors import AntagonistState, RestoreChecker
from repro.core.guard import OscillationWatchdog, SampleSanitizer
from repro.core.manager import LlcManager
from repro.core.policy import A4Policy
from repro.core.zones import ZoneLayout
from repro.telemetry.pcm import (
    EpochSample,
    KIND_STORAGE,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    StreamSample,
)

PHASE_BASELINE = "baseline"
PHASE_EXPANDING = "expanding"
PHASE_STABLE = "stable"
PHASE_REVERTING = "reverting"
PHASE_DEGRADED = "degraded"


class A4Manager(LlcManager):
    """Share more, interfere less."""

    name = "a4"

    def __init__(self, policy: Optional[A4Policy] = None):
        super().__init__()
        self.policy = policy or A4Policy()
        self.apply_retry_limit = self.policy.apply_retry_limit
        self.apply_backoff_epochs = self.policy.apply_backoff_epochs
        self.sanitizer = SampleSanitizer()
        self.watchdog = OscillationWatchdog(
            window=self.policy.watchdog_window,
            threshold=self.policy.watchdog_reallocs,
            cooldown=self.policy.watchdog_cooldown,
        )
        self.layout: ZoneLayout = None
        self.antagonists: Dict[str, AntagonistState] = {}
        self.demoted: set = set()
        self.restore_checker = RestoreChecker(self.policy)
        self.phase = PHASE_BASELINE
        self.baseline_hits: Dict[str, float] = {}
        self.stable_hits: Dict[str, float] = {}
        self.reallocations = 0
        self.reverts = 0
        self._epochs_in_phase = 0
        self._stable_epochs = 0
        self._saved_lp_left: Optional[int] = None
        self._detect_cooldown: Dict[str, int] = {}
        """Epochs left before a just-restored workload may be re-detected —
        hysteresis against detect/restore ping-pong on borderline cases."""
        self.bloat_treated: set = set()
        """Network workloads under the §1 network-bloat extension: their CAT
        mask points at the trash ways (affecting only their MLC evictions)."""
        self.events: List[str] = []
        """Human-readable decision log (for tests and examples)."""
        self._epoch_index = -1
        """Raw index of the sample being handled (audit-trail epoch tag)."""

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------

    def _audit(
        self, action: str, reason: str, inputs: Optional[Dict[str, Any]] = None
    ) -> None:
        """Record a decision with its evidence when the audit trail is on.

        Inputs must stay JSON-round-trippable — they ride along into the
        tracer's ``decision`` events and out through the JSONL export."""
        if obsv.AUDIT is not None:
            obsv.AUDIT.record(
                action, reason, inputs=inputs, epoch=self._epoch_index
            )

    def _set_phase(self, phase: str) -> None:
        """FSM transition; emits one ``phase`` trace event per change."""
        if phase == self.phase:
            return
        if obsv.TRACER is not None:
            obsv.TRACER.emit(
                obsv.KIND_PHASE, phase, {"from": self.phase, "to": phase}
            )
        self.phase = phase

    # ------------------------------------------------------------------
    # Workload classification
    # ------------------------------------------------------------------

    def _effective_priority(self, workload) -> str:
        if workload.name in self.demoted:
            return PRIORITY_LOW
        return workload.priority

    def _hpws(self) -> List:
        return [
            w
            for w in self.server.workloads
            if self._effective_priority(w) == PRIORITY_HIGH
        ]

    def _io_hpw_present(self) -> bool:
        return any(w.kind != "non-io" for w in self._hpws())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_attach(self) -> None:
        self.layout = ZoneLayout(self.policy, self._io_hpw_present())
        self._begin_reallocation(
            "attach",
            inputs={
                "workloads": sorted(w.name for w in self.server.workloads),
                "io_hpw_present": self.layout.io_hpw_present,
            },
        )

    def on_workload_change(self) -> None:
        """§5.6 condition (1): new HPW combinations at launch/termination."""
        live = {w.name for w in self.server.workloads}
        for name in list(self.antagonists):
            if name not in live:
                del self.antagonists[name]
                self.demoted.discard(name)
        for name in list(self._pending_ways):
            if name not in live:
                self.discard_pending(name)
        self.sanitizer.prune(live)
        if self.watchdog.degraded:
            # A new workload combination voids the oscillation evidence.
            self.watchdog.reset()
            self.events.append("watchdog: degraded mode cleared (workload change)")
            self._audit(
                "degraded_exit",
                "workload change voids oscillation evidence",
                {"live_workloads": sorted(live)},
            )
        self._begin_reallocation(
            "workload launched or terminated",
            inputs={"live_workloads": sorted(live)},
        )

    def _begin_reallocation(
        self,
        reason: str,
        counted: bool = False,
        inputs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Apply the initial partitions and restart the state machine.

        ``counted`` marks fluctuation-driven reallocations (the ones the
        oscillation watchdog guards against); structural ones — attach,
        launch/termination, antagonist detection — are exempt.
        ``inputs`` is the evidence behind the decision (the telemetry
        values and thresholds the caller compared), audited alongside.
        """
        if counted and self.watchdog.note_reallocation():
            self._enter_degraded(reason, inputs)
            return
        self.reallocations += 1
        self.events.append(f"reallocate: {reason}")
        self._audit("reallocate", reason, inputs)
        self.layout.io_hpw_present = self._io_hpw_present()
        self.layout.reset_lp()
        self.baseline_hits = {}
        self.stable_hits = {}
        self._set_phase(PHASE_BASELINE)
        self._epochs_in_phase = 0
        self._stable_epochs = 0
        for state in self.antagonists.values():
            # The reallocation perturbs everyone's operating point; re-base
            # restoration references once things settle.
            state.grace_epochs = max(state.grace_epochs, 2)
        self._apply_layout()

    def _apply_layout(self) -> None:
        """Push the current zone decision into CAT masks."""
        for workload in self.server.workloads:
            state = self.antagonists.get(workload.name)
            if workload.name in self.bloat_treated:
                first, last = self.layout.trash_span(self.policy.trash_way)
            elif state is not None and self.policy.pseudo_llc_bypass:
                first, last = self.layout.trash_span(state.span_left)
            elif self._effective_priority(workload) == PRIORITY_LOW:
                first, last = self.layout.lp_span()
            elif workload.kind == "non-io":
                first, last = self.layout.non_io_hpw_span()
            else:
                first, last = self.layout.io_hpw_span()
            self.set_ways(workload.name, first, last)

    def _enter_degraded(
        self, reason: str, inputs: Optional[Dict[str, Any]] = None
    ) -> None:
        """Oscillation watchdog tripped: pin the safe static layout (the
        initial partitions, Isolate-style) for the cooldown window."""
        self._set_phase(PHASE_DEGRADED)
        self.events.append(f"watchdog: oscillation ({reason}); pin static layout")
        audit_inputs = {
            "trigger": reason,
            "reallocations_in_window": self.watchdog.reallocations_in_window,
            "watchdog": {
                "window": self.watchdog.window,
                "threshold": self.watchdog.threshold,
                "cooldown": self.watchdog.cooldown,
            },
        }
        if inputs:
            audit_inputs["trigger_inputs"] = inputs
        self._audit(
            "degraded_enter",
            "oscillation watchdog tripped; pin static layout",
            audit_inputs,
        )
        self.layout.io_hpw_present = self._io_hpw_present()
        self.layout.reset_lp()
        self.baseline_hits = {}
        self.stable_hits = {}
        self._epochs_in_phase = 0
        self._stable_epochs = 0
        self._apply_layout()

    # ------------------------------------------------------------------
    # Epoch handler
    # ------------------------------------------------------------------

    def on_epoch(self, sample: EpochSample) -> None:
        self._epoch_index = sample.index
        self.retry_pending()
        view = self.sanitizer.sanitize(
            sample, [w.name for w in self.server.workloads]
        )
        if view is None:
            return
        sample = view

        if self.watchdog.note_epoch():
            self.events.append("watchdog: cooldown complete; reallocating")
            self._audit(
                "degraded_exit",
                "watchdog cooldown complete",
                {
                    "degraded_epochs": self.watchdog.degraded_epochs,
                    "cooldown": self.watchdog.cooldown,
                },
            )
            self._begin_reallocation(
                "watchdog cooldown complete",
                inputs={"cooldown": self.watchdog.cooldown},
            )
            return
        if self.watchdog.degraded:
            return

        if self.phase == PHASE_REVERTING:
            self._finish_revert(sample)
            return

        for name in list(self._detect_cooldown):
            self._detect_cooldown[name] -= 1
            if self._detect_cooldown[name] <= 0:
                del self._detect_cooldown[name]

        triggers = []
        if self._check_restorations(sample):
            triggers.append("restoration")
        if self._check_storage_antagonists(sample):
            triggers.append("storage_antagonist")
        if self.phase != PHASE_BASELINE and self._check_cpu_antagonists(sample):
            triggers.append("cpu_antagonist")
        self._check_network_bloat(sample)
        if triggers:
            self._begin_reallocation(
                "workload set changed", inputs={"triggers": triggers}
            )
            return

        if self.phase == PHASE_BASELINE:
            self._record_baseline(sample)
            self._set_phase(PHASE_EXPANDING)
            self._epochs_in_phase = 0
            return

        self._advance_bypass(sample)

        if self.phase == PHASE_EXPANDING:
            self._expand_step(sample)
        elif self.phase == PHASE_STABLE:
            self._stable_step(sample)

    # ------------------------------------------------------------------
    # Baseline & expansion (§5.2)
    # ------------------------------------------------------------------

    def _record_baseline(self, sample: EpochSample) -> None:
        for workload in self._hpws():
            stream = sample.streams.get(workload.name)
            if stream is not None:
                self.baseline_hits[workload.name] = stream.llc_hit_rate

    def _hpw_degraded(self, sample: EpochSample) -> bool:
        for workload in self._hpws():
            stream = sample.streams.get(workload.name)
            baseline = self.baseline_hits.get(workload.name, 0.0)
            if stream is not None and detectors.hpw_hit_rate_degraded(
                self.policy, baseline, stream.llc_hit_rate
            ):
                return True
        return False

    def _expand_step(self, sample: EpochSample) -> None:
        self._epochs_in_phase += 1
        if self._epochs_in_phase % self.policy.expand_interval:
            return
        if self._hpw_degraded(sample):
            # The last expansion hurt an HPW: roll it back and settle.
            if self.layout.lp_left < self.layout.initial_lp_left:
                self.layout.contract()
                self._apply_layout()
            self._enter_stable()
            return
        if self.layout.can_expand():
            self.layout.expand()
            self.events.append(f"LP zone expands to way{self.layout.lp_span()}")
            self._apply_layout()
        else:
            self._enter_stable()

    def _enter_stable(self) -> None:
        self._set_phase(PHASE_STABLE)
        self._stable_epochs = 0
        self.events.append(f"stable at LP zone way{self.layout.lp_span()}")

    # ------------------------------------------------------------------
    # Stable phase, periodic revert (§5.6)
    # ------------------------------------------------------------------

    def _stable_step(self, sample: EpochSample) -> None:
        crossed: Dict[str, Dict[str, float]] = {}
        for workload in self._hpws():
            stream = sample.streams.get(workload.name)
            baseline = self.baseline_hits.get(workload.name, 0.0)
            if stream is None:
                continue
            prior = self.stable_hits.get(workload.name)
            smoothed = (
                stream.llc_hit_rate
                if prior is None
                else 0.5 * prior + 0.5 * stream.llc_hit_rate
            )
            self.stable_hits[workload.name] = smoothed
            if detectors.hpw_hit_rate_degraded(self.policy, baseline, smoothed):
                crossed[workload.name] = {
                    "baseline_hit_rate": baseline,
                    "smoothed_hit_rate": smoothed,
                    "raw_hit_rate": stream.llc_hit_rate,
                }
        if crossed:
            self._begin_reallocation(
                "HPW hit-rate fluctuation beyond T1",
                counted=True,
                inputs={
                    "crossed": crossed,
                    "hpw_llc_hit_thr": self.policy.hpw_llc_hit_thr,
                },
            )
            return
        self._stable_epochs += 1
        if self._stable_epochs >= self.policy.stable_interval:
            self._start_revert()

    def _start_revert(self) -> None:
        self.reverts += 1
        self._saved_lp_left = self.layout.lp_left
        self.layout.reset_lp()
        self._apply_layout()
        self._set_phase(PHASE_REVERTING)
        self._epochs_in_phase = 0
        self.events.append("revert to initial partitions")
        self._audit(
            "revert",
            "periodic revert to measure attainable hit rates",
            {
                "saved_lp_left": self._saved_lp_left,
                "stable_interval": self.policy.stable_interval,
            },
        )

    def _finish_revert(self, sample: EpochSample) -> None:
        self._epochs_in_phase += 1
        if self._epochs_in_phase < self.policy.revert_interval:
            return
        # ``sample`` was measured under the initial partitions: the highest
        # attainable hit rates at this moment.
        gaps: Dict[str, Dict[str, float]] = {}
        for workload in self._hpws():
            stream = sample.streams.get(workload.name)
            if stream is None:
                continue
            attainable = stream.llc_hit_rate
            stable = self.stable_hits.get(workload.name, attainable)
            if attainable > 0 and (
                (attainable - stable) / attainable > self.policy.hpw_llc_hit_thr
            ):
                gaps[workload.name] = {
                    "attainable_hit_rate": attainable,
                    "stable_hit_rate": stable,
                    "gap": (attainable - stable) / attainable,
                }
        if gaps:
            self._begin_reallocation(
                "uncapturable phase change found by revert",
                counted=True,
                inputs={
                    "gaps": gaps,
                    "hpw_llc_hit_thr": self.policy.hpw_llc_hit_thr,
                },
            )
            return
        self._audit(
            "revert_verdict",
            "attainable within T1 of stable; restoring stable allocation",
            {"restored_lp_left": self._saved_lp_left},
        )
        self.layout.lp_left = self._saved_lp_left
        self._apply_layout()
        self._set_phase(PHASE_STABLE)
        self._stable_epochs = 0

    # ------------------------------------------------------------------
    # Antagonist detection, bypass, restoration (§5.4–§5.6)
    # ------------------------------------------------------------------

    def _check_storage_antagonists(self, sample: EpochSample) -> bool:
        if not self.policy.selective_dca_disable:
            return False
        changed = False
        for workload in self.server.workloads:
            if (
                workload.kind != KIND_STORAGE
                or workload.name in self.antagonists
                or workload.name in self._detect_cooldown
            ):
                continue
            stream = sample.streams.get(workload.name)
            if stream is None:
                continue
            if detectors.storage_leak_detected(self.policy, sample, stream):
                self.antagonists[workload.name] = AntagonistState(
                    name=workload.name,
                    kind="storage",
                    original_priority=workload.priority,
                    detection_metric=stream.io_throughput_lines_per_cycle,
                    span_left=min(
                        self.layout.lp_span()[0], self.policy.trash_way
                    ),
                )
                self.demoted.add(workload.name)
                if workload.port_id is not None:
                    self.set_port_dca(workload.port_id, enabled=False)
                self.events.append(f"disable DCA for {workload.name} (DMA leak)")
                self._audit(
                    "detect_storage",
                    f"{workload.name}: DMA leak (T2/T3/T4); DCA off, demote",
                    {
                        "workload": workload.name,
                        "dca_miss_rate": stream.dca_miss_rate,
                        "llc_miss_rate": stream.llc_miss_rate,
                        "storage_io_share": sample.storage_io_share(),
                        "thresholds": {
                            "dmalk_dca_ms_thr": self.policy.dmalk_dca_ms_thr,
                            "dmalk_llc_ms_thr": self.policy.dmalk_llc_ms_thr,
                            "dmalk_io_tp_thr": self.policy.dmalk_io_tp_thr,
                        },
                    },
                )
                changed = True
        return changed

    def _check_cpu_antagonists(self, sample: EpochSample) -> bool:
        if not self.policy.pseudo_llc_bypass:
            return False
        changed = False
        for workload in self.server.workloads:
            if (
                workload.kind != "non-io"
                or workload.name in self.antagonists
                or workload.name in self._detect_cooldown
            ):
                continue
            stream = sample.streams.get(workload.name)
            if stream is None:
                continue
            if detectors.cpu_antagonist_detected(self.policy, stream):
                self.antagonists[workload.name] = AntagonistState(
                    name=workload.name,
                    kind="cpu",
                    original_priority=workload.priority,
                    detection_metric=stream.llc_miss_rate,
                    span_left=min(
                        self.layout.lp_span()[0], self.policy.trash_way
                    ),
                )
                self.demoted.add(workload.name)
                self.events.append(f"{workload.name} detected as non-I/O antagonist")
                self._audit(
                    "detect_cpu",
                    f"{workload.name}: non-I/O antagonist (T5); pseudo bypass",
                    {
                        "workload": workload.name,
                        "mlc_miss_rate": stream.mlc_miss_rate,
                        "llc_miss_rate": stream.llc_miss_rate,
                        "ant_cache_miss_thr": self.policy.ant_cache_miss_thr,
                    },
                )
                changed = True
        return changed

    def _advance_bypass(self, sample: EpochSample) -> None:
        if not self.policy.pseudo_llc_bypass:
            return
        membw = sample.mem_total_bw
        for state in self.antagonists.values():
            if state.settled:
                continue
            stream = sample.streams.get(state.name)
            if stream is None:
                continue
            metric = (
                stream.llc_miss_rate
                if state.kind == "cpu"
                else stream.io_throughput_lines_per_cycle
            )
            if state.last_reduction_metric is not None:
                unstable = (
                    detectors.relative_change(metric, state.last_reduction_metric)
                    > self.policy.instability_thr
                    or detectors.relative_change(membw, state.last_reduction_membw)
                    > self.policy.instability_thr
                )
                if unstable:
                    # Undo the last squeeze and freeze (§5.5 guardrail).
                    state.span_left = max(
                        self.layout.lp_span()[0], state.span_left - 1
                    )
                    state.settled = True
                    self._apply_layout()
                    self.events.append(
                        f"bypass of {state.name} halted (instability)"
                    )
                    self._audit(
                        "bypass_halt",
                        f"{state.name}: >10% instability; undo last squeeze",
                        {
                            "workload": state.name,
                            "metric": metric,
                            "last_reduction_metric": state.last_reduction_metric,
                            "mem_bw": membw,
                            "last_reduction_membw": state.last_reduction_membw,
                            "instability_thr": self.policy.instability_thr,
                            "span_left": state.span_left,
                        },
                    )
                    continue
            if state.span_left < self.policy.trash_way:
                state.span_left += 1
                state.last_reduction_metric = metric
                state.last_reduction_membw = membw
                self._apply_layout()
            else:
                state.settled = True

    def _check_network_bloat(self, sample: EpochSample) -> None:
        """§1 extension: trash-way the MLC evictions of bloating network
        workloads (no demotion, no reallocation — mask change only)."""
        if not self.policy.network_bloat_bypass:
            return
        for workload in self.server.workloads:
            if workload.kind != "network-io":
                continue
            stream = sample.streams.get(workload.name)
            if stream is None or stream.counters.dma_writes < 100:
                continue
            rate = stream.counters.dma_bloats / stream.counters.dma_writes
            if workload.name not in self.bloat_treated:
                if rate > self.policy.net_bloat_thr:
                    self.bloat_treated.add(workload.name)
                    self.events.append(
                        f"{workload.name}: network DMA bloat -> trash ways"
                    )
                    self._audit(
                        "bloat_treat",
                        f"{workload.name}: DMA bloat above threshold",
                        {
                            "workload": workload.name,
                            "bloat_rate": rate,
                            "net_bloat_thr": self.policy.net_bloat_thr,
                        },
                    )
                    self._apply_layout()
            elif rate < self.policy.net_bloat_thr / 2:
                self.bloat_treated.discard(workload.name)
                self.events.append(f"{workload.name}: bloat subsided, restored")
                self._audit(
                    "bloat_restore",
                    f"{workload.name}: bloat subsided below half threshold",
                    {
                        "workload": workload.name,
                        "bloat_rate": rate,
                        "net_bloat_thr": self.policy.net_bloat_thr,
                    },
                )
                self._apply_layout()

    def _check_restorations(self, sample: EpochSample) -> bool:
        changed = False
        for name in list(self.antagonists):
            state = self.antagonists[name]
            stream = sample.streams.get(name)
            if stream is None:
                continue
            if self.restore_checker.should_restore(state, stream):
                del self.antagonists[name]
                self.demoted.discard(name)
                self._detect_cooldown[name] = 5
                workload = self.server.workload(name)
                if state.kind == "storage" and workload.port_id is not None:
                    self.set_port_dca(workload.port_id, enabled=True)
                self.events.append(f"restore {name} (phase change ended)")
                self._audit(
                    "restore",
                    f"{name}: antagonistic phase ended; original treatment",
                    {
                        "workload": name,
                        "kind": state.kind,
                        "detection_metric": state.detection_metric,
                        "current_metric": (
                            stream.llc_miss_rate
                            if state.kind == "cpu"
                            else stream.io_throughput_lines_per_cycle
                        ),
                    },
                )
                changed = True
        return changed

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def robustness_stats(self) -> Dict[str, int]:
        stats = super().robustness_stats()
        stats.update(self.sanitizer.stats())
        stats.update(self.watchdog.stats())
        return stats
