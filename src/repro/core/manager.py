"""Interface every LLC-management scheme implements.

A manager sees exactly what the paper's daemon sees: launch-time workload
metadata, per-epoch PCM samples, CAT, and the PCIe port registers.  It never
touches the cache models directly.

The two write surfaces — :meth:`LlcManager.set_ways` and
:meth:`LlcManager.set_port_dca` — are hardened against *transient* apply
failures (a glitched ``pqos`` run, a config-space write that did not stick;
injected by :mod:`repro.faults`): a failed write is retried up to
``apply_retry_limit`` times in place, then parked and re-attempted each
epoch with doubling backoff via :meth:`retry_pending`.  Permanent errors
(an actually invalid mask) are caller bugs and propagate unchanged.  On a
failed write the previously committed state stays active, so the hardware
invariant — every CLOS mask valid at all times — holds regardless.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, List, Optional

from repro import obsv
from repro.rdt.cat import TransientClosError
from repro.telemetry.pcm import EpochSample
from repro.uncore.pcie import TransientPortError

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import Server

TRANSIENT_APPLY_ERRORS = (TransientClosError, TransientPortError)

_MAX_BACKOFF_EPOCHS = 8


class LlcManager(abc.ABC):
    """Base class for Default / Isolate / A4 managers."""

    name = "manager"

    apply_retry_limit = 3
    """Immediate retries for a transiently failed apply (A4 overrides
    this from its policy)."""
    apply_backoff_epochs = 1
    """Initial deferred-retry interval (doubles per failure, capped)."""

    def __init__(self) -> None:
        self.server: "Server" = None
        self.apply_retries = 0
        """Transient failures recovered by an immediate retry."""
        self.apply_deferred = 0
        """Applies that exhausted immediate retries and were parked."""
        self.apply_recovered = 0
        """Parked applies that later committed via :meth:`retry_pending`."""
        self._pending_ways: Dict[str, List[int]] = {}
        """name -> [first, last, epochs_until_retry, current_interval]"""
        self._pending_dca: Dict[int, List[int]] = {}
        """port_id -> [enabled, epochs_until_retry, current_interval]"""

    def _trace_control(self, name: str, **data) -> None:
        """Control-plane incident (parked / recovered apply) trace event."""
        if obsv.TRACER is not None:
            obsv.TRACER.emit(obsv.KIND_CONTROL, name, data)

    def attach(self, server: "Server") -> None:
        """Bind to a server after all workloads are added; apply the initial
        allocation."""
        self.server = server
        self.on_attach()

    def on_attach(self) -> None:
        """Set the initial CAT masks / DCA state.  Default: no-op."""

    def on_workload_change(self) -> None:
        """A workload was launched or terminated (paper Fig. 9, step 1).
        Default: no reaction (the Default model); overridden by schemes
        that must re-derive their allocation."""

    @abc.abstractmethod
    def on_epoch(self, sample: EpochSample) -> None:
        """React to one monitoring interval's counters."""

    # -- convenience accessors (the daemon's 'system call' surface) -------

    @staticmethod
    def tenant_streams(sample: EpochSample) -> Dict[str, List]:
        """Group one epoch's stream samples by owning tenant.

        Streams registered pre-tenancy (empty ``info.tenant``) land under
        ``""``; managers that never look at tenants pay nothing."""
        groups: Dict[str, List] = {}
        for stream in sample.streams.values():
            groups.setdefault(stream.info.tenant, []).append(stream)
        return groups

    def set_ways(self, workload_name: str, first: int, last: int) -> bool:
        """Point the workload's CLOS at way[first:last] (paper notation).

        Returns True when the write was accepted (committed, or accepted
        for a delayed commit); False when every immediate retry failed
        transiently and the apply was parked for :meth:`retry_pending`.
        """
        server = self.server
        clos = server.clos_of(workload_name)
        ways = range(first, last + 1)
        for attempt in range(1 + self.apply_retry_limit):
            try:
                server.cat.set_mask(clos, ways)
            except TransientClosError:
                continue
            if attempt:
                self.apply_retries += attempt
            self._pending_ways.pop(workload_name, None)
            return True
        self.apply_deferred += 1
        interval = self.apply_backoff_epochs
        self._pending_ways[workload_name] = [first, last, interval, interval]
        self._trace_control(
            "ways_parked", workload=workload_name, first=first, last=last
        )
        return False

    def ways_of(self, workload_name: str):
        server = self.server
        return server.cat.mask(server.clos_of(workload_name))

    def set_port_dca(self, port_id: int, enabled: bool) -> bool:
        """Steer the port's inbound writes (DCA on/off), with the same
        retry/backoff contract as :meth:`set_ways`."""
        port = self.server.pcie.port(port_id)
        for attempt in range(1 + self.apply_retry_limit):
            try:
                if enabled:
                    port.enable_dca()
                else:
                    port.disable_dca()
            except TransientPortError:
                continue
            if attempt:
                self.apply_retries += attempt
            self._pending_dca.pop(port_id, None)
            return True
        self.apply_deferred += 1
        interval = self.apply_backoff_epochs
        self._pending_dca[port_id] = [int(enabled), interval, interval]
        self._trace_control("dca_parked", port=port_id, enabled=enabled)
        return False

    # -- deferred-apply bookkeeping ---------------------------------------

    @property
    def pending_applies(self) -> int:
        """Writes parked after exhausting their immediate retries."""
        return len(self._pending_ways) + len(self._pending_dca)

    def retry_pending(self) -> None:
        """One epoch tick of the deferred-apply queue: attempt every entry
        whose backoff expired; double the interval on another transient
        failure.  Managers that react per epoch call this first."""
        for name, entry in list(self._pending_ways.items()):
            first, last, wait, interval = entry
            if wait > 1:
                entry[2] = wait - 1
                continue
            try:
                self.server.cat.set_mask(
                    self.server.clos_of(name), range(first, last + 1)
                )
            except TransientClosError:
                entry[2] = entry[3] = min(interval * 2, _MAX_BACKOFF_EPOCHS)
                continue
            del self._pending_ways[name]
            self.apply_recovered += 1
            self._trace_control(
                "ways_recovered", workload=name, first=first, last=last
            )
        for port_id, entry in list(self._pending_dca.items()):
            enabled, wait, interval = entry
            if wait > 1:
                entry[1] = wait - 1
                continue
            port = self.server.pcie.port(port_id)
            try:
                if enabled:
                    port.enable_dca()
                else:
                    port.disable_dca()
            except TransientPortError:
                entry[1] = entry[2] = min(interval * 2, _MAX_BACKOFF_EPOCHS)
                continue
            del self._pending_dca[port_id]
            self.apply_recovered += 1
            self._trace_control(
                "dca_recovered", port=port_id, enabled=bool(enabled)
            )

    def discard_pending(self, workload_name: Optional[str] = None) -> None:
        """Drop parked way-applies (all, or one workload's) — used when a
        newer layout supersedes them or the workload terminated."""
        if workload_name is None:
            self._pending_ways.clear()
        else:
            self._pending_ways.pop(workload_name, None)

    def robustness_stats(self) -> Dict[str, int]:
        """Hardening counters, for run reports and figures."""
        return {
            "apply_retries": self.apply_retries,
            "apply_deferred": self.apply_deferred,
            "apply_recovered": self.apply_recovered,
            "pending_applies": self.pending_applies,
        }
