"""Interface every LLC-management scheme implements.

A manager sees exactly what the paper's daemon sees: launch-time workload
metadata, per-epoch PCM samples, CAT, and the PCIe port registers.  It never
touches the cache models directly.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.telemetry.pcm import EpochSample

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import Server


class LlcManager(abc.ABC):
    """Base class for Default / Isolate / A4 managers."""

    name = "manager"

    def __init__(self) -> None:
        self.server: "Server" = None

    def attach(self, server: "Server") -> None:
        """Bind to a server after all workloads are added; apply the initial
        allocation."""
        self.server = server
        self.on_attach()

    def on_attach(self) -> None:
        """Set the initial CAT masks / DCA state.  Default: no-op."""

    def on_workload_change(self) -> None:
        """A workload was launched or terminated (paper Fig. 9, step 1).
        Default: no reaction (the Default model); overridden by schemes
        that must re-derive their allocation."""

    @abc.abstractmethod
    def on_epoch(self, sample: EpochSample) -> None:
        """React to one monitoring interval's counters."""

    # -- convenience accessors (the daemon's 'system call' surface) -------

    def set_ways(self, workload_name: str, first: int, last: int) -> None:
        """Point the workload's CLOS at way[first:last] (paper notation)."""
        server = self.server
        clos = server.clos_of(workload_name)
        server.cat.set_mask(clos, range(first, last + 1))

    def ways_of(self, workload_name: str):
        server = self.server
        return server.cat.mask(server.clos_of(workload_name))

    def set_port_dca(self, port_id: int, enabled: bool) -> None:
        port = self.server.pcie.port(port_id)
        if enabled:
            port.enable_dca()
        else:
            port.disable_dca()
