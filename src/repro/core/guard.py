"""Controller hardening: sample sanitization and the oscillation watchdog.

The A4 daemon on real hardware reads PCM counters that occasionally glitch
and drives ``pqos``/MSR writes that occasionally fail; this module holds the
defensive machinery the controller wraps around those surfaces.  Everything
here is *structurally* conservative: on clean telemetry the sanitizer
returns the sample object unchanged and the watchdog never fires, so runs
without faults are bit-identical to an unhardened controller.

* :class:`SampleSanitizer` — validates the per-epoch telemetry view,
  holding over the last good reading for streams that are missing or
  structurally invalid (negative/non-finite counters, rates outside
  [0, 1]) and rejecting epochs whose cycle count is unusable.  It never
  second-guesses *plausible* values — a genuine phase change must reach
  the detectors.
* :class:`OscillationWatchdog` — detects reallocation flip-flop (the
  EXPAND/REVERT loop re-triggering every few epochs on noisy hit rates)
  and pins a safe static layout for a cooldown window, counting
  time-in-degraded-mode for telemetry.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import replace
from typing import Deque, Dict, Iterable, Optional

from repro.telemetry.counters import StreamCounters
from repro.telemetry.latency import LatencyStats
from repro.telemetry.pcm import EpochSample, StreamInfo, StreamSample

_RATE_PROPS = ("llc_hit_rate", "llc_miss_rate", "mlc_miss_rate", "dca_miss_rate")
_NONNEGATIVE = (
    "mlc_hits",
    "mlc_misses",
    "llc_hits",
    "llc_misses",
    "io_reads",
    "io_read_misses",
    "dma_writes",
    "mem_reads",
    "mem_writes",
    "instructions",
    "io_bytes_completed",
)


def stream_reading_valid(stream: StreamSample) -> bool:
    """Structural validity of one per-stream reading.

    Counters must be non-negative and every derived rate finite and in
    [0, 1].  Values that are merely *surprising* pass — surprise is the
    detectors' job, not the sanitizer's.
    """
    counters = stream.counters
    for name in _NONNEGATIVE:
        if getattr(counters, name) < 0:
            return False
    for name in _RATE_PROPS:
        rate = getattr(counters, name)
        if not math.isfinite(rate) or rate < 0.0 or rate > 1.0:
            return False
    return True


class SampleSanitizer:
    """Last-good holdover + structural clamping for the controller's
    telemetry view.  Stateful: remembers the newest valid reading per
    stream across epochs."""

    def __init__(self) -> None:
        self._last_good: Dict[str, StreamSample] = {}
        self.held_over = 0
        """Readings replaced by the last good value (missing or invalid)."""
        self.zeroed = 0
        """Invalid readings neutralized to idle (no good value yet)."""
        self.skipped_epochs = 0
        """Whole epochs rejected (unusable cycle count)."""

    def sanitize(
        self, sample: EpochSample, expected: Iterable[str]
    ) -> Optional[EpochSample]:
        """Return a safe view of ``sample`` or ``None`` when the whole
        epoch must be skipped.  On fully clean input this returns the
        *same object* — the clean path allocates nothing."""
        if not math.isfinite(sample.epoch_cycles) or sample.epoch_cycles <= 0:
            self.skipped_epochs += 1
            return None
        patched: Optional[Dict[str, StreamSample]] = None
        for name in expected:
            stream = sample.streams.get(name)
            if stream is not None and stream_reading_valid(stream):
                self._last_good[name] = stream
                continue
            if patched is None:
                patched = dict(sample.streams)
            held = self._last_good.get(name)
            if held is not None:
                self.held_over += 1
                patched[name] = held
            elif stream is not None:
                # Invalid and nothing to hold over: neutralize to idle so
                # the detectors ignore it rather than divide by garbage.
                self.zeroed += 1
                patched[name] = _idle_like(stream)
            else:
                # Missing with no history: leave absent; every consumer
                # already tolerates an absent stream.
                self.held_over += 1
        if patched is None:
            return sample
        return replace(sample, streams=patched)

    def forget(self, name: str) -> None:
        """Drop holdover state for a terminated workload."""
        self._last_good.pop(name, None)

    def prune(self, live: Iterable[str]) -> None:
        """Drop holdover state for every stream not in ``live``."""
        keep = set(live)
        for name in list(self._last_good):
            if name not in keep:
                del self._last_good[name]

    def stats(self) -> Dict[str, int]:
        return {
            "held_over": self.held_over,
            "zeroed": self.zeroed,
            "skipped_epochs": self.skipped_epochs,
        }


def _idle_like(stream: StreamSample) -> StreamSample:
    """An all-zero reading with the stream's identity (safe neutral)."""
    return StreamSample(
        name=stream.name,
        info=stream.info,
        counters=StreamCounters(),
        latency=LatencyStats(),
        epoch_cycles=stream.epoch_cycles,
    )


class OscillationWatchdog:
    """Detects reallocation flip-flop and enforces a degraded cooldown.

    The FSM's legitimate reallocations are rare: a phase change re-baselines
    once and the system settles.  Under corrupted telemetry the
    EXPAND→STABLE→REVERT loop can re-trigger every few epochs, thrashing
    CAT masks (each reallocation perturbs every workload).  The watchdog
    counts *fluctuation-driven* reallocations inside a sliding epoch
    window; past the threshold it reports oscillation and the controller
    pins its safe static layout for ``cooldown`` epochs.
    """

    def __init__(self, window: int = 12, threshold: int = 4, cooldown: int = 10):
        if window < 1 or threshold < 2 or cooldown < 1:
            raise ValueError("watchdog parameters out of range")
        self.window = window
        self.threshold = threshold
        self.cooldown = cooldown
        self.degraded = False
        self.degraded_entries = 0
        self.degraded_epochs = 0
        self._epoch = 0
        self._cooldown_left = 0
        self._history: Deque[int] = deque()

    def note_epoch(self) -> bool:
        """Advance one epoch.  Returns True when a degraded cooldown just
        expired (the controller should re-derive a fresh allocation)."""
        self._epoch += 1
        if not self.degraded:
            return False
        self.degraded_epochs += 1
        self._cooldown_left -= 1
        if self._cooldown_left > 0:
            return False
        self.degraded = False
        self._history.clear()
        return True

    def note_reallocation(self) -> bool:
        """Record one fluctuation-driven reallocation.  Returns True when
        this one trips the oscillation threshold (and enters degraded
        mode); the caller should pin its safe layout instead of
        reallocating yet again."""
        if self.degraded:
            return True
        self._history.append(self._epoch)
        floor = self._epoch - self.window
        while self._history and self._history[0] <= floor:
            self._history.popleft()
        if len(self._history) < self.threshold:
            return False
        self.degraded = True
        self.degraded_entries += 1
        self._cooldown_left = self.cooldown
        return True

    def reset(self) -> None:
        """A structural change (workload launched/terminated) voids the
        oscillation evidence: clear history and leave degraded mode."""
        self.degraded = False
        self._cooldown_left = 0
        self._history.clear()

    @property
    def reallocations_in_window(self) -> int:
        """Fluctuation-driven reallocations currently inside the sliding
        window (the evidence behind a degraded-mode entry)."""
        return len(self._history)

    def stats(self) -> Dict[str, int]:
        return {
            "degraded": int(self.degraded),
            "degraded_entries": self.degraded_entries,
            "degraded_epochs": self.degraded_epochs,
        }
