"""The paper's contribution: the A4 LLC-management framework.

* :mod:`repro.core.policy` — thresholds T1–T5 and timing parameters
  (paper Table 1 + §5.7);
* :mod:`repro.core.zones` — HP/LP/DCA zone bookkeeping over CAT masks;
* :mod:`repro.core.detectors` — DMA-leak, antagonist, and phase detectors;
* :mod:`repro.core.a4` — the runtime controller (Fig. 9 execution flow);
* :mod:`repro.core.baselines` — the Default and Isolate comparison models;
* :mod:`repro.core.variants` — the staged A4-a/b/c/d variants of §7.2.
"""

from repro.core.manager import LlcManager
from repro.core.policy import A4Policy
from repro.core.baselines import DefaultManager, IsolateManager
from repro.core.a4 import A4Manager
from repro.core.variants import make_manager, A4_VARIANTS

__all__ = [
    "LlcManager",
    "A4Policy",
    "DefaultManager",
    "IsolateManager",
    "A4Manager",
    "make_manager",
    "A4_VARIANTS",
]
