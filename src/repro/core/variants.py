"""The staged A4 variants evaluated in §7.2 plus a manager factory.

The paper applies its techniques to the Default model one by one
(Fig. 10a–d):

* **A4-a** — priority-based LLC allocation only (§5.2);
* **A4-b** — + safeguarding I/O buffers: DCA Zone reserved for I/O HPWs,
  LP Zone kept out of the inclusive ways (§5.3);
* **A4-c** — + selectively disabling DCA for leak-causing storage devices
  (§5.4);
* **A4-d** — + pseudo LLC bypassing of antagonists via trash ways (§5.5)
  — this is full A4.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.a4 import A4Manager
from repro.core.baselines import DefaultManager, IsolateManager
from repro.core.ioca import IocaManager
from repro.core.manager import LlcManager
from repro.core.policy import A4Policy
from repro.platform import DEFAULT_PLATFORM, PlatformSpec


def a4_variant(stage: str, policy: Optional[A4Policy] = None) -> A4Manager:
    """Build A4 limited to the techniques of ``stage`` ('a'..'d')."""
    if stage not in "abcd" or len(stage) != 1:
        raise ValueError(f"stage must be one of a/b/c/d, got {stage!r}")
    base = policy or A4Policy()
    flags = {
        "a": dict(
            safeguard_io_buffers=False,
            selective_dca_disable=False,
            pseudo_llc_bypass=False,
        ),
        "b": dict(
            safeguard_io_buffers=True,
            selective_dca_disable=False,
            pseudo_llc_bypass=False,
        ),
        "c": dict(
            safeguard_io_buffers=True,
            selective_dca_disable=True,
            pseudo_llc_bypass=False,
        ),
        "d": dict(
            safeguard_io_buffers=True,
            selective_dca_disable=True,
            pseudo_llc_bypass=True,
        ),
    }[stage]
    manager = A4Manager(replace(base, **flags))
    manager.name = f"a4-{stage}"
    return manager


A4_VARIANTS = ("a4-a", "a4-b", "a4-c", "a4-d")

SCHEMES = ("default", "isolate") + A4_VARIANTS + ("a4", "ioca")


def make_manager(
    scheme: str,
    policy: Optional[A4Policy] = None,
    platform: PlatformSpec = DEFAULT_PLATFORM,
) -> LlcManager:
    """Factory used throughout the experiment harness and benches.

    An explicit ``policy`` is used verbatim (its way layout is the caller's
    responsibility); otherwise the default thresholds are anchored to
    ``platform``'s way layout.
    """
    if scheme == "default":
        return DefaultManager()
    if scheme == "isolate":
        return IsolateManager(ways=platform.llc_ways)
    if scheme == "ioca":
        return IocaManager(platform=platform)
    if scheme == "a4":
        return A4Manager(policy or A4Policy.for_platform(platform))
    if scheme.startswith("a4-"):
        return a4_variant(scheme[3:], policy or A4Policy.for_platform(platform))
    raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
