"""LLC zone bookkeeping for A4 (paper Fig. 10).

A :class:`ZoneLayout` translates A4's logical state — does an I/O HPW exist
(so DCA Zone is reserved and LP Zone must shun the inclusive ways), how far
has LP Zone expanded, how far has each antagonist been squeezed toward the
trash way — into the concrete way[m:n] span for every workload class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro import obsv
from repro.core.policy import A4Policy

Span = Tuple[int, int]
"""Inclusive (first_way, last_way), the paper's way[m:n] notation."""


@dataclass
class ZoneLayout:
    """The current partitioning decision."""

    policy: A4Policy
    io_hpw_present: bool = False
    lp_left: int = 0
    """Left edge of LP Zone (it expands leftward, Fig. 10a red arrow)."""

    def __post_init__(self) -> None:
        self.lp_left = self.initial_lp_left

    # -- derived geometry ---------------------------------------------------

    @property
    def safeguarding(self) -> bool:
        """DCA Zone reserved + inclusive ways off-limits for LP Zone: active
        once I/O HPWs run and the A4-b feature is on (§5.3)."""
        return self.policy.safeguard_io_buffers and self.io_hpw_present

    @property
    def lp_right(self) -> int:
        """LP Zone's right edge: the last way overall, unless safeguarding
        keeps LPWs out of the inclusive ways."""
        if self.safeguarding:
            return self.policy.inclusive_first_way - 1
        return self.policy.total_ways - 1

    @property
    def initial_lp_left(self) -> int:
        """Initial partition: a two-way LP Zone at its right edge."""
        return self.lp_right - 1

    @property
    def min_lp_left(self) -> int:
        return self.policy.min_lp_left

    def reset_lp(self) -> None:
        if self.lp_left != self.initial_lp_left:
            self.lp_left = self.initial_lp_left
            self._trace("reset")

    def can_expand(self) -> bool:
        return self.lp_left > self.min_lp_left

    def expand(self) -> None:
        """Grow LP Zone one way leftward (checked by the caller against T1)."""
        if not self.can_expand():
            raise RuntimeError("LP Zone already at its leftmost extent")
        self.lp_left -= 1
        self._trace("expand")

    def contract(self) -> None:
        """Undo one expansion step."""
        if self.lp_left >= self.initial_lp_left:
            raise RuntimeError("LP Zone already at its initial extent")
        self.lp_left += 1
        self._trace("contract")

    def _trace(self, change: str) -> None:
        if obsv.TRACER is not None:
            first, last = self.lp_span()
            obsv.TRACER.emit(
                obsv.KIND_ZONE,
                change,
                {"lp_first": first, "lp_last": last},
            )

    # -- per-class spans ---------------------------------------------------

    def io_hpw_span(self) -> Span:
        """I/O HPWs are never explicitly constrained: the full LLC,
        including the DCA Zone reserved for their buffers."""
        return (0, self.policy.total_ways - 1)

    def non_io_hpw_span(self) -> Span:
        """Non-I/O HPWs get everything except the DCA Zone when I/O HPWs
        are being safeguarded (the §5.5/§1-extension latent-contention fix);
        otherwise the full LLC."""
        if self.safeguarding:
            return (self.policy.dca_last_way + 1, self.policy.total_ways - 1)
        return (0, self.policy.total_ways - 1)

    def lp_span(self, initial: bool = False) -> Span:
        left = self.initial_lp_left if initial else self.lp_left
        return (left, self.lp_right)

    def trash_span(self, left: int) -> Span:
        """An antagonist squeezed to way[left : trash_way] (§5.5)."""
        trash = self.policy.trash_way
        return (min(left, trash), trash)
