"""A4's runtime detectors (paper §5.4–§5.6).

All detectors consume only :class:`~repro.telemetry.pcm.EpochSample` data —
the same per-interval counter rates the real daemon reads from Intel PCM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.policy import A4Policy
from repro.telemetry.pcm import EpochSample, StreamSample

MIN_LLC_ACCESSES = 50
"""Below this many LLC accesses in an epoch, rates are noise; detectors
treat the stream as idle rather than classify it."""


def relative_change(now: float, reference: float) -> float:
    """|now - reference| relative to the reference (0 when both idle)."""
    if reference == 0.0:
        return 0.0 if now == 0.0 else 1.0
    return abs(now - reference) / abs(reference)


def storage_leak_detected(
    policy: A4Policy, sample: EpochSample, stream: StreamSample
) -> bool:
    """§5.4: storage I/O is causing DMA leak and gaining nothing from DCA.

    Requires all three signals:
    (1) frequent eviction of I/O lines before consumption — DCA miss rate
        above ``DMALK_DCA_MS_THR``;
    (2) significant DMA leak — the workload's LLC miss rate above
        ``DMALK_LLC_MS_THR``;
    (3) storage dominating inbound DMA — storage share of PCIe write
        throughput above ``DMALK_IO_TP_THR``.
    """
    if stream.counters.io_reads < MIN_LLC_ACCESSES:
        return False
    return (
        stream.dca_miss_rate > policy.dmalk_dca_ms_thr
        and stream.llc_miss_rate > policy.dmalk_llc_ms_thr
        and sample.storage_io_share() > policy.dmalk_io_tp_thr
    )


def cpu_antagonist_detected(policy: A4Policy, stream: StreamSample) -> bool:
    """§5.5: a non-I/O workload whose MLC *and* LLC miss rates both exceed
    ``ANT_CACHE_MISS_THR`` derives minimal benefit from LLC caching."""
    if stream.counters.llc_accesses < MIN_LLC_ACCESSES:
        return False
    return (
        stream.mlc_miss_rate > policy.ant_cache_miss_thr
        and stream.llc_miss_rate > policy.ant_cache_miss_thr
    )


def hpw_hit_rate_degraded(
    policy: A4Policy, baseline_hit_rate: float, current_hit_rate: float
) -> bool:
    """T1 check: the HPW's LLC hit rate fell more than ``HPW_LLC_HIT_THR``
    relative to the recorded baseline."""
    if baseline_hit_rate <= 0.0:
        return False
    drop = (baseline_hit_rate - current_hit_rate) / baseline_hit_rate
    return drop > policy.hpw_llc_hit_thr


def hpw_phase_changed(
    policy: A4Policy, baseline_hit_rate: float, current_hit_rate: float
) -> bool:
    """§5.6 condition (2)/(3): hit rate *fluctuates* beyond T1 in either
    direction relative to the recorded reference."""
    return relative_change(current_hit_rate, baseline_hit_rate) > policy.hpw_llc_hit_thr


@dataclass
class AntagonistState:
    """Book-keeping for one workload under antagonist treatment."""

    name: str
    kind: str
    """'storage' (DCA-disabled, §5.4) or 'cpu' (pseudo bypass only, §5.5)."""
    original_priority: str
    detection_metric: float
    """LLC miss rate (cpu) or I/O throughput (storage) at detection time,
    the reference for §5.6 restoration."""
    span_left: int
    """Current left way of its squeezed allocation."""
    settled: bool = False
    """True once reduction stopped (reached the trash way or instability)."""
    last_reduction_metric: Optional[float] = None
    last_reduction_membw: Optional[float] = None
    grace_epochs: int = 3
    """Epochs to wait after the treatment changed the workload's own
    operating point before §5.6 restoration checks use the reference —
    when it expires the reference is re-based on the settled behaviour,
    preventing detect/restore flapping on the treatment transient."""


class RestoreChecker:
    """§5.6 'Re-assigning priorities': detect the end of antagonistic
    behaviour and hand the workload back its original treatment."""

    def __init__(self, policy: A4Policy):
        self.policy = policy

    def should_restore(self, state: AntagonistState, stream: StreamSample) -> bool:
        if state.grace_epochs > 0:
            state.grace_epochs -= 1
            if state.grace_epochs == 0 and state.kind == "storage":
                state.detection_metric = stream.io_throughput_lines_per_cycle
            return False
        if state.kind == "cpu":
            if stream.counters.llc_accesses < MIN_LLC_ACCESSES:
                # The workload went idle: the antagonistic phase is over
                # (e.g. a scanning daemon between bursts) — hand back its
                # original treatment; the detector will re-engage if the
                # next phase is antagonistic again.
                return True
            # The streaming phase ended: misses dropped clearly below T5.
            return (
                stream.mlc_miss_rate < self.policy.ant_cache_miss_thr * 0.95
                or stream.llc_miss_rate < self.policy.ant_cache_miss_thr * 0.95
            )
        # Storage: a significant throughput swing marks a phase change.
        return (
            relative_change(
                stream.io_throughput_lines_per_cycle, state.detection_metric
            )
            > self.policy.storage_restore_thr
        )
