"""A4 configuration: thresholds T1–T5 and timing parameters (Table 1, §5.7).

The threshold *names* follow the paper; note Table 1 and §5.7 disagree on
whether T3 is the I/O-throughput share or the LLC miss rate — we therefore
expose semantic names and document the paper values:

* T1 ``HPW_LLC_HIT_THR``  = 20% — tolerated relative drop in an HPW's LLC
  hit rate before LP Zone expansion stops / reallocation triggers;
* T2 ``DMALK_DCA_MS_THR`` = 40% — DCA miss rate marking frequent eviction
  of I/O lines before consumption;
* T3 ``DMALK_IO_TP_THR``  = 35% — storage share of PCIe write throughput
  attributing the leak to storage;
* T4 ``DMALK_LLC_MS_THR`` = 40% — LLC miss rate of the storage workload
  confirming significant DMA leak;
* T5 ``ANT_CACHE_MISS_THR`` = 90% — MLC *and* LLC miss rates above which a
  non-I/O workload is presumed to gain nothing from the LLC.

Feature flags map to the staged variants evaluated in §7.2: A4-a (priority
zones only) → A4-b (+ I/O-buffer safeguarding) → A4-c (+ selective DCA
disabling) → A4-d (+ pseudo LLC bypassing) = full A4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.platform import DEFAULT_PLATFORM, PlatformSpec


@dataclass
class A4Policy:
    """Tunable thresholds, timing, and feature flags of the A4 daemon."""

    # -- thresholds (Table 1) -------------------------------------------
    hpw_llc_hit_thr: float = 0.20
    dmalk_dca_ms_thr: float = 0.40
    dmalk_io_tp_thr: float = 0.35
    dmalk_llc_ms_thr: float = 0.40
    ant_cache_miss_thr: float = 0.90

    # -- timing (in monitoring epochs; 1 epoch = the paper's 1 second) ---
    expand_interval: int = 2
    stable_interval: int = 10
    revert_interval: int = 1

    # -- pseudo-bypass guardrails (§5.5) ---------------------------------
    instability_thr: float = 0.10
    """Relative fluctuation that halts trash-way reduction."""
    storage_restore_thr: float = 0.40
    """Relative storage-throughput swing that signals a phase change and
    restores the workload's original QoS + DCA (§5.6)."""

    # -- way-layout constants --------------------------------------------
    total_ways: int = DEFAULT_PLATFORM.llc_ways
    dca_last_way: int = DEFAULT_PLATFORM.dca_ways[-1]
    inclusive_first_way: int = DEFAULT_PLATFORM.inclusive_ways[0]

    # -- feature flags (variants A4-a..d) ---------------------------------
    safeguard_io_buffers: bool = True
    selective_dca_disable: bool = True
    pseudo_llc_bypass: bool = True

    # -- robustness hardening (fault tolerance; see core/guard.py) --------
    apply_retry_limit: int = 3
    """Immediate same-epoch retries for a transiently failed CAT/DCA
    write before it is deferred to the per-epoch backoff path."""
    apply_backoff_epochs: int = 1
    """Initial epochs between deferred retry attempts (doubles per
    failure, capped at 8)."""
    watchdog_window: int = 12
    """Sliding window (epochs) over which reallocation flip-flop is
    counted."""
    watchdog_reallocs: int = 4
    """Fluctuation-driven reallocations within the window that trip the
    oscillation watchdog."""
    watchdog_cooldown: int = 10
    """Epochs the watchdog pins the safe static layout once tripped."""

    # -- §1 extension: network DMA-bloat treatment -------------------------
    network_bloat_bypass: bool = False
    """Opt-in extension: when a network-I/O workload DMA-bloats heavily,
    point its CAT mask at the trash ways.  Because CAT only affects *new
    allocations* (its MLC evictions), the workload keeps using the DCA and
    inclusive ways for fresh packets while its consumed packets stop
    polluting the standard ways."""
    net_bloat_thr: float = 0.20
    """Bloated lines per inbound DMA write above which the extension
    engages (and half of which releases it)."""

    def __post_init__(self) -> None:
        for name in (
            "hpw_llc_hit_thr",
            "dmalk_dca_ms_thr",
            "dmalk_io_tp_thr",
            "dmalk_llc_ms_thr",
            "ant_cache_miss_thr",
            "instability_thr",
        ):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ValueError(f"{name} must be within (0, 1], got {value}")
        if self.expand_interval < 1 or self.stable_interval < 1:
            raise ValueError("timing intervals must be >= 1 epoch")
        if self.apply_retry_limit < 0 or self.apply_backoff_epochs < 1:
            raise ValueError("apply retry/backoff parameters out of range")
        if (
            self.watchdog_window < 1
            or self.watchdog_reallocs < 2
            or self.watchdog_cooldown < 1
        ):
            raise ValueError("watchdog parameters out of range")

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **overrides) -> "A4Policy":
        """A policy whose way-layout constants match ``platform``; every
        threshold/flag remains overridable."""
        return cls(
            total_ways=platform.llc_ways,
            dca_last_way=platform.dca_ways[-1],
            inclusive_first_way=platform.inclusive_ways[0],
            **overrides,
        )

    def on_platform(self, platform: PlatformSpec) -> "A4Policy":
        """This policy's thresholds re-anchored to ``platform``'s layout."""
        return replace(
            self,
            total_ways=platform.llc_ways,
            dca_last_way=platform.dca_ways[-1],
            inclusive_first_way=platform.inclusive_ways[0],
        )

    @property
    def trash_way(self) -> int:
        """The right-most standard way (way[8] on the paper's CPU)."""
        return self.inclusive_first_way - 1

    @property
    def min_lp_left(self) -> int:
        """LP Zone may expand leftward at most to the first standard way."""
        return self.dca_last_way + 1
