"""First-class tenancy: who owns each workload, and what they were promised.

The paper evaluates A4 against fixed HPW/LPW co-runs, so historically a
"tenant" existed only as the binary ``PRIORITY_HIGH``/``PRIORITY_LOW``
string on each workload.  Production co-location needs more: per-tenant
core budgets, per-tenant CLOS mask policies, and per-tenant SLOs (p99
latency, minimum throughput) that reports and controllers can check.

:class:`TenantSpec` is the frozen, validated identity of one tenant —
the same move :class:`repro.platform.PlatformSpec` made for the
microarchitecture — and :class:`TenantSet` is the validated collection a
server hosts.  Every workload now carries a ``tenant``; its legacy
``priority`` string is a *derived view* of the tenant class
(latency-critical -> ``HPW``, best-effort -> ``LPW``), so every manager,
figure, and detector that reads ``workload.priority`` behaves exactly as
before.

Workloads constructed the historic way (``priority=...``, no tenant) get
an *implicit* tenant named after their priority class (``hpw`` / ``lpw``);
:meth:`TenantSet.from_workloads` merges those per-workload implicits into
the **canonical two-tenant set** — the paper's fixed workload lists seen
through the tenancy lens, bit-identical by construction.

This module sits below the workload layer (no repro imports except
telemetry constants) so every layer can use it without cycles.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW

CLASS_LATENCY_CRITICAL = "latency-critical"
"""Serving tenants with latency SLOs; their workloads are HPWs."""

CLASS_BEST_EFFORT = "best-effort"
"""Batch/background tenants; their workloads are LPWs."""

TENANT_CLASSES = (CLASS_LATENCY_CRITICAL, CLASS_BEST_EFFORT)

CLOS_POLICY_SHARED = "shared"
"""The tenant's CLOS masks are owned by the attached manager (the
default — what every paper scenario does)."""

CLOS_POLICY_RESERVED = "reserved"
"""The tenant brings a fixed way span (``clos_mask``) that is applied at
launch and that :class:`TenantSet` guarantees never overlaps another
reserved tenant's span."""

CLOS_POLICIES = (CLOS_POLICY_SHARED, CLOS_POLICY_RESERVED)

_PRIORITY_OF_CLASS = {
    CLASS_LATENCY_CRITICAL: PRIORITY_HIGH,
    CLASS_BEST_EFFORT: PRIORITY_LOW,
}
_CLASS_OF_PRIORITY = {v: k for k, v in _PRIORITY_OF_CLASS.items()}

IMPLICIT_TENANT_NAMES = {PRIORITY_HIGH: "hpw", PRIORITY_LOW: "lpw"}
"""Tenant names synthesized for workloads built with a bare priority."""


class TenantConfigError(ValueError):
    """An invalid tenant specification or tenant-set combination."""


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: identity, class, resource budget, and SLO targets.

    Frozen and hashable; every field is validated in ``__post_init__`` so
    an invalid tenant cannot be constructed.  SLO targets are optional —
    ``None`` means "no promise on this axis" (all paper-era tenants).
    """

    name: str
    tenant_class: str = CLASS_LATENCY_CRITICAL
    core_budget: int = 1
    """Cores the tenant may occupy in total, across all its workloads."""
    clos_policy: str = CLOS_POLICY_SHARED
    clos_mask: Optional[Tuple[int, int]] = None
    """Inclusive way span ``(first, last)`` for the ``reserved`` policy."""
    slo_p99_latency: Optional[float] = None
    """Target p99 request latency in simulated cycles (lower is better)."""
    slo_min_throughput: Optional[float] = None
    """Minimum completed requests per monitoring epoch."""
    implicit: bool = False
    """True for tenants synthesized from a bare workload priority."""

    def __post_init__(self) -> None:
        if not self.name:
            raise TenantConfigError("tenant name must be non-empty")
        if self.tenant_class not in TENANT_CLASSES:
            raise TenantConfigError(
                f"unknown tenant class {self.tenant_class!r}; "
                f"expected one of {TENANT_CLASSES}"
            )
        if self.core_budget <= 0:
            raise TenantConfigError(
                f"tenant {self.name!r}: core_budget must be positive "
                f"(zero-core tenants cannot run anything)"
            )
        if self.clos_policy not in CLOS_POLICIES:
            raise TenantConfigError(
                f"tenant {self.name!r}: unknown clos_policy "
                f"{self.clos_policy!r}; expected one of {CLOS_POLICIES}"
            )
        if self.clos_policy == CLOS_POLICY_RESERVED:
            if self.clos_mask is None:
                raise TenantConfigError(
                    f"tenant {self.name!r}: reserved clos_policy needs a "
                    "clos_mask span"
                )
        if self.clos_mask is not None:
            if len(self.clos_mask) != 2:
                raise TenantConfigError(
                    f"tenant {self.name!r}: clos_mask must be a "
                    f"(first, last) pair, got {self.clos_mask!r}"
                )
            first, last = self.clos_mask
            if first < 0 or last < first:
                raise TenantConfigError(
                    f"tenant {self.name!r}: clos_mask span "
                    f"({first}, {last}) must satisfy 0 <= first <= last"
                )
        for label, value in (
            ("slo_p99_latency", self.slo_p99_latency),
            ("slo_min_throughput", self.slo_min_throughput),
        ):
            if value is not None and value <= 0:
                raise TenantConfigError(
                    f"tenant {self.name!r}: {label} must be positive when "
                    f"set, got {value!r}"
                )

    # -- derived views ----------------------------------------------------

    @property
    def priority(self) -> str:
        """The legacy HPW/LPW string every manager and detector reads."""
        return _PRIORITY_OF_CLASS[self.tenant_class]

    @property
    def latency_critical(self) -> bool:
        return self.tenant_class == CLASS_LATENCY_CRITICAL

    @property
    def has_slo(self) -> bool:
        return (
            self.slo_p99_latency is not None
            or self.slo_min_throughput is not None
        )

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> Dict[str, object]:
        """Stable identity dict: every field plus a short content hash
        (the shape :class:`~repro.platform.PlatformSpec` established)."""
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        blob = json.dumps(payload, sort_keys=True, default=list,
                          separators=(",", ":"))
        payload["sha"] = hashlib.sha256(blob.encode()).hexdigest()[:12]
        return payload

    @property
    def token(self) -> str:
        return f"{self.name}@{self.fingerprint()['sha']}"

    # -- derivation --------------------------------------------------------

    @classmethod
    def implicit_for(cls, priority: str, cores: int) -> "TenantSpec":
        """The tenant synthesized for a bare-priority workload."""
        if priority not in _CLASS_OF_PRIORITY:
            raise TenantConfigError(f"unknown priority {priority!r}")
        return cls(
            name=IMPLICIT_TENANT_NAMES[priority],
            tenant_class=_CLASS_OF_PRIORITY[priority],
            core_budget=cores,
            implicit=True,
        )


class TenantSet:
    """A validated, ordered collection of tenants sharing one server.

    Construction validates global invariants a single spec cannot see:
    duplicate names and overlapping *reserved* CLOS way spans."""

    def __init__(self, tenants: Iterable[TenantSpec]):
        self._tenants: Tuple[TenantSpec, ...] = tuple(tenants)
        if not self._tenants:
            raise TenantConfigError("a tenant set needs at least one tenant")
        seen: Dict[str, TenantSpec] = {}
        for tenant in self._tenants:
            if tenant.name in seen:
                raise TenantConfigError(
                    f"duplicate tenant name {tenant.name!r}"
                )
            seen[tenant.name] = tenant
        reserved = [
            t for t in self._tenants
            if t.clos_policy == CLOS_POLICY_RESERVED
        ]
        for i, a in enumerate(reserved):
            for b in reserved[i + 1:]:
                if a.clos_mask[0] <= b.clos_mask[1] and \
                        b.clos_mask[0] <= a.clos_mask[1]:
                    raise TenantConfigError(
                        f"tenants {a.name!r} and {b.name!r} reserve "
                        f"overlapping CLOS mask spans {a.clos_mask} and "
                        f"{b.clos_mask}"
                    )

    # -- container protocol ------------------------------------------------

    def __iter__(self) -> Iterator[TenantSpec]:
        return iter(self._tenants)

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return any(t.name == name for t in self._tenants)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TenantSet) and self._tenants == other._tenants
        )

    def __hash__(self) -> int:
        return hash(self._tenants)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TenantSet {', '.join(self.names())}>"

    # -- accessors ---------------------------------------------------------

    def names(self) -> List[str]:
        return [t.name for t in self._tenants]

    def get(self, name: str) -> TenantSpec:
        for tenant in self._tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(name)

    def latency_critical(self) -> List[TenantSpec]:
        return [t for t in self._tenants if t.latency_critical]

    def best_effort(self) -> List[TenantSpec]:
        return [t for t in self._tenants if not t.latency_critical]

    @property
    def total_core_budget(self) -> int:
        return sum(t.core_budget for t in self._tenants)

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> Dict[str, object]:
        """Stable identity for run-cache keys and trace headers."""
        payload = {
            "tenants": [t.fingerprint() for t in self._tenants],
        }
        blob = json.dumps(payload, sort_keys=True, default=list,
                          separators=(",", ":"))
        payload["sha"] = hashlib.sha256(blob.encode()).hexdigest()[:12]
        return payload

    @property
    def token(self) -> str:
        return f"{len(self._tenants)}t@{self.fingerprint()['sha']}"

    # -- derivation --------------------------------------------------------

    @classmethod
    def from_workloads(cls, workloads: Sequence) -> "TenantSet":
        """The tenant set a workload list implies.

        Explicit tenants pass through (duplicate names must be the *same*
        spec); per-workload implicit tenants merge by name with their core
        budgets summed — so the paper's fixed HPW/LPW lists collapse to
        the canonical two-tenant set."""
        order: List[str] = []
        merged: Dict[str, TenantSpec] = {}
        for workload in workloads:
            tenant = workload.tenant
            if tenant.name not in merged:
                order.append(tenant.name)
                merged[tenant.name] = tenant
                continue
            existing = merged[tenant.name]
            if tenant.implicit and existing.implicit:
                merged[tenant.name] = replace(
                    existing,
                    core_budget=existing.core_budget + tenant.core_budget,
                )
            elif tenant != existing:
                raise TenantConfigError(
                    f"conflicting specs for tenant {tenant.name!r}: "
                    f"{existing} vs {tenant}"
                )
        return cls(merged[name] for name in order)


def canonical_pair(hpw_cores: int = 1, lpw_cores: int = 1) -> TenantSet:
    """The canonical two-tenant view of a legacy HPW/LPW workload list."""
    return TenantSet(
        (
            TenantSpec.implicit_for(PRIORITY_HIGH, hpw_cores),
            TenantSpec.implicit_for(PRIORITY_LOW, lpw_cores),
        )
    )
