"""Time-series extraction and CSV export from PCM epoch samples.

The figure runners aggregate over the measurement window; this module keeps
the raw per-epoch series (what the paper's scripts dump as text files) so
users can plot convergence behaviour — e.g. an HPW's hit rate recovering as
A4's LP Zone expansion settles.
"""

from __future__ import annotations

import io
from typing import Callable, Dict, List, Sequence

from repro.telemetry.pcm import EpochSample, StreamSample

METRICS: Dict[str, Callable[[StreamSample], float]] = {
    "ipc": lambda s: s.ipc,
    "llc_hit_rate": lambda s: s.llc_hit_rate,
    "llc_miss_rate": lambda s: s.llc_miss_rate,
    "mlc_miss_rate": lambda s: s.mlc_miss_rate,
    "dca_miss_rate": lambda s: s.dca_miss_rate,
    "io_throughput": lambda s: s.io_throughput_lines_per_cycle,
    "avg_latency": lambda s: s.latency.mean,
    "p99_latency": lambda s: s.latency.p99,
    "dma_leaks": lambda s: float(s.counters.dma_leaks),
    "dma_bloats": lambda s: float(s.counters.dma_bloats),
    "mem_reads": lambda s: float(s.counters.mem_reads),
    "mem_writes": lambda s: float(s.counters.mem_writes),
}


def series(
    samples: Sequence[EpochSample], stream: str, metric: str
) -> List[float]:
    """One metric's value per epoch for one stream.

    Epochs where the stream is absent (not yet launched, terminated)
    yield ``nan``, not ``0.0`` — plotting tools gap the line and
    aggregations skip it, where a zero would silently drag averages
    down and fake an idle reading."""
    try:
        extract = METRICS[metric]
    except KeyError:
        raise ValueError(
            f"unknown metric {metric!r}; have {sorted(METRICS)}"
        ) from None
    out: List[float] = []
    for sample in samples:
        stream_sample = sample.streams.get(stream)
        out.append(
            extract(stream_sample)
            if stream_sample is not None
            else float("nan")
        )
    return out


def to_csv(
    samples: Sequence[EpochSample],
    metrics: Sequence[str] = ("ipc", "llc_hit_rate", "io_throughput"),
) -> str:
    """Render per-epoch, per-stream metrics as CSV text.

    Columns: epoch, time, stream, then one column per metric, plus the
    machine-wide memory bandwidths repeated per row for convenience.
    """
    for metric in metrics:
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}")
    buffer = io.StringIO()
    header = ["epoch", "time", "stream", *metrics, "mem_read_bw", "mem_write_bw"]
    buffer.write(",".join(header) + "\n")
    for sample in samples:
        for name in sorted(sample.streams):
            stream_sample = sample.streams[name]
            row = [
                str(sample.index),
                f"{sample.time:.0f}",
                name,
                *(f"{METRICS[m](stream_sample):.6g}" for m in metrics),
                f"{sample.mem_read_bw:.6g}",
                f"{sample.mem_write_bw:.6g}",
            ]
            buffer.write(",".join(row) + "\n")
    return buffer.getvalue()


def write_csv(
    samples: Sequence[EpochSample],
    path: str,
    metrics: Sequence[str] = ("ipc", "llc_hit_rate", "io_throughput"),
) -> None:
    """Write :func:`to_csv` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_csv(samples, metrics))
