"""Telemetry: the simulated equivalent of Intel PCM.

Cumulative hardware-style counters per stream (workload) plus global memory
traffic, a latency percentile tracker, and an epoch sampler that produces the
per-interval rates A4 consumes (LLC hit rates, DCA miss rates, I/O
throughput, memory bandwidth, IPC).
"""

from repro.telemetry.counters import CounterBank, StreamCounters
from repro.telemetry.latency import LatencyTracker
from repro.telemetry.pcm import EpochSample, PcmSampler, StreamSample

__all__ = [
    "CounterBank",
    "StreamCounters",
    "LatencyTracker",
    "EpochSample",
    "PcmSampler",
    "StreamSample",
]
