"""Cumulative event counters, grouped per stream (workload).

The cache hierarchy, memory controller, and devices increment these; the
:mod:`repro.telemetry.pcm` sampler converts them into per-epoch rates.
Counter names mirror the paper's vocabulary: *DMA leak* (unconsumed I/O line
evicted from the LLC), *DMA bloat* (consumed I/O line evicted from an MLC
back into the LLC), *migration* (a line moving into the inclusive ways on
consumption), and the CPU-side hit/miss ladder.

``snapshot``/``delta``/``total`` used to walk ``dataclasses.fields`` with
getattr/setattr per field; they are now source-generated once at import
time from the field list, which makes per-epoch sampling and the perf
harness's counter micro-bench several times faster without changing the
field set in one place only.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple


@dataclass(slots=True)
class StreamCounters:
    """All cumulative counters attributed to one workload stream."""

    # CPU-side cache ladder
    mlc_hits: int = 0
    mlc_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    # I/O consumption tracking (DCA effectiveness)
    io_reads: int = 0
    io_read_misses: int = 0
    # DMA-side
    dma_writes: int = 0
    ddio_updates: int = 0
    ddio_allocates: int = 0
    dma_reads: int = 0
    dma_leaks: int = 0
    dma_bloats: int = 0
    # LLC dynamics
    llc_fills: int = 0
    llc_evictions_suffered: int = 0
    migrations: int = 0
    inclusive_downgrades: int = 0
    back_invalidations: int = 0
    # Memory traffic attributed to this stream
    mem_reads: int = 0
    mem_writes: int = 0
    prefetch_fills: int = 0
    # Execution
    instructions: int = 0
    io_bytes_completed: int = 0
    io_requests_completed: int = 0
    packets_dropped: int = 0

    # ``snapshot`` and ``delta`` are generated below from COUNTER_FIELDS.

    # -- derived rates -----------------------------------------------------

    @property
    def llc_accesses(self) -> int:
        return self.llc_hits + self.llc_misses

    @property
    def llc_hit_rate(self) -> float:
        """LLC hits per LLC access; 0 when idle at this level."""
        total = self.llc_accesses
        return self.llc_hits / total if total else 0.0

    @property
    def llc_miss_rate(self) -> float:
        total = self.llc_accesses
        return self.llc_misses / total if total else 0.0

    @property
    def mlc_miss_rate(self) -> float:
        total = self.mlc_hits + self.mlc_misses
        return self.mlc_misses / total if total else 0.0

    @property
    def dca_miss_rate(self) -> float:
        """Fraction of CPU reads of DMA-written data that missed the LLC.

        This is the paper's signal (1) for DMA-leak detection: I/O lines
        evicted before consumption force their consumer to memory.
        """
        return self.io_read_misses / self.io_reads if self.io_reads else 0.0


COUNTER_FIELDS: Tuple[str, ...] = tuple(f.name for f in fields(StreamCounters))
"""Every counter name, in declaration order (the source of the generated
fast paths below and of external consumers that iterate all counters)."""


def _compile(source: str, name: str):
    namespace = {"StreamCounters": StreamCounters}
    exec(source, namespace)
    return namespace[name]


_SNAPSHOT_SRC = "def snapshot(self):\n    return StreamCounters({})".format(
    ", ".join(f"self.{n}" for n in COUNTER_FIELDS)
)

_DELTA_SRC = (
    "def delta(self, earlier):\n    return StreamCounters({})".format(
        ", ".join(f"self.{n} - earlier.{n}" for n in COUNTER_FIELDS)
    )
)

_TOTAL_SRC = "def _total(values):\n    agg = StreamCounters()\n" + "".join(
    f"    agg.{n} = sum(c.{n} for c in values)\n" for n in COUNTER_FIELDS
) + "    return agg"

_snapshot = _compile(_SNAPSHOT_SRC, "snapshot")
_snapshot.__doc__ = "A copy of the current counter values."
_delta = _compile(_DELTA_SRC, "delta")
_delta.__doc__ = "Counter increments since ``earlier`` (a prior snapshot)."
StreamCounters.snapshot = _snapshot
StreamCounters.delta = _delta
_total = _compile(_TOTAL_SRC, "_total")


class CounterBank:
    """Registry of per-stream counters plus machine-wide aggregates."""

    def __init__(self) -> None:
        self.streams: Dict[str, StreamCounters] = {}

    def stream(self, name: str) -> StreamCounters:
        counters = self.streams.get(name)
        if counters is None:
            counters = self.streams[name] = StreamCounters()
        return counters

    def total(self) -> StreamCounters:
        return _total(self.streams.values())

    def snapshot_all(self) -> Dict[str, StreamCounters]:
        return {name: c.snapshot() for name, c in self.streams.items()}
