"""Cumulative event counters, grouped per stream (workload).

The cache hierarchy, memory controller, and devices increment these; the
:mod:`repro.telemetry.pcm` sampler converts them into per-epoch rates.
Counter names mirror the paper's vocabulary: *DMA leak* (unconsumed I/O line
evicted from the LLC), *DMA bloat* (consumed I/O line evicted from an MLC
back into the LLC), *migration* (a line moving into the inclusive ways on
consumption), and the CPU-side hit/miss ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict


@dataclass
class StreamCounters:
    """All cumulative counters attributed to one workload stream."""

    # CPU-side cache ladder
    mlc_hits: int = 0
    mlc_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    # I/O consumption tracking (DCA effectiveness)
    io_reads: int = 0
    io_read_misses: int = 0
    # DMA-side
    dma_writes: int = 0
    ddio_updates: int = 0
    ddio_allocates: int = 0
    dma_reads: int = 0
    dma_leaks: int = 0
    dma_bloats: int = 0
    # LLC dynamics
    llc_fills: int = 0
    llc_evictions_suffered: int = 0
    migrations: int = 0
    inclusive_downgrades: int = 0
    back_invalidations: int = 0
    # Memory traffic attributed to this stream
    mem_reads: int = 0
    mem_writes: int = 0
    prefetch_fills: int = 0
    # Execution
    instructions: int = 0
    io_bytes_completed: int = 0
    io_requests_completed: int = 0
    packets_dropped: int = 0

    def snapshot(self) -> "StreamCounters":
        return StreamCounters(**{f.name: getattr(self, f.name) for f in fields(self)})

    def delta(self, earlier: "StreamCounters") -> "StreamCounters":
        """Counter increments since ``earlier`` (a prior snapshot)."""
        return StreamCounters(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    # -- derived rates -----------------------------------------------------

    @property
    def llc_accesses(self) -> int:
        return self.llc_hits + self.llc_misses

    @property
    def llc_hit_rate(self) -> float:
        """LLC hits per LLC access; 0 when idle at this level."""
        total = self.llc_accesses
        return self.llc_hits / total if total else 0.0

    @property
    def llc_miss_rate(self) -> float:
        total = self.llc_accesses
        return self.llc_misses / total if total else 0.0

    @property
    def mlc_miss_rate(self) -> float:
        total = self.mlc_hits + self.mlc_misses
        return self.mlc_misses / total if total else 0.0

    @property
    def dca_miss_rate(self) -> float:
        """Fraction of CPU reads of DMA-written data that missed the LLC.

        This is the paper's signal (1) for DMA-leak detection: I/O lines
        evicted before consumption force their consumer to memory.
        """
        return self.io_read_misses / self.io_reads if self.io_reads else 0.0


class CounterBank:
    """Registry of per-stream counters plus machine-wide aggregates."""

    def __init__(self) -> None:
        self.streams: Dict[str, StreamCounters] = {}

    def stream(self, name: str) -> StreamCounters:
        counters = self.streams.get(name)
        if counters is None:
            counters = self.streams[name] = StreamCounters()
        return counters

    def total(self) -> StreamCounters:
        aggregate = StreamCounters()
        for counters in self.streams.values():
            for f in fields(StreamCounters):
                setattr(
                    aggregate,
                    f.name,
                    getattr(aggregate, f.name) + getattr(counters, f.name),
                )
        return aggregate

    def snapshot_all(self) -> Dict[str, StreamCounters]:
        return {name: c.snapshot() for name, c in self.streams.items()}
