"""Per-request latency tracking with percentile reporting.

Workloads append one sample per completed request (a network packet, a
storage block).  The harness flushes per epoch, yielding the average / p50 /
p99 series the paper plots (Figs. 6, 7, 8, 12, 14).  Optional component
breakdowns support Fig. 14's queueing / access / processing decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class LatencyStats:
    """Summary of one epoch's samples."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p99: float = 0.0
    components: Dict[str, float] = field(default_factory=dict)
    """Mean per named component (e.g. queueing/access/processing)."""


def percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile over a pre-sorted list."""
    if not sorted_values:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    rank = min(len(sorted_values) - 1, max(0, int(fraction * len(sorted_values))))
    return sorted_values[rank]


class LatencyTracker:
    """Accumulates request latencies (and component breakdowns) per epoch."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._components: Dict[str, List[float]] = {}

    def record(self, total: float, components: Optional[Dict[str, float]] = None) -> None:
        if total < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(total)
        if components:
            for name, value in components.items():
                self._components.setdefault(name, []).append(value)

    def pending(self) -> int:
        return len(self._samples)

    def flush(self) -> LatencyStats:
        """Summarise and clear the current epoch's samples."""
        if not self._samples:
            return LatencyStats()
        ordered = sorted(self._samples)
        stats = LatencyStats(
            count=len(ordered),
            mean=sum(ordered) / len(ordered),
            p50=percentile(ordered, 0.50),
            p99=percentile(ordered, 0.99),
            components={
                name: sum(values) / len(values)
                for name, values in self._components.items()
                if values
            },
        )
        self._samples.clear()
        self._components.clear()
        return stats
