"""PCM-style epoch sampler.

Once per epoch (the paper's 1-second monitoring interval) the sampler diffs
every stream's cumulative counters against the previous snapshot and emits an
:class:`EpochSample` — per-stream rates plus machine-wide memory and PCIe
bandwidth.  This is the only interface the A4 controller (and the baselines)
see; they never reach into the cache models, just like the real daemon only
sees Intel PCM and CAT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.platform import DEFAULT_PLATFORM
from repro.telemetry.counters import CounterBank, StreamCounters
from repro.telemetry.latency import LatencyStats, LatencyTracker

KIND_NETWORK = "network-io"
KIND_STORAGE = "storage-io"
KIND_CPU = "non-io"

PRIORITY_HIGH = "HPW"
PRIORITY_LOW = "LPW"


@dataclass
class StreamInfo:
    """Launch-time metadata A4 gathers about a workload (paper Fig. 9, step 1)."""

    name: str
    kind: str = KIND_CPU
    priority: str = PRIORITY_HIGH
    cores: tuple = ()
    port_id: Optional[int] = None
    """PCIe port of the associated I/O device, if any."""
    tenant: str = ""
    """Owning tenant's name (empty for streams registered pre-tenancy)."""

    def __post_init__(self) -> None:
        if self.kind not in (KIND_NETWORK, KIND_STORAGE, KIND_CPU):
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if self.priority not in (PRIORITY_HIGH, PRIORITY_LOW):
            raise ValueError(f"unknown priority {self.priority!r}")

    @property
    def is_io(self) -> bool:
        return self.kind != KIND_CPU


@dataclass
class StreamSample:
    """One stream's activity during one epoch."""

    name: str
    info: StreamInfo
    counters: StreamCounters
    latency: LatencyStats
    epoch_cycles: float
    line_bytes: int = DEFAULT_PLATFORM.line_bytes

    @property
    def ipc(self) -> float:
        """Instructions per cycle, per core of the workload."""
        cores = max(1, len(self.info.cores))
        return self.counters.instructions / (self.epoch_cycles * cores)

    @property
    def llc_hit_rate(self) -> float:
        return self.counters.llc_hit_rate

    @property
    def llc_miss_rate(self) -> float:
        return self.counters.llc_miss_rate

    @property
    def mlc_miss_rate(self) -> float:
        return self.counters.mlc_miss_rate

    @property
    def dca_miss_rate(self) -> float:
        return self.counters.dca_miss_rate

    @property
    def io_throughput_lines_per_cycle(self) -> float:
        return (
            self.counters.io_bytes_completed
            / self.line_bytes
            / self.epoch_cycles
        )

    @property
    def dma_write_lines(self) -> int:
        return self.counters.dma_writes


@dataclass
class EpochSample:
    """Machine-wide view of one epoch."""

    index: int
    time: float
    epoch_cycles: float
    streams: Dict[str, StreamSample]
    mem_read_lines: int
    mem_write_lines: int

    @property
    def mem_read_bw(self) -> float:
        return self.mem_read_lines / self.epoch_cycles

    @property
    def mem_write_bw(self) -> float:
        return self.mem_write_lines / self.epoch_cycles

    @property
    def mem_total_bw(self) -> float:
        return self.mem_read_bw + self.mem_write_bw

    @property
    def pcie_write_lines(self) -> int:
        """System I/O read traffic = total inbound DMA writes this epoch."""
        return sum(s.counters.dma_writes for s in self.streams.values())

    def storage_io_share(self) -> float:
        """Storage's portion of PCIe write throughput (A4's T4 signal)."""
        total = self.pcie_write_lines
        if not total:
            return 0.0
        storage = sum(
            s.counters.dma_writes
            for s in self.streams.values()
            if s.info.kind == KIND_STORAGE
        )
        return storage / total


class PcmSampler:
    """Samples the counter bank into per-epoch deltas."""

    def __init__(
        self,
        counters: CounterBank,
        epoch_cycles: float = DEFAULT_PLATFORM.epoch_cycles,
        line_bytes: int = DEFAULT_PLATFORM.line_bytes,
    ):
        self.counters = counters
        self.epoch_cycles = epoch_cycles
        self.line_bytes = line_bytes
        self.infos: Dict[str, StreamInfo] = {}
        self.trackers: Dict[str, LatencyTracker] = {}
        self.history: List[EpochSample] = []
        self._last: Dict[str, StreamCounters] = {}
        self._last_mem_reads = 0
        self._last_mem_writes = 0
        self._index = 0

    def register(self, info: StreamInfo) -> None:
        self.infos[info.name] = info
        self.trackers.setdefault(info.name, LatencyTracker())
        # Materialise counters so silent streams still appear in samples.
        self.counters.stream(info.name)

    def unregister(self, name: str) -> None:
        self.infos.pop(name, None)

    def tracker(self, name: str) -> LatencyTracker:
        tracker = self.trackers.get(name)
        if tracker is None:
            tracker = self.trackers[name] = LatencyTracker()
        return tracker

    def sample(self, now: float) -> EpochSample:
        """Close the current epoch and return its sample."""
        streams: Dict[str, StreamSample] = {}
        mem_reads = 0
        mem_writes = 0
        for name, counters in self.counters.streams.items():
            last = self._last.get(name, StreamCounters())
            delta = counters.delta(last)
            self._last[name] = counters.snapshot()
            mem_reads += delta.mem_reads
            mem_writes += delta.mem_writes
            info = self.infos.get(name, StreamInfo(name))
            latency = self.tracker(name).flush()
            streams[name] = StreamSample(
                name=name,
                info=info,
                counters=delta,
                latency=latency,
                epoch_cycles=self.epoch_cycles,
                line_bytes=self.line_bytes,
            )
        sample = EpochSample(
            index=self._index,
            time=now,
            epoch_cycles=self.epoch_cycles,
            streams=streams,
            mem_read_lines=mem_reads,
            mem_write_lines=mem_writes,
        )
        self._index += 1
        self.history.append(sample)
        return sample
