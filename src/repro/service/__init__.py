"""Crash-safe simulation job service.

Three cooperating modules:

* :mod:`repro.service.store` — the durable SQLite run store (WAL mode,
  versioned schema, enforced job state machine, orphan recovery,
  admission control, dedup by runcache key);
* :mod:`repro.service.supervisor` — the worker fleet: one process per
  job, heartbeat watchdog, kill-and-replace for hung workers,
  checkpoint-resumable retries;
* :mod:`repro.service.retry` — the shared bounded-backoff retry policy
  (also used by :mod:`repro.experiments.parallel` for dispatch retries).

This ``__init__`` stays import-light on purpose: ``parallel.py`` imports
:mod:`repro.service.retry` and the supervisor imports ``parallel`` back,
so eagerly importing the supervisor here would create a cycle.  Names
resolve lazily via module ``__getattr__``.
"""

from __future__ import annotations

_EXPORTS = {
    "AdmissionError": "repro.service.store",
    "Job": "repro.service.store",
    "JobStore": "repro.service.store",
    "ServiceError": "repro.service.store",
    "SubmitOutcome": "repro.service.store",
    "TransitionError": "repro.service.store",
    "DEFAULT_POLICY": "repro.service.retry",
    "FAST_POLICY": "repro.service.retry",
    "RetryPolicy": "repro.service.retry",
    "DrainReport": "repro.service.supervisor",
    "Supervisor": "repro.service.supervisor",
    "SupervisorConfig": "repro.service.supervisor",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
