"""Durable SQLite-backed job store for the simulation service.

One database file holds every job ever submitted to a service instance:
its spec (the figure id + kwargs that reproduce it), its content key
(the run-cache fingerprint, which is also the dedup identity), its state
machine position, attempt/resume accounting, the newest checkpoint it
can resume from, and — once finished — the result path and a SHA-256
digest of the pickled result so bit-identity can be asserted without
reloading anything.

Durability posture:

* **WAL mode** — readers never block the writer, a crash mid-commit
  rolls back to the last committed transaction on the next open, and a
  torn append to the ``-wal`` file costs at most the uncommitted suffix
  (SQLite replays the longest valid frame prefix).
* **Versioned schema + migrations** — ``PRAGMA user_version`` tracks the
  schema; :data:`MIGRATIONS` is an append-only list and every open
  applies the missing suffix inside one transaction, so a store created
  by an older build upgrades in place.
* **Crash recovery on open** — any job left ``RUNNING`` by a process
  that no longer exists is re-queued (its checkpoint pointer intact) so
  a ``kill -9`` of worker *and* supervisor loses nothing but the time
  since the newest checkpoint.
* **Corrupt rows degrade, never poison** — a job whose spec does not
  parse back is marked ``DEAD`` with :data:`~repro.experiments.errors.
  CATEGORY_CORRUPT` at claim time; the queue keeps moving.

State machine (enforced by :meth:`JobStore._transition`)::

    QUEUED -> RUNNING -> DONE
       ^         |    -> FAILED -> QUEUED (retry, maybe from checkpoint)
       |         |              -> DEAD   (retries exhausted / fail-fast)
       +---------+  (orphan recovery / supervisor requeue)
    QUEUED -> DEAD  (corrupt spec discovered at claim)

Admission control: ``queue_limit`` bounds QUEUED+RUNNING depth; a submit
beyond it raises :class:`AdmissionError` with a reason and bumps the
durable ``shed`` counter.  A submit whose key matches a live or finished
job instead *joins* it (dedup): the caller gets the same job id and the
shared result fans out.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro import obsv
from repro.experiments.errors import CATEGORY_CORRUPT

QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
DEAD = "DEAD"

STATES = (QUEUED, RUNNING, DONE, FAILED, DEAD)
TERMINAL_STATES = frozenset({DONE, DEAD})
LIVE_STATES = frozenset({QUEUED, RUNNING, FAILED})

_TRANSITIONS = {
    QUEUED: frozenset({RUNNING, DEAD}),
    RUNNING: frozenset({DONE, FAILED, QUEUED}),
    FAILED: frozenset({QUEUED, DEAD}),
    DONE: frozenset(),
    DEAD: frozenset(),
}

MIGRATIONS: List[str] = [
    # v1: the jobs table and its claim-order index.
    """
    CREATE TABLE jobs (
        id              INTEGER PRIMARY KEY,
        key             TEXT NOT NULL,
        spec            TEXT NOT NULL,
        state           TEXT NOT NULL DEFAULT 'QUEUED',
        attempts        INTEGER NOT NULL DEFAULT 0,
        max_attempts    INTEGER NOT NULL DEFAULT 3,
        resumes         INTEGER NOT NULL DEFAULT 0,
        submits         INTEGER NOT NULL DEFAULT 1,
        checkpoint_epoch INTEGER,
        result_path     TEXT,
        error           TEXT,
        category        TEXT,
        owner_pid       INTEGER,
        heartbeat       REAL,
        next_run_at     REAL NOT NULL DEFAULT 0,
        created_at      REAL NOT NULL,
        updated_at      REAL NOT NULL
    );
    CREATE INDEX jobs_claim ON jobs (state, next_run_at, id);
    CREATE INDEX jobs_key ON jobs (key);
    CREATE TABLE counters (
        name  TEXT PRIMARY KEY,
        value INTEGER NOT NULL DEFAULT 0
    );
    """,
    # v2: result digest for bit-identity assertions without reloading
    # the pickle (added after v1 shipped; exercises the migration path).
    """
    ALTER TABLE jobs ADD COLUMN result_digest TEXT;
    """,
    # v3: claim timestamp (queue-wait / run-duration SLO histograms) and
    # live progress columns pushed by the worker heartbeat thread.
    """
    ALTER TABLE jobs ADD COLUMN claimed_at REAL;
    ALTER TABLE jobs ADD COLUMN progress_done INTEGER;
    ALTER TABLE jobs ADD COLUMN progress_total INTEGER;
    ALTER TABLE jobs ADD COLUMN progress_rate REAL;
    ALTER TABLE jobs ADD COLUMN progress_eta REAL;
    """,
]

SCHEMA_VERSION = len(MIGRATIONS)


class ServiceError(RuntimeError):
    """Base class for job-service failures."""


class AdmissionError(ServiceError):
    """A submit was shed by admission control; ``reason`` says why."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


class TransitionError(ServiceError):
    """An illegal job state transition was attempted."""


@dataclass(frozen=True)
class Job:
    """One row of the store, frozen at read time."""

    id: int
    key: str
    spec: Dict[str, Any]
    state: str
    attempts: int
    max_attempts: int
    resumes: int
    submits: int
    checkpoint_epoch: Optional[int]
    result_path: Optional[str]
    result_digest: Optional[str]
    error: Optional[str]
    category: Optional[str]
    owner_pid: Optional[int]
    heartbeat: Optional[float]
    next_run_at: float
    created_at: float
    updated_at: float
    claimed_at: Optional[float] = None
    progress_done: Optional[int] = None
    progress_total: Optional[int] = None
    progress_rate: Optional[float] = None
    progress_eta: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def progress_fraction(self) -> Optional[float]:
        """Epoch completion in [0, 1], or None before any progress push."""
        if not self.progress_total or self.progress_done is None:
            return None
        return min(1.0, self.progress_done / self.progress_total)


def _pid_alive(pid: Optional[int]) -> bool:
    """Best-effort liveness: signal 0 probes existence without touching
    the process.  EPERM means "exists but not ours" — still alive."""
    if not pid:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def _emit_job(name: str, data: Dict[str, Any]) -> None:
    """One guarded job-lifecycle trace event (no-op while obsv is off)."""
    tracer = obsv.TRACER
    if tracer is not None:
        tracer.emit(obsv.KIND_JOB, name, data)


class JobStore:
    """The durable run store (one SQLite file, WAL mode).

    Safe for multiple processes: every mutation runs inside an immediate
    transaction, and a generous busy timeout rides out a concurrent
    writer (a worker heartbeat racing the supervisor's claim).
    """

    def __init__(
        self,
        path,
        queue_limit: Optional[int] = None,
        recover: bool = True,
        busy_timeout: float = 10.0,
    ) -> None:
        self.path = Path(path)
        self.queue_limit = queue_limit
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(
            str(self.path), timeout=busy_timeout, isolation_level=None
        )
        self._db.row_factory = sqlite3.Row
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA synchronous=NORMAL")
        self._db.execute(f"PRAGMA busy_timeout={int(busy_timeout * 1000)}")
        self._migrate()
        if recover:
            self.recover()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- schema --------------------------------------------------------------

    def _migrate(self) -> None:
        """Apply every migration past ``PRAGMA user_version``, atomically."""
        version = self._db.execute("PRAGMA user_version").fetchone()[0]
        if version > SCHEMA_VERSION:
            raise ServiceError(
                f"store schema v{version} is newer than this build "
                f"(v{SCHEMA_VERSION}); refusing to downgrade"
            )
        if version == SCHEMA_VERSION:
            return
        with self._txn():
            for index in range(version, SCHEMA_VERSION):
                # Not executescript: it force-commits any open transaction,
                # which would break the all-or-nothing upgrade.
                for statement in MIGRATIONS[index].split(";"):
                    if statement.strip():
                        self._db.execute(statement)
            self._db.execute(f"PRAGMA user_version={SCHEMA_VERSION}")

    @property
    def schema_version(self) -> int:
        return self._db.execute("PRAGMA user_version").fetchone()[0]

    # -- low-level helpers ---------------------------------------------------

    def _txn(self):
        """An immediate write transaction (context manager)."""
        return _Transaction(self._db)

    def _bump(self, name: str, amount: int = 1) -> None:
        self._db.execute(
            "INSERT INTO counters (name, value) VALUES (?, ?) "
            "ON CONFLICT(name) DO UPDATE SET value = value + ?",
            (name, amount, amount),
        )

    def _row_to_job(self, row: sqlite3.Row) -> Job:
        try:
            spec = json.loads(row["spec"])
        except (TypeError, ValueError):
            spec = {}
        return Job(
            id=row["id"],
            key=row["key"],
            spec=spec,
            state=row["state"],
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            resumes=row["resumes"],
            submits=row["submits"],
            checkpoint_epoch=row["checkpoint_epoch"],
            result_path=row["result_path"],
            result_digest=row["result_digest"],
            error=row["error"],
            category=row["category"],
            owner_pid=row["owner_pid"],
            heartbeat=row["heartbeat"],
            next_run_at=row["next_run_at"],
            created_at=row["created_at"],
            updated_at=row["updated_at"],
            claimed_at=row["claimed_at"],
            progress_done=row["progress_done"],
            progress_total=row["progress_total"],
            progress_rate=row["progress_rate"],
            progress_eta=row["progress_eta"],
        )

    def _transition(
        self, job_id: int, to_state: str, now: float, **updates: Any
    ) -> Job:
        """Move a job to ``to_state``, enforcing the state machine.

        Must run inside a transaction; returns the updated job."""
        row = self._db.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"no such job: {job_id}")
        from_state = row["state"]
        if to_state not in _TRANSITIONS.get(from_state, frozenset()):
            raise TransitionError(
                f"job {job_id}: illegal transition {from_state} -> {to_state}"
            )
        updates["state"] = to_state
        updates["updated_at"] = now
        assignments = ", ".join(f"{name} = ?" for name in updates)
        self._db.execute(
            f"UPDATE jobs SET {assignments} WHERE id = ?",
            (*updates.values(), job_id),
        )
        return self.job(job_id)

    # -- submission / admission ----------------------------------------------

    def queue_depth(self) -> int:
        """Jobs currently occupying the service (queued, running, or
        awaiting a retry decision)."""
        return self._db.execute(
            "SELECT COUNT(*) FROM jobs WHERE state IN (?, ?, ?)",
            (QUEUED, RUNNING, FAILED),
        ).fetchone()[0]

    def submit(
        self,
        spec: Dict[str, Any],
        key: str,
        max_attempts: int = 3,
    ) -> "SubmitOutcome":
        """Admit one job (or join an existing one with the same key).

        Dedup: if a non-DEAD job with this key exists, no new row is
        created — the existing job's ``submits`` fan-out count grows and
        its (current or eventual) result is shared.  A DEAD key gets a
        fresh job: the previous execution is not coming back.

        Raises :class:`AdmissionError` (and counts a shed) when the live
        queue is at ``queue_limit``.
        """
        now = time.time()
        shed_reason: Optional[str] = None
        with self._txn():
            row = self._db.execute(
                "SELECT * FROM jobs WHERE key = ? AND state != ? "
                "ORDER BY id DESC LIMIT 1",
                (key, DEAD),
            ).fetchone()
            if row is not None:
                self._db.execute(
                    "UPDATE jobs SET submits = submits + 1, updated_at = ? "
                    "WHERE id = ?",
                    (now, row["id"]),
                )
                self._bump("deduped")
                job = self.job(row["id"])
                _emit_job("dedup", {"job": job.id, "key": key[:16]})
                return SubmitOutcome(job=job, deduped=True)
            depth = self.queue_depth()
            if self.queue_limit is not None and depth >= self.queue_limit:
                # Bump inside the transaction, raise after it commits —
                # a rollback must not lose the shed accounting.
                self._bump("shed")
                shed_reason = (
                    f"queue depth {depth} at limit "
                    f"{self.queue_limit}; resubmit later"
                )
            else:
                cursor = self._db.execute(
                    "INSERT INTO jobs (key, spec, state, max_attempts, "
                    "created_at, updated_at) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        key,
                        json.dumps(spec, sort_keys=True),
                        QUEUED,
                        max_attempts,
                        now,
                        now,
                    ),
                )
                job = self.job(cursor.lastrowid)
        if shed_reason is not None:
            _emit_job("shed", {"key": key[:16], "reason": shed_reason})
            raise AdmissionError(shed_reason)
        _emit_job("submit", {"job": job.id, "key": key[:16]})
        return SubmitOutcome(job=job, deduped=False)

    # -- claim / heartbeat ---------------------------------------------------

    def claim(self, owner_pid: Optional[int] = None) -> Optional[Job]:
        """Atomically take the oldest runnable QUEUED job, or None.

        A claimed job moves to RUNNING with ``attempts`` incremented and
        this process (or ``owner_pid``) recorded as owner.  A job whose
        stored spec no longer parses is marked DEAD (category
        ``corrupt``) and skipped — one corrupted row never wedges the
        queue.
        """
        now = time.time()
        pid = owner_pid if owner_pid is not None else os.getpid()
        with self._txn():
            while True:
                row = self._db.execute(
                    "SELECT * FROM jobs WHERE state = ? AND next_run_at <= ? "
                    "ORDER BY id LIMIT 1",
                    (QUEUED, now),
                ).fetchone()
                if row is None:
                    return None
                try:
                    json.loads(row["spec"])
                except (TypeError, ValueError):
                    self._bump("corrupt_rows")
                    self._transition(
                        row["id"],
                        DEAD,
                        now,
                        error="stored spec does not parse",
                        category=CATEGORY_CORRUPT,
                    )
                    _emit_job("dead", {"job": row["id"], "category": CATEGORY_CORRUPT})
                    continue
                job = self._transition(
                    row["id"],
                    RUNNING,
                    now,
                    attempts=row["attempts"] + 1,
                    owner_pid=pid,
                    heartbeat=now,
                    claimed_at=now,
                    progress_done=None,
                    progress_total=None,
                    progress_rate=None,
                    progress_eta=None,
                    error=None,
                    category=None,
                )
                _emit_job(
                    "claim",
                    {"job": job.id, "attempt": job.attempts, "pid": pid},
                )
                return job

    def set_owner(self, job_id: int, pid: int) -> None:
        """Re-point a RUNNING job at the process actually executing it
        (the supervisor claims with its own pid, then hands ownership to
        the spawned worker so orphan recovery probes the right process)."""
        self._db.execute(
            "UPDATE jobs SET owner_pid = ? WHERE id = ? AND state = ?",
            (pid, job_id, RUNNING),
        )

    def heartbeat(self, job_id: int) -> None:
        """Record worker liveness (workers call this from a side thread)."""
        self._db.execute(
            "UPDATE jobs SET heartbeat = ? WHERE id = ? AND state = ?",
            (time.time(), job_id, RUNNING),
        )

    def record_checkpoint(self, job_id: int, epoch: int) -> None:
        """Remember the newest checkpoint epoch a retry could resume from."""
        self._db.execute(
            "UPDATE jobs SET checkpoint_epoch = ? WHERE id = ?",
            (epoch, job_id),
        )

    def update_progress(
        self,
        job_id: int,
        done: int,
        total: int,
        rate: float = 0.0,
        eta: Optional[float] = None,
    ) -> None:
        """Push live run progress (epochs done/total, sim events/s, ETA
        seconds) onto a RUNNING job.  Workers call this from the same
        side thread as :meth:`heartbeat`; ``watch`` renders it."""
        self._db.execute(
            "UPDATE jobs SET progress_done = ?, progress_total = ?, "
            "progress_rate = ?, progress_eta = ? WHERE id = ? AND state = ?",
            (done, total, rate, eta, job_id, RUNNING),
        )

    def count_crash(self) -> None:
        """Bump the durable crash counter (unclean worker death or a
        stale-heartbeat kill — the flight-recorder trigger)."""
        with self._txn():
            self._bump("crashes")

    # -- completion / failure ------------------------------------------------

    def mark_done(
        self, job_id: int, result_path: str, result_digest: str
    ) -> Job:
        now = time.time()
        with self._txn():
            job = self._transition(
                job_id,
                DONE,
                now,
                result_path=result_path,
                result_digest=result_digest,
                owner_pid=None,
            )
        _emit_job(
            "done",
            {
                "job": job.id,
                "attempts": job.attempts,
                "resumes": job.resumes,
                "digest": result_digest[:16],
            },
        )
        return job

    def mark_failed(self, job_id: int, error: str, category: str) -> Job:
        """Record one failed attempt (RUNNING -> FAILED).  The retry
        decision — requeue or declare dead — is the supervisor's."""
        now = time.time()
        with self._txn():
            job = self._transition(
                job_id,
                FAILED,
                now,
                error=error[:2000],
                category=category,
                owner_pid=None,
            )
        _emit_job(
            "failed",
            {"job": job.id, "attempt": job.attempts, "category": category},
        )
        return job

    def requeue(
        self,
        job_id: int,
        delay: float = 0.0,
        resume_epoch: Optional[int] = None,
    ) -> Job:
        """FAILED/RUNNING -> QUEUED for another attempt.

        ``resume_epoch`` marks this retry as checkpoint-resumable: the
        resume counter grows and the epoch is recorded so `status` can
        show where the next attempt will pick up."""
        now = time.time()
        updates: Dict[str, Any] = {
            "next_run_at": now + max(0.0, delay),
            "owner_pid": None,
        }
        counter = "retries"
        if resume_epoch is not None:
            updates["checkpoint_epoch"] = resume_epoch
        with self._txn():
            if resume_epoch is not None:
                self._db.execute(
                    "UPDATE jobs SET resumes = resumes + 1 WHERE id = ?",
                    (job_id,),
                )
                self._bump("resumes")
            self._bump(counter)
            job = self._transition(job_id, QUEUED, now, **updates)
        _emit_job(
            "requeue",
            {
                "job": job.id,
                "delay": round(delay, 3),
                "resume_epoch": resume_epoch,
            },
        )
        return job

    def mark_dead(self, job_id: int, error: str, category: str) -> Job:
        now = time.time()
        with self._txn():
            job = self._transition(
                job_id,
                DEAD,
                now,
                error=error[:2000],
                category=category,
                owner_pid=None,
            )
        _emit_job("dead", {"job": job.id, "category": category})
        return job

    # -- crash recovery ------------------------------------------------------

    def recover(self) -> List[Job]:
        """Re-queue every RUNNING job whose owner process is gone.

        Called on open; safe to call any time.  The re-queued job keeps
        its attempt count (the interrupted execution already counted at
        claim) and its checkpoint pointer, so the next claim resumes
        from the newest snapshot instead of cycle zero.
        """
        recovered: List[Job] = []
        now = time.time()
        with self._txn():
            rows = self._db.execute(
                "SELECT * FROM jobs WHERE state = ?", (RUNNING,)
            ).fetchall()
            for row in rows:
                if _pid_alive(row["owner_pid"]):
                    continue
                self._bump("recovered")
                job = self._transition(
                    row["id"],
                    QUEUED,
                    now,
                    owner_pid=None,
                    next_run_at=now,
                )
                recovered.append(job)
        for job in recovered:
            _emit_job(
                "recover",
                {"job": job.id, "checkpoint_epoch": job.checkpoint_epoch},
            )
        return recovered

    # -- queries -------------------------------------------------------------

    def job(self, job_id: int) -> Job:
        row = self._db.execute(
            "SELECT * FROM jobs WHERE id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"no such job: {job_id}")
        return self._row_to_job(row)

    def jobs(self, state: Optional[str] = None) -> List[Job]:
        if state is None:
            rows = self._db.execute("SELECT * FROM jobs ORDER BY id")
        else:
            rows = self._db.execute(
                "SELECT * FROM jobs WHERE state = ? ORDER BY id", (state,)
            )
        return [self._row_to_job(row) for row in rows.fetchall()]

    def by_key(self, key: str) -> Optional[Job]:
        """The newest job for ``key`` (any state), or None."""
        row = self._db.execute(
            "SELECT * FROM jobs WHERE key = ? ORDER BY id DESC LIMIT 1",
            (key,),
        ).fetchone()
        return self._row_to_job(row) if row is not None else None

    def next_eta(self) -> Optional[float]:
        """Earliest ``next_run_at`` among QUEUED jobs (None when empty)."""
        row = self._db.execute(
            "SELECT MIN(next_run_at) FROM jobs WHERE state = ?", (QUEUED,)
        ).fetchone()
        return row[0]

    def state_counts(self) -> Dict[str, int]:
        counts = {state: 0 for state in STATES}
        for state, n in self._db.execute(
            "SELECT state, COUNT(*) FROM jobs GROUP BY state"
        ).fetchall():
            counts[state] = n
        return counts

    def counters(self) -> Dict[str, int]:
        """Durable incident counters: retries, resumes, shed, deduped,
        recovered, corrupt_rows, crashes (absent names read as 0)."""
        base = {
            name: 0
            for name in (
                "retries",
                "resumes",
                "shed",
                "deduped",
                "recovered",
                "corrupt_rows",
                "crashes",
            )
        }
        for name, value in self._db.execute(
            "SELECT name, value FROM counters"
        ).fetchall():
            base[name] = value
        return base


@dataclass(frozen=True)
class SubmitOutcome:
    """What :meth:`JobStore.submit` admitted: the (possibly pre-existing)
    job, and whether this submission joined it instead of creating it."""

    job: Job
    deduped: bool


class _Transaction:
    """``BEGIN IMMEDIATE`` ... ``COMMIT``/``ROLLBACK`` context manager.

    Re-entrant within one store (SQLite rejects nested BEGIN): an inner
    use while a transaction is open becomes a no-op member of the outer
    one."""

    def __init__(self, db: sqlite3.Connection):
        self._db = db
        self._nested = False

    def __enter__(self) -> "_Transaction":
        if self._db.in_transaction:
            self._nested = True
            return self
        self._db.execute("BEGIN IMMEDIATE")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._nested:
            return
        if exc_type is None:
            self._db.execute("COMMIT")
        else:
            self._db.execute("ROLLBACK")
