"""Shared retry policy: bounded attempts, exponential backoff, jitter.

One policy object answers the three questions every retrying caller in
this repo has to ask — *should* this failure be retried (classification
through the :mod:`repro.experiments.errors` taxonomy), *how many* times
(bounded attempts), and *when* (exponential backoff with deterministic
jitter) — so the job supervisor, the pool-dispatch retry in
:mod:`repro.experiments.parallel`, and any future caller agree on the
failure story instead of each hand-rolling a slightly different one.

Jitter is **deterministic**: it is derived from a hash of the caller's
token (typically a job key) and the attempt number, never from a live
RNG or the clock.  Two runs of the same failing job back off on the same
schedule, which keeps service tests reproducible, while different jobs
still de-synchronize (the point of jitter).

Kept import-light on purpose — only the error taxonomy — because
``repro.experiments.parallel`` imports this module and the heavier
service modules import ``parallel`` back.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import FrozenSet

from repro.experiments.errors import (
    CATEGORY_CORRUPT,
    FAIL_FAST_CATEGORIES,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with capped exponential backoff + jitter.

    ``fail_fast`` categories (config mistakes, shape bugs, corrupted
    specs) never retry: re-running a wrong configuration produces the
    same wrong answer, only later.  Everything else — transient pool
    deaths, killed workers, stalled heartbeats, resource pressure — is
    presumed transient and retries up to ``max_attempts`` total
    executions.
    """

    max_attempts: int = 3
    """Total executions allowed (first attempt included), not re-tries."""
    base_delay: float = 0.5
    """Backoff before the second attempt, in seconds."""
    max_delay: float = 30.0
    """Backoff cap; the exponential curve clips here."""
    jitter: float = 0.25
    """Max relative delay perturbation (0.25 = +/-25%), deterministically
    derived from (token, attempt)."""
    fail_fast: FrozenSet[str] = field(default=FAIL_FAST_CATEGORIES)
    """Failure categories that go straight to DEAD, no retry."""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")

    def retryable(self, category: str) -> bool:
        """Whether a failure of this category is worth another attempt."""
        return category not in self.fail_fast

    def gives_up(self, attempts: int, category: str) -> bool:
        """True when a job that has run ``attempts`` times and just failed
        with ``category`` should be declared dead."""
        if not self.retryable(category):
            return True
        return attempts >= self.max_attempts

    def delay(self, attempts: int, token: str = "") -> float:
        """Seconds to wait before the attempt after ``attempts`` failures.

        ``base_delay * 2^(attempts-1)`` capped at ``max_delay``, then
        perturbed by up to ``+/- jitter`` — the perturbation is a pure
        function of ``(token, attempts)`` so schedules replay exactly.
        """
        if attempts < 1:
            return 0.0
        raw = min(self.max_delay, self.base_delay * (2 ** (attempts - 1)))
        if not self.jitter or raw == 0:
            return raw
        digest = hashlib.sha256(f"{token}\0{attempts}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)  # [0, 1)
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))


DEFAULT_POLICY = RetryPolicy()
"""The service default: 3 total attempts, 0.5 s -> 1 s backoff."""

FAST_POLICY = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.5)
"""Tight-loop variant for tests and smoke tools (same shape, short
waits)."""

__all__ = [
    "CATEGORY_CORRUPT",
    "DEFAULT_POLICY",
    "FAST_POLICY",
    "RetryPolicy",
]
