"""The worker-fleet supervisor: spawn, watch, kill, retry, resume.

A :class:`Supervisor` drains a :class:`~repro.service.store.JobStore` by
claiming one job at a time and executing it in a **separate worker
process** (never in-process: a worker that segfaults, leaks, or is
OOM-killed must not take the service down with it).  While a worker
runs, the supervisor watches two signals:

* **process liveness** — a worker that exits without recording a result
  died uncleanly (``kill -9``, OOM); its attempt is recorded as
  :data:`~repro.experiments.errors.CATEGORY_WORKER_DEATH`;
* **heartbeats** — a worker thread stamps the job row every
  ``heartbeat_interval`` seconds; a row stale past
  ``heartbeat_timeout`` marks the worker *hung* and the supervisor
  SIGKILLs and replaces it (:data:`~repro.experiments.errors.
  CATEGORY_STALLED`).

Either way the retry decision goes through the shared
:class:`~repro.service.retry.RetryPolicy`: fail-fast categories (bad
config, shape bugs, corrupt specs) go straight to ``DEAD``; transient
ones re-queue with exponential backoff — and, crucially, with a **resume
point**: every job gets a private checkpoint namespace
(``checkpoint_root/job-<key16>/``), the worker exports it as
``$REPRO_CHECKPOINT_DIR``, and any checkpoint-capable figure
(``run_setup`` figures, ``fig11``) snapshots into it as it runs.  A
retry therefore restarts from the newest snapshot, so a ``kill -9``
mid-run costs at most one checkpoint cadence — and because every
simulation is deterministic, the final figure is **bit-identical** to an
uninterrupted run (the result digest in the store proves it).

After any unclean worker death the supervisor also recycles this
process's module-level warm pool if it broke
(:func:`repro.experiments.parallel.recycle_if_broken`), so a service
host that also fans figures out over ``--jobs`` never inherits a
poisoned executor.

Observability: when ``SupervisorConfig.spool_root`` is set, every worker
gets a per-job trace spool directory (``spool_root/job-<key16>/``) and a
:class:`~repro.obsv.tracer.TraceContext` through the environment; the
worker enables tracing with a crash-safe
:class:`~repro.obsv.spool.TraceSink`, the heartbeat thread pushes live
epoch progress into the job row, and on any failed settle the
supervisor's **flight recorder** salvages the victim's last spooled
events into ``<result>.crash.json`` (:mod:`repro.obsv.flight`).  With
``spool_root`` unset none of this exists — workers run exactly as
before.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from repro import obsv
from repro.experiments.errors import (
    CATEGORY_STALLED,
    CATEGORY_WORKER_DEATH,
    classify,
)
from repro.service.retry import DEFAULT_POLICY, RetryPolicy
from repro.service.store import (
    DONE,
    FAILED,
    RUNNING,
    Job,
    JobStore,
)

ENV_STALL_HEARTBEAT = "REPRO_SERVICE_STALL_HEARTBEAT"
"""Chaos hook: a worker seeing this env var beats once and then goes
silent, so the supervisor's hung-worker path can be exercised on
demand (see :mod:`repro.faults.service_chaos`)."""


def _emit_job(name: str, data: Dict[str, Any]) -> None:
    tracer = obsv.TRACER
    if tracer is not None:
        tracer.emit(obsv.KIND_JOB, name, data)


# -- the worker process -----------------------------------------------------


def _push_progress(store: JobStore, job_id: int) -> None:
    """Mirror the tracer's latest ``progress`` payload into the job row
    (no-op while tracing is off or before the first epoch)."""
    tracer = obsv.TRACER
    if tracer is None or not tracer.progress:
        return
    payload = tracer.progress
    try:
        store.update_progress(
            job_id,
            int(payload.get("done", 0)),
            int(payload.get("total", 0)),
            float(payload.get("events_per_s", 0.0)),
            payload.get("eta_s"),
        )
    except Exception:  # pragma: no cover - progress must never kill work
        pass


def _heartbeat_loop(
    db_path: str, job_id: int, interval: float, stop: threading.Event
) -> None:
    """Worker-side liveness thread (its own store connection — sqlite3
    connections are not shared across threads).  Each beat also pushes
    the tracer's live progress snapshot onto the row, which is what
    ``tools/service.py watch`` renders."""
    stall = os.environ.get(ENV_STALL_HEARTBEAT, "") not in ("", "0")
    try:
        store = JobStore(db_path, recover=False)
    except Exception:  # pragma: no cover - heartbeat must never kill work
        return
    try:
        while not stop.is_set():
            store.heartbeat(job_id)
            _push_progress(store, job_id)
            if stall:
                return  # chaos: one beat, then silence
            stop.wait(interval)
    finally:
        store.close()


def run_worker(
    db_path: str,
    job_id: int,
    spec: Dict[str, Any],
    result_path: str,
    checkpoint_dir: str,
    environ: Dict[str, str],
    heartbeat_interval: float,
) -> None:
    """Worker process body: execute one figure job start to finish.

    Exports the job's private checkpoint namespace (so any
    checkpoint-capable runner snapshots/resumes automatically), runs the
    registry runner, pickles the result atomically, and records the
    outcome — success *with* a SHA-256 result digest, or a classified
    failure — in the store.  Never raises: the row is the protocol.
    """
    os.environ.update(environ)
    os.environ["REPRO_CHECKPOINT_DIR"] = checkpoint_dir
    from repro.experiments import runcache

    runcache.set_cache(None)  # re-read cache settings from the env above
    # Cross-process tracing: spool + context arrive via the environment
    # (no-op when the supervisor runs without a spool_root).
    obsv.enable_from_env()

    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(db_path, job_id, heartbeat_interval, stop),
        daemon=True,
    )
    beat.start()
    store = JobStore(db_path, recover=False)
    try:
        from repro.experiments.figures import REGISTRY

        figure = spec.get("figure")
        if figure not in REGISTRY:
            raise ValueError(f"unknown figure: {figure!r}")
        kwargs = dict(spec.get("kwargs") or {})
        result = REGISTRY[figure](**kwargs)
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        path = Path(result_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)
        _push_progress(store, job_id)  # land the final 100% row
        store.mark_done(job_id, str(path), digest)
    except Exception as exc:  # noqa: BLE001 - recorded, never raised
        try:
            store.mark_failed(
                job_id,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
                classify(exc),
            )
        except Exception:  # pragma: no cover - row race on teardown
            pass
    finally:
        stop.set()
        tracer = obsv.TRACER
        if tracer is not None and tracer.sink is not None:
            tracer.sink.close()
        store.close()


# -- the supervisor ---------------------------------------------------------


@dataclass
class SupervisorConfig:
    """Knobs for one supervisor instance."""

    results_dir: str
    checkpoint_root: str
    retry: RetryPolicy = DEFAULT_POLICY
    heartbeat_interval: float = 0.2
    heartbeat_timeout: float = 60.0
    """Seconds without a heartbeat before a worker is declared hung and
    SIGKILLed.  Generous by default: a heartbeat is a single SQLite
    UPDATE, so only a truly wedged worker misses this."""
    poll_interval: float = 0.05
    worker_env: Dict[str, str] = field(default_factory=dict)
    """Extra environment for workers (cache settings, chaos switches)."""
    mp_context: str = "fork"
    """Multiprocessing start method; falls back to the platform default
    where unavailable."""
    spool_root: Optional[str] = None
    """Trace-spool root; when set, workers shard their trace into
    ``spool_root/job-<key16>/`` and every failed settle produces a
    flight-recorder crash report.  None (default) = tracing stays off."""
    crash_events: int = 128
    """How many salvaged tail events a crash report carries."""


@dataclass
class DrainReport:
    """What one :meth:`Supervisor.drain` pass accomplished."""

    executed: int = 0
    done: int = 0
    dead: int = 0
    retries: int = 0
    resumes: int = 0
    kills: int = 0
    wall_seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.executed} attempts -> {self.done} done, "
            f"{self.dead} dead; {self.retries} retries "
            f"({self.resumes} from checkpoint), {self.kills} kills, "
            f"{self.wall_seconds:.1f}s"
        )


class Supervisor:
    """Claims jobs from the store and runs each in a supervised worker."""

    def __init__(
        self,
        store: JobStore,
        config: SupervisorConfig,
        chaos=None,
    ) -> None:
        self.store = store
        self.config = config
        self.chaos = chaos
        self.report = DrainReport()
        try:
            self._mp = multiprocessing.get_context(config.mp_context)
        except ValueError:  # pragma: no cover - non-fork platform
            self._mp = multiprocessing.get_context()

    # -- paths ---------------------------------------------------------------

    def checkpoint_dir(self, job: Job) -> Path:
        """The job's private checkpoint namespace (keyed on the job's
        content key, so a resubmitted identical job finds the snapshots
        an earlier DEAD incarnation left behind)."""
        return Path(self.config.checkpoint_root) / f"job-{job.key[:16]}"

    def result_path(self, job: Job) -> Path:
        return Path(self.config.results_dir) / f"{job.key}.pkl"

    def spool_dir(self, job: Job) -> Optional[Path]:
        """The job's trace-spool directory (None when spooling is off).
        Keyed like the checkpoint namespace so retries of one job land
        their shards together."""
        if self.config.spool_root is None:
            return None
        return Path(self.config.spool_root) / f"job-{job.key[:16]}"

    # -- one job -------------------------------------------------------------

    def _spawn(self, job: Job) -> multiprocessing.Process:
        environ = dict(self.config.worker_env)
        if self.chaos is not None:
            environ.update(self.chaos.worker_env())
        spool = self.spool_dir(job)
        if spool is not None:
            environ[obsv.ENV_TRACE_SPOOL] = str(spool)
            environ[obsv.ENV_TRACE_CONTEXT] = obsv.TraceContext(
                run_id=job.key[:16], job_id=job.id, attempt=job.attempts
            ).to_env()
        process = self._mp.Process(
            target=run_worker,
            args=(
                str(self.store.path),
                job.id,
                job.spec,
                str(self.result_path(job)),
                str(self.checkpoint_dir(job)),
                environ,
                self.config.heartbeat_interval,
            ),
            name=f"repro-job-{job.id}",
        )
        process.start()
        return process

    def run_job(self, job: Job) -> Job:
        """Execute one claimed job to a settled row (DONE, DEAD, or
        re-QUEUED for a later attempt).  Returns the final row."""
        self.report.executed += 1
        process = self._spawn(job)
        worker_pid = process.pid or 0
        if process.pid:
            self.store.set_owner(job.id, process.pid)
        kill_category: Optional[str] = None
        last_beat = time.time()
        while process.is_alive():
            if self.chaos is not None and self.chaos.maybe_kill(self, job, process):
                kill_category = CATEGORY_WORKER_DEATH
                self.report.kills += 1
                _emit_job("kill", {"job": job.id, "reason": "chaos"})
                break
            row = self.store.job(job.id)
            if row.state != RUNNING:
                break  # worker recorded its outcome; let it finish dying
            if row.heartbeat is not None:
                last_beat = max(last_beat, row.heartbeat)
            if time.time() - last_beat > self.config.heartbeat_timeout:
                process.kill()
                kill_category = CATEGORY_STALLED
                self.report.kills += 1
                _emit_job("kill", {"job": job.id, "reason": "stalled"})
                break
            time.sleep(self.config.poll_interval)
        process.join()
        process.close()
        return self._settle(job, kill_category, worker_pid)

    def _settle(
        self, job: Job, kill_category: Optional[str], worker_pid: int = 0
    ) -> Job:
        """Turn whatever the worker left behind into a final transition."""
        from repro.experiments import parallel

        row = self.store.job(job.id)
        if row.state == DONE:
            self.report.done += 1
            return row
        crash_reason = "retryable_failure"
        if row.state == RUNNING:
            # Unclean death: the worker never got to record its outcome.
            category = kill_category or CATEGORY_WORKER_DEATH
            crash_reason = (
                "stale_heartbeat"
                if kill_category == CATEGORY_STALLED
                else "worker_death"
            )
            self.store.count_crash()
            row = self.store.mark_failed(
                job.id, f"worker died without recording a result", category
            )
            # The worker cannot have broken this process's warm pool, but
            # a service host that also dispatches --jobs batches can have
            # a broken executor sitting around; replace it while we are
            # already in failure handling.
            parallel.recycle_if_broken()
        if row.state != FAILED:  # pragma: no cover - concurrent settle
            return row
        self._flight_record(row, crash_reason, worker_pid)
        return self._decide_retry(row)

    def _flight_record(
        self, row: Job, reason: str, worker_pid: int
    ) -> Optional[Path]:
        """Salvage the dead worker's spooled tail into a crash report.

        Best-effort: the report is diagnostics, so nothing here may break
        the settle path."""
        spool = self.spool_dir(row)
        if spool is None or not worker_pid:
            return None
        from dataclasses import asdict

        from repro.obsv.flight import write_crash_report

        try:
            path = write_crash_report(
                self.result_path(row),
                job=asdict(row),
                reason=reason,
                category=row.category or "runtime",
                spool_root=spool,
                pid=worker_pid,
                error=row.error or "",
                limit=self.config.crash_events,
            )
        except Exception:  # pragma: no cover - diagnostics only
            return None
        _emit_job(
            "crash_report",
            {"job": row.id, "reason": reason, "path": str(path)},
        )
        return path

    def _decide_retry(self, row: Job) -> Job:
        """FAILED -> QUEUED (with backoff + resume point) or DEAD."""
        policy = self.config.retry
        category = row.category or "runtime"
        attempts = row.attempts
        if policy.gives_up(attempts, category) or attempts >= row.max_attempts:
            self.report.dead += 1
            return self.store.mark_dead(
                row.id,
                row.error or f"gave up after {attempts} attempts",
                category,
            )
        from repro.sim.checkpoint import newest_epoch

        resume_epoch = newest_epoch(self.checkpoint_dir(row))
        delay = policy.delay(attempts, token=row.key)
        self.report.retries += 1
        if resume_epoch is not None:
            self.report.resumes += 1
        return self.store.requeue(row.id, delay=delay, resume_epoch=resume_epoch)

    # -- the loop ------------------------------------------------------------

    def settle_failed(self) -> None:
        """Apply the retry policy to FAILED rows left by a supervisor
        that crashed between recording a failure and deciding on it."""
        for row in self.store.jobs(FAILED):
            self._decide_retry(row)

    def drain(
        self,
        max_jobs: Optional[int] = None,
        wall_limit: Optional[float] = None,
    ) -> DrainReport:
        """Run until the queue settles (every job DONE or DEAD), an
        attempt budget is spent, or a wall-clock limit passes."""
        started = time.time()
        self.settle_failed()
        executed_before = self.report.executed
        while True:
            if wall_limit is not None and time.time() - started > wall_limit:
                break
            if (
                max_jobs is not None
                and self.report.executed - executed_before >= max_jobs
            ):
                break
            job = self.store.claim()
            if job is not None:
                self.run_job(job)
                continue
            eta = self.store.next_eta()
            if eta is None:
                break  # nothing queued, nothing failed: settled
            time.sleep(
                min(max(0.0, eta - time.time()), self.config.poll_interval)
                or self.config.poll_interval
            )
        self.report.wall_seconds = time.time() - started
        return self.report
