"""Cache Allocation Technology (CAT) model.

Mirrors the real constraint set of Intel CAT on the paper's CPU:

* a fixed number of classes of service (CLOS);
* each CLOS has a capacity bitmask over the 11 LLC ways that must be
  **contiguous** and non-empty;
* each core is associated with exactly one CLOS;
* masks constrain only *allocation* (victim selection) — hits anywhere in
  the LLC still succeed, and DDIO fills ignore CAT entirely (they use the
  IIO way mask).  Both properties are load-bearing for the paper: the former
  makes "changing way affinity only affects newly allocated lines" (§5.5)
  true, the latter is why latent contention exists at all.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro import obsv
from repro.platform import DEFAULT_PLATFORM, MAX_CBM_BITS


class ClosConfigError(ValueError):
    """Raised for invalid CLOS masks or associations."""


class TransientClosError(ClosConfigError):
    """A CLOS write that failed in transit (a glitched ``pqos`` invocation,
    an MSR write that did not stick).  Unlike its parent this does not mean
    the request was invalid — the previous mask stays active and the write
    is safe to retry.  Raised only by the fault-injection layer."""


def contiguous_mask(first_way: int, last_way: int) -> Tuple[int, ...]:
    """Build the inclusive way range [first_way, last_way], like way[m:n]
    in the paper's notation."""
    if first_way > last_way:
        raise ClosConfigError(f"empty way range [{first_way}:{last_way}]")
    return tuple(range(first_way, last_way + 1))


class CacheAllocation:
    """Per-socket CAT state: CLOS masks plus core associations."""

    __slots__ = ("ways", "num_clos", "_masks", "_core_clos", "_clos_tenant")

    def __init__(self, ways: int = DEFAULT_PLATFORM.llc_ways, num_clos: int = 16):
        if ways > MAX_CBM_BITS:
            raise ClosConfigError(
                f"CBM width {ways} exceeds the {MAX_CBM_BITS}-bit register"
            )
        self.ways = ways
        self.num_clos = num_clos
        full = tuple(range(ways))
        self._masks: Dict[int, Tuple[int, ...]] = {c: full for c in range(num_clos)}
        self._core_clos: Dict[int, int] = {}
        self._clos_tenant: Dict[int, str] = {}

    # -- mask management -----------------------------------------------------

    def set_mask(self, clos: int, ways: Sequence[int]) -> None:
        mask = self.validate_mask(clos, ways)
        self._masks[clos] = mask
        if obsv.TRACER is not None:
            obsv.TRACER.emit(
                obsv.KIND_MASK,
                f"clos{clos}",
                {"clos": clos, "first": mask[0], "last": mask[-1]},
            )

    def validate_mask(self, clos: int, ways: Sequence[int]) -> Tuple[int, ...]:
        """Check a prospective mask without committing it.

        Returns the normalized mask tuple or raises :class:`ClosConfigError`.
        Split out from :meth:`set_mask` so layers that defer or fail commits
        (the fault injector) can still reject invalid requests immediately —
        an invalid mask is a caller bug, never a transient condition.
        """
        self._validate_clos(clos)
        mask = tuple(sorted(set(ways)))
        if not mask:
            raise ClosConfigError("CLOS mask may not be empty")
        if mask[0] < 0 or mask[-1] >= self.ways:
            raise ClosConfigError(f"mask {mask} outside 0..{self.ways - 1}")
        if mask != tuple(range(mask[0], mask[-1] + 1)):
            raise ClosConfigError(f"CAT requires contiguous masks, got {mask}")
        return mask

    def mask(self, clos: int) -> Tuple[int, ...]:
        self._validate_clos(clos)
        return self._masks[clos]

    def _validate_clos(self, clos: int) -> None:
        if not 0 <= clos < self.num_clos:
            raise ClosConfigError(f"CLOS {clos} outside 0..{self.num_clos - 1}")

    # -- core association ------------------------------------------------------

    def associate(self, core: int, clos: int) -> None:
        self._validate_clos(clos)
        self._core_clos[core] = clos

    def clos_of(self, core: int) -> int:
        return self._core_clos.get(core, 0)

    def ways_for_core(self, core: int) -> Tuple[int, ...]:
        """The ways in which this core's fills may pick victims."""
        return self._masks[self._core_clos.get(core, 0)]

    def associations(self) -> Dict[int, int]:
        return dict(self._core_clos)

    # -- tenant accounting -----------------------------------------------------
    # Real RDT has no notion of tenants — `pqos` just numbers CLOSes — so
    # operators keep a side table mapping CLOS ids to owners.  This is that
    # table: pure bookkeeping, consulted by reports and the IOCA baseline,
    # never by the allocation model itself.

    def label(self, clos: int, tenant: str) -> None:
        """Record that ``clos`` is owned by ``tenant`` (bookkeeping only)."""
        self._validate_clos(clos)
        self._clos_tenant[clos] = tenant

    def tenant_of(self, clos: int) -> str:
        """Owner label of ``clos`` (empty string when unlabeled)."""
        self._validate_clos(clos)
        return self._clos_tenant.get(clos, "")

    def labels(self) -> Dict[int, str]:
        return dict(self._clos_tenant)

    def tenant_masks(self) -> Dict[str, Tuple[int, ...]]:
        """Union of LLC ways currently allocated to each labeled tenant."""
        merged: Dict[str, set] = {}
        for clos, tenant in self._clos_tenant.items():
            merged.setdefault(tenant, set()).update(self._masks[clos])
        return {
            tenant: tuple(sorted(ways)) for tenant, ways in merged.items()
        }
