"""Memory Bandwidth Allocation (MBA) model.

The second RDT resource-control knob on the paper's CPUs (the paper's §5.7
notes A4 can coordinate with "existing system monitoring tools"; MBA is the
natural enforcement lever when the memory-bandwidth guardrail of §5.5
trips).  Real MBA programs a per-CLOS *delay value* (0–90%, coarse steps)
that rate-limits a core's L2-miss requests toward memory.

Modelled effect: a core in a throttled CLOS sees its memory-access latency
scaled by ``1 / (1 - delay)`` — the request spends the extra time parked in
the throttling queue.  Unthrottled CLOS (delay 0) are unaffected.
"""

from __future__ import annotations

from typing import Dict

from repro.rdt.cat import ClosConfigError

VALID_DELAYS = tuple(range(0, 91, 10))
"""Real MBA exposes delay values in coarse 10% steps, 0..90."""


class MemoryBandwidthAllocation:
    """Per-CLOS memory throttling."""

    def __init__(self, num_clos: int = 16):
        self.num_clos = num_clos
        self._delays: Dict[int, int] = {c: 0 for c in range(num_clos)}

    def set_delay(self, clos: int, delay_percent: int) -> None:
        """Program ``clos``'s delay value (one of the coarse MBA steps)."""
        self._validate_clos(clos)
        if delay_percent not in VALID_DELAYS:
            raise ClosConfigError(
                f"MBA delay must be one of {VALID_DELAYS}, got {delay_percent}"
            )
        self._delays[clos] = delay_percent

    def delay_of(self, clos: int) -> int:
        self._validate_clos(clos)
        return self._delays[clos]

    def latency_factor(self, clos: int) -> float:
        """Multiplier applied to a throttled core's memory latency."""
        delay = self._delays.get(clos, 0)
        return 1.0 / (1.0 - delay / 100.0)

    def _validate_clos(self, clos: int) -> None:
        if not 0 <= clos < self.num_clos:
            raise ClosConfigError(f"CLOS {clos} outside 0..{self.num_clos - 1}")

    def delays(self) -> Dict[int, int]:
        return dict(self._delays)
