"""Cache Monitoring Technology (CMT)-style LLC occupancy reporting.

Walks the simulated LLC and reports per-stream and per-way occupancy.
The real PCM exposes per-RMID occupancy; experiments here use it to verify
zone containment (e.g. that LPW lines really live inside LP Zone) and to
visualise contention.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cache.llc import LastLevelCache


class OccupancyMonitor:
    """Inspection helper over the LLC data array."""

    def __init__(self, llc: LastLevelCache):
        self.llc = llc

    def per_stream(self) -> Dict[str, int]:
        return self.llc.occupancy_by_stream()

    def per_way(self) -> Dict[int, int]:
        return self.llc.occupancy_by_way()

    def per_stream_and_way(self) -> Dict[Tuple[str, int], int]:
        counts: Dict[Tuple[str, int], int] = {}
        for line in self.llc.resident():
            key = (line.stream, line.way)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def stream_footprint_in_ways(self, stream: str, ways: Tuple[int, ...]) -> int:
        """Lines of ``stream`` currently resident in the given ways."""
        wayset = set(ways)
        return sum(
            1
            for line in self.llc.resident()
            if line.stream == stream and line.way in wayset
        )
