"""Resource Director Technology models: CAT way masks, MBA throttling,
and CMT occupancy monitoring."""

from repro.rdt.cat import CacheAllocation, ClosConfigError
from repro.rdt.mba import MemoryBandwidthAllocation
from repro.rdt.monitor import OccupancyMonitor

__all__ = [
    "CacheAllocation",
    "ClosConfigError",
    "MemoryBandwidthAllocation",
    "OccupancyMonitor",
]
