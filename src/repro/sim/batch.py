"""Process-wide switch for batched (vectorized) event dispatch.

Stage 2 of the perf overhaul coalesces homogeneous event runs — DMA
write bursts and CPU access streaks — into batch descriptors processed
with numpy array operations.  Batching is a pure performance mode: the
scalar and batched paths must produce bit-identical counters, trace
events, and cache state, so it is safe to flip at any time.

The switch lives here (not on any simulator instance) because device
models and the cache hierarchy snapshot it at construction; tests and
the bench harness toggle it per-run via :func:`set_enabled` or the
``REPRO_BATCH_DISABLE`` environment variable.

numpy is an optional accelerator, not a dependency: when it is missing
the batched paths quietly degrade to tight scalar loops over the same
batch descriptors, which still amortizes the per-event dispatch.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised implicitly by every batched test
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None

np = _np
HAVE_NUMPY = _np is not None

#: Bursts shorter than this stay on scalar dispatch entirely: forming a
#: batch descriptor costs more than it saves below a handful of events.
MIN_BURST = 4

#: Bursts shorter than this are not worth the array round-trip; the
#: scalar loop wins on constant factors.  Chosen from the micro bench:
#: crossover sits between 8 and 16 lines on the reference machine.
NUMPY_MIN_BURST = 16

_enabled = os.environ.get("REPRO_BATCH_DISABLE", "") in ("", "0")


def enabled() -> bool:
    """True when batched dispatch is globally on (default)."""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Flip the process-wide switch; returns the previous value.

    Only affects objects constructed afterwards, plus any object whose
    ``set_batching`` method is called explicitly — construction-time
    snapshots are the point of Stage 1, and re-reading a module global
    per event would reintroduce the exact indirection Stage 1 removed.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


def use_numpy(n: int) -> bool:
    """Whether a burst of ``n`` homogeneous events should go through numpy."""
    return HAVE_NUMPY and n >= NUMPY_MIN_BURST
