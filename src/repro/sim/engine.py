"""Event-driven simulation core.

Two styles of actors are supported:

* **Callbacks** — ``sim.schedule(when, fn)`` runs ``fn(sim)`` at ``when``.
* **Processes** — Python generators that ``yield`` a non-negative delay in
  cycles.  The engine resumes the generator after that many cycles.  This is
  how CPU cores, DMA engines, and the A4 daemon are written: the substrate
  computes how long an action takes (e.g. a memory access under contention)
  and the process simply yields that cost.

The clock is an integer-friendly float.  Determinism is guaranteed by a
monotonically increasing sequence number used as a heap tie-breaker.

Internally the heap holds plain ``[time, seq, action]`` lists, so ordering
is resolved by C-level list comparison on the unique ``(time, seq)`` prefix
— the ``action`` slot is never compared.  Cancellation nulls the action
slot in place; :class:`Event` is a thin handle over the queued entry.

Process resumes take a fast path: their entries are ``[time, seq, body,
process]`` (the generator itself in the action slot), the run loop resumes
the generator inline — no per-event trampoline frame — and the popped
entry list is reused for the re-schedule, so steady-state process
execution allocates nothing.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Callable, Generator, Iterable, Optional

ProcessBody = Generator[float, None, None]

_TIME, _SEQ, _ACTION = 0, 1, 2


class Event:
    """Handle over a scheduled callback.  Ordered by (time, seq)."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        return self._entry[_SEQ]

    @property
    def action(self) -> Optional[Callable[["Simulator"], None]]:
        return self._entry[_ACTION]

    @property
    def cancelled(self) -> bool:
        return self._entry[_ACTION] is None

    def cancel(self) -> None:
        """Mark this event dead; the engine discards it when popped."""
        self._entry[_ACTION] = None


class Process:
    """A generator-based simulated actor.

    The wrapped generator yields delays (cycles >= 0).  When it returns or
    raises ``StopIteration`` the process is finished; observers registered
    through :meth:`on_finish` are then invoked.
    """

    __slots__ = ("name", "_body", "finished", "_finish_callbacks")

    def __init__(self, name: str, body: ProcessBody):
        self.name = name
        self._body = body
        self.finished = False
        self._finish_callbacks: list[Callable[["Simulator"], None]] = []

    def on_finish(self, callback: Callable[["Simulator"], None]) -> None:
        self._finish_callbacks.append(callback)

    def _step(self, sim: "Simulator") -> None:
        """Resume the process once (slow path; the engine's run loops resume
        process entries inline instead of calling this)."""
        if self.finished:
            return
        try:
            delay = next(self._body)
        except StopIteration:
            self.finished = True
            for callback in self._finish_callbacks:
                callback(sim)
            return
        if delay < 0:
            raise ValueError(
                f"process {self.name!r} yielded negative delay {delay!r}"
            )
        heappush(sim._queue, [sim.now + delay, next(sim._seq), self._body, self])


class Simulator:
    """The event loop.

    Typical usage::

        sim = Simulator()
        sim.spawn("worker", worker_body(sim))
        sim.run_until(100_000)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[list] = []
        self._seq = itertools.count()
        self.processes: list[Process] = []
        self.events_executed: int = 0
        """Cumulative count of fired (non-cancelled) events; the perf
        harness divides this by wall time for simulated-events/second."""

    # -- scheduling -------------------------------------------------------

    def schedule(self, when: float, action: Callable[["Simulator"], None]) -> Event:
        """Schedule ``action(sim)`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past ({when} < {self.now})")
        entry = [when, next(self._seq), action]
        heappush(self._queue, entry)
        return Event(entry)

    def call_in(self, delay: float, action: Callable[["Simulator"], None]) -> Event:
        """Schedule ``action`` ``delay`` cycles from now."""
        return self.schedule(self.now + delay, action)

    def spawn(
        self, name: str, body: ProcessBody, start_at: Optional[float] = None
    ) -> Process:
        """Register a generator process and schedule its first step."""
        process = Process(name, body)
        self.processes.append(process)
        when = self.now if start_at is None else start_at
        if when < self.now:
            raise ValueError(f"cannot schedule into the past ({when} < {self.now})")
        heappush(self._queue, [when, next(self._seq), body, process])
        return process

    def every(
        self,
        interval: float,
        action: Callable[["Simulator"], None],
        start_at: Optional[float] = None,
    ) -> None:
        """Run ``action`` periodically, forever (bounded by ``run_until``)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self.now + interval if start_at is None else start_at

        def tick(sim: "Simulator") -> None:
            action(sim)
            sim.schedule(sim.now + interval, tick)

        self.schedule(first, tick)

    # -- execution --------------------------------------------------------

    def _resume_process(self, entry: list) -> None:
        """Resume the process in ``entry`` and re-queue it (entry reused)."""
        body = entry[_ACTION]
        try:
            delay = next(body)
        except StopIteration:
            process = entry[3]
            process.finished = True
            for callback in process._finish_callbacks:
                callback(self)
            return
        if delay < 0:
            raise ValueError(
                f"process {entry[3].name!r} yielded negative delay {delay!r}"
            )
        entry[_TIME] = self.now + delay
        entry[_SEQ] = next(self._seq)
        heappush(self._queue, entry)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle."""
        queue = self._queue
        while queue:
            entry = heappop(queue)
            action = entry[_ACTION]
            if action is None:
                continue
            self.now = entry[_TIME]
            self.events_executed += 1
            if len(entry) == 4:
                self._resume_process(entry)
            else:
                action(self)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events with time <= ``end_time`` and advance the clock there."""
        queue = self._queue
        pop = heappop
        push = heappush
        seq = self._seq
        executed = 0
        try:
            while queue and queue[0][_TIME] <= end_time:
                entry = pop(queue)
                action = entry[_ACTION]
                if action is None:
                    continue
                self.now = entry[_TIME]
                executed += 1
                if len(entry) == 4:
                    # Inlined process resume: the generator is the action;
                    # the popped entry is reused for the re-schedule.
                    try:
                        delay = next(action)
                    except StopIteration:
                        process = entry[3]
                        process.finished = True
                        for callback in process._finish_callbacks:
                            callback(self)
                        continue
                    if delay < 0:
                        raise ValueError(
                            f"process {entry[3].name!r} yielded negative "
                            f"delay {delay!r}"
                        )
                    entry[_TIME] = self.now + delay
                    entry[_SEQ] = next(seq)
                    push(queue, entry)
                else:
                    action(self)
        finally:
            self.events_executed += executed
        if self.now < end_time:
            self.now = end_time

    def run(self, max_events: int = 10_000_000) -> None:
        """Drain the queue entirely (with a runaway guard)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError("simulation exceeded max_events; likely a livelock")

    def pending(self) -> Iterable[Event]:
        """Live events still queued (for inspection in tests)."""
        return (Event(e) for e in self._queue if e[_ACTION] is not None)
