"""Event-driven simulation core.

Two styles of actors are supported:

* **Callbacks** — ``sim.schedule(when, fn)`` runs ``fn(sim)`` at ``when``.
* **Processes** — Python generators that ``yield`` a non-negative delay in
  cycles.  The engine resumes the generator after that many cycles.  This is
  how CPU cores, DMA engines, and the A4 daemon are written: the substrate
  computes how long an action takes (e.g. a memory access under contention)
  and the process simply yields that cost.

The clock is an integer-friendly float.  Determinism is guaranteed by a
monotonically increasing sequence number used as a heap tie-breaker.

Pending events live in a two-tier bucket queue:

* **Calendar wheel (the fast path).**  Almost every event is a short-delay
  process resume, so the near future — ``WHEEL_SLOTS`` buckets of
  ``WHEEL_GRAIN`` cycles each, anchored at ``_base`` — is kept in a bucket
  array.  Future buckets are unsorted append-only lists; a bucket is sorted
  once when the run loop reaches it and then consumed through an index
  pointer, so the steady state replaces heap sifts with ``list.append``,
  one amortized ``sort`` of a short nearly-sorted run, and plain indexing.
  Inserts that land in the *current* bucket use ``bisect.insort`` bounded
  to the unconsumed suffix, which keeps it sorted in place.
* **Far heap (the fallback).**  Events at or beyond the wheel horizon go to
  a plain heapq.  Whenever the wheel drains, it is re-anchored at ``now``
  and near-future entries migrate from the heap into buckets.

The bucket index is a monotone function of time and each bucket is consumed
in ``(time, seq)`` order, so the pop sequence is bit-identical to a single
heap ordered by ``(time, seq)`` — ``tests/test_engine_wheel.py`` proves
the equivalence against a reference heap scheduler on randomized programs.

Entries are plain ``[time, seq, action]`` lists, so ordering is resolved by
C-level list comparison on the unique ``(time, seq)`` prefix — the
``action`` slot is never compared.  Cancellation nulls the action slot in
place; :class:`Event` is a thin handle over the queued entry.  Process
resumes take a fast path: their entries are ``[time, seq, body, process]``
(the generator itself in the action slot), the run loops resume the
generator inline — no per-event trampoline frame — and the popped entry
list is reused for the re-schedule, so steady-state process execution
allocates nothing.

Reentrancy rule: event actions may schedule, spawn, and cancel freely, but
must not drive the simulator themselves — ``run_until`` guards against
nested calls because the hot loop mirrors queue state in locals while a
bucket is being consumed.
"""

from __future__ import annotations

import itertools
from bisect import insort
from heapq import heappop, heappush
from time import perf_counter as _perf_counter
from typing import Callable, Generator, Iterable, Optional

ProcessBody = Generator[float, None, None]

_TIME, _SEQ, _ACTION = 0, 1, 2


class SnapshotError(RuntimeError):
    """The simulator holds state that cannot be checkpointed.

    Raised while pickling when a pending event is a raw callback or a
    process spawned through :meth:`Simulator.spawn` instead of
    :meth:`Simulator.spawn_restartable` — suspended generator frames are
    not serializable, so only processes with a registered factory (and a
    body written in restartable form) can cross a snapshot."""

WHEEL_SLOTS = 256
"""Buckets in the calendar wheel."""

WHEEL_GRAIN = 16.0
"""Cycles per bucket; the wheel spans ``WHEEL_SLOTS * WHEEL_GRAIN`` cycles.
Sized so the common process delays (tens to a couple hundred cycles, see
the latency ladder in ``repro.config``) land a few buckets ahead and only
rare long sleeps fall through to the far heap."""

_INV_GRAIN = 1.0 / WHEEL_GRAIN
_SPAN = WHEEL_SLOTS * WHEEL_GRAIN
_LAST_SLOT = WHEEL_SLOTS - 1


class Event:
    """Handle over a scheduled callback.  Ordered by (time, seq)."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def seq(self) -> int:
        return self._entry[_SEQ]

    @property
    def action(self) -> Optional[Callable[["Simulator"], None]]:
        return self._entry[_ACTION]

    @property
    def cancelled(self) -> bool:
        return self._entry[_ACTION] is None

    def cancel(self) -> None:
        """Mark this event dead; the engine discards it when popped."""
        self._entry[_ACTION] = None


class Process:
    """A generator-based simulated actor.

    The wrapped generator yields delays (cycles >= 0).  When it returns or
    raises ``StopIteration`` the process is finished; observers registered
    through :meth:`on_finish` are then invoked.
    """

    __slots__ = ("name", "_body", "finished", "_finish_callbacks")

    def __init__(self, name: str, body: ProcessBody):
        self.name = name
        self._body = body
        self.finished = False
        self._finish_callbacks: list[Callable[["Simulator"], None]] = []

    def on_finish(self, callback: Callable[["Simulator"], None]) -> None:
        self._finish_callbacks.append(callback)

    def __getstate__(self):
        # The suspended generator frame is not picklable; restartable
        # processes are rebuilt from their factory on restore
        # (see Simulator.__setstate__), everything else keeps ``None``.
        return (self.name, self.finished, self._finish_callbacks)

    def __setstate__(self, state) -> None:
        self.name, self.finished, self._finish_callbacks = state
        self._body = None

    def _step(self, sim: "Simulator") -> None:
        """Resume the process once (slow path; the engine's run loops resume
        process entries inline instead of calling this)."""
        if self.finished:
            return
        try:
            delay = next(self._body)
        except StopIteration:
            self.finished = True
            for callback in self._finish_callbacks:
                callback(sim)
            return
        if delay < 0:
            raise ValueError(
                f"process {self.name!r} yielded negative delay {delay!r}"
            )
        sim._push([sim.now + delay, next(sim._seq), self._body, self])


class Simulator:
    """The event loop.

    Typical usage::

        sim = Simulator()
        sim.spawn("worker", worker_body(sim))
        sim.run_until(100_000)
    """

    __slots__ = (
        "now",
        "_seq",
        "processes",
        "events_executed",
        "_buckets",
        "_base",
        "_limit",
        "_pos",
        "_pos_end",
        "_bptr",
        "_wheel_len",
        "_far",
        "_running",
        "_factories",
        "profiler",
    )

    def __init__(self) -> None:
        self.now: float = 0.0
        self._seq = itertools.count()
        self.processes: list[Process] = []
        self.events_executed: int = 0
        """Cumulative count of fired (non-cancelled) events; the perf
        harness divides this by wall time for simulated-events/second."""
        self.profiler = None
        """Optional :class:`repro.obsv.profile.PhaseProfiler`.  When set,
        each ``run_until`` window records (wall seconds, events, cycles)
        under the profiler's current label; when ``None`` (the default)
        the only cost is one attribute check per ``run_until`` call."""
        self._factories: dict = {}
        """``name -> (owner, method, args)`` for restartable processes;
        the snapshot protocol rebuilds their generators from these."""
        self._running = False
        self._init_wheel(0.0)

    def _init_wheel(self, base: float) -> None:
        """(Re)build an empty bucket queue anchored at ``base``.

        Invariants: ``_base <= now``; every wheel entry has
        ``time < _limit`` and lives in bucket
        ``int((time - _base) * _INV_GRAIN)``; buckets before ``_pos`` are
        empty; the bucket at ``_pos`` is sorted and consumed up to
        ``_bptr``; ``_wheel_len`` counts unconsumed wheel entries; every
        ``_far`` entry had ``time >= _limit`` when filed.  ``_pos_end`` is
        the end time of the current bucket
        (``_base + (_pos + 1) * grain``) so the hot re-schedule path can
        detect a same-bucket insert with one float compare."""
        self._buckets: list[list] = [[] for _ in range(WHEEL_SLOTS)]
        self._base: float = base
        self._limit: float = base + _SPAN
        self._pos: int = 0
        self._pos_end: float = base + WHEEL_GRAIN
        self._bptr: int = 0
        self._wheel_len: int = 0
        self._far: list[list] = []

    # -- queue internals ---------------------------------------------------

    def _push(self, entry: list) -> None:
        """File ``entry`` into its wheel bucket, or the far heap beyond the
        horizon.  Entries never land before ``_pos``/``_bptr`` because
        scheduling into the past is rejected and the bucket index is a
        monotone function of time."""
        when = entry[_TIME]
        if when < self._limit:
            idx = int((when - self._base) * _INV_GRAIN)
            if idx > _LAST_SLOT:  # float rounding at the horizon edge
                idx = _LAST_SLOT
            bucket = self._buckets[idx]
            if idx == self._pos:
                insort(bucket, entry, self._bptr)
            else:
                bucket.append(entry)
            self._wheel_len += 1
        else:
            heappush(self._far, entry)

    def _rebase(self) -> None:
        """Re-anchor the empty wheel at ``now`` and drain near-future far
        entries into buckets.  Caller guarantees ``_wheel_len == 0``."""
        self._buckets[self._pos].clear()
        self._pos = 0
        self._bptr = 0
        base = self._base = self.now
        self._pos_end = base + WHEEL_GRAIN
        limit = self._limit = base + _SPAN
        far = self._far
        buckets = self._buckets
        count = 0
        while far and far[0][_TIME] < limit:
            entry = heappop(far)
            idx = int((entry[_TIME] - base) * _INV_GRAIN)
            if idx > _LAST_SLOT:
                idx = _LAST_SLOT
            buckets[idx].append(entry)
            count += 1
        if count:
            self._wheel_len = count
            bucket = buckets[0]
            if len(bucket) > 1:
                bucket.sort()

    # -- scheduling -------------------------------------------------------

    def schedule(self, when: float, action: Callable[["Simulator"], None]) -> Event:
        """Schedule ``action(sim)`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past ({when} < {self.now})")
        entry = [when, next(self._seq), action]
        self._push(entry)
        return Event(entry)

    def call_in(self, delay: float, action: Callable[["Simulator"], None]) -> Event:
        """Schedule ``action`` ``delay`` cycles from now."""
        return self.schedule(self.now + delay, action)

    def spawn(
        self, name: str, body: ProcessBody, start_at: Optional[float] = None
    ) -> Process:
        """Register a generator process and schedule its first step."""
        process = Process(name, body)
        self.processes.append(process)
        when = self.now if start_at is None else start_at
        if when < self.now:
            raise ValueError(f"cannot schedule into the past ({when} < {self.now})")
        self._push([when, next(self._seq), body, process])
        return process

    def spawn_restartable(
        self,
        name: str,
        owner: object,
        method: str,
        *args,
        start_at: Optional[float] = None,
    ) -> Process:
        """Spawn ``getattr(owner, method)(*args)`` as a checkpointable
        process.

        The ``(owner, method, args)`` factory is recorded so a restored
        simulator can rebuild the generator (generator frames themselves
        cannot pickle).  The contract on the body: it must be written in
        *restartable* form — all loop-carried state lives in picklable
        objects passed through ``args`` (or on ``owner``), every ``yield``
        sits at the end of its dispatch arm, and the code before the first
        ``yield`` is free of side effects — so that a fresh generator
        first-resumed at the recorded pending time executes exactly what
        the suspended original would have on resume.
        """
        if name in self._factories:
            raise ValueError(f"duplicate restartable process name {name!r}")
        self._factories[name] = (owner, method, tuple(args))
        body = getattr(owner, method)(*args)
        return self.spawn(name, body, start_at=start_at)

    def every(
        self,
        interval: float,
        action: Callable[["Simulator"], None],
        start_at: Optional[float] = None,
    ) -> None:
        """Run ``action`` periodically, forever (bounded by ``run_until``)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self.now + interval if start_at is None else start_at

        def tick(sim: "Simulator") -> None:
            action(sim)
            sim.schedule(sim.now + interval, tick)

        self.schedule(first, tick)

    # -- execution --------------------------------------------------------

    def _resume_process(self, entry: list) -> None:
        """Resume the process in ``entry`` and re-queue it (entry reused)."""
        body = entry[_ACTION]
        try:
            delay = next(body)
        except StopIteration:
            process = entry[3]
            process.finished = True
            for callback in process._finish_callbacks:
                callback(self)
            return
        if delay < 0:
            raise ValueError(
                f"process {entry[3].name!r} yielded negative delay {delay!r}"
            )
        entry[_TIME] = self.now + delay
        entry[_SEQ] = next(self._seq)
        self._push(entry)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle.

        ``_wheel_len`` accounting is deferred: on the hot path — a process
        resume whose re-schedule lands back in the wheel — the pop and push
        cancel, so the counter is only touched on the rare exits
        (cancelled entry, finished process, far-heap push, callback).
        """
        buckets = self._buckets
        while True:
            # Inlined bucket pop (the same walk run_until batches).
            if self._wheel_len:
                pos = self._pos
                bucket = buckets[pos]
                bptr = self._bptr
                if bptr >= len(bucket):
                    bucket.clear()
                    pos += 1
                    bucket = buckets[pos]
                    while not bucket:
                        pos += 1
                        bucket = buckets[pos]
                    if len(bucket) > 1:
                        bucket.sort()
                    self._pos = pos
                    self._pos_end = self._base + (pos + 1) * WHEEL_GRAIN
                    bptr = 0
                entry = bucket[bptr]
                self._bptr = bptr + 1
                action = entry[_ACTION]
                if action is None:
                    self._wheel_len -= 1
                    continue
                self.now = entry[_TIME]
                self.events_executed += 1
                if len(entry) == 4:
                    # Inlined process resume + re-schedule.
                    try:
                        delay = next(action)
                    except StopIteration:
                        self._wheel_len -= 1
                        process = entry[3]
                        process.finished = True
                        for callback in process._finish_callbacks:
                            callback(self)
                        return True
                    if delay < 0:
                        raise ValueError(
                            f"process {entry[3].name!r} yielded negative "
                            f"delay {delay!r}"
                        )
                    when = self.now + delay
                    entry[_TIME] = when
                    entry[_SEQ] = next(self._seq)
                    if when < self._pos_end:
                        # Same-bucket re-schedule: one compare, no index math.
                        insort(bucket, entry, bptr)
                        # pop + wheel push cancel out: _wheel_len unchanged
                    elif when < self._limit:
                        idx = int((when - self._base) * _INV_GRAIN)
                        if idx > _LAST_SLOT:
                            idx = _LAST_SLOT
                        if idx == pos:  # boundary rounding can disagree
                            insort(bucket, entry, bptr)
                        else:
                            buckets[idx].append(entry)
                    else:
                        self._wheel_len -= 1
                        heappush(self._far, entry)
                else:
                    self._wheel_len -= 1
                    action(self)
                return True
            # Wheel empty: fall back to the far heap.
            if not self._far:
                return False
            self._rebase()
            if self._wheel_len:
                continue
            entry = heappop(self._far)  # isolated event beyond the span
            action = entry[_ACTION]
            if action is None:
                continue
            self.now = entry[_TIME]
            self.events_executed += 1
            if len(entry) == 4:
                self._resume_process(entry)
            else:
                action(self)
            return True

    def run_until(self, end_time: float) -> None:
        """Run events with time <= ``end_time`` and advance the clock there.

        With a :attr:`profiler` attached, the window's wall time, executed
        events, and simulated cycles are attributed to the profiler's
        current label (recorded even if the run raises, so a crashing
        window still shows up in the attribution)."""
        profiler = self.profiler
        if profiler is None:
            return self._run_until(end_time)
        started = _perf_counter()
        events_before = self.events_executed
        now_before = self.now
        try:
            self._run_until(end_time)
        finally:
            profiler.record(
                profiler.label,
                _perf_counter() - started,
                self.events_executed - events_before,
                self.now - now_before,
            )

    def _run_until(self, end_time: float) -> None:
        """The ``run_until`` hot loop (no profiling).

        The loop consumes the wheel bucket by bucket with the cursor state
        mirrored in locals; ``_bptr`` is committed before every action so
        nested ``schedule``/``spawn``/``cancel`` calls observe a consistent
        queue, and pop counts are flushed to ``_wheel_len`` at every bucket
        boundary.  Actions must not re-enter the run loop itself.
        """
        if self._running:
            raise RuntimeError("run_until is not reentrant; actions must "
                               "not drive the simulator")
        self._running = True
        buckets = self._buckets
        far = self._far
        seq = self._seq
        executed = 0
        try:
            while True:
                # -- position at the next non-empty bucket ----------------
                if self._wheel_len:
                    pos = self._pos
                    bucket = buckets[pos]
                    i = self._bptr
                    if i >= len(bucket):
                        bucket.clear()
                        pos += 1
                        bucket = buckets[pos]
                        while not bucket:
                            pos += 1
                            bucket = buckets[pos]
                        if len(bucket) > 1:
                            bucket.sort()
                        self._pos = pos
                        self._pos_end = self._base + (pos + 1) * WHEEL_GRAIN
                        self._bptr = i = 0
                else:
                    if not far or far[0][_TIME] > end_time:
                        break
                    self._rebase()
                    if not self._wheel_len:
                        # Isolated far-future event inside the run window
                        # but beyond the wheel span: execute it directly.
                        entry = heappop(far)
                        action = entry[_ACTION]
                        if action is None:
                            continue
                        self.now = entry[_TIME]
                        executed += 1
                        if len(entry) == 4:
                            self._resume_process(entry)
                        else:
                            action(self)
                    continue
                # -- consume the current bucket ---------------------------
                base = self._base
                limit = self._limit
                pos_end = self._pos_end
                popped = 0
                blen = len(bucket)
                # ``blen`` mirrors ``len(bucket)``: bumped on our own
                # same-bucket insorts, re-read after callbacks (which may
                # schedule into this bucket through ``_push``).
                while i < blen:
                    entry = bucket[i]
                    when = entry[_TIME]
                    if when > end_time:
                        self._bptr = i
                        self._wheel_len -= popped
                        self.events_executed += executed
                        executed = 0
                        if self.now < end_time:
                            self.now = end_time
                        return
                    i += 1
                    self._bptr = i
                    popped += 1
                    action = entry[_ACTION]
                    if action is None:
                        continue
                    self.now = when
                    executed += 1
                    if len(entry) == 4:
                        # Inlined process resume; the popped entry is
                        # reused for the re-schedule.
                        try:
                            delay = next(action)
                        except StopIteration:
                            process = entry[3]
                            process.finished = True
                            for callback in process._finish_callbacks:
                                callback(self)
                            continue
                        if delay < 0:
                            raise ValueError(
                                f"process {entry[3].name!r} yielded "
                                f"negative delay {delay!r}"
                            )
                        when += delay
                        entry[_TIME] = when
                        entry[_SEQ] = next(seq)
                        # Inlined _push (base/limit/pos_end only move on
                        # _rebase or bucket advance, which cannot run while
                        # this bucket has entries).
                        if when < pos_end:
                            # Same-bucket re-schedule: one compare.
                            insort(bucket, entry, i)
                            blen += 1
                            popped -= 1  # pop + wheel push cancel out
                        elif when < limit:
                            idx = int((when - base) * _INV_GRAIN)
                            if idx > _LAST_SLOT:
                                idx = _LAST_SLOT
                            if idx == pos:  # boundary rounding disagreement
                                insort(bucket, entry, i)
                                blen += 1
                            else:
                                buckets[idx].append(entry)
                            popped -= 1
                        else:
                            heappush(far, entry)
                    else:
                        action(self)
                        # The callback may have pushed into this bucket
                        # (tracked by _wheel_len directly) or anywhere
                        # else; only our own pops stay in ``popped``.
                        blen = len(bucket)
                self._wheel_len -= popped
        finally:
            self._running = False
            self.events_executed += executed
        if self.now < end_time:
            self.now = end_time

    def run(self, max_events: int = 10_000_000) -> None:
        """Drain the queue entirely (with a runaway guard)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError("simulation exceeded max_events; likely a livelock")

    def _live_entries(self) -> list:
        """Every live (non-cancelled) queued entry — the consumed prefix of
        the current bucket, all future buckets, *and* the far heap beyond
        the wheel horizon — sorted into firing order ``(time, seq)``."""
        entries = [
            e
            for e in self._buckets[self._pos][self._bptr:]
            if e[_ACTION] is not None
        ]
        for bucket in self._buckets[self._pos + 1:]:
            entries.extend(e for e in bucket if e[_ACTION] is not None)
        entries.extend(e for e in self._far if e[_ACTION] is not None)
        entries.sort(key=lambda e: (e[_TIME], e[_SEQ]))
        return entries

    def pending(self) -> Iterable[Event]:
        """Live events still queued, in firing order (for inspection).

        Covers the whole two-tier queue: wheel buckets *and* far-heap
        entries past the wheel horizon, so long-sleep events (idle phases,
        far-future timers) are visible — the snapshot protocol relies on
        this completeness."""
        return (Event(e) for e in self._live_entries())

    # -- checkpoint/restore and time travel --------------------------------

    def fast_forward(self, cycles: float) -> None:
        """Advance the clock by ``cycles`` without executing anything.

        Every pending entry is shifted by the same delta and re-filed into
        a wheel re-anchored at the new ``now``; relative order is preserved
        exactly (a uniform shift is monotone in ``(time, seq)``).  This is
        the interval-sampling skip primitive — callers are responsible for
        shifting any *actor-held* absolute timestamps alongside (see
        ``Server.time_shift``)."""
        if self._running:
            raise RuntimeError("cannot fast_forward while running")
        if cycles < 0:
            raise ValueError("cannot fast_forward into the past")
        entries = self._live_entries()
        self.now += cycles
        self._init_wheel(self.now)
        for entry in entries:
            entry[_TIME] += cycles
            self._push(entry)

    def __getstate__(self):
        """Snapshot: queue state with pending entries reduced to
        ``(time, seq, process name)`` descriptors.

        Non-restartable pending work (raw callbacks, ``every`` timers,
        plain ``spawn`` processes) raises :class:`SnapshotError` — their
        suspended frames cannot be rebuilt.  Building the state perturbs
        nothing, so a checkpointing run stays bit-identical to one that
        never snapshots."""
        pending = []
        for entry in self._live_entries():
            if len(entry) != 4:
                raise SnapshotError(
                    f"pending callback at t={entry[_TIME]} is not "
                    "checkpointable; schedule work through "
                    "spawn_restartable instead"
                )
            process = entry[3]
            if process.name not in self._factories:
                raise SnapshotError(
                    f"process {process.name!r} was spawned without a "
                    "factory; use spawn_restartable for checkpointable "
                    "actors"
                )
            pending.append((entry[_TIME], entry[_SEQ], process.name))
        return {
            "now": self.now,
            "seq": self._seq,  # itertools.count pickles with its state
            "events_executed": self.events_executed,
            "processes": self.processes,
            "factories": self._factories,
            "pending": pending,
        }

    def __setstate__(self, state) -> None:
        self.now = state["now"]
        self._seq = state["seq"]
        self.events_executed = state["events_executed"]
        self.processes = state["processes"]
        self._factories = state["factories"]
        self.profiler = None
        self._running = False
        self._init_wheel(self.now)
        by_name = {p.name: p for p in self.processes}
        for when, seq, name in state["pending"]:
            owner, method, args = self._factories[name]
            # Creating a generator runs none of its body, so this is safe
            # even while the owner is itself mid-unpickle; the body first
            # executes when the entry fires.
            body = getattr(owner, method)(*args)
            process = by_name[name]
            process._body = body
            self._push([when, seq, body, process])
