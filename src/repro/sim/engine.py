"""Event-driven simulation core.

Two styles of actors are supported:

* **Callbacks** — ``sim.schedule(when, fn)`` runs ``fn(sim)`` at ``when``.
* **Processes** — Python generators that ``yield`` a non-negative delay in
  cycles.  The engine resumes the generator after that many cycles.  This is
  how CPU cores, DMA engines, and the A4 daemon are written: the substrate
  computes how long an action takes (e.g. a memory access under contention)
  and the process simply yields that cost.

The clock is an integer-friendly float.  Determinism is guaranteed by a
monotonically increasing sequence number used as a heap tie-breaker.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, Iterable, Optional

ProcessBody = Generator[float, None, None]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, seq) for determinism."""

    time: float
    seq: int
    action: Callable[["Simulator"], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark this event dead; the engine discards it when popped."""
        self.cancelled = True


class Process:
    """A generator-based simulated actor.

    The wrapped generator yields delays (cycles >= 0).  When it returns or
    raises ``StopIteration`` the process is finished; observers registered
    through :meth:`on_finish` are then invoked.
    """

    def __init__(self, name: str, body: ProcessBody):
        self.name = name
        self._body = body
        self.finished = False
        self._finish_callbacks: list[Callable[["Simulator"], None]] = []

    def on_finish(self, callback: Callable[["Simulator"], None]) -> None:
        self._finish_callbacks.append(callback)

    def _step(self, sim: "Simulator") -> None:
        if self.finished:
            return
        try:
            delay = next(self._body)
        except StopIteration:
            self.finished = True
            for callback in self._finish_callbacks:
                callback(sim)
            return
        if delay < 0:
            raise ValueError(
                f"process {self.name!r} yielded negative delay {delay!r}"
            )
        sim.schedule(sim.now + delay, self._step)


class Simulator:
    """The event loop.

    Typical usage::

        sim = Simulator()
        sim.spawn("worker", worker_body(sim))
        sim.run_until(100_000)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.processes: list[Process] = []

    # -- scheduling -------------------------------------------------------

    def schedule(self, when: float, action: Callable[["Simulator"], None]) -> Event:
        """Schedule ``action(sim)`` at absolute time ``when`` (>= now)."""
        if when < self.now:
            raise ValueError(f"cannot schedule into the past ({when} < {self.now})")
        event = Event(when, next(self._seq), action)
        heapq.heappush(self._queue, event)
        return event

    def call_in(self, delay: float, action: Callable[["Simulator"], None]) -> Event:
        """Schedule ``action`` ``delay`` cycles from now."""
        return self.schedule(self.now + delay, action)

    def spawn(self, name: str, body: ProcessBody, start_at: float = None) -> Process:
        """Register a generator process and schedule its first step."""
        process = Process(name, body)
        self.processes.append(process)
        when = self.now if start_at is None else start_at
        self.schedule(when, process._step)
        return process

    def every(
        self,
        interval: float,
        action: Callable[["Simulator"], None],
        start_at: Optional[float] = None,
    ) -> None:
        """Run ``action`` periodically, forever (bounded by ``run_until``)."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        first = self.now + interval if start_at is None else start_at

        def tick(sim: "Simulator") -> None:
            action(sim)
            sim.schedule(sim.now + interval, tick)

        self.schedule(first, tick)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            event.action(self)
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events with time <= ``end_time`` and advance the clock there."""
        while self._queue and self._queue[0].time <= end_time:
            self.step()
        self.now = max(self.now, end_time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Drain the queue entirely (with a runaway guard)."""
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError("simulation exceeded max_events; likely a livelock")

    def pending(self) -> Iterable[Event]:
        """Live events still queued (for inspection in tests)."""
        return (e for e in self._queue if not e.cancelled)
