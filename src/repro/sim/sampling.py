"""Representative-interval sampling for long-horizon runs.

SMARTS/SimPoint-style acceleration of :meth:`Server.run`: every simulated
("detailed") epoch is reduced to a *signature* — per-stream rate vector
plus the manager's FSM phase — and signatures are clustered online.  Once
the recent past is stable (the last ``stability_window`` detailed epochs
all landed in one cluster), the executor stops simulating: it fast-forwards
the clock epoch-by-epoch, synthesizing each skipped epoch's sample from the
cluster representative, then drops back to detailed simulation for a few
functional-warmup epochs before deciding whether to skip again.  Phase
changes, workload churn, or any signature drifting out of the cluster
tolerance automatically revert the run to detailed mode until stability
re-establishes.

Because the engine's :meth:`~repro.sim.engine.Simulator.fast_forward` is a
pure time relabeling (all microarchitectural state — cache contents, ring
occupancies, in-flight commands — survives a skip untouched), the error of
a sampled run comes only from labeling cluster-mean statistics onto the
skipped epochs, not from state loss.  The per-stream standard error of
that substitution is tracked per cluster and surfaced in the
:class:`SamplingReport` attached to the :class:`RunResult`.

Exact mode is the default everywhere; sampling only runs when a
:class:`SamplingPlan` is passed explicitly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Metrics the signature/estimator tracks per stream, in order.  These are
#: the rates the figure suite aggregates; anything the clusterer cannot
#: see it also cannot promise error bounds on.
SIGNATURE_METRICS = ("ipc", "llc_hit_rate", "mlc_miss_rate", "io_throughput")

_EPS = 1e-9


@dataclass(frozen=True)
class SamplingPlan:
    """Knobs of the interval sampler (all epochs counts are in epochs)."""

    error_budget: float = 0.02
    """Target relative error of extrapolated per-stream aggregates; the
    report's :meth:`~SamplingReport.max_rel_err` is checked against it."""
    warm_epochs: int = 1
    """Detailed epochs simulated after every skip block before the next
    skip decision (functional warmup: lets the manager re-converge after
    acting on synthesized samples)."""
    max_skip: int = 8
    """Longest run of consecutive synthesized epochs."""
    stability_window: int = 3
    """Consecutive same-cluster detailed epochs required before skipping."""
    tolerance: float = 0.10
    """Signature distance within which two epochs are the same interval
    class: the *mean* over components of the absolute difference, each
    scaled by that component's running magnitude across the run.  A mean
    (not max) distance keeps one noisy antagonist metric from shattering
    an otherwise stationary regime into singleton clusters."""

    def __post_init__(self) -> None:
        if not (0.0 < self.error_budget < 1.0):
            raise ValueError("error_budget must be in (0, 1)")
        if self.warm_epochs < 1:
            raise ValueError("warm_epochs must be >= 1")
        if self.max_skip < 1:
            raise ValueError("max_skip must be >= 1")
        if self.stability_window < 2:
            raise ValueError("stability_window must be >= 2")
        if self.tolerance <= 0.0:
            raise ValueError("tolerance must be positive")


def epoch_signature(sample, server) -> Tuple[str, Tuple[float, ...]]:
    """Reduce one :class:`EpochSample` to ``(phase_key, rate_vector)``.

    The vector is per-stream metric rates (streams sorted by name, so the
    layout is stable) plus machine memory bandwidth; the phase key is the
    manager FSM phase — epochs in different controller phases are never
    the same interval, whatever their rates say."""
    values: List[float] = []
    for name in sorted(sample.streams):
        stream = sample.streams[name]
        values.append(stream.ipc)
        values.append(stream.llc_hit_rate)
        values.append(stream.mlc_miss_rate)
        values.append(stream.io_throughput_lines_per_cycle)
    values.append(sample.mem_total_bw)
    phase = getattr(server.manager, "phase", None) if server.manager else None
    return (str(phase), tuple(values))


class _Welford:
    """Streaming mean/variance (per cluster, per stream metric)."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)

    @property
    def variance(self) -> float:
        if self.n < 2:
            return 0.0
        return self.m2 / (self.n - 1)


class _Cluster:
    """One interval class: centroid, member stats, and the representative
    (most recent member) sample used to synthesize skipped epochs."""

    __slots__ = ("cluster_id", "phase", "centroid", "count", "stats",
                 "representative")

    def __init__(self, cluster_id: int, phase: str, vector) -> None:
        self.cluster_id = cluster_id
        self.phase = phase
        self.centroid = list(vector)
        self.count = 0
        self.stats: Dict[Tuple[str, str], _Welford] = {}
        self.representative = None

    def distance(self, vector, scales) -> float:
        """Scaled mean relative distance from the centroid (see
        :attr:`SamplingPlan.tolerance`)."""
        total = 0.0
        for value, center, scale in zip(vector, self.centroid, scales):
            total += abs(value - center) / max(scale, 1e-3)
        return total / max(1, len(vector))

    def matches(self, phase: str, vector, scales, tolerance: float) -> bool:
        if phase != self.phase or len(vector) != len(self.centroid):
            return False
        return self.distance(vector, scales) <= tolerance

    def absorb(self, vector, sample) -> None:
        self.count += 1
        for i, value in enumerate(vector):
            self.centroid[i] += (value - self.centroid[i]) / self.count
        self.representative = sample
        for name in sample.streams:
            stream = sample.streams[name]
            for metric in SIGNATURE_METRICS:
                key = (name, metric)
                w = self.stats.get(key)
                if w is None:
                    w = self.stats[key] = _Welford()
                w.add(_stream_metric(stream, metric))


def _stream_metric(stream, metric: str) -> float:
    if metric == "io_throughput":
        return stream.io_throughput_lines_per_cycle
    return getattr(stream, metric)


class _OnlineClusters:
    """Leader clustering over epoch signatures (online, order-dependent —
    which is fine: the stream of epochs *is* ordered)."""

    def __init__(self, plan: SamplingPlan) -> None:
        self.plan = plan
        self.clusters: List[_Cluster] = []
        self.recent: List[int] = []
        self._scales: List[float] = []
        self._observed = 0

    def _update_scales(self, vector) -> None:
        """Running mean magnitude per component — the normalizer that puts
        IPC (~0.1), hit rates (~1), and bandwidths (~0.3) on one scale."""
        if len(self._scales) != len(vector):
            self._scales = [abs(v) for v in vector]
            self._observed = 1
            return
        self._observed += 1
        for i, value in enumerate(vector):
            self._scales[i] += (abs(value) - self._scales[i]) / self._observed

    def observe(self, signature, sample) -> _Cluster:
        phase, vector = signature
        self._update_scales(vector)
        best = None
        best_distance = None
        for cluster in self.clusters:
            if not cluster.matches(
                phase, vector, self._scales, self.plan.tolerance
            ):
                continue
            d = cluster.distance(vector, self._scales)
            if best_distance is None or d < best_distance:
                best, best_distance = cluster, d
        if best is None:
            best = _Cluster(len(self.clusters), phase, vector)
            self.clusters.append(best)
        best.absorb(vector, sample)
        self._push_recent(best.cluster_id)
        return best

    def _push_recent(self, cluster_id: int) -> None:
        self.recent.append(cluster_id)
        if len(self.recent) > self.plan.stability_window:
            self.recent.pop(0)

    def reset_stability(self) -> None:
        """Called on workload churn or after a deviation — the run must
        re-earn stability before skipping again."""
        self.recent.clear()

    def stable_cluster(self) -> Optional[_Cluster]:
        window = self.plan.stability_window
        if len(self.recent) < window:
            return None
        if len(set(self.recent)) != 1:
            return None
        return self.clusters[self.recent[0]]


@dataclass
class StreamEstimate:
    """Extrapolated mean ± standard error for one stream metric."""

    name: str
    metric: str
    mean: float
    stderr: float

    @property
    def rel_err(self) -> float:
        if abs(self.mean) < _EPS:
            return 0.0
        return self.stderr / abs(self.mean)


@dataclass
class SamplingReport:
    """What the sampler did, and how much to trust the result."""

    plan: SamplingPlan
    total_epochs: int
    detailed_epochs: int
    skipped_epochs: int
    warm_epochs: int
    clusters: int
    skipped_indices: List[int] = field(default_factory=list)
    estimates: Dict[str, Dict[str, StreamEstimate]] = field(
        default_factory=dict
    )

    @property
    def speedup_estimate(self) -> float:
        """Structural speedup: epochs covered per epoch simulated."""
        return self.total_epochs / max(1, self.detailed_epochs)

    def max_rel_err(self) -> float:
        worst = 0.0
        for metrics in self.estimates.values():
            for estimate in metrics.values():
                worst = max(worst, estimate.rel_err)
        return worst

    def within_budget(self) -> bool:
        return self.max_rel_err() <= self.plan.error_budget

    def summary(self) -> str:
        lines = [
            f"sampled run: {self.detailed_epochs} detailed + "
            f"{self.skipped_epochs} synthesized of {self.total_epochs} epochs "
            f"({self.clusters} interval classes, "
            f"~{self.speedup_estimate:.1f}x structural speedup)",
            f"estimated max relative error {100 * self.max_rel_err():.2f}% "
            f"(budget {100 * self.plan.error_budget:.1f}%)",
        ]
        return "\n".join(lines)


class SampledRun:
    """Drives one server through a sampled long-horizon run.

    Invoked by :meth:`Server.run` when a :class:`SamplingPlan` is passed;
    not constructed directly by experiment code."""

    def __init__(self, server, plan: SamplingPlan) -> None:
        self.server = server
        self.plan = plan

    def run(
        self,
        epochs: int,
        warmup: int,
        epoch_hook=None,
        checkpoint_store=None,
        checkpoint_every: int = 0,
        run_key: Optional[str] = None,
    ):
        from repro import obsv
        from repro.experiments.harness import RunResult

        server = self.server
        plan = self.plan
        clusters = _OnlineClusters(plan)
        tracer = obsv.TRACER
        samples = []
        skipped_indices: List[int] = []
        synth_cluster: Dict[int, _Cluster] = {}
        warm_counted = 0
        # Detailed epochs still owed as functional warmup after a skip.
        warm_left = 0
        detailed = 0
        skipped = 0
        i = 0
        ctx = server._begin_run(epochs)
        while i < epochs:
            remaining = epochs - i
            stable = clusters.stable_cluster()
            # Always keep enough detailed epochs at the tail to re-measure,
            # and never skip during warmup or a pending functional warm.
            can_skip = (
                stable is not None
                and stable.representative is not None
                and warm_left == 0
                and i >= warmup
                and remaining > plan.warm_epochs
            )
            if can_skip:
                block = min(plan.max_skip, remaining - plan.warm_epochs)
                if tracer is not None:
                    tracer.epoch = server.epochs_completed
                    tracer.now = server.sim.now
                    tracer.emit(
                        obsv.KIND_SAMPLE,
                        "skip",
                        {
                            "cluster": stable.cluster_id,
                            "epochs": block,
                            "members": stable.count,
                        },
                    )
                for _ in range(block):
                    sample = self._synthesize_epoch(stable)
                    samples.append(sample)
                    skipped_indices.append(i)
                    synth_cluster[i] = stable
                    skipped += 1
                    if epoch_hook is not None:
                        epoch_hook(server, sample)
                    server._maybe_checkpoint(
                        checkpoint_store, checkpoint_every, run_key
                    )
                    i += 1
                warm_left = plan.warm_epochs
                continue
            sample = server._run_epoch(ctx)
            samples.append(sample)
            detailed += 1
            if warm_left > 0:
                # Functional warmup: simulated and reported, but its
                # signature is withheld from the clusterer — the manager
                # may still be digesting synthesized epochs.
                warm_left -= 1
                warm_counted += 1
            elif i >= warmup:
                clusters.observe(epoch_signature(sample, server), sample)
            if epoch_hook is not None:
                epoch_hook(server, sample)
            server._maybe_checkpoint(
                checkpoint_store, checkpoint_every, run_key
            )
            i += 1
        if tracer is not None:
            tracer.epoch = -1
        report = self._report(
            clusters,
            samples,
            warmup,
            detailed=detailed,
            skipped=skipped,
            warm=warm_counted,
            skipped_indices=skipped_indices,
            synth_cluster=synth_cluster,
        )
        return RunResult(
            samples=samples, warmup=warmup, server=server, sampling=report
        )

    # -- synthesis -----------------------------------------------------------

    def _synthesize_epoch(self, cluster: _Cluster):
        """Advance the clock one epoch without simulating and fabricate the
        sample from the cluster representative.

        The representative's stream samples are *shared* (they are
        immutable from the consumers' perspective); only the envelope —
        index and timestamp — is new.  The PCM sampler's index/history
        advance so downstream per-epoch series stay contiguous, while its
        counter snapshots are untouched: no counters moved, so the next
        detailed epoch's delta stays correct."""
        from repro.telemetry.pcm import EpochSample

        server = self.server
        rep = cluster.representative
        server.time_shift(server.epoch_cycles)
        pcm = server.pcm
        sample = EpochSample(
            index=pcm._index,
            time=server.sim.now,
            epoch_cycles=rep.epoch_cycles,
            streams=rep.streams,
            mem_read_lines=rep.mem_read_lines,
            mem_write_lines=rep.mem_write_lines,
        )
        pcm._index += 1
        pcm.history.append(sample)
        server.epochs_completed += 1
        if server.manager is not None:
            server.manager.on_epoch(sample)
        return sample

    # -- error accounting ----------------------------------------------------

    def _report(
        self,
        clusters: _OnlineClusters,
        samples,
        warmup: int,
        detailed: int,
        skipped: int,
        warm: int,
        skipped_indices: List[int],
        synth_cluster: Dict[int, "_Cluster"],
    ) -> SamplingReport:
        """Extrapolated window means + standard errors.

        Detailed epochs contribute their exact value; each synthesized
        epoch contributes its cluster's member variance (the substitution
        uncertainty), inflated by ``1/n`` for the uncertainty of the
        cluster mean itself.  Streams and metrics follow
        :data:`SIGNATURE_METRICS`."""
        window = samples[warmup:]
        n = len(window)
        # Window position -> fabricating cluster for synthesized epochs.
        synth_by_pos = {
            i - warmup: cluster
            for i, cluster in synth_cluster.items()
            if i >= warmup
        }
        estimates: Dict[str, Dict[str, StreamEstimate]] = {}
        if n:
            names: List[str] = []
            for sample in window:
                for name in sample.streams:
                    if name not in names:
                        names.append(name)
            for name in names:
                per_metric: Dict[str, StreamEstimate] = {}
                for metric in SIGNATURE_METRICS:
                    total = 0.0
                    var_sum = 0.0
                    for pos, sample in enumerate(window):
                        stream = sample.streams.get(name)
                        if stream is None:
                            continue
                        total += _stream_metric(stream, metric)
                        cluster = synth_by_pos.get(pos)
                        if cluster is not None:
                            w = cluster.stats.get((name, metric))
                            if w is not None and w.n >= 2:
                                var_sum += w.variance * (1.0 + 1.0 / w.n)
                    mean = total / n
                    stderr = math.sqrt(var_sum) / n
                    per_metric[metric] = StreamEstimate(
                        name=name, metric=metric, mean=mean, stderr=stderr
                    )
                estimates[name] = per_metric
        return SamplingReport(
            plan=self.plan,
            total_epochs=len(samples),
            detailed_epochs=detailed,
            skipped_epochs=skipped,
            warm_epochs=warm,
            clusters=len(clusters.clusters),
            skipped_indices=skipped_indices,
            estimates=estimates,
        )
