"""Discrete-event simulation engine.

The engine is deliberately tiny: a binary-heap event queue over abstract
cycles, plus a generator-based process abstraction.  All substrates in this
repository (caches, devices, workloads, the A4 controller) are driven by it.
"""

from repro.sim.engine import Event, Process, Simulator
from repro.sim.rng import DeterministicRng

__all__ = ["Event", "Process", "Simulator", "DeterministicRng"]
