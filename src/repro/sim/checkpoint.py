"""Checkpoint/restore for whole simulated servers.

A checkpoint is a :class:`SimState`: a versioned, digest-protected pickle
of the entire :class:`~repro.experiments.harness.Server` object graph —
calendar wheel + far heap (reduced to restartable-process descriptors by
:meth:`Simulator.__getstate__`), RNG sub-streams, cache hierarchy, uncore
(IIO, PCIe, memory controller), devices, workload loop state, and the
manager FSM.  Restoring at epoch E and continuing is bit-identical to an
uninterrupted run: every process body in the tree is written in
*restartable* form (see :meth:`Simulator.spawn_restartable`), so a fresh
generator first-resumed at the recorded pending time replays exactly what
the suspended original would have done.

:class:`CheckpointStore` is the content-addressed on-disk side: blobs
under ``root/<key[:2]>/<key>.ckpt`` (same layout as the run cache) plus a
per-run index ``root/index/<run_key>.json`` mapping epoch -> blob key, so
a resume can ask for the newest checkpoint at-or-before a target epoch.
Keys fold in the checkpoint schema and the repo's code salt: a checkpoint
can never be restored by a different version of the simulator source
(unpickling across code versions is undefined behaviour, not a subtle
bug to chase).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

CHECKPOINT_SCHEMA = 1
"""Version of the SimState wrapper itself (bump on any layout change)."""

CHECKPOINT_SUFFIX = ".ckpt"


class CheckpointError(RuntimeError):
    """A checkpoint could not be taken, validated, or restored."""


@dataclass
class SimState:
    """One snapshot of a server, ready to persist or restore.

    ``payload`` is the pickled server graph; ``digest`` is its SHA-256, so
    a truncated or bit-flipped blob is detected before unpickling (which
    would otherwise fail in arbitrarily confusing ways, or worse, not
    fail).  ``platform`` is the JSON-encoded platform fingerprint — a
    restore can check it against expectations without unpickling."""

    schema: int
    time: float
    epoch: int
    platform: str
    payload: bytes
    digest: str

    def validate(self) -> None:
        if self.schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint schema {self.schema} != {CHECKPOINT_SCHEMA}"
            )
        actual = hashlib.sha256(self.payload).hexdigest()
        if actual != self.digest:
            raise CheckpointError(
                f"checkpoint payload digest mismatch "
                f"(stored {self.digest[:12]}, actual {actual[:12]})"
            )


def snapshot(server) -> SimState:
    """Capture ``server`` as a :class:`SimState`.

    Raises :class:`~repro.sim.engine.SnapshotError` (via the simulator's
    ``__getstate__``) if any live process was spawned without a
    restartable factory, and :class:`CheckpointError` if anything in the
    graph cannot pickle."""
    try:
        payload = pickle.dumps(server, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        if type(exc).__name__ == "SnapshotError":
            raise
        raise CheckpointError(f"server graph does not pickle: {exc}") from exc
    return SimState(
        schema=CHECKPOINT_SCHEMA,
        time=server.sim.now,
        epoch=getattr(server, "epochs_completed", 0),
        platform=json.dumps(server.platform.fingerprint(), sort_keys=True),
        payload=payload,
        digest=hashlib.sha256(payload).hexdigest(),
    )


def restore(state: SimState):
    """Rebuild the server from ``state`` (validates schema + digest)."""
    state.validate()
    try:
        return pickle.loads(state.payload)
    except Exception as exc:
        raise CheckpointError(f"checkpoint failed to restore: {exc}") from exc


def checkpoint_key(run_key: str, epoch: int) -> str:
    """Content address for one (run, epoch) checkpoint.

    The code salt makes checkpoints self-invalidating across source
    edits, exactly like run-cache entries: a stale blob simply becomes
    unreachable rather than restoring a server whose pickled layout no
    longer matches the classes that will receive it."""
    from repro.experiments.runcache import code_salt

    blob = f"{run_key}\0{epoch}\0{CHECKPOINT_SCHEMA}\0{code_salt()}"
    return hashlib.sha256(blob.encode()).hexdigest()


class CheckpointStore:
    """Content-addressed checkpoint blobs + per-run epoch index.

    All writes are atomic (tmp + rename); a blob that is unreadable,
    schema-skewed, or digest-corrupt is treated as absent **and deleted**
    so one bad file costs one lost resume point, never a poisoned run."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------------

    def _blob_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}{CHECKPOINT_SUFFIX}"

    def _index_path(self, run_key: str) -> Path:
        token = hashlib.sha256(run_key.encode()).hexdigest()[:32]
        return self.root / "index" / f"{token}.json"

    def _lock_path(self, run_key: str) -> Path:
        return self._index_path(run_key).with_suffix(".lock")

    @contextmanager
    def _locked(self, run_key: str) -> Iterator[None]:
        """Inter-process exclusion for one run key (flock on a sidecar).

        Two workers resuming the same run key otherwise race: one can be
        mid-``save`` (blob written, index not yet) while the other's
        ``load`` evicts what it mistakes for a stale blob.  The sidecar
        — never the data file itself — carries the lock, so lock
        acquisition cannot corrupt anything and a crashed holder's lock
        evaporates with its process.  No-op where ``flock`` is
        unavailable."""
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        path = self._lock_path(run_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # -- index ---------------------------------------------------------------

    def _read_index(self, run_key: str) -> Dict[str, str]:
        path = self._index_path(run_key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                index = json.load(fh)
        except (OSError, ValueError):
            return {}
        if not isinstance(index, dict):
            return {}
        return index

    def _write_index(self, run_key: str, index: Dict[str, str]) -> None:
        path = self._index_path(run_key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("w", encoding="utf-8") as fh:
                json.dump(index, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError as exc:
            raise CheckpointError(f"cannot write checkpoint index: {exc}")

    def epochs(self, run_key: str) -> List[int]:
        """Epochs with a recorded checkpoint for ``run_key``, ascending."""
        return sorted(int(e) for e in self._read_index(run_key))

    # -- blobs ---------------------------------------------------------------

    def save(self, run_key: str, state: SimState) -> str:
        """Persist ``state`` and index it under ``run_key``; returns the
        blob key.  Blob write + index update are one critical section
        under the run key's file lock."""
        key = checkpoint_key(run_key, state.epoch)
        path = self._blob_path(key)
        with self._locked(run_key):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_suffix(f".tmp.{os.getpid()}")
                with tmp.open("wb") as fh:
                    pickle.dump(
                        {"schema": CHECKPOINT_SCHEMA, "key": key, "state": state},
                        fh,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                os.replace(tmp, path)
            except OSError as exc:
                raise CheckpointError(f"cannot write checkpoint: {exc}")
            index = self._read_index(run_key)
            index[str(state.epoch)] = key
            self._write_index(run_key, index)
        return key

    def _load_key(self, key: str) -> Optional[SimState]:
        path = self._blob_path(key)
        try:
            with path.open("rb") as fh:
                wrapper = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            self._evict(path)
            return None
        if (
            not isinstance(wrapper, dict)
            or wrapper.get("schema") != CHECKPOINT_SCHEMA
            or wrapper.get("key") != key
            or not isinstance(wrapper.get("state"), SimState)
        ):
            self._evict(path)
            return None
        state = wrapper["state"]
        try:
            state.validate()
        except CheckpointError:
            self._evict(path)
            return None
        return state

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def load(self, run_key: str, epoch: int) -> Optional[SimState]:
        """The checkpoint at exactly ``epoch``, or None.  Holds the run
        key's lock so a validation-eviction cannot interleave with a
        concurrent worker's in-progress ``save``."""
        with self._locked(run_key):
            key = self._read_index(run_key).get(str(epoch))
            if key is None:
                return None
            return self._load_key(key)

    def latest(
        self, run_key: str, max_epoch: Optional[int] = None
    ) -> Optional[SimState]:
        """The newest checkpoint at-or-before ``max_epoch`` (newest overall
        when ``max_epoch`` is None).  Walks backwards past corrupt blobs."""
        for epoch in reversed(self.epochs(run_key)):
            if max_epoch is not None and epoch > max_epoch:
                continue
            state = self.load(run_key, epoch)
            if state is not None:
                return state
        return None


def newest_epoch(root) -> Optional[int]:
    """The newest indexed checkpoint epoch across every run key under
    ``root`` — None when the store directory holds none.

    This reads only the JSON indices (never unpickles a blob), so it is
    cheap enough for the job supervisor to call after every worker death
    to decide whether a retry is a *resume* (and from which epoch) or a
    from-scratch re-run."""
    index_dir = Path(root) / "index"
    newest: Optional[int] = None
    try:
        entries = list(index_dir.glob("*.json"))
    except OSError:
        return None
    for path in entries:
        try:
            with path.open("r", encoding="utf-8") as fh:
                index = json.load(fh)
        except (OSError, ValueError):
            continue
        if not isinstance(index, dict):
            continue
        for raw in index:
            try:
                epoch = int(raw)
            except (TypeError, ValueError):
                continue
            if newest is None or epoch > newest:
                newest = epoch
    return newest
