"""Deterministic random-number streams.

Every stochastic actor (packet generator, SSD access pattern, X-Mem random
variant, SPEC profiles) owns a named sub-stream derived from one root seed,
so experiments are reproducible and adding an actor never perturbs the draws
seen by existing actors.
"""

from __future__ import annotations

import hashlib
import random


class DeterministicRng:
    """A factory for independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int = 0xA4):
        self.seed = seed

    def stream(self, name: str) -> random.Random:
        """Return a ``random.Random`` keyed by (root seed, name)."""
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))
