"""Cache-line records for the MLC and LLC models.

Rather than a full MESIF protocol, lines carry the placement and provenance
bits the paper's contentions hinge on:

* ``io``            — the line was DMA-written by an I/O device;
* ``consumed``      — an ``io`` line that a CPU core has since read.  An
  *unconsumed* ``io`` line evicted from the LLC is a **DMA leak**;
* ``dirty``         — holds data newer than memory;
* LLC lines also know which way they occupy, whether they are
  **LLC-inclusive** (also resident in some MLC — such lines may only occupy
  the two inclusive ways), and which stream (workload) allocated them, for
  attribution of evictions and leaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set


@dataclass
class MlcLine:
    """A line resident in a private mid-level cache."""

    addr: int
    stream: str
    dirty: bool = False
    io: bool = False
    lru: int = 0


@dataclass
class LlcLine:
    """A line resident in the shared last-level cache."""

    addr: int
    stream: str
    way: int
    dirty: bool = False
    io: bool = False
    consumed: bool = False
    lru: int = 0
    holders: Set[int] = field(default_factory=set)
    """Core ids whose MLC also holds this line (non-empty => LLC-inclusive)."""
    meta: Dict[str, int] = field(default_factory=dict)
    """Replacement-policy metadata (e.g. the RRIP re-reference value)."""

    @property
    def inclusive(self) -> bool:
        """True when the line is resident in both the LLC and some MLC."""
        return bool(self.holders)
