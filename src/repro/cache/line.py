"""Cache-line records for the MLC and LLC models.

Rather than a full MESIF protocol, lines carry the placement and provenance
bits the paper's contentions hinge on:

* ``io``            — the line was DMA-written by an I/O device;
* ``consumed``      — an ``io`` line that a CPU core has since read.  An
  *unconsumed* ``io`` line evicted from the LLC is a **DMA leak**;
* ``dirty``         — holds data newer than memory;
* LLC lines also know which way they occupy, whether they are
  **LLC-inclusive** (also resident in some MLC — such lines may only occupy
  the two inclusive ways), and which stream (workload) allocated them, for
  attribution of evictions and leaks.

Both classes are plain ``__slots__`` records rather than dataclasses:
millions of them are allocated per run, and the closed attribute set plus
the skipped instance ``__dict__`` are worth a measurable share of the
simulation's wall time.
"""

from __future__ import annotations

from typing import Dict, Optional, Set


class MlcLine:
    """A line resident in a private mid-level cache."""

    __slots__ = ("addr", "stream", "dirty", "io", "lru")

    def __init__(
        self,
        addr: int,
        stream: str,
        dirty: bool = False,
        io: bool = False,
        lru: int = 0,
    ):
        self.addr = addr
        self.stream = stream
        self.dirty = dirty
        self.io = io
        self.lru = lru

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MlcLine(addr={self.addr:#x}, stream={self.stream!r}, "
            f"dirty={self.dirty}, io={self.io}, lru={self.lru})"
        )


class LlcLine:
    """A line resident in the shared last-level cache."""

    __slots__ = (
        "addr",
        "stream",
        "way",
        "dirty",
        "io",
        "consumed",
        "lru",
        "holders",
        "meta",
    )

    def __init__(
        self,
        addr: int,
        stream: str,
        way: int,
        dirty: bool = False,
        io: bool = False,
        consumed: bool = False,
        lru: int = 0,
        holders: Optional[Set[int]] = None,
        meta: Optional[Dict[str, int]] = None,
    ):
        self.addr = addr
        self.stream = stream
        self.way = way
        self.dirty = dirty
        self.io = io
        self.consumed = consumed
        self.lru = lru
        self.holders: Set[int] = set() if holders is None else holders
        """Core ids whose MLC also holds this line (non-empty => LLC-inclusive)."""
        self.meta: Dict[str, int] = {} if meta is None else meta
        """Replacement-policy metadata (e.g. the RRIP re-reference value)."""

    @property
    def inclusive(self) -> bool:
        """True when the line is resident in both the LLC and some MLC."""
        return bool(self.holders)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LlcLine(addr={self.addr:#x}, stream={self.stream!r}, "
            f"way={self.way}, dirty={self.dirty}, io={self.io}, "
            f"consumed={self.consumed}, holders={self.holders})"
        )
