"""Extended directory (snoop filter) for MLC-resident lines.

Per Yan et al. (S&P'19), each Skylake LLC set is backed by 11 traditional
directory ways (one per data way) plus 12 *extended* directory ways that
track lines living in MLCs.  Two entries are shared between the groups and
coupled one-to-one with the two right-most data ways — which is why a line
present in both an MLC and the LLC (an *inclusive* line) can only occupy
those data ways.

This module models the extended group: a per-set, 12-entry tracker of
MLC-resident lines.  Entries that correspond to inclusive lines are pinned
(their lifetime is governed by the coupled data way instead); when the
non-pinned portion overflows, the LRU entry is evicted and the caller must
back-invalidate the MLCs holding it.
"""

from __future__ import annotations

import itertools
from typing import Optional, Set

from repro.platform import DEFAULT_PLATFORM


class DirectoryEntry:
    """One extended-directory record (a plain __slots__ hot-path object)."""

    __slots__ = ("addr", "holders", "inclusive", "lru")

    def __init__(
        self,
        addr: int,
        holders: Optional[Set[int]] = None,
        inclusive: bool = False,
        lru: int = 0,
    ):
        self.addr = addr
        self.holders: Set[int] = set() if holders is None else holders
        self.inclusive = inclusive
        self.lru = lru

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectoryEntry(addr={self.addr:#x}, holders={self.holders}, "
            f"inclusive={self.inclusive}, lru={self.lru})"
        )


class SnoopFilter:
    """Extended-directory model, one bucket per LLC set."""

    __slots__ = ("sets", "ways", "_sets", "_tick", "back_invalidations")

    def __init__(
        self,
        sets: int = DEFAULT_PLATFORM.llc_sets,
        ways: int = DEFAULT_PLATFORM.extended_dir_ways,
        min_inclusive: int = len(DEFAULT_PLATFORM.inclusive_ways),
    ):
        if ways < min_inclusive:
            raise ValueError("extended directory smaller than shared ways")
        self.sets = sets
        self.ways = ways
        self._sets: list[dict[int, DirectoryEntry]] = [dict() for _ in range(sets)]
        self._tick = itertools.count()
        self.back_invalidations = 0

    def _bucket(self, addr: int) -> dict[int, DirectoryEntry]:
        return self._sets[addr % self.sets]

    def entry(self, addr: int) -> Optional[DirectoryEntry]:
        return self._sets[addr % self.sets].get(addr)

    def track(self, addr: int, core: int, inclusive: bool) -> Optional[DirectoryEntry]:
        """Record that ``core``'s MLC now holds ``addr``.

        Returns an evicted entry when the set overflows; the caller must
        back-invalidate that entry's holders.
        """
        bucket = self._sets[addr % self.sets]
        entry = bucket.get(addr)
        if entry is not None:
            entry.holders.add(core)
            entry.inclusive = entry.inclusive or inclusive
            entry.lru = next(self._tick)
            return None
        victim = None
        if len(bucket) >= self.ways:
            victim = self._choose_victim(bucket)
            if victim is not None:
                del bucket[victim.addr]
                self.back_invalidations += 1
        entry = DirectoryEntry(addr, {core}, inclusive, next(self._tick))
        bucket[addr] = entry
        return victim

    def _choose_victim(self, bucket: dict[int, DirectoryEntry]) -> Optional[DirectoryEntry]:
        victim = None
        for entry in bucket.values():
            if not entry.inclusive and (victim is None or entry.lru < victim.lru):
                victim = entry
        if victim is None:
            # All entries pinned to data ways; structurally impossible with
            # only two inclusive ways, but guard against misuse.
            raise RuntimeError("snoop filter set has no evictable entry")
        return victim

    def set_inclusive(self, addr: int, inclusive: bool) -> None:
        entry = self.entry(addr)
        if entry is not None:
            entry.inclusive = inclusive

    def drop_holder(self, addr: int, core: int) -> None:
        """``core``'s MLC no longer holds ``addr``."""
        bucket = self._sets[addr % self.sets]
        entry = bucket.get(addr)
        if entry is None:
            return
        entry.holders.discard(core)
        if not entry.holders:
            del bucket[addr]

    def remove(self, addr: int) -> Optional[DirectoryEntry]:
        return self._bucket(addr).pop(addr, None)

    def occupancy(self, addr_set: int) -> int:
        return len(self._sets[addr_set % self.sets])
