"""Cache substrate: MLCs, the non-inclusive LLC, and the inclusive directory.

This package models the microarchitectural properties the paper depends on:

* a non-inclusive, victim-cache LLC (Skylake-SP style, 11 ways);
* DDIO write-allocate restricted to the two left-most (*DCA*) ways;
* the hidden *inclusive ways* (the two right-most ways): any line resident in
  both an MLC and the LLC must live there, so consumed I/O lines *migrate*
  into them (the paper's newly discovered directory contention, O1);
* an extended directory (snoop filter) whose evictions back-invalidate MLCs;
* CAT way masks constraining CPU-side LLC victim selection.
"""

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cache.line import LlcLine, MlcLine
from repro.cache.llc import LastLevelCache, LlcConfig
from repro.cache.mlc import MidLevelCache
from repro.cache.directory import SnoopFilter
from repro.cache.replacement import ReplacementPolicy, make_policy

__all__ = [
    "CacheHierarchy",
    "HierarchyConfig",
    "LastLevelCache",
    "LlcConfig",
    "LlcLine",
    "MidLevelCache",
    "MlcLine",
    "SnoopFilter",
    "ReplacementPolicy",
    "make_policy",
]
