"""Way-organised cache set with masked LRU victim selection.

Used by the LLC: every set holds one slot per way, a tag index for O(1)
lookup, and picks victims only among an *allowed* subset of ways — this is
how both CAT way masks (CPU fills) and the DDIO way mask (DMA fills) are
enforced.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.cache.line import LlcLine


class WaySet:
    """One LLC set: ``ways`` slots, each holding at most one line."""

    __slots__ = ("slots", "index")

    def __init__(self, ways: int):
        self.slots: list[Optional[LlcLine]] = [None] * ways
        self.index: dict[int, int] = {}

    def lookup(self, addr: int) -> Optional[LlcLine]:
        way = self.index.get(addr)
        return None if way is None else self.slots[way]

    def victim_way(self, allowed: Sequence[int], exclude: Iterable[int] = ()) -> int:
        """Pick a victim way among ``allowed``: an empty way if any, else LRU.

        ``exclude`` removes ways from consideration (used when relocating a
        line so it never chooses its own slot).
        """
        banned = set(exclude)
        candidates = [w for w in allowed if w not in banned]
        if not candidates:
            raise ValueError("no candidate ways for victim selection")
        best = None
        best_lru = None
        for way in candidates:
            line = self.slots[way]
            if line is None:
                return way
            if best_lru is None or line.lru < best_lru:
                best, best_lru = way, line.lru
        return best

    def install(self, line: LlcLine, way: int) -> None:
        """Place ``line`` into ``way`` (the slot must be empty)."""
        if self.slots[way] is not None:
            raise ValueError(f"way {way} is occupied")
        line.way = way
        self.slots[way] = line
        self.index[line.addr] = way

    def remove(self, line: LlcLine) -> None:
        if self.slots[line.way] is not line:
            raise ValueError("line is not resident where it claims to be")
        self.slots[line.way] = None
        del self.index[line.addr]

    def occupants(self) -> Iterable[LlcLine]:
        return (line for line in self.slots if line is not None)
