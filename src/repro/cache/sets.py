"""Way-organised cache set used by the LLC.

Every set holds one slot per way plus a tag index mapping address directly
to the resident line for O(1) lookup on the hot path.  Victim selection
lives in the replacement policies (:mod:`repro.cache.replacement`), which
pick victims only among an *allowed* subset of ways — that is how both CAT
way masks (CPU fills) and the DDIO way mask (DMA fills) are enforced.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cache.line import LlcLine


class WaySet:
    """One LLC set: ``ways`` slots, each holding at most one line."""

    __slots__ = ("slots", "index")

    def __init__(self, ways: int):
        self.slots: list[Optional[LlcLine]] = [None] * ways
        self.index: dict[int, LlcLine] = {}

    def lookup(self, addr: int) -> Optional[LlcLine]:
        return self.index.get(addr)

    def install(self, line: LlcLine, way: int) -> None:
        """Place ``line`` into ``way`` (the slot must be empty)."""
        if self.slots[way] is not None:
            raise ValueError(f"way {way} is occupied")
        line.way = way
        self.slots[way] = line
        self.index[line.addr] = line

    def remove(self, line: LlcLine) -> None:
        if self.slots[line.way] is not line:
            raise ValueError("line is not resident where it claims to be")
        self.slots[line.way] = None
        del self.index[line.addr]

    def occupants(self) -> Iterable[LlcLine]:
        return (line for line in self.slots if line is not None)
