"""Pluggable LLC replacement policies.

The paper's related-work section (§8) positions re-reference-interval
prediction (RRIP) and friends as the *hardware* alternatives to A4's
software-only pseudo LLC bypassing: both try to keep dead (DMA-bloated,
streaming) lines from wasting LLC capacity.  Implementing them here lets the
ablation benches compare "change the replacement policy" against "change
the way allocation" on identical workloads.

Policies:

* :class:`LruPolicy`    — least-recently-used (the default; Skylake's LLC
  is closer to an undocumented quasi-LRU, but LRU captures the allocation
  behaviour the paper's contentions depend on);
* :class:`SrripPolicy`  — Static RRIP (Jaleel et al., ISCA'10): insert with
  a long re-reference prediction, promote on hit, age on miss — streaming
  lines are evicted before re-referenced ones;
* :class:`BrripPolicy`  — Bimodal RRIP: like SRRIP but inserts with a
  distant prediction most of the time, which resists thrashing;
* :class:`NruPolicy`    — not-recently-used single-bit approximation.

A policy owns the per-line metadata (``line.lru`` for LRU recency,
``line.rrpv`` via the generic ``meta`` dict for RRIP) and decides victims
within an allowed way set.

Victim selection runs once per LLC fill, so ``_candidates`` avoids building
a list/set per call: allowed way masks are stable tuples (CAT masks, the
DCA mask, the inclusive ways), and their candidate tuples are memoised.
"""

from __future__ import annotations

import abc
import itertools
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.cache.line import LlcLine

_ALLOWED_CACHE: Dict[object, Tuple[int, ...]] = {}


def _allowed_tuple(allowed) -> Tuple[int, ...]:
    """``tuple(allowed)``, memoised for the hashable masks the hierarchy
    passes (tuples come back unchanged without a cache entry)."""
    if type(allowed) is tuple:
        return allowed
    try:
        cached = _ALLOWED_CACHE.get(allowed)
    except TypeError:  # unhashable (e.g. a list) — convert every time
        return tuple(allowed)
    if cached is None:
        cached = _ALLOWED_CACHE[allowed] = tuple(allowed)
    return cached


class ReplacementPolicy(abc.ABC):
    """Victim selection + recency bookkeeping for one cache."""

    name = "abstract"

    @abc.abstractmethod
    def on_fill(self, line: LlcLine) -> None:
        """A new line was installed."""

    @abc.abstractmethod
    def on_hit(self, line: LlcLine) -> None:
        """A resident line was referenced."""

    @abc.abstractmethod
    def victim_way(
        self,
        slots: Sequence[Optional[LlcLine]],
        allowed: Sequence[int],
        exclude: Iterable[int] = (),
    ) -> int:
        """Pick the way to evict among ``allowed`` (empty ways preferred)."""

    @staticmethod
    def _candidates(slots, allowed, exclude):
        if exclude:
            banned = set(exclude)
            candidates = tuple(w for w in allowed if w not in banned)
        else:
            candidates = _allowed_tuple(allowed)
        if not candidates:
            raise ValueError("no candidate ways for victim selection")
        for way in candidates:
            if slots[way] is None:
                return (way,), True
        return candidates, False


class LruPolicy(ReplacementPolicy):
    """Least-recently-used via a monotone tick stored on each line."""

    name = "lru"

    def __init__(self) -> None:
        self._tick = itertools.count()

    def on_fill(self, line: LlcLine) -> None:
        line.lru = next(self._tick)

    def on_hit(self, line: LlcLine) -> None:
        line.lru = next(self._tick)

    def victim_way(self, slots, allowed, exclude=()):
        if exclude:
            candidates, empty = self._candidates(slots, allowed, exclude)
            if empty:
                return candidates[0]
        else:
            candidates = _allowed_tuple(allowed)
            if not candidates:
                raise ValueError("no candidate ways for victim selection")
        # Single pass: first empty way wins, else the least-recently-used.
        best = None
        best_lru = None
        for way in candidates:
            line = slots[way]
            if line is None:
                return way
            if best_lru is None or line.lru < best_lru:
                best, best_lru = way, line.lru
        return best


class _RripBase(ReplacementPolicy):
    """Common RRIP machinery: per-line RRPV in ``line.meta['rrpv']``."""

    def __init__(self, max_rrpv: int = 3):
        if max_rrpv < 1:
            raise ValueError("max_rrpv must be >= 1")
        self.max_rrpv = max_rrpv
        self._tick = itertools.count()

    def _insertion_rrpv(self) -> int:
        raise NotImplementedError

    def on_fill(self, line: LlcLine) -> None:
        line.meta["rrpv"] = self._insertion_rrpv()
        line.lru = next(self._tick)

    def on_hit(self, line: LlcLine) -> None:
        line.meta["rrpv"] = 0
        line.lru = next(self._tick)

    def victim_way(self, slots, allowed, exclude=()):
        candidates, empty = self._candidates(slots, allowed, exclude)
        if empty:
            return candidates[0]
        max_rrpv = self.max_rrpv
        # Search for an RRPV == max line, ageing everyone until one exists.
        while True:
            best = None
            best_key = None
            for way in candidates:
                line = slots[way]
                key = (line.meta.get("rrpv", max_rrpv), -line.lru)
                if best_key is None or key > best_key:
                    best, best_key = way, key
            if best_key[0] >= max_rrpv:
                return best
            for way in candidates:
                line = slots[way]
                rrpv = line.meta.get("rrpv", max_rrpv) + 1
                line.meta["rrpv"] = max_rrpv if rrpv > max_rrpv else rrpv


class SrripPolicy(_RripBase):
    """Static RRIP: insert at max_rrpv - 1 ("long" re-reference)."""

    name = "srrip"

    def _insertion_rrpv(self) -> int:
        return self.max_rrpv - 1


class BrripPolicy(_RripBase):
    """Bimodal RRIP: insert at max_rrpv ("distant") except 1-in-32."""

    name = "brrip"

    def __init__(self, max_rrpv: int = 3, long_interval: int = 32):
        super().__init__(max_rrpv)
        if long_interval < 1:
            raise ValueError("long_interval must be >= 1")
        self.long_interval = long_interval
        self._fills = 0

    def _insertion_rrpv(self) -> int:
        self._fills += 1
        if self._fills % self.long_interval == 0:
            return self.max_rrpv - 1
        return self.max_rrpv


class DeadBlockHintPolicy(_RripBase):
    """SRRIP plus a dead-block hint for consumed I/O lines (§8's
    dead-block-prediction alternative to pseudo bypassing).

    In a strict victim-cache LLC every line is re-referenced at most once
    at this level, so plain RRIP cannot tell DMA-bloated lines from live
    victim-cache lines.  A dead-block predictor can: a *consumed* I/O line
    entering the LLC is dead almost surely, so it is inserted with the
    distant re-reference value and becomes the preferred victim."""

    name = "deadblock"

    def _insertion_rrpv(self) -> int:
        return self.max_rrpv - 1

    def on_fill(self, line: LlcLine) -> None:
        if line.io and line.consumed:
            line.meta["rrpv"] = self.max_rrpv  # predicted dead
            line.lru = next(self._tick)
        else:
            super().on_fill(line)


class NruPolicy(ReplacementPolicy):
    """Single reference bit; evict a not-recently-used line, clearing the
    bits when all candidates are recently used."""

    name = "nru"

    def on_fill(self, line: LlcLine) -> None:
        line.meta["nru"] = 1

    def on_hit(self, line: LlcLine) -> None:
        line.meta["nru"] = 1

    def victim_way(self, slots, allowed, exclude=()):
        candidates, empty = self._candidates(slots, allowed, exclude)
        if empty:
            return candidates[0]
        for way in candidates:
            if not slots[way].meta.get("nru", 0):
                return way
        for way in candidates:
            slots[way].meta["nru"] = 0
        return candidates[0]


_POLICIES: Dict[str, type] = {
    "lru": LruPolicy,
    "srrip": SrripPolicy,
    "brrip": BrripPolicy,
    "nru": NruPolicy,
    "deadblock": DeadBlockHintPolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by name ('lru', 'srrip', ...)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; have {sorted(_POLICIES)}"
        ) from None
