"""Private mid-level cache (MLC / L2) model.

Plain set-associative LRU.  In the non-inclusive hierarchy modelled here the
MLC is where demand fills land first; its evictions are what the paper calls
*DMA bloat* when they carry consumed I/O data back into the LLC.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.cache.line import MlcLine
from repro.platform import DEFAULT_PLATFORM


class MidLevelCache:
    """One core's private L2."""

    __slots__ = ("core_id", "sets", "ways", "_sets", "_tick")

    def __init__(
        self,
        core_id: int,
        sets: int = DEFAULT_PLATFORM.mlc_sets,
        ways: int = DEFAULT_PLATFORM.mlc_ways,
    ):
        if sets <= 0 or ways <= 0:
            raise ValueError("MLC geometry must be positive")
        self.core_id = core_id
        self.sets = sets
        self.ways = ways
        self._sets: list[dict[int, MlcLine]] = [dict() for _ in range(sets)]
        self._tick = itertools.count()

    @property
    def capacity_lines(self) -> int:
        return self.sets * self.ways

    def _set_for(self, addr: int) -> dict[int, MlcLine]:
        return self._sets[addr % self.sets]

    def lookup(self, addr: int) -> Optional[MlcLine]:
        line = self._sets[addr % self.sets].get(addr)
        if line is not None:
            line.lru = next(self._tick)
        return line

    def peek(self, addr: int) -> Optional[MlcLine]:
        """Lookup without perturbing LRU (for inspection and invalidation)."""
        return self._sets[addr % self.sets].get(addr)

    def insert(self, line: MlcLine) -> Optional[MlcLine]:
        """Install ``line``; returns the evicted victim, if any."""
        bucket = self._sets[line.addr % self.sets]
        if line.addr in bucket:
            raise ValueError(f"addr {line.addr:#x} already resident")
        victim = None
        if len(bucket) >= self.ways:
            victim_addr = None
            victim_lru = None
            for addr, resident in bucket.items():
                if victim_lru is None or resident.lru < victim_lru:
                    victim_addr, victim_lru = addr, resident.lru
            victim = bucket.pop(victim_addr)
        line.lru = next(self._tick)
        bucket[line.addr] = line
        return victim

    def invalidate(self, addr: int) -> Optional[MlcLine]:
        """Drop ``addr`` if resident, returning the dropped line."""
        return self._sets[addr % self.sets].pop(addr, None)

    def resident(self) -> Iterable[MlcLine]:
        for bucket in self._sets:
            yield from bucket.values()

    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
