"""The cache hierarchy: per-core MLCs + shared LLC + directory + memory.

This module wires the structural models together and implements the data
movement rules the paper's contentions emerge from:

* **Non-inclusive fill** — a CPU miss in both MLC and LLC fills the MLC
  only; the LLC is a victim cache.
* **Victim-cache eviction (DMA bloat)** — MLC evictions allocate into the
  LLC inside the evicting core's CAT mask.  Consumed I/O lines taking this
  path are counted as *DMA bloat*.
* **Inclusive-way migration (directory contention, O1)** — when a CPU read
  hits an LLC line, the line also enters the reader's MLC and thus becomes
  LLC-inclusive; such lines may only live in the two inclusive ways, so the
  LLC copy migrates there, evicting whatever occupied them — regardless of
  any CAT mask.
* **DDIO flows** — inbound DMA writes either *write-update* a resident LLC
  line in place, *write-allocate* into the DCA ways, or (non-allocating
  flow, DCA disabled for the port) go straight to memory.
* **DMA leak** — an unconsumed DMA-written line evicted from the LLC is
  counted as a leak against its stream; the eventual CPU read then misses
  to memory (raising the stream's *DCA miss rate*).
* **Egress read-allocate** — device reads of MLC-only lines copy them into
  the inclusive ways; uncached lines are read from memory without
  allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Optional, Sequence, Tuple

from repro.cache.directory import DirectoryEntry, SnoopFilter
from repro.cache.line import LlcLine, MlcLine
from repro.cache.llc import LastLevelCache, LlcConfig
from repro.cache.mlc import MidLevelCache
from repro.platform import DEFAULT_PLATFORM, PlatformSpec
from repro.rdt.cat import CacheAllocation
from repro.sim import batch
from repro.telemetry.counters import CounterBank
from repro.uncore.memory import MemoryController


@dataclass
class HierarchyConfig:
    """Geometry and latency knobs for one simulated socket.

    Geometry/timing fields default to ``None`` and are resolved against
    ``platform`` (or :data:`~repro.platform.DEFAULT_PLATFORM`) in
    ``__post_init__`` — at *construction* time, not at import time — so a
    config built for a non-default platform can never silently inherit
    skylake-sp geometry through a stale class-level default.
    """

    cores: int = 18
    platform: Optional[PlatformSpec] = None
    """The spec unresolved fields are derived from (default skylake-sp)."""
    llc: Optional[LlcConfig] = None
    mlc_sets: Optional[int] = None
    mlc_ways: Optional[int] = None
    ext_dir_ways: Optional[int] = None
    mlc_hit_cycles: Optional[float] = None
    llc_hit_cycles: Optional[float] = None
    snoop_hit_cycles: Optional[float] = None
    """Cache-to-cache transfer from a peer MLC via the extended directory
    (defaults to ``llc_hit_cycles + 16``)."""
    ddio_write_update: bool = True
    """Real DDIO write-updates LLC-resident lines in place wherever they
    live.  Set False (ablation) to force every inbound write to re-allocate
    into the DCA ways — Fig. 7's Overlap advantage then disappears because
    I/O lines can no longer be refreshed inside the inclusive ways."""
    next_line_prefetch: bool = False
    """Optional L2 next-line prefetcher: a demand miss also pulls the
    following line into the MLC (uncharged, like a timely hardware
    prefetch).  Off by default — the paper's contentions are orthogonal to
    prefetching, but the knob lets users study their interaction."""
    self_invalidate_consumed: bool = False
    """Related-work baseline (§8: IDIO / Sweeper): consumed I/O lines are
    self-invalidated — the LLC copy is dropped on consumption instead of
    migrating to the inclusive ways, and MLC evictions of consumed I/O
    lines are discarded instead of bloating the LLC.  Eliminates both the
    directory contention and DMA bloat at the cost of hardware changes the
    paper's software-only approach avoids."""

    def __post_init__(self) -> None:
        spec = self.platform if self.platform is not None else DEFAULT_PLATFORM
        if self.llc is None:
            self.llc = LlcConfig.for_platform(spec)
        if self.mlc_sets is None:
            self.mlc_sets = spec.mlc_sets
        if self.mlc_ways is None:
            self.mlc_ways = spec.mlc_ways
        if self.ext_dir_ways is None:
            self.ext_dir_ways = spec.extended_dir_ways
        if self.mlc_hit_cycles is None:
            self.mlc_hit_cycles = spec.mlc_hit_cycles
        if self.llc_hit_cycles is None:
            self.llc_hit_cycles = spec.llc_hit_cycles
        if self.snoop_hit_cycles is None:
            self.snoop_hit_cycles = self.llc_hit_cycles + 16

    @classmethod
    def for_platform(
        cls, platform: PlatformSpec, cores: int = 18, **overrides
    ) -> "HierarchyConfig":
        """Hierarchy geometry/timing of ``platform`` (switches overridable)."""
        return cls(cores=cores, platform=platform, **overrides)


class CacheHierarchy:
    """One socket's cache hierarchy plus its memory interface.

    The constructor snapshots every spec-derived scalar the per-event paths
    need (hit latencies, behavioural switches, set counts, the set arrays
    themselves) into ``__slots__`` locals: the hot paths never chase
    ``self.cfg.<field>`` through two levels of dataclass indirection per
    event.  All snapshot sources are frozen or construction-stable; the
    runtime-mutable state (CAT masks, the DDIO way mask, replacement
    policy ticks) is still read through its owning object every time.
    """

    __slots__ = (
        "cfg",
        "cat",
        "memory",
        "counters",
        "mba",
        "llc",
        "sf",
        "mlcs",
        "_scounters",
        "_inclusive_migration",
        "_inclusive_ways",
        "_llc_lru_tick",
        "_mlc_hit_cycles",
        "_llc_hit_cycles",
        "_snoop_hit_cycles",
        "_ddio_write_update",
        "_next_line_prefetch",
        "_self_invalidate_consumed",
        "_llc_sets",
        "_llc_nsets",
        "_sf_sets",
        "_sf_nsets",
        "_batching",
    )

    def __init__(
        self,
        cfg: HierarchyConfig,
        cat: CacheAllocation,
        memory: MemoryController,
        counters: CounterBank,
        mba=None,
    ):
        self.cfg = cfg
        self.cat = cat
        self.memory = memory
        self.counters = counters
        self.mba = mba
        # ^ Optional repro.rdt.mba.MemoryBandwidthAllocation: throttles
        # memory latency per the accessing core's CLOS.
        self.llc = LastLevelCache(cfg.llc)
        self.sf = SnoopFilter(
            sets=cfg.llc.sets,
            ways=cfg.ext_dir_ways,
            min_inclusive=len(cfg.llc.inclusive_ways),
        )
        self.mlcs = [
            MidLevelCache(core, cfg.mlc_sets, cfg.mlc_ways)
            for core in range(cfg.cores)
        ]
        self._scounters: dict[str, "StreamCounters"] = {}
        # Per-stream handle cache; dodges a CounterBank.stream call on
        # every access (the bank itself is stable for the hierarchy's life).
        self._inclusive_migration = cfg.llc.inclusive_migration
        self._inclusive_ways = cfg.llc.inclusive_ways
        self._llc_lru_tick = self.llc._lru_tick
        # Mirror of the LLC's LRU fast-path tick (None for RRIP/NRU).
        # Spec-derived scalar snapshots (constants for this instance).
        self._mlc_hit_cycles = cfg.mlc_hit_cycles
        self._llc_hit_cycles = cfg.llc_hit_cycles
        self._snoop_hit_cycles = cfg.snoop_hit_cycles
        self._ddio_write_update = cfg.ddio_write_update
        self._next_line_prefetch = cfg.next_line_prefetch
        self._self_invalidate_consumed = cfg.self_invalidate_consumed
        # Structure bindings: the set arrays never change identity.
        self._llc_sets = self.llc._sets
        self._llc_nsets = self.llc._nsets
        self._sf_sets = self.sf._sets
        self._sf_nsets = self.sf.sets
        self._batching = batch.enabled()

    def set_batching(self, enabled: bool) -> None:
        """Toggle batched dispatch for this hierarchy (parity tests and the
        on/off bit-identity gate use this; figures inherit the module
        default from :mod:`repro.sim.batch`)."""
        self._batching = bool(enabled)

    def _stream(self, name: str):
        counters = self._scounters.get(name)
        if counters is None:
            counters = self._scounters[name] = self.counters.stream(name)
        return counters

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------

    def cpu_access(
        self,
        now: float,
        core: int,
        addr: int,
        stream: str,
        write: bool = False,
        io_read: bool = False,
    ) -> float:
        """One CPU load/store; returns its load-to-use latency in cycles.

        ``io_read`` marks reads of device-DMA-written data (ring descriptors,
        packet payloads, storage blocks); misses on such reads are the
        realised cost of DMA leaks and feed the stream's DCA miss rate.
        """
        counters = self._scounters.get(stream)
        if counters is None:
            counters = self._scounters[stream] = self.counters.stream(stream)
        if io_read:
            counters.io_reads += 1

        llc = self.llc
        mlc = self.mlcs[core]
        mlc_line = mlc._sets[addr % mlc.sets].get(addr)
        if mlc_line is not None:
            mlc_line.lru = next(mlc._tick)
            counters.mlc_hits += 1
            if write:
                mlc_line.dirty = True
                # A store hit in an MLC invalidates any (now stale) LLC copy.
                llc_line = self._llc_sets[addr % self._llc_nsets].index.get(addr)
                if llc_line is not None:
                    self._detach_llc_line(llc_line)
                    llc.remove(llc_line)
            return self._mlc_hit_cycles

        counters.mlc_misses += 1
        llc_line = self._llc_sets[addr % self._llc_nsets].index.get(addr)
        if llc_line is not None:
            lru_tick = self._llc_lru_tick
            if lru_tick is not None:
                llc_line.lru = next(lru_tick)
            else:
                llc.policy.on_hit(llc_line)
            counters.llc_hits += 1
            if llc_line.io and not llc_line.consumed:
                # First CPU touch of a DMA-written line: mark consumed and
                # perform the modified-to-shared write-back (Wang et al.).
                llc_line.consumed = True
                if llc_line.dirty:
                    self.memory.write(now, 1, llc_line.stream)
                    llc_line.dirty = False
            if write:
                # RFO: the MLC takes exclusive ownership; the LLC copy dies.
                dirty = True
                io_flag = llc_line.io
                self._detach_llc_line(llc_line)
                llc.remove(llc_line)
                self._fill_mlc(now, core, addr, stream, dirty=dirty, io=io_flag)
            elif llc_line.io and self._self_invalidate_consumed:
                # IDIO/Sweeper baseline: the consumed copy self-invalidates.
                self._detach_llc_line(llc_line)
                llc.remove(llc_line)
                self._fill_mlc(now, core, addr, stream, dirty=False, io=True)
            elif llc_line.io:
                # A DMA-written line transitions modified -> shared on its
                # first CPU read (Wang et al.): the LLC keeps a copy, which
                # as an LLC-inclusive line must migrate into the inclusive
                # ways (Yan et al.) — the paper's directory contention.
                self._make_inclusive(now, llc_line)
                self._fill_mlc(
                    now, core, addr, stream, dirty=False, io=True,
                    llc_line=llc_line,
                )
            else:
                # Regular non-inclusive victim-cache hit: the line transfers
                # to the reader's MLC and the LLC copy is invalidated.
                self._detach_llc_line(llc_line)
                llc.remove(llc_line)
                self._fill_mlc(
                    now, core, addr, stream, dirty=llc_line.dirty, io=False
                )
            return self._llc_hit_cycles

        entry = self._sf_sets[addr % self._sf_nsets].get(addr)
        if entry is not None and entry.holders:
            # MLC-only line held by a peer core: serve via a snoop.
            counters.llc_hits += 1
            if write:
                self._invalidate_peers(now, addr, keep_core=None)
                self._fill_mlc(now, core, addr, stream, dirty=True, io=False)
            else:
                self._fill_mlc(now, core, addr, stream, dirty=False, io=False)
            return self._snoop_hit_cycles

        # Full miss: fill the MLC straight from memory (non-inclusive).
        counters.llc_misses += 1
        if io_read:
            counters.io_read_misses += 1
        self.memory.read(now, 1, stream)
        latency = self.memory.access_latency()
        if self.mba is not None:
            latency *= self.mba.latency_factor(self.cat.clos_of(core))
        self._fill_mlc(now, core, addr, stream, dirty=write, io=io_read)
        if self._next_line_prefetch and not io_read:
            self._prefetch(now, core, addr + 1, stream)
        return latency

    def _prefetch(self, now: float, core: int, addr: int, stream: str) -> None:
        """Timely next-line prefetch into the MLC (no latency charged)."""
        if self.mlcs[core].peek(addr) is not None:
            return
        if self.llc.lookup(addr, touch=False) is not None:
            return  # leave LLC-resident lines alone (no speculative moves)
        counters = self._stream(stream)
        counters.prefetch_fills += 1
        self.memory.read(now, 1, stream)
        self._fill_mlc(now, core, addr, stream, dirty=False, io=False)

    def cpu_access_run(
        self,
        now: float,
        core: int,
        addrs: Sequence[int],
        stream: str,
        write: bool = False,
        io_read: bool = False,
    ) -> float:
        """Sum of :meth:`cpu_access` latencies for ``addrs``, in order.

        Semantically identical to calling :meth:`cpu_access` once per
        address.  With batching on, maximal streaks of MLC *read* hits —
        which mutate nothing but recency and counters — are classified
        before any mutation and then processed in bulk (one counter update,
        recency ticks pre-drawn in order); every other access (writes,
        misses, LLC/snoop transitions, prefetch triggers) delegates to the
        scalar path at its original position in the run, so any state it
        changes is visible to the classification of the remaining suffix.

        The returned total is exact for the default integral hit latencies;
        with non-integral latency configs it may differ from the scalar sum
        in the last float bit (bulk multiply vs. repeated add).
        """
        if not self._batching or write:
            cpu_access = self.cpu_access
            total = 0.0
            for addr in addrs:
                total += cpu_access(now, core, addr, stream, write, io_read)
            return total
        counters = self._scounters.get(stream)
        if counters is None:
            counters = self._scounters[stream] = self.counters.stream(stream)
        mlc = self.mlcs[core]
        msets = mlc._sets
        nmsets = mlc.sets
        mtick = mlc._tick
        mlc_hit_cycles = self._mlc_hit_cycles
        cpu_access = self.cpu_access
        n = len(addrs)
        if batch.use_numpy(n):
            # Vectorized set-index computation for the whole run.
            idx = (
                batch.np.asarray(addrs, dtype=batch.np.int64) % nmsets
            ).tolist()
        else:
            idx = None
        total = 0.0
        i = 0
        while i < n:
            addr = addrs[i]
            bucket = msets[idx[i]] if idx is not None else msets[addr % nmsets]
            line = bucket.get(addr)
            if line is None:
                total += cpu_access(now, core, addr, stream, False, io_read)
                i += 1
                continue
            # MLC-read-hit streak: a hit mutates only the line's recency,
            # which cannot change any later access's hit/miss outcome, so
            # ticks are drawn inline in exact scalar order; the first
            # non-hit ends the streak and re-enters scalar dispatch.
            count = 0
            while True:
                line.lru = next(mtick)
                count += 1
                i += 1
                if i >= n:
                    break
                addr = addrs[i]
                bucket = (
                    msets[idx[i]] if idx is not None else msets[addr % nmsets]
                )
                line = bucket.get(addr)
                if line is None:
                    break
            counters.mlc_hits += count
            if io_read:
                counters.io_reads += count
            total += mlc_hit_cycles * count
        return total

    # ------------------------------------------------------------------
    # DMA side
    # ------------------------------------------------------------------

    def dma_write(self, now: float, addr: int, stream: str, allocating: bool) -> None:
        """Inbound device write of one line.

        ``allocating`` selects the DDIO allocating flow (write-update /
        write-allocate into DCA ways) vs. the memory flow (DCA disabled).
        """
        self.dma_write_burst(now, addr, 1, stream, allocating)

    def dma_write_burst(
        self, now: float, base_addr: int, lines: int, stream: str, allocating: bool
    ) -> None:
        """Inbound device write of ``lines`` consecutive lines.

        Semantically identical to ``lines`` calls to :meth:`dma_write`; the
        burst form hoists the per-stream counter fetch and structure
        bindings out of the per-line loop (NIC packets and NVMe transfers
        always write multi-line bursts).
        """
        counters = self._scounters.get(stream)
        if counters is None:
            counters = self._scounters[stream] = self.counters.stream(stream)
        counters.dma_writes += lines

        if (
            self._batching
            and lines >= batch.MIN_BURST
            and (
                not allocating
                or (self._llc_lru_tick is not None and self._ddio_write_update)
            )
        ):
            # Batched dispatch covers the two uniform flows; the ablation
            # (write-update off) and non-LRU policies keep scalar dispatch.
            self._dma_write_burst_batched(
                now, base_addr, lines, stream, allocating, counters
            )
            return

        sf_sets = self._sf_sets
        sf_nsets = self._sf_nsets
        llc = self.llc
        llc_sets = self._llc_sets
        llc_nsets = self._llc_nsets
        write_update = self._ddio_write_update
        lru_tick = self._llc_lru_tick
        memory_write = self.memory.write
        scounters = self._scounters
        for addr in range(base_addr, base_addr + lines):
            # The device takes ownership: cached CPU copies become stale.
            # (Untracked addresses — the common case for fresh buffers —
            # skip the full peer walk; LLC holder sets are empty whenever
            # no snoop filter entry exists, so nothing needs pruning.)
            if sf_sets[addr % sf_nsets].get(addr) is not None:
                self._invalidate_peers(now, addr, keep_core=None, silent=True)
            wayset = llc_sets[addr % llc_nsets]
            llc_line = wayset.index.get(addr)
            if llc_line is not None:
                llc_line.holders.clear()

            if allocating:
                if llc_line is not None and not write_update:
                    # Ablation: no in-place updates; drop the stale copy and
                    # fall through to a fresh DCA-way allocation.
                    self._detach_llc_line(llc_line)
                    llc.remove(llc_line)
                    llc_line = None
                if llc_line is not None:
                    counters.ddio_updates += 1
                    llc_line.dirty = True
                    llc_line.io = True
                    llc_line.consumed = False
                    llc_line.stream = stream
                    if lru_tick is not None:
                        llc_line.lru = next(lru_tick)
                    else:
                        llc.policy.on_hit(llc_line)
                elif lru_tick is not None:
                    # Inlined LastLevelCache.allocate (LRU fast path); the
                    # lookup above proved ``addr`` is not resident, and
                    # ``wayset`` is reused from it.
                    counters.ddio_allocates += 1
                    slots = wayset.slots
                    way = -1
                    best_lru = None
                    for cand in llc.dca_ways:
                        resident = slots[cand]
                        if resident is None:
                            way = cand
                            break
                        if best_lru is None or resident.lru < best_lru:
                            way, best_lru = cand, resident.lru
                    if way < 0:
                        raise ValueError("no candidate ways for victim selection")
                    victim = slots[way]
                    index = wayset.index
                    if victim is not None:
                        del index[victim.addr]
                    line = LlcLine(addr, stream, way, True, True, False)
                    line.lru = next(lru_tick)
                    slots[way] = line
                    index[addr] = line
                    if victim is not None:
                        if victim.holders:
                            self._dispose_victim(now, victim)
                        else:
                            # Inlined _dispose_victim, no-holders case (DCA
                            # victims are never inclusive).
                            vstream = victim.stream
                            vcounters = scounters.get(vstream)
                            if vcounters is None:
                                vcounters = scounters[vstream] = (
                                    self.counters.stream(vstream)
                                )
                            vcounters.llc_evictions_suffered += 1
                            if victim.io and not victim.consumed:
                                vcounters.dma_leaks += 1
                            if victim.dirty:
                                memory_write(now, 1, vstream)
                else:
                    counters.ddio_allocates += 1
                    _, victim = llc.allocate(
                        addr,
                        stream,
                        llc.dca_ways,
                        dirty=True,
                        io=True,
                        consumed=False,
                    )
                    if victim is not None:
                        self._dispose_victim(now, victim)
            else:
                memory_write(now, 1, stream)
                if llc_line is not None:
                    # Stale copy invalidated without write-back.
                    llc.remove(llc_line)

    def _dma_write_burst_batched(
        self,
        now: float,
        base_addr: int,
        lines: int,
        stream: str,
        allocating: bool,
        counters,
    ) -> None:
        """Batch twin of the scalar burst loop (bit-identical by design).

        Parity rests on three invariants, each checked by the randomized
        property tests:

        * at a fixed ``now`` the memory controller's utilisation window
          rolls at most once (on the first access), so per-line write-backs
          and one aggregated ``memory.write`` per stream account
          identically;
        * in the allocating LRU flow every line consumes exactly one LLC
          recency tick (write-update or allocate), so the ticks can be
          pre-drawn in line order;
        * deferred per-victim-stream counter flushes run in first-encounter
          order, matching the order the scalar loop would lazily create
          stream counters in.

        Anything that breaks uniformity — a snoop-filter hit, an inclusive
        victim — drops to the scalar helpers mid-batch for that line only.
        """
        sf_sets = self._sf_sets
        sf_nsets = self._sf_nsets
        llc_sets = self._llc_sets
        llc_nsets = self._llc_nsets
        end = base_addr + lines
        if batch.use_numpy(lines):
            # Vectorized set-index computation for the whole burst.
            addr_arr = batch.np.arange(base_addr, end, dtype=batch.np.int64)
            llc_idx = (addr_arr % llc_nsets).tolist()
            sf_idx = (
                llc_idx
                if sf_nsets == llc_nsets
                else (addr_arr % sf_nsets).tolist()
            )
        else:
            llc_idx = [a % llc_nsets for a in range(base_addr, end)]
            sf_idx = (
                llc_idx
                if sf_nsets == llc_nsets
                else [a % sf_nsets for a in range(base_addr, end)]
            )
        llc = self.llc

        if not allocating:
            for offset, addr in enumerate(range(base_addr, end)):
                if sf_sets[sf_idx[offset]].get(addr) is not None:
                    self._invalidate_peers(now, addr, keep_core=None, silent=True)
                llc_line = llc_sets[llc_idx[offset]].index.get(addr)
                if llc_line is not None:
                    # Stale copy invalidated without write-back.
                    llc_line.holders.clear()
                    llc.remove(llc_line)
            self.memory.write(now, lines, stream)
            return

        dca_ways = llc.dca_ways
        lru_tick = self._llc_lru_tick
        ticks = list(islice(lru_tick, lines))
        n_updates = 0
        n_allocates = 0
        # victim stream -> [evictions, leaks, write-back lines]
        evictions: dict[str, list] = {}
        for offset, addr in enumerate(range(base_addr, end)):
            if sf_sets[sf_idx[offset]].get(addr) is not None:
                self._invalidate_peers(now, addr, keep_core=None, silent=True)
            wayset = llc_sets[llc_idx[offset]]
            index = wayset.index
            llc_line = index.get(addr)
            if llc_line is not None:
                # DDIO write-update in place.
                llc_line.holders.clear()
                n_updates += 1
                llc_line.dirty = True
                llc_line.io = True
                llc_line.consumed = False
                llc_line.stream = stream
                llc_line.lru = ticks[offset]
                continue
            # DDIO write-allocate into the DCA ways (inlined LRU allocate).
            n_allocates += 1
            slots = wayset.slots
            way = -1
            best_lru = None
            for cand in dca_ways:
                resident = slots[cand]
                if resident is None:
                    way = cand
                    break
                if best_lru is None or resident.lru < best_lru:
                    way, best_lru = cand, resident.lru
            if way < 0:
                raise ValueError("no candidate ways for victim selection")
            victim = slots[way]
            if victim is not None:
                del index[victim.addr]
            line = LlcLine(addr, stream, way, True, True, False)
            line.lru = ticks[offset]
            slots[way] = line
            index[addr] = line
            if victim is not None:
                if victim.holders:
                    self._dispose_victim(now, victim)
                else:
                    acc = evictions.get(victim.stream)
                    if acc is None:
                        acc = evictions[victim.stream] = [0, 0, 0]
                    acc[0] += 1
                    if victim.io and not victim.consumed:
                        acc[1] += 1
                    if victim.dirty:
                        acc[2] += 1
        counters.ddio_updates += n_updates
        counters.ddio_allocates += n_allocates
        scounters = self._scounters
        memory_write = self.memory.write
        for vstream, (evicted, leaked, written) in evictions.items():
            vcounters = scounters.get(vstream)
            if vcounters is None:
                vcounters = scounters[vstream] = self.counters.stream(vstream)
            vcounters.llc_evictions_suffered += evicted
            vcounters.dma_leaks += leaked
            if written:
                memory_write(now, written, vstream)

    def dma_write_multi(
        self,
        now: float,
        spans: Sequence[Tuple[int, int, str]],
        allocating: bool,
    ) -> None:
        """Inbound writes of several ``(base_addr, lines, stream)`` spans
        issued at the same timestamp; equivalent to one
        :meth:`dma_write_burst` per span, in order.  Devices that fan one
        service quantum across many buffers (the NVMe transfer engine) use
        this to keep each span on the batched path."""
        for base_addr, lines, stream in spans:
            self.dma_write_burst(now, base_addr, lines, stream, allocating)

    def dma_read(self, now: float, addr: int, stream: str) -> None:
        """Outbound device read of one line (egress path)."""
        counters = self._stream(stream)
        counters.dma_reads += 1

        llc_line = self.llc.lookup(addr)
        if llc_line is not None:
            return  # served directly from the LLC

        entry = self.sf.entry(addr)
        if entry is not None and entry.holders:
            # MLC-only data: read-allocate a copy into the inclusive ways.
            holder = next(iter(entry.holders))
            mlc_line = self.mlcs[holder].peek(addr)
            dirty = bool(mlc_line and mlc_line.dirty)
            owner_stream = mlc_line.stream if mlc_line else stream
            new_line, victim = self.llc.allocate(
                addr,
                owner_stream,
                self.cfg.llc.inclusive_ways,
                dirty=dirty,
                io=False,
            )
            new_line.holders = set(entry.holders)
            self.sf.set_inclusive(addr, True)
            if mlc_line is not None:
                mlc_line.dirty = False
            if victim is not None:
                self._dispose_victim(now, victim)
            return

        # Uncached: DMA-read from memory, no LLC allocation (NetCAT finding).
        self.memory.read(now, 1, stream)

    # ------------------------------------------------------------------
    # Internal mechanics
    # ------------------------------------------------------------------

    def _make_inclusive(self, now: float, llc_line: LlcLine) -> None:
        """A read is about to put ``llc_line`` into an MLC as well: enforce
        the shared-directory placement constraint (migrate into the
        inclusive ways), unless disabled for ablation."""
        if not self._inclusive_migration:
            return
        if llc_line.way in self._inclusive_ways:
            return
        llc = self.llc
        lru_tick = self._llc_lru_tick
        if lru_tick is not None:
            # Inlined LastLevelCache.migrate_to_inclusive (LRU fast path).
            wayset = llc._sets[llc_line.addr % llc._nsets]
            slots = wayset.slots
            way = -1
            best_lru = None
            for cand in self._inclusive_ways:
                resident = slots[cand]
                if resident is None:
                    way = cand
                    break
                if best_lru is None or resident.lru < best_lru:
                    way, best_lru = cand, resident.lru
            if way < 0:
                raise ValueError("no candidate ways for victim selection")
            victim = slots[way]
            if victim is not None:
                del wayset.index[victim.addr]
            slots[llc_line.way] = None
            llc_line.lru = next(lru_tick)
            llc_line.way = way
            slots[way] = llc_line
        else:
            victim = llc.migrate_to_inclusive(llc_line)
        stream = llc_line.stream
        counters = self._scounters.get(stream)
        if counters is None:
            counters = self._scounters[stream] = self.counters.stream(stream)
        counters.migrations += 1
        if victim is not None:
            self._dispose_victim(now, victim)

    def _fill_mlc(
        self,
        now: float,
        core: int,
        addr: int,
        stream: str,
        dirty: bool,
        io: bool,
        llc_line: Optional[LlcLine] = None,
    ) -> None:
        """Install ``addr`` into ``core``'s MLC and track it in the extended
        directory.  ``llc_line`` is the line's current LLC copy — callers
        always know it (most paths just removed it or verified a miss), so
        passing it here saves a redundant LLC lookup per fill."""
        mlc = self.mlcs[core]
        bucket = mlc._sets[addr % mlc.sets]
        if addr in bucket:
            raise ValueError(f"addr {addr:#x} already resident")
        victim = None
        if len(bucket) >= mlc.ways:
            victim_addr = None
            victim_lru = None
            for cand_addr, resident in bucket.items():
                if victim_lru is None or resident.lru < victim_lru:
                    victim_addr, victim_lru = cand_addr, resident.lru
            victim = bucket.pop(victim_addr)
        line = MlcLine(addr=addr, stream=stream, dirty=dirty, io=io)
        line.lru = next(mlc._tick)
        bucket[addr] = line
        # Inlined SnoopFilter.track: a fresh MLC holder is the common case
        # (buffers are per-core), so build the entry here; an existing
        # entry just gains a holder.
        sf = self.sf
        sf_bucket = self._sf_sets[addr % self._sf_nsets]
        entry = sf_bucket.get(addr)
        if entry is None:
            evicted_entry = None
            if len(sf_bucket) >= sf.ways:
                evicted_entry = sf._choose_victim(sf_bucket)
                del sf_bucket[evicted_entry.addr]
                sf.back_invalidations += 1
            sf_bucket[addr] = DirectoryEntry(
                addr, {core}, llc_line is not None, next(sf._tick)
            )
            if evicted_entry is not None:
                self._back_invalidate(now, evicted_entry)
        else:
            entry.holders.add(core)
            if llc_line is not None:
                entry.inclusive = True
            entry.lru = next(sf._tick)
        if llc_line is not None:
            llc_line.holders.add(core)
        if victim is not None:
            self._handle_mlc_eviction(now, core, victim)

    def _handle_mlc_eviction(self, now: float, core: int, mlc_line: MlcLine) -> None:
        """Victim-cache behaviour: an evicted MLC line allocates into the LLC
        within the evicting core's CAT mask (unless already resident)."""
        addr = mlc_line.addr
        # Inlined SnoopFilter.drop_holder; ``entry`` stays valid for the
        # peer-holder check below (empty entries are deleted here).
        sf_bucket = self._sf_sets[addr % self._sf_nsets]
        entry = sf_bucket.get(addr)
        if entry is not None:
            entry.holders.discard(core)
            if not entry.holders:
                del sf_bucket[addr]
                entry = None
        wayset = self._llc_sets[addr % self._llc_nsets]
        llc_line = wayset.index.get(addr)
        if llc_line is not None:
            llc_line.holders.discard(core)
            if not llc_line.holders and entry is not None:
                entry.inclusive = False
            # Was inclusive: the LLC copy absorbs the eviction.
            llc_line.dirty = llc_line.dirty or mlc_line.dirty
            return

        if entry is not None and entry.holders:
            # A peer MLC still holds the line: silent drop of this copy.
            if mlc_line.dirty:
                peer = next(iter(entry.holders))
                peer_line = self.mlcs[peer].peek(addr)
                if peer_line is not None:
                    peer_line.dirty = True
            return

        if mlc_line.io and self._self_invalidate_consumed:
            # IDIO/Sweeper baseline: consumed I/O lines never bloat the LLC.
            if mlc_line.dirty:
                self.memory.write(now, 1, mlc_line.stream)
            return

        stream = mlc_line.stream
        counters = self._scounters.get(stream)
        if counters is None:
            counters = self._scounters[stream] = self.counters.stream(stream)
        counters.llc_fills += 1
        io = mlc_line.io
        if io:
            counters.dma_bloats += 1
        cat = self.cat
        allowed = cat._masks[cat._core_clos.get(core, 0)]
        lru_tick = self._llc_lru_tick
        if lru_tick is not None:
            # Inlined LastLevelCache.allocate (LRU fast path); the lookup
            # above proved ``addr`` is not resident, and ``wayset`` is
            # reused from it.  An I/O line that reached an MLC counts as
            # consumed.
            slots = wayset.slots
            way = -1
            best_lru = None
            for cand in allowed:
                resident = slots[cand]
                if resident is None:
                    way = cand
                    break
                if best_lru is None or resident.lru < best_lru:
                    way, best_lru = cand, resident.lru
            if way < 0:
                raise ValueError("no candidate ways for victim selection")
            victim = slots[way]
            index = wayset.index
            if victim is not None:
                del index[victim.addr]
            line = LlcLine(addr, stream, way, mlc_line.dirty, io, io)
            line.lru = next(lru_tick)
            slots[way] = line
            index[addr] = line
        else:
            _, victim = self.llc.allocate(
                addr,
                stream,
                allowed,
                dirty=mlc_line.dirty,
                io=io,
                consumed=io,
            )
        if victim is not None:
            if victim.holders:
                self._dispose_victim(now, victim)
            else:
                # Inlined _dispose_victim, no-holders case (the common one
                # for standard-way victims).
                vstream = victim.stream
                vcounters = self._scounters.get(vstream)
                if vcounters is None:
                    vcounters = self._scounters[vstream] = (
                        self.counters.stream(vstream)
                    )
                vcounters.llc_evictions_suffered += 1
                if victim.io and not victim.consumed:
                    vcounters.dma_leaks += 1
                if victim.dirty:
                    self.memory.write(now, 1, vstream)

    def _dispose_victim(self, now: float, victim: LlcLine) -> None:
        """Account for an LLC line displaced by a fill or migration."""
        stream = victim.stream
        counters = self._scounters.get(stream)
        if counters is None:
            counters = self._scounters[stream] = self.counters.stream(stream)
        counters.llc_evictions_suffered += 1
        if victim.holders:
            # Inclusive line losing only its LLC data copy: the MLC copies
            # live on, tracked by extended directory entries instead.
            counters.inclusive_downgrades += 1
            addr = victim.addr
            if victim.dirty:
                holder = next(iter(victim.holders))
                holder_line = self.mlcs[holder].peek(addr)
                if holder_line is not None:
                    holder_line.dirty = True
            sf = self.sf
            entry = sf._sets[addr % sf.sets].get(addr)
            if entry is not None:
                entry.inclusive = False
            return
        if victim.io and not victim.consumed:
            counters.dma_leaks += 1
        if victim.dirty:
            self.memory.write(now, 1, victim.stream)

    def _detach_llc_line(self, llc_line: LlcLine) -> None:
        """Prepare an LLC line for removal: release directory coupling."""
        if llc_line.holders:
            sf = self.sf
            addr = llc_line.addr
            entry = sf._sets[addr % sf.sets].get(addr)
            if entry is not None:
                entry.inclusive = False
            llc_line.holders.clear()

    def _invalidate_peers(
        self,
        now: float,
        addr: int,
        keep_core: Optional[int],
        silent: bool = False,
    ) -> bool:
        """Invalidate MLC copies of ``addr`` (except ``keep_core``'s).

        Returns True when a dirty copy was dropped.  ``silent`` suppresses
        the write-back (used for DMA writes that overwrite the data anyway).
        """
        sf = self.sf
        entry = sf._sets[addr % sf.sets].get(addr)
        if entry is None:
            return False
        dirty_dropped = False
        for core in list(entry.holders):
            if core == keep_core:
                continue
            dropped = self.mlcs[core].invalidate(addr)
            sf.drop_holder(addr, core)
            if dropped is not None and dropped.dirty:
                dirty_dropped = True
                if not silent:
                    self.memory.write(now, 1, dropped.stream)
        llc = self.llc
        llc_line = llc._sets[addr % llc._nsets].index.get(addr)
        if llc_line is not None:
            llc_line.holders = {
                c for c in llc_line.holders if c == keep_core
            }
            if not llc_line.holders:
                self.sf.set_inclusive(addr, False)
        return dirty_dropped

    def _back_invalidate(self, now: float, entry) -> None:
        """An extended-directory eviction forces MLC copies out."""
        for core in list(entry.holders):
            dropped = self.mlcs[core].invalidate(entry.addr)
            if dropped is not None:
                self._stream(dropped.stream).back_invalidations += 1
                if dropped.dirty:
                    self.memory.write(now, 1, dropped.stream)
