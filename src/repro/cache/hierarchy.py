"""The cache hierarchy: per-core MLCs + shared LLC + directory + memory.

This module wires the structural models together and implements the data
movement rules the paper's contentions emerge from:

* **Non-inclusive fill** — a CPU miss in both MLC and LLC fills the MLC
  only; the LLC is a victim cache.
* **Victim-cache eviction (DMA bloat)** — MLC evictions allocate into the
  LLC inside the evicting core's CAT mask.  Consumed I/O lines taking this
  path are counted as *DMA bloat*.
* **Inclusive-way migration (directory contention, O1)** — when a CPU read
  hits an LLC line, the line also enters the reader's MLC and thus becomes
  LLC-inclusive; such lines may only live in the two inclusive ways, so the
  LLC copy migrates there, evicting whatever occupied them — regardless of
  any CAT mask.
* **DDIO flows** — inbound DMA writes either *write-update* a resident LLC
  line in place, *write-allocate* into the DCA ways, or (non-allocating
  flow, DCA disabled for the port) go straight to memory.
* **DMA leak** — an unconsumed DMA-written line evicted from the LLC is
  counted as a leak against its stream; the eventual CPU read then misses
  to memory (raising the stream's *DCA miss rate*).
* **Egress read-allocate** — device reads of MLC-only lines copy them into
  the inclusive ways; uncached lines are read from memory without
  allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import config
from repro.cache.directory import SnoopFilter
from repro.cache.line import LlcLine, MlcLine
from repro.cache.llc import LastLevelCache, LlcConfig
from repro.cache.mlc import MidLevelCache
from repro.rdt.cat import CacheAllocation
from repro.telemetry.counters import CounterBank
from repro.uncore.memory import MemoryController


@dataclass
class HierarchyConfig:
    """Geometry and latency knobs for one simulated socket."""

    cores: int = 18
    llc: LlcConfig = field(default_factory=LlcConfig)
    mlc_sets: int = config.MLC_SETS
    mlc_ways: int = config.MLC_WAYS
    mlc_hit_cycles: float = config.MLC_HIT_CYCLES
    llc_hit_cycles: float = config.LLC_HIT_CYCLES
    snoop_hit_cycles: float = config.LLC_HIT_CYCLES + 16
    """Cache-to-cache transfer from a peer MLC via the extended directory."""
    ddio_write_update: bool = True
    """Real DDIO write-updates LLC-resident lines in place wherever they
    live.  Set False (ablation) to force every inbound write to re-allocate
    into the DCA ways — Fig. 7's Overlap advantage then disappears because
    I/O lines can no longer be refreshed inside the inclusive ways."""
    next_line_prefetch: bool = False
    """Optional L2 next-line prefetcher: a demand miss also pulls the
    following line into the MLC (uncharged, like a timely hardware
    prefetch).  Off by default — the paper's contentions are orthogonal to
    prefetching, but the knob lets users study their interaction."""
    self_invalidate_consumed: bool = False
    """Related-work baseline (§8: IDIO / Sweeper): consumed I/O lines are
    self-invalidated — the LLC copy is dropped on consumption instead of
    migrating to the inclusive ways, and MLC evictions of consumed I/O
    lines are discarded instead of bloating the LLC.  Eliminates both the
    directory contention and DMA bloat at the cost of hardware changes the
    paper's software-only approach avoids."""


class CacheHierarchy:
    """One socket's cache hierarchy plus its memory interface."""

    def __init__(
        self,
        cfg: HierarchyConfig,
        cat: CacheAllocation,
        memory: MemoryController,
        counters: CounterBank,
        mba=None,
    ):
        self.cfg = cfg
        self.cat = cat
        self.memory = memory
        self.counters = counters
        self.mba = mba
        """Optional :class:`repro.rdt.mba.MemoryBandwidthAllocation`:
        throttles memory latency per the accessing core's CLOS."""
        self.llc = LastLevelCache(cfg.llc)
        self.sf = SnoopFilter(sets=cfg.llc.sets)
        self.mlcs = [
            MidLevelCache(core, cfg.mlc_sets, cfg.mlc_ways)
            for core in range(cfg.cores)
        ]

    # ------------------------------------------------------------------
    # CPU side
    # ------------------------------------------------------------------

    def cpu_access(
        self,
        now: float,
        core: int,
        addr: int,
        stream: str,
        write: bool = False,
        io_read: bool = False,
    ) -> float:
        """One CPU load/store; returns its load-to-use latency in cycles.

        ``io_read`` marks reads of device-DMA-written data (ring descriptors,
        packet payloads, storage blocks); misses on such reads are the
        realised cost of DMA leaks and feed the stream's DCA miss rate.
        """
        counters = self.counters.stream(stream)
        if io_read:
            counters.io_reads += 1

        mlc = self.mlcs[core]
        mlc_line = mlc.lookup(addr)
        if mlc_line is not None:
            counters.mlc_hits += 1
            if write:
                mlc_line.dirty = True
                self._invalidate_llc_copy_for_store(addr)
            return self.cfg.mlc_hit_cycles

        counters.mlc_misses += 1
        llc_line = self.llc.lookup(addr)
        if llc_line is not None:
            counters.llc_hits += 1
            self._consume_if_io(now, llc_line)
            if write:
                # RFO: the MLC takes exclusive ownership; the LLC copy dies.
                dirty = True
                io_flag = llc_line.io
                self._detach_llc_line(llc_line)
                self.llc.remove(llc_line)
                self._fill_mlc(now, core, addr, stream, dirty=dirty, io=io_flag)
            elif llc_line.io and self.cfg.self_invalidate_consumed:
                # IDIO/Sweeper baseline: the consumed copy self-invalidates.
                self._detach_llc_line(llc_line)
                self.llc.remove(llc_line)
                self._fill_mlc(now, core, addr, stream, dirty=False, io=True)
            elif llc_line.io:
                # A DMA-written line transitions modified -> shared on its
                # first CPU read (Wang et al.): the LLC keeps a copy, which
                # as an LLC-inclusive line must migrate into the inclusive
                # ways (Yan et al.) — the paper's directory contention.
                self._make_inclusive(now, llc_line)
                self._fill_mlc(now, core, addr, stream, dirty=False, io=True)
            else:
                # Regular non-inclusive victim-cache hit: the line transfers
                # to the reader's MLC and the LLC copy is invalidated.
                self._detach_llc_line(llc_line)
                self.llc.remove(llc_line)
                self._fill_mlc(
                    now, core, addr, stream, dirty=llc_line.dirty, io=False
                )
            return self.cfg.llc_hit_cycles

        entry = self.sf.entry(addr)
        if entry is not None and entry.holders:
            # MLC-only line held by a peer core: serve via a snoop.
            counters.llc_hits += 1
            if write:
                self._invalidate_peers(now, addr, keep_core=None)
                self._fill_mlc(now, core, addr, stream, dirty=True, io=False)
            else:
                self._fill_mlc(now, core, addr, stream, dirty=False, io=False)
            return self.cfg.snoop_hit_cycles

        # Full miss: fill the MLC straight from memory (non-inclusive).
        counters.llc_misses += 1
        if io_read:
            counters.io_read_misses += 1
        self.memory.read(now, 1, stream)
        latency = self.memory.access_latency()
        if self.mba is not None:
            latency *= self.mba.latency_factor(self.cat.clos_of(core))
        self._fill_mlc(now, core, addr, stream, dirty=write, io=io_read)
        if self.cfg.next_line_prefetch and not io_read:
            self._prefetch(now, core, addr + 1, stream)
        return latency

    def _prefetch(self, now: float, core: int, addr: int, stream: str) -> None:
        """Timely next-line prefetch into the MLC (no latency charged)."""
        if self.mlcs[core].peek(addr) is not None:
            return
        if self.llc.lookup(addr, touch=False) is not None:
            return  # leave LLC-resident lines alone (no speculative moves)
        counters = self.counters.stream(stream)
        counters.prefetch_fills += 1
        self.memory.read(now, 1, stream)
        self._fill_mlc(now, core, addr, stream, dirty=False, io=False)

    # ------------------------------------------------------------------
    # DMA side
    # ------------------------------------------------------------------

    def dma_write(self, now: float, addr: int, stream: str, allocating: bool) -> None:
        """Inbound device write of one line.

        ``allocating`` selects the DDIO allocating flow (write-update /
        write-allocate into DCA ways) vs. the memory flow (DCA disabled).
        """
        counters = self.counters.stream(stream)
        counters.dma_writes += 1

        # The device takes ownership: cached CPU copies become stale.
        self._invalidate_peers(now, addr, keep_core=None, silent=True)
        llc_line = self.llc.lookup(addr, touch=False)
        if llc_line is not None:
            llc_line.holders.clear()

        if allocating:
            if llc_line is not None and not self.cfg.ddio_write_update:
                # Ablation: no in-place updates; drop the stale copy and
                # fall through to a fresh DCA-way allocation.
                self._detach_llc_line(llc_line)
                self.llc.remove(llc_line)
                llc_line = None
            if llc_line is not None:
                counters.ddio_updates += 1
                llc_line.dirty = True
                llc_line.io = True
                llc_line.consumed = False
                llc_line.stream = stream
                self.llc.touch(llc_line)
            else:
                counters.ddio_allocates += 1
                _, victim = self.llc.allocate(
                    addr,
                    stream,
                    self.llc.dca_ways,
                    dirty=True,
                    io=True,
                    consumed=False,
                )
                if victim is not None:
                    self._dispose_victim(now, victim)
        else:
            self.memory.write(now, 1, stream)
            if llc_line is not None:
                # Stale copy invalidated without write-back.
                self.llc.remove(llc_line)

    def dma_read(self, now: float, addr: int, stream: str) -> None:
        """Outbound device read of one line (egress path)."""
        counters = self.counters.stream(stream)
        counters.dma_reads += 1

        llc_line = self.llc.lookup(addr)
        if llc_line is not None:
            return  # served directly from the LLC

        entry = self.sf.entry(addr)
        if entry is not None and entry.holders:
            # MLC-only data: read-allocate a copy into the inclusive ways.
            holder = next(iter(entry.holders))
            mlc_line = self.mlcs[holder].peek(addr)
            dirty = bool(mlc_line and mlc_line.dirty)
            owner_stream = mlc_line.stream if mlc_line else stream
            new_line, victim = self.llc.allocate(
                addr,
                owner_stream,
                self.cfg.llc.inclusive_ways,
                dirty=dirty,
                io=False,
            )
            new_line.holders = set(entry.holders)
            self.sf.set_inclusive(addr, True)
            if mlc_line is not None:
                mlc_line.dirty = False
            if victim is not None:
                self._dispose_victim(now, victim)
            return

        # Uncached: DMA-read from memory, no LLC allocation (NetCAT finding).
        self.memory.read(now, 1, stream)

    # ------------------------------------------------------------------
    # Internal mechanics
    # ------------------------------------------------------------------

    def _consume_if_io(self, now: float, llc_line: LlcLine) -> None:
        """First CPU touch of a DMA-written line: mark consumed and perform
        the modified-to-shared coherence write-back (Wang et al.)."""
        if llc_line.io and not llc_line.consumed:
            llc_line.consumed = True
            if llc_line.dirty:
                self.memory.write(now, 1, llc_line.stream)
                llc_line.dirty = False

    def _make_inclusive(self, now: float, llc_line: LlcLine) -> None:
        """A read is about to put ``llc_line`` into an MLC as well: enforce
        the shared-directory placement constraint (migrate into the
        inclusive ways), unless disabled for ablation."""
        if not self.cfg.llc.inclusive_migration:
            return
        if llc_line.way in self.cfg.llc.inclusive_ways:
            return
        victim = self.llc.migrate_to_inclusive(llc_line)
        self.counters.stream(llc_line.stream).migrations += 1
        if victim is not None:
            self._dispose_victim(now, victim)

    def _fill_mlc(
        self, now: float, core: int, addr: int, stream: str, dirty: bool, io: bool
    ) -> None:
        line = MlcLine(addr=addr, stream=stream, dirty=dirty, io=io)
        victim = self.mlcs[core].insert(line)
        self._track_mlc(now, core, addr)
        if victim is not None:
            self._handle_mlc_eviction(now, core, victim)

    def _track_mlc(self, now: float, core: int, addr: int) -> None:
        llc_line = self.llc.lookup(addr, touch=False)
        inclusive = llc_line is not None
        evicted_entry = self.sf.track(addr, core, inclusive)
        if llc_line is not None:
            llc_line.holders.add(core)
        if evicted_entry is not None:
            self._back_invalidate(now, evicted_entry)

    def _untrack_mlc(self, addr: int, core: int) -> None:
        self.sf.drop_holder(addr, core)
        llc_line = self.llc.lookup(addr, touch=False)
        if llc_line is not None:
            llc_line.holders.discard(core)
            if not llc_line.holders:
                self.sf.set_inclusive(addr, False)

    def _handle_mlc_eviction(self, now: float, core: int, mlc_line: MlcLine) -> None:
        """Victim-cache behaviour: an evicted MLC line allocates into the LLC
        within the evicting core's CAT mask (unless already resident)."""
        addr = mlc_line.addr
        self._untrack_mlc(addr, core)

        llc_line = self.llc.lookup(addr, touch=False)
        if llc_line is not None:
            # Was inclusive: the LLC copy absorbs the eviction.
            llc_line.dirty = llc_line.dirty or mlc_line.dirty
            return

        entry = self.sf.entry(addr)
        if entry is not None and entry.holders:
            # A peer MLC still holds the line: silent drop of this copy.
            if mlc_line.dirty:
                peer = next(iter(entry.holders))
                peer_line = self.mlcs[peer].peek(addr)
                if peer_line is not None:
                    peer_line.dirty = True
            return

        if mlc_line.io and self.cfg.self_invalidate_consumed:
            # IDIO/Sweeper baseline: consumed I/O lines never bloat the LLC.
            if mlc_line.dirty:
                self.memory.write(now, 1, mlc_line.stream)
            return

        counters = self.counters.stream(mlc_line.stream)
        counters.llc_fills += 1
        if mlc_line.io:
            counters.dma_bloats += 1
        _, victim = self.llc.allocate(
            addr,
            mlc_line.stream,
            self.cat.ways_for_core(core),
            dirty=mlc_line.dirty,
            io=mlc_line.io,
            consumed=mlc_line.io,  # an I/O line reached the MLC => consumed
        )
        if victim is not None:
            self._dispose_victim(now, victim)

    def _dispose_victim(self, now: float, victim: LlcLine) -> None:
        """Account for an LLC line displaced by a fill or migration."""
        counters = self.counters.stream(victim.stream)
        counters.llc_evictions_suffered += 1
        if victim.holders:
            # Inclusive line losing only its LLC data copy: the MLC copies
            # live on, tracked by extended directory entries instead.
            counters.inclusive_downgrades += 1
            if victim.dirty:
                holder = next(iter(victim.holders))
                holder_line = self.mlcs[holder].peek(victim.addr)
                if holder_line is not None:
                    holder_line.dirty = True
            self.sf.set_inclusive(victim.addr, False)
            return
        if victim.io and not victim.consumed:
            counters.dma_leaks += 1
        if victim.dirty:
            self.memory.write(now, 1, victim.stream)

    def _detach_llc_line(self, llc_line: LlcLine) -> None:
        """Prepare an LLC line for removal: release directory coupling."""
        if llc_line.holders:
            self.sf.set_inclusive(llc_line.addr, False)
            llc_line.holders.clear()

    def _invalidate_llc_copy_for_store(self, addr: int) -> None:
        """A store hit in an MLC invalidates any (now stale) LLC copy."""
        llc_line = self.llc.lookup(addr, touch=False)
        if llc_line is not None:
            self._detach_llc_line(llc_line)
            self.llc.remove(llc_line)

    def _invalidate_peers(
        self,
        now: float,
        addr: int,
        keep_core: Optional[int],
        silent: bool = False,
    ) -> bool:
        """Invalidate MLC copies of ``addr`` (except ``keep_core``'s).

        Returns True when a dirty copy was dropped.  ``silent`` suppresses
        the write-back (used for DMA writes that overwrite the data anyway).
        """
        entry = self.sf.entry(addr)
        if entry is None:
            return False
        dirty_dropped = False
        for core in list(entry.holders):
            if core == keep_core:
                continue
            dropped = self.mlcs[core].invalidate(addr)
            self.sf.drop_holder(addr, core)
            if dropped is not None and dropped.dirty:
                dirty_dropped = True
                if not silent:
                    self.memory.write(now, 1, dropped.stream)
        llc_line = self.llc.lookup(addr, touch=False)
        if llc_line is not None:
            llc_line.holders = {
                c for c in llc_line.holders if c == keep_core
            }
            if not llc_line.holders:
                self.sf.set_inclusive(addr, False)
        return dirty_dropped

    def _back_invalidate(self, now: float, entry) -> None:
        """An extended-directory eviction forces MLC copies out."""
        for core in list(entry.holders):
            dropped = self.mlcs[core].invalidate(entry.addr)
            if dropped is not None:
                self.counters.stream(dropped.stream).back_invalidations += 1
                if dropped.dirty:
                    self.memory.write(now, 1, dropped.stream)
