"""Non-inclusive last-level cache with DCA and inclusive ways.

Geometry follows the paper's Skylake-SP part: 11 ways, of which the two
left-most are the DDIO (*DCA*) ways and the two right-most are the hidden
*inclusive* ways coupled with the shared directory entries.  The LLC itself
is policy-free: victim masks are supplied per call (by CAT for CPU fills,
by the IIO agent for DMA fills), and the hierarchy layer decides what an
eviction means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.cache.line import LlcLine
from repro.cache.replacement import LruPolicy, make_policy
from repro.cache.sets import WaySet
from repro.platform import DEFAULT_PLATFORM, PlatformSpec


@dataclass(frozen=True)
class LlcConfig:
    """Geometry and behavioural switches of the LLC model."""

    sets: int = DEFAULT_PLATFORM.llc_sets
    ways: int = DEFAULT_PLATFORM.llc_ways
    dca_ways: Tuple[int, ...] = DEFAULT_PLATFORM.dca_ways
    inclusive_ways: Tuple[int, ...] = DEFAULT_PLATFORM.inclusive_ways
    inclusive_migration: bool = True
    """When True (real hardware), a line that becomes resident in both an MLC
    and the LLC migrates into the inclusive ways.  Exposed for the ablation
    bench showing Fig. 3b's third contention group vanish without it."""
    replacement: str = "lru"
    """Replacement policy: 'lru' (default), 'srrip', 'brrip', or 'nru' —
    the RRIP family are the §8 hardware alternatives to pseudo bypassing."""

    def __post_init__(self) -> None:
        for way in (*self.dca_ways, *self.inclusive_ways):
            if not 0 <= way < self.ways:
                raise ValueError(f"way {way} outside 0..{self.ways - 1}")
        if set(self.dca_ways) & set(self.inclusive_ways):
            raise ValueError("DCA and inclusive ways overlap")

    @property
    def standard_ways(self) -> Tuple[int, ...]:
        special = set(self.dca_ways) | set(self.inclusive_ways)
        return tuple(w for w in range(self.ways) if w not in special)

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **overrides) -> "LlcConfig":
        """LLC geometry of ``platform`` (behavioural switches overridable)."""
        return cls(
            sets=platform.llc_sets,
            ways=platform.llc_ways,
            dca_ways=platform.dca_ways,
            inclusive_ways=platform.inclusive_ways,
            **overrides,
        )


class LastLevelCache:
    """The shared LLC data array."""

    __slots__ = ("cfg", "_sets", "_nsets", "policy", "_lru_tick", "dca_ways")

    def __init__(self, cfg: Optional[LlcConfig] = None):
        self.cfg = cfg or LlcConfig()
        self._sets = [WaySet(self.cfg.ways) for _ in range(self.cfg.sets)]
        self._nsets = self.cfg.sets
        self.policy = make_policy(self.cfg.replacement)
        self._lru_tick = (
            self.policy._tick if type(self.policy) is LruPolicy else None
        )
        """LRU fast path: when the policy is the (default) plain LRU, hits,
        fills and victim picks reduce to tick bumps and a min-scan, which
        the hot paths inline instead of dispatching through the policy."""
        self.dca_ways: Tuple[int, ...] = tuple(self.cfg.dca_ways)
        """The ways DDIO write-allocates into.  Runtime-mutable through the
        IIO LLC WAYS register (``repro.uncore.msr``), as on real Skylake-SP
        where the 0xC8B MSR widens/narrows DDIO capacity."""

    def set_dca_ways(self, ways: Sequence[int]) -> None:
        """Reprogram the DDIO way mask (existing lines stay where they are,
        exactly like reprogramming the real MSR)."""
        mask = tuple(sorted(set(ways)))
        if not mask:
            raise ValueError("DDIO needs at least one way")
        for way in mask:
            if not 0 <= way < self.cfg.ways:
                raise ValueError(f"way {way} outside 0..{self.cfg.ways - 1}")
        self.dca_ways = mask

    # -- basic operations ---------------------------------------------------

    def set_of(self, addr: int) -> WaySet:
        return self._sets[addr % self._nsets]

    def lookup(self, addr: int, touch: bool = True) -> Optional[LlcLine]:
        line = self._sets[addr % self._nsets].index.get(addr)
        if line is not None and touch:
            if self._lru_tick is not None:
                line.lru = next(self._lru_tick)
            else:
                self.policy.on_hit(line)
        return line

    def touch(self, line: LlcLine) -> None:
        """Refresh ``line``'s recency without a lookup."""
        if self._lru_tick is not None:
            line.lru = next(self._lru_tick)
        else:
            self.policy.on_hit(line)

    def allocate(
        self,
        addr: int,
        stream: str,
        allowed_ways: Sequence[int],
        dirty: bool = False,
        io: bool = False,
        consumed: bool = False,
    ) -> Tuple[LlcLine, Optional[LlcLine]]:
        """Install ``addr`` into one of ``allowed_ways``.

        Returns ``(new_line, victim)``; the caller owns victim disposal.
        """
        wayset = self._sets[addr % self._nsets]
        slots = wayset.slots
        index = wayset.index
        if addr in index:
            raise ValueError(f"addr {addr:#x} already resident in LLC")
        lru_tick = self._lru_tick
        if lru_tick is not None:
            # Inlined LruPolicy.victim_way: first empty way, else min LRU.
            way = -1
            best_lru = None
            for cand in allowed_ways:
                resident = slots[cand]
                if resident is None:
                    way = cand
                    break
                if best_lru is None or resident.lru < best_lru:
                    way, best_lru = cand, resident.lru
            if way < 0:
                raise ValueError("no candidate ways for victim selection")
        else:
            way = self.policy.victim_way(slots, allowed_ways)
        victim = slots[way]
        if victim is not None:
            # Inlined WaySet.remove: slots[way] is overwritten just below.
            del index[victim.addr]
        line = LlcLine(
            addr=addr,
            stream=stream,
            way=way,
            dirty=dirty,
            io=io,
            consumed=consumed,
        )
        if lru_tick is not None:
            line.lru = next(lru_tick)
        else:
            self.policy.on_fill(line)
        slots[way] = line
        index[addr] = line
        return line, victim

    def remove(self, line: LlcLine) -> None:
        self.set_of(line.addr).remove(line)

    def migrate_to_inclusive(self, line: LlcLine) -> Optional[LlcLine]:
        """Relocate ``line`` into an inclusive way of its set.

        Models the shared-directory coupling: a line resident in both MLC and
        LLC may only occupy the inclusive ways.  Returns the displaced victim
        (None if an inclusive way was free).  No-op if already there.
        """
        if line.way in self.cfg.inclusive_ways:
            self.touch(line)
            return None
        wayset = self._sets[line.addr % self._nsets]
        slots = wayset.slots
        lru_tick = self._lru_tick
        if lru_tick is not None:
            way = -1
            best_lru = None
            for cand in self.cfg.inclusive_ways:
                resident = slots[cand]
                if resident is None:
                    way = cand
                    break
                if best_lru is None or resident.lru < best_lru:
                    way, best_lru = cand, resident.lru
            if way < 0:
                raise ValueError("no candidate ways for victim selection")
        else:
            way = self.policy.victim_way(slots, self.cfg.inclusive_ways)
        victim = slots[way]
        if victim is not None:
            del wayset.index[victim.addr]
        # Relocate in place: the line keeps its index entry, only the slot
        # and way change.
        slots[line.way] = None
        if lru_tick is not None:
            line.lru = next(lru_tick)
        else:
            self.policy.on_hit(line)
        line.way = way
        slots[way] = line
        return victim

    # -- inspection -----------------------------------------------------------

    def resident(self) -> Iterable[LlcLine]:
        for wayset in self._sets:
            yield from wayset.occupants()

    def occupancy_by_way(self) -> Dict[int, int]:
        counts = {w: 0 for w in range(self.cfg.ways)}
        for line in self.resident():
            counts[line.way] += 1
        return counts

    def occupancy_by_stream(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for line in self.resident():
            counts[line.stream] = counts.get(line.stream, 0) + 1
        return counts
