"""Workload base class.

A workload is a named stream of activity pinned to one or more cores.  At
:meth:`setup` time the server hands it cores, address-space regions, PCIe
ports/devices, and a CLOS; the workload then spawns its simulation
processes.  Everything the A4 daemon later learns about the workload flows
through its :class:`~repro.telemetry.pcm.StreamInfo`.

The ``server`` argument is the :class:`repro.experiments.harness.Server`;
it is duck-typed here to keep the workload layer import-light.  The members
used are: ``sim``, ``hierarchy``, ``iio``, ``counters``, ``pcm``,
``alloc_cores(n)``, ``alloc_region(lines)``, ``add_port(name)``, ``rng``.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

from repro.telemetry.pcm import (
    KIND_CPU,
    PRIORITY_HIGH,
    StreamInfo,
)
from repro.tenancy import TenantSpec

METRIC_IPC = "ipc"
METRIC_THROUGHPUT = "throughput"
METRIC_LATENCY = "latency"


class Workload(abc.ABC):
    """One co-running workload (the unit of A4's QoS management).

    Every workload belongs to a :class:`~repro.tenancy.TenantSpec`.  The
    legacy ``priority`` constructor argument still works: it synthesizes
    an implicit tenant (named ``hpw``/``lpw``) whose derived priority
    equals the string passed, so the paper's fixed scenarios are
    unchanged.  ``workload.priority`` is now a read-only view of the
    tenant's class.
    """

    kind = KIND_CPU
    performance_metric = METRIC_IPC

    def __init__(
        self,
        name: str,
        priority: str = PRIORITY_HIGH,
        cores: int = 1,
        tenant: Optional[TenantSpec] = None,
    ):
        if cores <= 0:
            raise ValueError("a workload needs at least one core")
        self.name = name
        self.tenant = tenant if tenant is not None else \
            TenantSpec.implicit_for(priority, cores)
        self.num_cores = cores
        self.cores: Tuple[int, ...] = ()
        self.port_id: Optional[int] = None

    @property
    def priority(self) -> str:
        """The HPW/LPW view of the owning tenant's class."""
        return self.tenant.priority

    def info(self) -> StreamInfo:
        """Launch-time metadata handed to the monitoring/control plane."""
        return StreamInfo(
            name=self.name,
            kind=self.kind,
            priority=self.priority,
            cores=self.cores,
            port_id=self.port_id,
            tenant=self.tenant.name,
        )

    @abc.abstractmethod
    def setup(self, server) -> None:
        """Claim resources from ``server`` and spawn simulation processes."""

    def time_shift(self, delta: float) -> None:
        """Shift any absolute simulated timestamps this workload holds by
        ``delta`` cycles.  Called by ``Server.time_shift`` when interval
        sampling fast-forwards the clock, so stored deadlines and request
        start times stay consistent with the new ``now``.  The default is
        a no-op (most workloads hold only relative state)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} {self.kind} {self.priority} "
            f"cores={self.cores or self.num_cores}>"
        )
