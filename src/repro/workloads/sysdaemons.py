"""System-resource-management daemons named by the paper (§5.5) as non-I/O
antagonists: KSM (kernel same-page merging) and zswap (compressed swap).

Both stream over working sets far beyond the LLC with near-zero temporal
locality, exactly the T5 signature pseudo LLC bypassing targets.  They come
in a *phased* form (scan, sleep, scan...) so A4's phase-change restoration
has something real to react to.
"""

from __future__ import annotations

from repro import config
from repro.telemetry.pcm import PRIORITY_LOW
from repro.workloads.phased import PhasedWorkload
from repro.workloads.synthetic import (
    AccessProfile,
    PATTERN_RANDOM,
    PATTERN_SEQUENTIAL,
    SyntheticWorkload,
)

MB = 1024 * 1024


def _ksm_profile() -> AccessProfile:
    # Page scanning: sequential reads over a huge region, light hashing.
    return AccessProfile(
        working_set_lines=config.lines_for_paper_bytes(128 * MB),
        pattern=PATTERN_SEQUENTIAL,
        write_fraction=0.02,  # occasional merge updates
        compute_cycles=2.0,
        instructions_per_access=6,
    )


def _zswap_profile() -> AccessProfile:
    # Compress/decompress: read a page, write the compressed copy.
    return AccessProfile(
        working_set_lines=config.lines_for_paper_bytes(96 * MB),
        pattern=PATTERN_RANDOM,
        write_fraction=0.5,
        compute_cycles=4.0,  # compression work per line
        instructions_per_access=10,
    )


def ksm(
    name: str = "ksm",
    priority: str = PRIORITY_LOW,
    phased: bool = False,
    active_cycles: float = 6 * config.EPOCH_CYCLES,
    idle_cycles: float = 6 * config.EPOCH_CYCLES,
):
    """The kernel same-page-merging scanner."""
    profile = _ksm_profile()
    if phased:
        return PhasedWorkload(
            name, profile, priority, active_cycles, idle_cycles
        )
    return SyntheticWorkload(name, profile, priority, cores=1)


def zswap(
    name: str = "zswap",
    priority: str = PRIORITY_LOW,
    phased: bool = False,
    active_cycles: float = 6 * config.EPOCH_CYCLES,
    idle_cycles: float = 6 * config.EPOCH_CYCLES,
):
    """The compressed-swap daemon."""
    profile = _zswap_profile()
    if phased:
        return PhasedWorkload(
            name, profile, priority, active_cycles, idle_cycles
        )
    return SyntheticWorkload(name, profile, priority, cores=1)
