"""System-resource-management daemons named by the paper (§5.5) as non-I/O
antagonists: KSM (kernel same-page merging) and zswap (compressed swap).

Both stream over working sets far beyond the LLC with near-zero temporal
locality, exactly the T5 signature pseudo LLC bypassing targets.  They come
in a *phased* form (scan, sleep, scan...) so A4's phase-change restoration
has something real to react to.
"""

from __future__ import annotations

from typing import Optional

from repro.platform import DEFAULT_PLATFORM, PlatformSpec
from repro.telemetry.pcm import PRIORITY_LOW
from repro.workloads.phased import PhasedWorkload
from repro.workloads.synthetic import (
    AccessProfile,
    PATTERN_RANDOM,
    PATTERN_SEQUENTIAL,
    SyntheticWorkload,
)

MB = 1024 * 1024


def _ksm_profile(platform: PlatformSpec) -> AccessProfile:
    # Page scanning: sequential reads over a huge region, light hashing.
    return AccessProfile(
        working_set_lines=platform.lines_for_paper_bytes(128 * MB),
        pattern=PATTERN_SEQUENTIAL,
        write_fraction=0.02,  # occasional merge updates
        compute_cycles=2.0,
        instructions_per_access=6,
    )


def _zswap_profile(platform: PlatformSpec) -> AccessProfile:
    # Compress/decompress: read a page, write the compressed copy.
    return AccessProfile(
        working_set_lines=platform.lines_for_paper_bytes(96 * MB),
        pattern=PATTERN_RANDOM,
        write_fraction=0.5,
        compute_cycles=4.0,  # compression work per line
        instructions_per_access=10,
    )


def ksm(
    name: str = "ksm",
    priority: str = PRIORITY_LOW,
    phased: bool = False,
    active_cycles: Optional[float] = None,
    idle_cycles: Optional[float] = None,
    platform: PlatformSpec = DEFAULT_PLATFORM,
):
    """The kernel same-page-merging scanner."""
    if active_cycles is None:
        active_cycles = 6 * platform.epoch_cycles
    if idle_cycles is None:
        idle_cycles = 6 * platform.epoch_cycles
    profile = _ksm_profile(platform)
    if phased:
        return PhasedWorkload(
            name, profile, priority, active_cycles, idle_cycles
        )
    return SyntheticWorkload(name, profile, priority, cores=1)


def zswap(
    name: str = "zswap",
    priority: str = PRIORITY_LOW,
    phased: bool = False,
    active_cycles: Optional[float] = None,
    idle_cycles: Optional[float] = None,
    platform: PlatformSpec = DEFAULT_PLATFORM,
):
    """The compressed-swap daemon."""
    if active_cycles is None:
        active_cycles = 6 * platform.epoch_cycles
    if idle_cycles is None:
        idle_cycles = 6 * platform.epoch_cycles
    profile = _zswap_profile(platform)
    if phased:
        return PhasedWorkload(
            name, profile, priority, active_cycles, idle_cycles
        )
    return SyntheticWorkload(name, profile, priority, cores=1)
