"""Workload models.

Microbenchmarks: DPDK-T / DPDK-NT (:mod:`repro.workloads.dpdk`), FIO
(:mod:`repro.workloads.fio`), X-Mem (:mod:`repro.workloads.xmem`).

Real-world analogues (paper Table 2): Fastclick, FFSB-H/L, Redis-S/C and
SPEC CPU2017 profiles (:mod:`repro.workloads.fastclick`, ``.ffsb``,
``.redis``, ``.spec``).
"""

from repro.workloads.base import Workload
from repro.workloads.synthetic import AccessProfile, SyntheticWorkload
from repro.workloads.xmem import xmem, xmem_table3
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload
from repro.workloads.fastclick import fastclick
from repro.workloads.ffsb import ffsb_heavy, ffsb_light
from repro.workloads.redis import redis_pair
from repro.workloads.spec import spec_workload, SPEC_PROFILES

__all__ = [
    "Workload",
    "AccessProfile",
    "SyntheticWorkload",
    "xmem",
    "xmem_table3",
    "DpdkWorkload",
    "FioWorkload",
    "fastclick",
    "ffsb_heavy",
    "ffsb_light",
    "redis_pair",
    "spec_workload",
    "SPEC_PROFILES",
]
