"""FFSB, the Flexible Filesystem Benchmark (paper Table 2).

Two configurations from the paper, both doing storage reads plus a regular-
expression match over every block:

* **FFSB-H** (heavy): 2 MB blocks on three cores — the storage antagonist
  A4's detectors catch (heavy DMA leak, no DCA benefit);
* **FFSB-L** (light): 32 KB blocks on one core — storage I/O mild enough
  that A4 leaves its DCA enabled (the selectivity shown in Fig. 13b).
"""

from __future__ import annotations

from repro.telemetry.pcm import PRIORITY_LOW
from repro.workloads.fio import FioWorkload

KB = 1024
MB = 1024 * KB


def ffsb_heavy(name: str = "ffsb-h", priority: str = PRIORITY_LOW) -> FioWorkload:
    """FFSB-H: 2 MB I/O blocks, 3 CPU cores (Table 2)."""
    return FioWorkload(
        name=name,
        block_bytes=2 * MB,
        cores=3,
        io_depth=32,
        compute_cycles_per_line=3.0,
        priority=priority,
    )


def ffsb_light(name: str = "ffsb-l", priority: str = PRIORITY_LOW) -> FioWorkload:
    """FFSB-L: 32 KB I/O blocks, 1 CPU core (Table 2)."""
    return FioWorkload(
        name=name,
        block_bytes=32 * KB,
        cores=1,
        io_depth=8,
        compute_cycles_per_line=3.0,
        priority=priority,
    )
