"""DPDK-style kernel-bypass network workloads (paper §3.1).

Two flavours:

* **DPDK-T** (``touch=True``) — polls its Rx ring, reads every payload line
  (deep-packet-inspection style), then drops the packet.  Consuming payload
  lines is what triggers migration into the inclusive ways (O1) and, via MLC
  evictions, DMA bloat.
* **DPDK-NT** (``touch=False``) — reads only the descriptor line and drops
  the packet (classification/ACL style), so payloads never enter MLCs and
  neither migration nor bloat occurs — the paper's control experiment.

Each consumer core owns one ring.  The NIC itself is created here and
attached to a dedicated PCIe port, so per-device DCA control applies.
Packet latency is decomposed (Fig. 14a) into ring queueing, descriptor
(pointer) access, and payload processing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.devices.nic import Nic, NicConfig
from repro.devices.packetgen import PacketGenConfig, PacketGenerator
from repro.devices.ring import RxRing
from repro.telemetry.pcm import KIND_NETWORK, PRIORITY_HIGH
from repro.workloads.base import METRIC_LATENCY, Workload

POLL_GAP_CYCLES = 30.0
"""Idle-poll back-off of the run-to-completion loop."""


class _ConsumerState:
    """Loop-carried state of one consumer core (checkpointable).

    ``pc`` is the dispatch arm the loop is in: 0 = poll/descriptor,
    1 = payload scan, 2 = header rewrite, 3 = egress + retire.  The entry
    under service is not stored — it is always ``ring.peek()`` until the
    retire arm pops it."""

    __slots__ = ("pc", "queueing", "access", "processing", "offset")

    def __init__(self) -> None:
        self.pc = 0
        self.queueing = 0.0
        self.access = 0.0
        self.processing = 0.0
        self.offset = 0


class DpdkWorkload(Workload):
    """A DPDK application: one NIC, one Rx ring + consumer loop per core."""

    kind = KIND_NETWORK
    performance_metric = METRIC_LATENCY

    def __init__(
        self,
        name: str = "dpdk-t",
        touch: bool = True,
        forward: bool = False,
        cores: int = 4,
        packet_bytes: int = 1024,
        ring_entries: int = 16,
        line_rate: Optional[float] = None,
        processing_cycles_per_line: float = 4.0,
        instructions_per_line: int = 10,
        payload_parallelism: float = 3.0,
        size_mix=None,
        priority: str = PRIORITY_HIGH,
        nic_cfg: Optional[NicConfig] = None,
        tenant=None,
    ):
        super().__init__(name, priority, cores, tenant=tenant)
        self.touch = touch
        if forward and not touch:
            raise ValueError("forwarding implies touching the packet")
        self.forward = forward
        """L2/L3-forwarding mode: after processing, the header is rewritten
        and the NIC DMA-reads the packet back out (the egress path of
        Fig. 2).  MLC-held lines get read-allocated into the inclusive ways
        by the egress read."""
        self.packet_bytes = packet_bytes
        self.size_mix = size_mix
        """Optional (bytes, weight) mixture, e.g.
        :data:`repro.devices.packetgen.IMIX_SIMPLE`."""
        self.ring_entries = ring_entries
        self.line_rate = line_rate
        """Ingress rate in lines/cycle; ``None`` defers to the server
        platform's NIC rate at :meth:`setup` time."""
        self.processing_cycles_per_line = processing_cycles_per_line
        self.instructions_per_line = instructions_per_line
        if payload_parallelism < 1.0:
            raise ValueError("payload_parallelism must be >= 1")
        self.payload_parallelism = payload_parallelism
        """Outstanding loads the payload scan overlaps (the descriptor read
        stays serial).  Keeps the consumer comfortably ahead of line rate
        when packets hit in the DCA ways, and right at the saturation edge
        when they leak to memory — the paper's latency sensitivity."""
        self.nic_cfg = nic_cfg or NicConfig(ring_entries=ring_entries)
        self.nic: Optional[Nic] = None
        self.rings: List[RxRing] = []

    def setup(self, server) -> None:
        self.cores = server.alloc_cores(self.num_cores)
        port = server.add_port(f"{self.name}-nic")
        self.port_id = port.port_id

        self.rings = []
        for _ in self.cores:
            base = server.alloc_region(self.ring_entries * self.nic_cfg.slot_lines)
            self.rings.append(
                RxRing(base, self.ring_entries, self.nic_cfg.slot_lines)
            )

        platform = server.platform
        line_rate = (
            self.line_rate
            if self.line_rate is not None
            else platform.nic_line_rate_lines_per_cycle
        )
        generator = PacketGenerator(
            PacketGenConfig(
                packet_bytes=self.packet_bytes,
                line_rate_lines_per_cycle=line_rate,
                line_bytes=platform.line_bytes,
                size_mix=self.size_mix,
            ),
            server.rng.stream(f"{self.name}-pktgen"),
        )
        self.nic = Nic(
            name=f"{self.name}-nic",
            stream=self.name,
            port=port,
            iio=server.iio,
            generator=generator,
            rings=self.rings,
            counters=server.counters,
        )
        self.nic.start(server.sim)

        for core, ring in zip(self.cores, self.rings):
            server.sim.spawn_restartable(
                f"{self.name}@{core}",
                self,
                "_consumer_body",
                server,
                core,
                ring,
                _ConsumerState(),
            )

    def time_shift(self, delta: float) -> None:
        # Queued packets carry absolute arrival times (the queueing-delay
        # component of Fig. 14a); shift them with the clock.
        for ring in self.rings:
            for entry in ring.entries:
                if entry.filled:
                    entry.arrival_time += delta

    def _consumer_body(self, server, core: int, ring: RxRing, st):
        # Restartable body: the original straight-line packet pipeline is
        # a ``pc`` dispatch machine — poll/descriptor (0), payload scan
        # (1), header rewrite (2), egress + retire (3) — with one yield
        # per arm, so a rebuilt generator resumes mid-packet exactly where
        # the original left off.  Arms fall through without yielding where
        # the original had no yield (retire runs at the same ``now`` as
        # the last payload line, then polling continues immediately).
        sim = server.sim
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        tracker = server.pcm.tracker(self.name)
        # Loop-invariant bindings for the per-line payload scan below.
        cpu_access = hierarchy.cpu_access
        name = self.name
        line_bytes = server.platform.line_bytes
        instructions_per_line = self.instructions_per_line
        processing_per_line = self.processing_cycles_per_line
        parallelism = self.payload_parallelism
        while True:
            if st.pc == 0:
                entry = ring.peek()
                if entry is None:
                    yield POLL_GAP_CYCLES
                    continue
                st.queueing = max(0.0, sim.now - entry.arrival_time)
                # Descriptor / packet-pointer access.
                st.access = cpu_access(
                    sim.now, core, entry.buffer_addr, name, io_read=True
                )
                counters.instructions += instructions_per_line
                st.processing = 0.0
                st.offset = 1
                st.pc = 1
                yield st.access
                continue
            if st.pc == 1:
                entry = ring.peek()
                if self.touch and st.offset < entry.packet_lines:
                    line_latency = (
                        cpu_access(
                            sim.now, core, entry.buffer_addr + st.offset,
                            name, io_read=True,
                        )
                        / parallelism
                    )
                    st.access += line_latency
                    st.processing += processing_per_line
                    counters.instructions += instructions_per_line
                    st.offset += 1
                    yield line_latency + processing_per_line
                    continue
                st.pc = 2
                continue
            if st.pc == 2:
                if self.forward:
                    # Rewrite the header (MAC/TTL), then the NIC pulls the
                    # packet back out through the egress path.
                    entry = ring.peek()
                    header_latency = hierarchy.cpu_access(
                        sim.now, core, entry.buffer_addr, name, write=True
                    )
                    counters.instructions += instructions_per_line
                    st.processing += header_latency
                    st.pc = 3
                    yield header_latency
                    continue
                st.pc = 3
                continue
            # pc == 3: egress (forwarding only) and retire.
            entry = ring.peek()
            if self.forward:
                port = self.nic.port
                for offset in range(entry.packet_lines):
                    server.iio.outbound_read(
                        sim.now, port, entry.buffer_addr + offset, name
                    )
            ring.pop()
            counters.io_bytes_completed += entry.packet_lines * line_bytes
            counters.io_requests_completed += 1
            tracker.record(
                st.queueing + st.access + st.processing,
                components={
                    "queueing": st.queueing,
                    "access": st.access,
                    "processing": st.processing,
                },
            )
            st.pc = 0
