"""Redis server/client pair (paper Table 2): persistent key-value store.

YCSB workload A (update-heavy: 50% reads / 50% updates) against an
in-memory hash table plus an append-only persistence log, one core each for
server and client, communicating through shared request/response cache
lines (loopback networking on the same socket, as in the paper's setup).
The shared lines exercise the hierarchy's cross-MLC snoop path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from repro.telemetry.pcm import KIND_CPU, PRIORITY_HIGH
from repro.workloads.base import METRIC_IPC, Workload

MB = 1024 * 1024

VALUE_LINES = 4
"""Lines touched per key-value operation (~few hundred paper bytes)."""

SERVER_POLL_CYCLES = 40.0
CLIENT_POLL_CYCLES = 40.0


class _RedisServerState:
    """Loop-carried state of the server loop (checkpointable)."""

    __slots__ = ("pc", "log_cursor", "request_id", "key", "update", "offset")

    def __init__(self) -> None:
        self.pc = 0
        self.log_cursor = 0
        self.request_id = 0
        self.key = 0
        self.update = False
        self.offset = 0


class _RedisClientState:
    """Loop-carried state of the client loop (checkpointable).

    ``started`` is an absolute timestamp (request issue time, the latency
    baseline) and is shifted by :meth:`RedisClient.time_shift`."""

    __slots__ = ("pc", "request_id", "started")

    def __init__(self) -> None:
        self.pc = 0
        self.request_id = 0
        self.started = 0.0


@dataclass
class RedisChannel:
    """Loopback transport + shared memory between the S/C pair."""

    requests: Deque[Tuple[int, int, bool]] = field(default_factory=deque)
    """(request id, key index, is_update)."""
    responses: Deque[int] = field(default_factory=deque)
    table_base: Optional[int] = None
    table_lines: int = 0
    log_base: Optional[int] = None
    log_lines: int = 0
    mailbox_base: Optional[int] = None

    def ensure_regions(self, server, store_mb: float, log_mb: float) -> None:
        """Allocate the shared regions once, whichever side sets up first."""
        if self.table_base is not None:
            return
        platform = server.platform
        self.table_lines = platform.lines_for_paper_bytes(int(store_mb * MB))
        self.table_base = server.alloc_region(self.table_lines)
        self.log_lines = platform.lines_for_paper_bytes(int(log_mb * MB))
        self.log_base = server.alloc_region(self.log_lines)
        self.mailbox_base = server.alloc_region(8)


class RedisServer(Workload):
    """Redis-S: serves get/update requests, appends to a persistence log."""

    kind = KIND_CPU
    performance_metric = METRIC_IPC

    def __init__(
        self,
        channel: RedisChannel,
        name: str = "redis-s",
        priority: str = PRIORITY_HIGH,
        store_mb: float = 8.0,
        log_mb: float = 4.0,
    ):
        super().__init__(name, priority, cores=1)
        self.channel = channel
        self.store_mb = store_mb
        self.log_mb = log_mb

    def setup(self, server) -> None:
        self.cores = server.alloc_cores(1)
        self.channel.ensure_regions(server, self.store_mb, self.log_mb)
        server.sim.spawn_restartable(
            f"{self.name}@{self.cores[0]}",
            self,
            "_body",
            server,
            self.cores[0],
            _RedisServerState(),
        )

    def _body(self, server, core: int, st):
        # Restartable body: one request's pipeline — poll/mailbox read (0),
        # value lines (1), AOF append (2), response write (3) — as a ``pc``
        # dispatch machine with every yield ending its arm.
        sim = server.sim
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        channel = self.channel
        while True:
            if st.pc == 0:
                if not channel.requests:
                    yield SERVER_POLL_CYCLES
                    continue
                st.request_id, st.key, st.update = channel.requests.popleft()
                # Read the request mailbox line (shared with the client).
                latency = hierarchy.cpu_access(
                    sim.now, core, channel.mailbox_base, self.name
                )
                counters.instructions += 6
                st.offset = 0
                st.pc = 1
                yield latency
                continue
            if st.pc == 1:
                if st.offset < VALUE_LINES:
                    value_base = channel.table_base + (
                        st.key * VALUE_LINES
                    ) % max(1, channel.table_lines - VALUE_LINES)
                    latency = hierarchy.cpu_access(
                        sim.now, core, value_base + st.offset, self.name,
                        write=st.update,
                    )
                    counters.instructions += 12
                    st.offset += 1
                    yield latency + 4.0
                    continue
                st.pc = 2
                continue
            if st.pc == 2:
                if st.update:
                    # Append-only persistence (AOF) write.
                    log_addr = channel.log_base + st.log_cursor
                    st.log_cursor = (st.log_cursor + 1) % channel.log_lines
                    latency = hierarchy.cpu_access(
                        sim.now, core, log_addr, self.name, write=True
                    )
                    counters.instructions += 8
                    st.pc = 3
                    yield latency
                    continue
                st.pc = 3
                continue
            # pc == 3: write the response mailbox line.
            latency = hierarchy.cpu_access(
                sim.now, core, channel.mailbox_base + 1, self.name, write=True
            )
            counters.instructions += 6
            channel.responses.append(st.request_id)
            st.pc = 0
            yield latency


class RedisClient(Workload):
    """Redis-C: YCSB-A closed-loop client with a zipf-like key popularity."""

    kind = KIND_CPU
    performance_metric = METRIC_IPC

    def __init__(
        self,
        channel: RedisChannel,
        name: str = "redis-c",
        priority: str = PRIORITY_HIGH,
        update_fraction: float = 0.5,
        keys: int = 4096,
    ):
        super().__init__(name, priority, cores=1)
        self.channel = channel
        self.update_fraction = update_fraction
        self.keys = keys

    def setup(self, server) -> None:
        self.cores = server.alloc_cores(1)
        self.channel.ensure_regions(server, 8.0, 4.0)
        self._state = _RedisClientState()
        server.sim.spawn_restartable(
            f"{self.name}@{self.cores[0]}",
            self,
            "_body",
            server,
            self.cores[0],
            server.rng.stream(f"{self.name}-keys"),
            self._state,
        )

    def time_shift(self, delta: float) -> None:
        state = getattr(self, "_state", None)
        if state is not None:
            state.started += delta

    def _body(self, server, core: int, rng, st):
        # Restartable body: issue (0) and await/complete (1) arms; the RNG
        # stream is created at setup time and passed in so a rebuilt
        # generator continues the same draw sequence.
        sim = server.sim
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        tracker = server.pcm.tracker(self.name)
        channel = self.channel
        while True:
            if st.pc == 0:
                # Skewed popularity: squaring a uniform draw concentrates
                # mass on low key indices (zipf-ish, cheap, deterministic).
                key = int((rng.random() ** 2) * self.keys)
                update = rng.random() < self.update_fraction
                latency = hierarchy.cpu_access(
                    sim.now, core, channel.mailbox_base, self.name, write=True
                )
                counters.instructions += 10
                st.started = sim.now
                channel.requests.append((st.request_id, key, update))
                st.pc = 1
                yield latency + 4.0
                continue
            # pc == 1: poll for our response, then read it.
            if not (
                channel.responses and channel.responses[0] == st.request_id
            ):
                yield CLIENT_POLL_CYCLES
                continue
            channel.responses.popleft()
            latency = hierarchy.cpu_access(
                sim.now, core, channel.mailbox_base + 1, self.name
            )
            counters.instructions += 10
            counters.io_requests_completed += 1
            tracker.record(sim.now - st.started)
            st.request_id += 1
            st.pc = 0
            yield latency + 6.0


def redis_pair(
    priority_server: str = PRIORITY_HIGH,
    priority_client: str = PRIORITY_HIGH,
    name_prefix: str = "redis",
) -> Tuple[RedisServer, RedisClient]:
    """Build a connected Redis-S / Redis-C pair (YCSB workload A)."""
    channel = RedisChannel()
    server = RedisServer(channel, name=f"{name_prefix}-s", priority=priority_server)
    client = RedisClient(channel, name=f"{name_prefix}-c", priority=priority_client)
    return server, client
