"""Redis server/client pair (paper Table 2): persistent key-value store.

YCSB workload A (update-heavy: 50% reads / 50% updates) against an
in-memory hash table plus an append-only persistence log, one core each for
server and client, communicating through shared request/response cache
lines (loopback networking on the same socket, as in the paper's setup).
The shared lines exercise the hierarchy's cross-MLC snoop path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from repro.telemetry.pcm import KIND_CPU, PRIORITY_HIGH
from repro.workloads.base import METRIC_IPC, Workload

MB = 1024 * 1024

VALUE_LINES = 4
"""Lines touched per key-value operation (~few hundred paper bytes)."""

SERVER_POLL_CYCLES = 40.0
CLIENT_POLL_CYCLES = 40.0


@dataclass
class RedisChannel:
    """Loopback transport + shared memory between the S/C pair."""

    requests: Deque[Tuple[int, int, bool]] = field(default_factory=deque)
    """(request id, key index, is_update)."""
    responses: Deque[int] = field(default_factory=deque)
    table_base: Optional[int] = None
    table_lines: int = 0
    log_base: Optional[int] = None
    log_lines: int = 0
    mailbox_base: Optional[int] = None

    def ensure_regions(self, server, store_mb: float, log_mb: float) -> None:
        """Allocate the shared regions once, whichever side sets up first."""
        if self.table_base is not None:
            return
        platform = server.platform
        self.table_lines = platform.lines_for_paper_bytes(int(store_mb * MB))
        self.table_base = server.alloc_region(self.table_lines)
        self.log_lines = platform.lines_for_paper_bytes(int(log_mb * MB))
        self.log_base = server.alloc_region(self.log_lines)
        self.mailbox_base = server.alloc_region(8)


class RedisServer(Workload):
    """Redis-S: serves get/update requests, appends to a persistence log."""

    kind = KIND_CPU
    performance_metric = METRIC_IPC

    def __init__(
        self,
        channel: RedisChannel,
        name: str = "redis-s",
        priority: str = PRIORITY_HIGH,
        store_mb: float = 8.0,
        log_mb: float = 4.0,
    ):
        super().__init__(name, priority, cores=1)
        self.channel = channel
        self.store_mb = store_mb
        self.log_mb = log_mb

    def setup(self, server) -> None:
        self.cores = server.alloc_cores(1)
        self.channel.ensure_regions(server, self.store_mb, self.log_mb)
        server.sim.spawn(
            f"{self.name}@{self.cores[0]}", self._body(server, self.cores[0])
        )

    def _body(self, server, core: int):
        sim = server.sim
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        channel = self.channel
        log_cursor = 0
        while True:
            if not channel.requests:
                yield SERVER_POLL_CYCLES
                continue
            request_id, key, update = channel.requests.popleft()
            # Read the request mailbox line (shared with the client).
            latency = hierarchy.cpu_access(
                sim.now, core, channel.mailbox_base, self.name
            )
            counters.instructions += 6
            yield latency
            value_base = channel.table_base + (
                key * VALUE_LINES
            ) % max(1, channel.table_lines - VALUE_LINES)
            for offset in range(VALUE_LINES):
                latency = hierarchy.cpu_access(
                    sim.now, core, value_base + offset, self.name, write=update
                )
                counters.instructions += 12
                yield latency + 4.0
            if update:
                # Append-only persistence (AOF) write.
                log_addr = channel.log_base + log_cursor
                log_cursor = (log_cursor + 1) % channel.log_lines
                latency = hierarchy.cpu_access(
                    sim.now, core, log_addr, self.name, write=True
                )
                counters.instructions += 8
                yield latency
            # Write the response mailbox line.
            latency = hierarchy.cpu_access(
                sim.now, core, channel.mailbox_base + 1, self.name, write=True
            )
            counters.instructions += 6
            channel.responses.append(request_id)
            yield latency


class RedisClient(Workload):
    """Redis-C: YCSB-A closed-loop client with a zipf-like key popularity."""

    kind = KIND_CPU
    performance_metric = METRIC_IPC

    def __init__(
        self,
        channel: RedisChannel,
        name: str = "redis-c",
        priority: str = PRIORITY_HIGH,
        update_fraction: float = 0.5,
        keys: int = 4096,
    ):
        super().__init__(name, priority, cores=1)
        self.channel = channel
        self.update_fraction = update_fraction
        self.keys = keys

    def setup(self, server) -> None:
        self.cores = server.alloc_cores(1)
        self.channel.ensure_regions(server, 8.0, 4.0)
        server.sim.spawn(
            f"{self.name}@{self.cores[0]}", self._body(server, self.cores[0])
        )

    def _body(self, server, core: int):
        sim = server.sim
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        tracker = server.pcm.tracker(self.name)
        rng = server.rng.stream(f"{self.name}-keys")
        channel = self.channel
        request_id = 0
        while True:
            # Skewed popularity: squaring a uniform draw concentrates mass
            # on low key indices (zipf-ish, cheap and deterministic).
            key = int((rng.random() ** 2) * self.keys)
            update = rng.random() < self.update_fraction
            latency = hierarchy.cpu_access(
                sim.now, core, channel.mailbox_base, self.name, write=True
            )
            counters.instructions += 10
            started = sim.now
            channel.requests.append((request_id, key, update))
            yield latency + 4.0
            while not (
                channel.responses and channel.responses[0] == request_id
            ):
                yield CLIENT_POLL_CYCLES
            channel.responses.popleft()
            latency = hierarchy.cpu_access(
                sim.now, core, channel.mailbox_base + 1, self.name
            )
            counters.instructions += 10
            counters.io_requests_completed += 1
            tracker.record(sim.now - started)
            request_id += 1
            yield latency + 6.0


def redis_pair(
    priority_server: str = PRIORITY_HIGH,
    priority_client: str = PRIORITY_HIGH,
    name_prefix: str = "redis",
) -> Tuple[RedisServer, RedisClient]:
    """Build a connected Redis-S / Redis-C pair (YCSB workload A)."""
    channel = RedisChannel()
    server = RedisServer(channel, name=f"{name_prefix}-s", priority=priority_server)
    client = RedisClient(channel, name=f"{name_prefix}-c", priority=priority_client)
    return server, client
