"""Synthetic CPU workloads driven by an access profile.

The profile engine underlies X-Mem (the paper's configurable memory
microbenchmark) and the SPEC CPU2017 analogues: a per-core loop issuing
loads/stores over a working set with a chosen pattern, interleaved with
compute cycles.  IPC falls out naturally — more compute per access and more
cache hits mean more instructions retired per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.pcm import KIND_CPU
from repro.workloads.base import METRIC_IPC, Workload

PATTERN_SEQUENTIAL = "seq"
PATTERN_RANDOM = "rand"
PATTERN_STRIDE = "stride"


@dataclass
class AccessProfile:
    """Memory behaviour of a synthetic workload."""

    working_set_lines: int
    pattern: str = PATTERN_SEQUENTIAL
    write_fraction: float = 0.0
    compute_cycles: float = 3.0
    """Cycles of computation between consecutive memory accesses."""
    instructions_per_access: int = 8
    """Instructions retired per loop iteration (one access + arithmetic)."""
    repeats: int = 1
    """Consecutive accesses to each line before moving on — models
    word-granular reuse of a cache line and gives compute-bound workloads a
    realistic MLC hit rate."""
    stride_lines: int = 4
    """Line stride for the 'stride' pattern (X-Mem's strided mode)."""
    batch_accesses: int = 1
    """Opt-in event coalescing: issue this many loop iterations as one
    ``cpu_access_run`` at a single timestamp, yielding their summed cost.
    The default (1) is the exact per-access process and what every figure
    uses; values > 1 coarsen the event timeline (fewer, larger events), so
    this is an approximation knob for long-horizon capacity sweeps, not a
    transparent speedup — results are NOT bit-identical to the default."""

    def __post_init__(self) -> None:
        if self.working_set_lines <= 0:
            raise ValueError("working set must be positive")
        if self.pattern not in (
            PATTERN_SEQUENTIAL,
            PATTERN_RANDOM,
            PATTERN_STRIDE,
        ):
            raise ValueError(f"unknown pattern {self.pattern!r}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.stride_lines < 1:
            raise ValueError("stride_lines must be >= 1")
        if self.batch_accesses < 1:
            raise ValueError("batch_accesses must be >= 1")
        if self.batch_accesses > 1 and self.write_fraction > 0:
            raise ValueError(
                "batch_accesses > 1 requires a read-only profile "
                "(cpu_access_run issues homogeneous read runs)"
            )


class _SynthState:
    """Loop-carried state of one synthetic core loop (checkpointable)."""

    __slots__ = ("index", "rep", "addr")

    def __init__(self) -> None:
        self.index = 0
        self.rep = 0
        self.addr = 0


class SyntheticWorkload(Workload):
    """A profile-driven CPU workload, optionally multi-core.

    The working set is split evenly across cores (each core streams over its
    private slice), matching how X-Mem instances are run in the paper.
    """

    kind = KIND_CPU
    performance_metric = METRIC_IPC

    def __init__(
        self,
        name: str,
        profile: AccessProfile,
        priority: str,
        cores: int = 1,
        tenant=None,
    ):
        super().__init__(name, priority, cores, tenant=tenant)
        self.profile = profile

    def setup(self, server) -> None:
        self.cores = server.alloc_cores(self.num_cores)
        base = server.alloc_region(self.profile.working_set_lines)
        slice_lines = max(1, self.profile.working_set_lines // self.num_cores)
        for i, core in enumerate(self.cores):
            server.sim.spawn_restartable(
                f"{self.name}@{core}",
                self,
                "_body",
                server,
                core,
                base + i * slice_lines,
                slice_lines,
                server.rng.stream(f"{self.name}-{i}"),
                _SynthState(),
            )

    def _body(self, server, core: int, base: int, lines: int, rng, st):
        # Restartable body: all loop-carried state lives in ``st``/``rng``
        # (snapshotted with the server) and every yield ends its dispatch
        # arm, so a rebuilt generator resumes exactly where this one left
        # off.  The per-repeat structure, access order, and RNG draw order
        # match the original nested-loop formulation bit for bit.
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        profile = self.profile
        pattern = profile.pattern
        stride = profile.stride_lines
        repeats = profile.repeats

        def next_addr():
            index = st.index
            if pattern == PATTERN_SEQUENTIAL:
                addr = base + index
                index += 1
                if index >= lines:
                    index = 0
            elif pattern == PATTERN_STRIDE:
                addr = base + index
                index += stride
                if index >= lines:
                    index = (index + 1) % stride  # rotate the phase
            else:
                addr = base + rng.randrange(lines)
            st.index = index
            return addr

        if profile.batch_accesses > 1:
            # Opt-in coalescing: ``batch_accesses`` loop iterations become
            # one event.  The addresses visited and the total cycles charged
            # match the per-access loop; only the event timeline coarsens
            # (all accesses of a batch land at the same ``now``).
            while True:
                addrs = []
                for _ in range(profile.batch_accesses):
                    addr = next_addr()
                    addrs.extend([addr] * profile.repeats)
                latency = hierarchy.cpu_access_run(
                    server.sim.now, core, addrs, self.name
                )
                counters.instructions += (
                    profile.instructions_per_access * len(addrs)
                )
                yield latency + profile.compute_cycles * len(addrs)

        while True:
            if st.rep == 0:
                st.addr = next_addr()
            write = (
                profile.write_fraction > 0
                and rng.random() < profile.write_fraction
            )
            latency = hierarchy.cpu_access(
                server.sim.now, core, st.addr, self.name, write=write
            )
            counters.instructions += profile.instructions_per_access
            st.rep += 1
            if st.rep >= repeats:
                st.rep = 0
            yield latency + profile.compute_cycles
