"""FIO-style storage workload (paper §3.2): libaio random reads, O_DIRECT.

Each thread keeps ``io_depth`` read commands outstanding against the
workload's NVMe device and, on completion, scans every line of the block
(the paper modifies FIO to run a regular-expression match over each block so
the data demonstrably enters the MLCs).  Completion buffers cycle over a
per-thread pool of ``io_depth + 1`` block buffers — O_DIRECT-style reuse —
so DMA writes frequently write-update lines still cached from earlier
blocks.

Block sizes are quoted in paper bytes and run through the capacity scale.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.devices.nvme import NvmeCommand, NvmeConfig, NvmeSsd
from repro.platform import DEFAULT_PLATFORM
from repro.telemetry.pcm import KIND_STORAGE, PRIORITY_LOW
from repro.workloads.base import METRIC_THROUGHPUT, Workload

COMPLETION_POLL_CYCLES = 60.0


class FioWorkload(Workload):
    """Flexible I/O Tester: multi-threaded random reads + per-line scan."""

    kind = KIND_STORAGE
    performance_metric = METRIC_THROUGHPUT

    IO_DIRECT = "direct"
    IO_BUFFERED = "buffered"

    def __init__(
        self,
        name: str = "fio",
        block_bytes: int = 2 * 1024 * 1024,
        cores: int = 4,
        io_depth: int = 32,
        io_mode: str = IO_DIRECT,
        compute_cycles_per_line: float = 2.0,
        instructions_per_line: int = 8,
        memory_parallelism: float = 6.0,
        priority: str = PRIORITY_LOW,
        nvme_cfg: Optional[NvmeConfig] = None,
    ):
        super().__init__(name, priority, cores)
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if io_depth <= 0:
            raise ValueError("io_depth must be positive")
        self.block_bytes = block_bytes
        self.block_lines = DEFAULT_PLATFORM.lines_for_paper_bytes(block_bytes)
        """Scaled block size; re-derived from the server's platform at
        :meth:`setup` time (the ctor value covers pre-setup inspection)."""
        if io_mode not in (self.IO_DIRECT, self.IO_BUFFERED):
            raise ValueError(f"unknown io_mode {io_mode!r}")
        self.io_mode = io_mode
        """'direct' = O_DIRECT (device DMAs straight into the user buffer,
        §2.3 / Fig. 2 red path); 'buffered' = the conventional page-cache
        path: DMA into a kernel buffer, then the CPU copies kernel->user
        before scanning — double buffering plus an extra copy."""
        self.io_depth = io_depth
        self.compute_cycles_per_line = compute_cycles_per_line
        self.instructions_per_line = instructions_per_line
        if memory_parallelism < 1.0:
            raise ValueError("memory_parallelism must be >= 1")
        self.memory_parallelism = memory_parallelism
        """Outstanding misses the block scan overlaps.  Streaming over a
        freshly DMA-written block is prefetch-friendly, so the per-line
        load-to-use latency is amortised across ``memory_parallelism``
        lines — this keeps FIO device-bound (as on the paper's testbed)
        rather than consumer-bound."""
        self._explicit_nvme_cfg = nvme_cfg
        self.nvme_cfg = nvme_cfg or NvmeConfig()
        self.ssd: Optional[NvmeSsd] = None

    def setup(self, server) -> None:
        platform = server.platform
        self.block_lines = platform.lines_for_paper_bytes(self.block_bytes)
        self.nvme_cfg = (
            self._explicit_nvme_cfg or NvmeConfig.for_platform(platform)
        )
        self.cores = server.alloc_cores(self.num_cores)
        port = server.add_port(f"{self.name}-ssd")
        self.port_id = port.port_id
        self.ssd = NvmeSsd(
            name=f"{self.name}-ssd",
            port=port,
            iio=server.iio,
            counters=server.counters,
            cfg=self.nvme_cfg,
        )
        for core in self.cores:
            buffers = [
                server.alloc_region(self.block_lines)
                for _ in range(self.io_depth + 1)
            ]
            user_buffer = (
                server.alloc_region(self.block_lines)
                if self.io_mode == self.IO_BUFFERED
                else None
            )
            server.sim.spawn(
                f"{self.name}@{core}",
                self._thread_body(server, core, buffers, user_buffer),
            )

    def _thread_body(self, server, core: int, buffers, user_buffer=None):
        sim = server.sim
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        tracker = server.pcm.tracker(self.name)
        completed = deque()
        next_buffer = 0
        # Loop-invariant bindings for the per-line scan below.
        cpu_access = hierarchy.cpu_access
        name = self.name
        instructions_per_line = self.instructions_per_line
        compute_cycles = self.compute_cycles_per_line
        parallelism = self.memory_parallelism
        line_bytes = server.platform.line_bytes

        def submit() -> None:
            nonlocal next_buffer
            buffer_addr = buffers[next_buffer]
            next_buffer = (next_buffer + 1) % len(buffers)
            command = NvmeCommand(
                stream=self.name,
                buffer_addr=buffer_addr,
                lines=self.block_lines,
                on_complete=lambda _now, cmd: completed.append(cmd),
            )
            self.ssd.submit(sim, command)

        for _ in range(self.io_depth):
            submit()

        while True:
            if not completed:
                yield COMPLETION_POLL_CYCLES
                continue
            command = completed.popleft()
            if user_buffer is not None:
                # Buffered path: copy kernel buffer -> user buffer first
                # (read the DMA target, write the user page), then scan the
                # user copy.
                for offset in range(command.lines):
                    read_latency = cpu_access(
                        sim.now,
                        core,
                        command.buffer_addr + offset,
                        name,
                        io_read=True,
                    )
                    write_latency = cpu_access(
                        sim.now,
                        core,
                        user_buffer + offset,
                        name,
                        write=True,
                    )
                    counters.instructions += instructions_per_line
                    yield (read_latency + write_latency) / parallelism
                scan_base = user_buffer
                scan_io = False
            else:
                scan_base = command.buffer_addr
                scan_io = True
            # Regex scan over the whole block: every line enters the MLC.
            for offset in range(command.lines):
                latency = cpu_access(
                    sim.now, core, scan_base + offset, name, io_read=scan_io
                )
                counters.instructions += instructions_per_line
                yield (latency + compute_cycles) / parallelism
            counters.io_bytes_completed += command.lines * line_bytes
            counters.io_requests_completed += 1
            tracker.record(sim.now - command.submitted_at)
            submit()
