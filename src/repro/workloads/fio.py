"""FIO-style storage workload (paper §3.2): libaio random reads, O_DIRECT.

Each thread keeps ``io_depth`` read commands outstanding against the
workload's NVMe device and, on completion, scans every line of the block
(the paper modifies FIO to run a regular-expression match over each block so
the data demonstrably enters the MLCs).  Completion buffers cycle over a
per-thread pool of ``io_depth + 1`` block buffers — O_DIRECT-style reuse —
so DMA writes frequently write-update lines still cached from earlier
blocks.

Block sizes are quoted in paper bytes and run through the capacity scale.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.devices.nvme import NvmeCommand, NvmeConfig, NvmeSsd
from repro.platform import DEFAULT_PLATFORM
from repro.telemetry.pcm import KIND_STORAGE, PRIORITY_LOW
from repro.workloads.base import METRIC_THROUGHPUT, Workload

COMPLETION_POLL_CYCLES = 60.0


class _CompletionQueue:
    """Picklable completion sink: the SSD calls it, the thread drains it.

    Replaces the former ``on_complete`` lambda (closures cannot pickle, so
    they cannot cross a checkpoint)."""

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items = deque()

    def __call__(self, _now: float, command) -> None:
        self.items.append(command)


class _FioState:
    """Loop-carried state of one FIO thread (checkpointable).

    ``pc``: 0 = poll completions, 1 = kernel->user copy (buffered mode),
    2 = block scan.  ``command`` is the block under service; its
    ``submitted_at`` is an absolute timestamp handled by
    :meth:`FioWorkload.time_shift`."""

    __slots__ = ("pc", "offset", "next_buffer", "completed", "primed",
                 "command")

    def __init__(self) -> None:
        self.pc = 0
        self.offset = 0
        self.next_buffer = 0
        self.completed = _CompletionQueue()
        self.primed = False
        self.command = None


class FioWorkload(Workload):
    """Flexible I/O Tester: multi-threaded random reads + per-line scan."""

    kind = KIND_STORAGE
    performance_metric = METRIC_THROUGHPUT

    IO_DIRECT = "direct"
    IO_BUFFERED = "buffered"

    def __init__(
        self,
        name: str = "fio",
        block_bytes: int = 2 * 1024 * 1024,
        cores: int = 4,
        io_depth: int = 32,
        io_mode: str = IO_DIRECT,
        compute_cycles_per_line: float = 2.0,
        instructions_per_line: int = 8,
        memory_parallelism: float = 6.0,
        priority: str = PRIORITY_LOW,
        nvme_cfg: Optional[NvmeConfig] = None,
        tenant=None,
    ):
        super().__init__(name, priority, cores, tenant=tenant)
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if io_depth <= 0:
            raise ValueError("io_depth must be positive")
        self.block_bytes = block_bytes
        self.block_lines = DEFAULT_PLATFORM.lines_for_paper_bytes(block_bytes)
        """Scaled block size; re-derived from the server's platform at
        :meth:`setup` time (the ctor value covers pre-setup inspection)."""
        if io_mode not in (self.IO_DIRECT, self.IO_BUFFERED):
            raise ValueError(f"unknown io_mode {io_mode!r}")
        self.io_mode = io_mode
        """'direct' = O_DIRECT (device DMAs straight into the user buffer,
        §2.3 / Fig. 2 red path); 'buffered' = the conventional page-cache
        path: DMA into a kernel buffer, then the CPU copies kernel->user
        before scanning — double buffering plus an extra copy."""
        self.io_depth = io_depth
        self.compute_cycles_per_line = compute_cycles_per_line
        self.instructions_per_line = instructions_per_line
        if memory_parallelism < 1.0:
            raise ValueError("memory_parallelism must be >= 1")
        self.memory_parallelism = memory_parallelism
        """Outstanding misses the block scan overlaps.  Streaming over a
        freshly DMA-written block is prefetch-friendly, so the per-line
        load-to-use latency is amortised across ``memory_parallelism``
        lines — this keeps FIO device-bound (as on the paper's testbed)
        rather than consumer-bound."""
        self._explicit_nvme_cfg = nvme_cfg
        self.nvme_cfg = nvme_cfg or NvmeConfig()
        self.ssd: Optional[NvmeSsd] = None

    def setup(self, server) -> None:
        platform = server.platform
        self.block_lines = platform.lines_for_paper_bytes(self.block_bytes)
        self.nvme_cfg = (
            self._explicit_nvme_cfg or NvmeConfig.for_platform(platform)
        )
        self.cores = server.alloc_cores(self.num_cores)
        port = server.add_port(f"{self.name}-ssd")
        self.port_id = port.port_id
        self.ssd = NvmeSsd(
            name=f"{self.name}-ssd",
            port=port,
            iio=server.iio,
            counters=server.counters,
            cfg=self.nvme_cfg,
        )
        self._states = []
        for core in self.cores:
            buffers = [
                server.alloc_region(self.block_lines)
                for _ in range(self.io_depth + 1)
            ]
            user_buffer = (
                server.alloc_region(self.block_lines)
                if self.io_mode == self.IO_BUFFERED
                else None
            )
            st = _FioState()
            self._states.append(st)
            server.sim.spawn_restartable(
                f"{self.name}@{core}",
                self,
                "_thread_body",
                server,
                core,
                buffers,
                user_buffer,
                st,
            )

    def time_shift(self, delta: float) -> None:
        if self.ssd is not None:
            self.ssd.time_shift(delta)
        for st in getattr(self, "_states", ()):
            for command in st.completed.items:
                command.submitted_at += delta
                command.admitted_at += delta
                command.completed_at += delta
            if st.command is not None:
                st.command.submitted_at += delta
                st.command.admitted_at += delta
                st.command.completed_at += delta

    def _thread_body(self, server, core: int, buffers, user_buffer, st):
        # Restartable body: poll (0), buffered copy (1), scan (2) arms of
        # a ``pc`` dispatch machine, each yield ending its arm.  The
        # io_depth priming submits run on the first resume, guarded by
        # ``st.primed`` so a rebuilt generator never re-submits.
        sim = server.sim
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        tracker = server.pcm.tracker(self.name)
        completed = st.completed
        # Loop-invariant bindings for the per-line scan below.
        cpu_access = hierarchy.cpu_access
        name = self.name
        instructions_per_line = self.instructions_per_line
        compute_cycles = self.compute_cycles_per_line
        parallelism = self.memory_parallelism
        line_bytes = server.platform.line_bytes

        def submit() -> None:
            buffer_addr = buffers[st.next_buffer]
            st.next_buffer = (st.next_buffer + 1) % len(buffers)
            command = NvmeCommand(
                stream=name,
                buffer_addr=buffer_addr,
                lines=self.block_lines,
                on_complete=completed,
            )
            self.ssd.submit(sim, command)

        if not st.primed:
            st.primed = True
            for _ in range(self.io_depth):
                submit()

        while True:
            if st.pc == 0:
                if not completed.items:
                    yield COMPLETION_POLL_CYCLES
                    continue
                st.command = completed.items.popleft()
                st.offset = 0
                st.pc = 1 if user_buffer is not None else 2
                continue
            if st.pc == 1:
                # Buffered path: copy kernel buffer -> user buffer first
                # (read the DMA target, write the user page), then scan
                # the user copy.
                if st.offset < st.command.lines:
                    read_latency = cpu_access(
                        sim.now,
                        core,
                        st.command.buffer_addr + st.offset,
                        name,
                        io_read=True,
                    )
                    write_latency = cpu_access(
                        sim.now,
                        core,
                        user_buffer + st.offset,
                        name,
                        write=True,
                    )
                    counters.instructions += instructions_per_line
                    st.offset += 1
                    yield (read_latency + write_latency) / parallelism
                    continue
                st.offset = 0
                st.pc = 2
                continue
            # pc == 2: regex scan over the whole block — every line enters
            # the MLC — then retire and resubmit without yielding (the
            # next poll happens at the same ``now``, as in the original).
            if user_buffer is not None:
                scan_base, scan_io = user_buffer, False
            else:
                scan_base, scan_io = st.command.buffer_addr, True
            if st.offset < st.command.lines:
                latency = cpu_access(
                    sim.now, core, scan_base + st.offset, name,
                    io_read=scan_io,
                )
                counters.instructions += instructions_per_line
                st.offset += 1
                yield (latency + compute_cycles) / parallelism
                continue
            counters.io_bytes_completed += st.command.lines * line_bytes
            counters.io_requests_completed += 1
            tracker.record(sim.now - st.command.submitted_at)
            st.command = None
            submit()
            st.pc = 0
