"""SPEC CPU2017 workload analogues (paper Table 2, Figs. 13/15).

Each benchmark is reduced to the memory-behaviour profile that matters for
LLC management, calibrated against the characterisation of Singh & Awasthi
(ICPE'19) that the paper itself cites:

* ``x264``       — compute-bound, modest working set: diminishing returns
  beyond a small cache share;
* ``parest``     — several-LLC-way working set with reuse: benefits steadily
  from every extra way;
* ``xalancbmk``  — pointer-chasing over a mid-size set: cache-hungry,
  latency-sensitive;
* ``mcf``        — large sparse working set with some reuse;
* ``bwaves``     — streaming reads far beyond LLC capacity: an antagonist
  (>90% MLC *and* LLC miss rates, the paper's T5 signature);
* ``lbm``        — streaming read-modify-write, the other detected
  antagonist;
* ``zswap``      — bonus profile mimicking the page-compression daemon the
  paper names as a further antagonist class (§5.5).

Working sets are paper-scale bytes run through the capacity scale.
"""

from __future__ import annotations

from typing import Dict

from repro import config
from repro.telemetry.pcm import PRIORITY_HIGH
from repro.workloads.synthetic import (
    AccessProfile,
    PATTERN_RANDOM,
    PATTERN_SEQUENTIAL,
    SyntheticWorkload,
)

MB = 1024 * 1024


def _profile(
    ws_mb: float,
    pattern: str,
    write_fraction: float,
    compute: float,
    instructions: int,
    repeats: int,
) -> AccessProfile:
    return AccessProfile(
        working_set_lines=config.lines_for_paper_bytes(int(ws_mb * MB)),
        pattern=pattern,
        write_fraction=write_fraction,
        compute_cycles=compute,
        instructions_per_access=instructions,
        repeats=repeats,
    )


SPEC_PROFILES: Dict[str, AccessProfile] = {
    "x264": _profile(1.5, PATTERN_SEQUENTIAL, 0.10, 10.0, 16, 6),
    "parest": _profile(8.0, PATTERN_RANDOM, 0.05, 4.0, 10, 2),
    "xalancbmk": _profile(6.0, PATTERN_RANDOM, 0.05, 2.0, 7, 2),
    "mcf": _profile(12.0, PATTERN_RANDOM, 0.10, 2.0, 6, 1),
    "bwaves": _profile(60.0, PATTERN_SEQUENTIAL, 0.0, 3.0, 8, 1),
    "lbm": _profile(80.0, PATTERN_SEQUENTIAL, 0.50, 3.0, 8, 1),
    "zswap": _profile(100.0, PATTERN_RANDOM, 0.50, 1.0, 5, 1),
}


def spec_workload(
    benchmark: str,
    priority: str = PRIORITY_HIGH,
    cores: int = 1,
    name: str = "",
) -> SyntheticWorkload:
    """Instantiate one SPEC CPU2017 analogue (single-core SPECrate copy)."""
    if benchmark not in SPEC_PROFILES:
        raise KeyError(
            f"unknown benchmark {benchmark!r}; have {sorted(SPEC_PROFILES)}"
        )
    return SyntheticWorkload(
        name or benchmark, SPEC_PROFILES[benchmark], priority, cores
    )
