"""SPEC CPU2017 workload analogues (paper Table 2, Figs. 13/15).

Each benchmark is reduced to the memory-behaviour profile that matters for
LLC management, calibrated against the characterisation of Singh & Awasthi
(ICPE'19) that the paper itself cites:

* ``x264``       — compute-bound, modest working set: diminishing returns
  beyond a small cache share;
* ``parest``     — several-LLC-way working set with reuse: benefits steadily
  from every extra way;
* ``xalancbmk``  — pointer-chasing over a mid-size set: cache-hungry,
  latency-sensitive;
* ``mcf``        — large sparse working set with some reuse;
* ``bwaves``     — streaming reads far beyond LLC capacity: an antagonist
  (>90% MLC *and* LLC miss rates, the paper's T5 signature);
* ``lbm``        — streaming read-modify-write, the other detected
  antagonist;
* ``zswap``      — bonus profile mimicking the page-compression daemon the
  paper names as a further antagonist class (§5.5).

Working sets are paper-scale bytes run through the capacity scale.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.platform import DEFAULT_PLATFORM, PlatformSpec
from repro.telemetry.pcm import PRIORITY_HIGH
from repro.workloads.synthetic import (
    AccessProfile,
    PATTERN_RANDOM,
    PATTERN_SEQUENTIAL,
    SyntheticWorkload,
)

MB = 1024 * 1024

SPEC_PROFILE_PARAMS: Dict[str, Tuple[float, str, float, float, int, int]] = {
    # (ws_mb, pattern, write_fraction, compute, instructions, repeats) —
    # paper-scale parameters, platform-independent.
    "x264": (1.5, PATTERN_SEQUENTIAL, 0.10, 10.0, 16, 6),
    "parest": (8.0, PATTERN_RANDOM, 0.05, 4.0, 10, 2),
    "xalancbmk": (6.0, PATTERN_RANDOM, 0.05, 2.0, 7, 2),
    "mcf": (12.0, PATTERN_RANDOM, 0.10, 2.0, 6, 1),
    "bwaves": (60.0, PATTERN_SEQUENTIAL, 0.0, 3.0, 8, 1),
    "lbm": (80.0, PATTERN_SEQUENTIAL, 0.50, 3.0, 8, 1),
    "zswap": (100.0, PATTERN_RANDOM, 0.50, 1.0, 5, 1),
}


def spec_profile(
    benchmark: str, platform: PlatformSpec = DEFAULT_PLATFORM
) -> AccessProfile:
    """Materialise one benchmark's profile on ``platform``'s capacity scale.

    Built on demand (not at import) so two platforms can coexist in one
    process without one's scaling leaking into the other's profiles.
    """
    if benchmark not in SPEC_PROFILE_PARAMS:
        raise KeyError(
            f"unknown benchmark {benchmark!r}; have {sorted(SPEC_PROFILE_PARAMS)}"
        )
    ws_mb, pattern, write_fraction, compute, instructions, repeats = (
        SPEC_PROFILE_PARAMS[benchmark]
    )
    return AccessProfile(
        working_set_lines=platform.lines_for_paper_bytes(int(ws_mb * MB)),
        pattern=pattern,
        write_fraction=write_fraction,
        compute_cycles=compute,
        instructions_per_access=instructions,
        repeats=repeats,
    )


SPEC_PROFILES: Dict[str, AccessProfile] = {
    name: spec_profile(name) for name in SPEC_PROFILE_PARAMS
}
"""Back-compat view materialised on the default platform."""


def spec_workload(
    benchmark: str,
    priority: str = PRIORITY_HIGH,
    cores: int = 1,
    name: str = "",
    platform: PlatformSpec = DEFAULT_PLATFORM,
    tenant=None,
) -> SyntheticWorkload:
    """Instantiate one SPEC CPU2017 analogue (single-core SPECrate copy)."""
    return SyntheticWorkload(
        name or benchmark, spec_profile(benchmark, platform), priority, cores,
        tenant=tenant,
    )
