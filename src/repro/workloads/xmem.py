"""X-Mem, Microsoft's extensible memory benchmark (paper §3.1, Table 3).

Factories over the synthetic profile engine.  Working sets are quoted in
paper megabytes and converted through the capacity scale, so the paper's
constraint — e.g. 4 MB sits between two MLCs' and two LLC ways' capacity —
is preserved in simulation.
"""

from __future__ import annotations

from typing import List

from repro.platform import DEFAULT_PLATFORM, PlatformSpec
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.synthetic import (
    AccessProfile,
    PATTERN_RANDOM,
    PATTERN_SEQUENTIAL,
    SyntheticWorkload,
)

MB = 1024 * 1024


def xmem(
    name: str = "xmem",
    working_set_mb: float = 4.0,
    pattern: str = PATTERN_SEQUENTIAL,
    op: str = "read",
    cores: int = 2,
    priority: str = PRIORITY_HIGH,
    platform: PlatformSpec = DEFAULT_PLATFORM,
) -> SyntheticWorkload:
    """An X-Mem instance with a paper-scale working set."""
    if op not in ("read", "write"):
        raise ValueError(f"unknown op {op!r}")
    profile = AccessProfile(
        working_set_lines=platform.lines_for_paper_bytes(int(working_set_mb * MB)),
        pattern=pattern,
        write_fraction=1.0 if op == "write" else 0.0,
        compute_cycles=2.0,
        instructions_per_access=8,
    )
    return SyntheticWorkload(name, profile, priority, cores)


def xmem_table3(
    platform: PlatformSpec = DEFAULT_PLATFORM,
) -> List[SyntheticWorkload]:
    """The three X-Mem instances of Table 3.

    X-Mem 1: 4 MB sequential read (HPW, cache-sensitive);
    X-Mem 2: 4 MB sequential write (LPW);
    X-Mem 3: 10 MB random read (detected as an antagonist by A4).
    """
    return [
        xmem("xmem1", 4.0, PATTERN_SEQUENTIAL, "read", cores=1,
             priority=PRIORITY_HIGH, platform=platform),
        xmem("xmem2", 4.0, PATTERN_SEQUENTIAL, "write", cores=1,
             priority=PRIORITY_LOW, platform=platform),
        xmem("xmem3", 10.0, PATTERN_RANDOM, "read", cores=1,
             priority=PRIORITY_LOW, platform=platform),
    ]
