"""Workloads with execution phases.

A :class:`PhasedWorkload` alternates between an *active* phase (running a
synthetic access profile) and an *idle* phase (sleeping).  System daemons
behave exactly like this — KSM scans, then sleeps — and the paper's §5.6
machinery (antagonist restoration, periodic reverting) exists precisely to
track such phase changes.  The integration tests use phased antagonists to
drive A4's restore path.
"""

from __future__ import annotations

from repro.telemetry.pcm import KIND_CPU
from repro.workloads.base import METRIC_IPC, Workload
from repro.workloads.synthetic import AccessProfile


class _PhasedState:
    """Loop-carried state of one phased core loop (checkpointable).

    ``phase_end`` is an *absolute* simulated time — ``None`` between
    phases — and is shifted by :meth:`PhasedWorkload.time_shift` when
    interval sampling fast-forwards the clock."""

    __slots__ = ("index", "flips_seen", "phase_end")

    def __init__(self) -> None:
        self.index = 0
        self.flips_seen = 0
        self.phase_end = None


class PhasedWorkload(Workload):
    """Alternates ``active_cycles`` of profile execution with
    ``idle_cycles`` of sleep, indefinitely."""

    kind = KIND_CPU
    performance_metric = METRIC_IPC

    def __init__(
        self,
        name: str,
        profile: AccessProfile,
        priority: str,
        active_cycles: float,
        idle_cycles: float,
        cores: int = 1,
        tenant=None,
        record_latency: bool = False,
    ):
        super().__init__(name, priority, cores, tenant=tenant)
        if active_cycles <= 0 or idle_cycles < 0:
            raise ValueError("phase lengths must be positive (idle >= 0)")
        self.profile = profile
        self.active_cycles = active_cycles
        self.idle_cycles = idle_cycles
        self.record_latency = record_latency
        """Record each access's service time (latency + compute) into the
        PCM latency tracker, giving the stream per-epoch p50/p99 stats.
        Off by default — the daemons this class historically models have
        no request latency; the tenant scenario generator turns it on for
        latency-critical service tenants with p99 SLOs."""
        self.flip_count = 0
        self._states = []

    def request_flip(self) -> None:
        """Cut the current active phase short at the next access (fault
        injector chaos: a forced phase change §5.6 must chase)."""
        self.flip_count += 1

    def time_shift(self, delta: float) -> None:
        for st in self._states:
            if st.phase_end is not None:
                st.phase_end += delta

    def setup(self, server) -> None:
        self.cores = server.alloc_cores(self.num_cores)
        base = server.alloc_region(self.profile.working_set_lines)
        slice_lines = max(1, self.profile.working_set_lines // self.num_cores)
        for i, core in enumerate(self.cores):
            st = _PhasedState()
            self._states.append(st)
            server.sim.spawn_restartable(
                f"{self.name}@{core}",
                self,
                "_body",
                server,
                core,
                base + i * slice_lines,
                slice_lines,
                server.rng.stream(f"{self.name}-{i}"),
                st,
            )

    def _body(self, server, core: int, base: int, lines: int, rng, st):
        # Restartable body: the original nested phase loop is flattened
        # into one dispatch loop so every yield ends an arm.  A ``None``
        # ``phase_end`` marks "start a new active phase here" — exactly
        # where the original outer loop re-stamped it.
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        profile = self.profile
        sequential = profile.pattern == "seq"
        sim = server.sim
        tracker = (
            server.pcm.tracker(self.name) if self.record_latency else None
        )
        while True:
            if st.phase_end is None:
                st.flips_seen = self.flip_count
                st.phase_end = sim.now + self.active_cycles
            if sim.now < st.phase_end and self.flip_count == st.flips_seen:
                if sequential:
                    addr = base + st.index
                    st.index += 1
                    if st.index >= lines:
                        st.index = 0
                else:
                    addr = base + rng.randrange(lines)
                write = (
                    profile.write_fraction > 0
                    and rng.random() < profile.write_fraction
                )
                latency = hierarchy.cpu_access(
                    sim.now, core, addr, self.name, write=write
                )
                counters.instructions += profile.instructions_per_access
                if tracker is not None:
                    tracker.record(latency + profile.compute_cycles)
                yield latency + profile.compute_cycles
                continue
            st.phase_end = None
            if self.idle_cycles:
                yield self.idle_cycles
