"""Workloads with execution phases.

A :class:`PhasedWorkload` alternates between an *active* phase (running a
synthetic access profile) and an *idle* phase (sleeping).  System daemons
behave exactly like this — KSM scans, then sleeps — and the paper's §5.6
machinery (antagonist restoration, periodic reverting) exists precisely to
track such phase changes.  The integration tests use phased antagonists to
drive A4's restore path.
"""

from __future__ import annotations

from repro.telemetry.pcm import KIND_CPU
from repro.workloads.base import METRIC_IPC, Workload
from repro.workloads.synthetic import AccessProfile


class PhasedWorkload(Workload):
    """Alternates ``active_cycles`` of profile execution with
    ``idle_cycles`` of sleep, indefinitely."""

    kind = KIND_CPU
    performance_metric = METRIC_IPC

    def __init__(
        self,
        name: str,
        profile: AccessProfile,
        priority: str,
        active_cycles: float,
        idle_cycles: float,
        cores: int = 1,
    ):
        super().__init__(name, priority, cores)
        if active_cycles <= 0 or idle_cycles < 0:
            raise ValueError("phase lengths must be positive (idle >= 0)")
        self.profile = profile
        self.active_cycles = active_cycles
        self.idle_cycles = idle_cycles
        self.flip_count = 0

    def request_flip(self) -> None:
        """Cut the current active phase short at the next access (fault
        injector chaos: a forced phase change §5.6 must chase)."""
        self.flip_count += 1

    def setup(self, server) -> None:
        self.cores = server.alloc_cores(self.num_cores)
        base = server.alloc_region(self.profile.working_set_lines)
        slice_lines = max(1, self.profile.working_set_lines // self.num_cores)
        for i, core in enumerate(self.cores):
            server.sim.spawn(
                f"{self.name}@{core}",
                self._body(
                    server,
                    core,
                    base + i * slice_lines,
                    slice_lines,
                    server.rng.stream(f"{self.name}-{i}"),
                ),
            )

    def _body(self, server, core: int, base: int, lines: int, rng):
        hierarchy = server.hierarchy
        counters = server.counters.stream(self.name)
        profile = self.profile
        sequential = profile.pattern == "seq"
        index = 0
        while True:
            flips_seen = self.flip_count
            phase_end = server.sim.now + self.active_cycles
            while server.sim.now < phase_end:
                if self.flip_count != flips_seen:
                    break
                if sequential:
                    addr = base + index
                    index += 1
                    if index >= lines:
                        index = 0
                else:
                    addr = base + rng.randrange(lines)
                write = (
                    profile.write_fraction > 0
                    and rng.random() < profile.write_fraction
                )
                latency = hierarchy.cpu_access(
                    server.sim.now, core, addr, self.name, write=write
                )
                counters.instructions += profile.instructions_per_access
                yield latency + profile.compute_cycles
            if self.idle_cycles:
                yield self.idle_cycles
