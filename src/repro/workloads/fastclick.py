"""Fastclick (paper Table 2): simple packet processing over DPDK.

Fastclick is the paper's real-world network-I/O workload: 1024 B packets,
a 2048-entry ring per core, four cores, and per-packet processing heavier
than the DPDK-T microbenchmark.  The latency breakdown it records (ring
queueing / pointer access / processing) is what Fig. 14a plots.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.pcm import PRIORITY_HIGH
from repro.workloads.dpdk import DpdkWorkload


def fastclick(
    name: str = "fastclick",
    priority: str = PRIORITY_HIGH,
    cores: int = 4,
    packet_bytes: int = 1024,
    line_rate: Optional[float] = None,
) -> DpdkWorkload:
    """Build the Table 2 Fastclick configuration."""
    return DpdkWorkload(
        name=name,
        touch=True,
        cores=cores,
        packet_bytes=packet_bytes,
        ring_entries=16,  # capacity-scaled equivalent of 2048 entries
        line_rate=line_rate,
        processing_cycles_per_line=6.0,
        instructions_per_line=14,
        priority=priority,
    )
