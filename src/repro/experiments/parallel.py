"""Process-pool execution of multi-seed sweeps and figure batches.

Seeds of a :func:`repro.experiments.sweep.run_repeated` sweep and the
per-seed runs behind :func:`repro.experiments.sweep.average_figure` are
embarrassingly parallel: each builds its own :class:`Server`, runs it, and
reduces to a small numeric summary.  This module fans those runs out over a
:class:`concurrent.futures.ProcessPoolExecutor`.

Design constraints, in order of importance:

* **Bit-identical results.**  Workers return plain picklable summaries
  (floats keyed by stream/metric, or a :class:`FigureResult`), assembled on
  the parent in task order.  The serial path runs the *same* task functions
  in the same order, so ``parallel=True`` and ``parallel=False`` produce
  identical objects — :mod:`tests.test_parallel` locks this.
* **Picklability.**  Task descriptors are frozen dataclasses holding only
  module-level callables and primitives; the worker entry points
  (:func:`seed_metrics`, :func:`run_figure`, :func:`_run_one`) are
  module-level functions.
* **Graceful degradation.**  ``parallel=False`` (the default everywhere),
  ``max_workers<=1``, or a single-CPU host all fall back to a plain loop in
  the calling process — no pool, no forked interpreters.
* **Per-task error capture.**  A failing task does not abort its siblings;
  every task runs to completion and failures are re-raised together as a
  :class:`ParallelExecutionError` carrying per-task tracebacks, each
  classified through :func:`repro.experiments.errors.classify`.
* **Warm pools.**  The executor is module-level and reused across batches
  (multi-figure ``--jobs`` runs previously paid pool startup per batch).
  Workers are warmed by an initializer that imports the experiment stack
  and inherits the parent's run-cache settings; dispatch is chunked so a
  large batch costs ``O(workers)`` round-trips, not ``O(tasks)``.
"""

from __future__ import annotations

import atexit
import functools
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments import runcache
from repro.experiments.errors import classify
from repro.obsv.metrics import counts_of, diff_counts
from repro.service.retry import RetryPolicy

METRIC_FIELDS = (
    "ipc",
    "llc_hit_rate",
    "llc_miss_rate",
    "mlc_miss_rate",
    "dca_miss_rate",
    "throughput",
    "avg_latency",
    "p99_latency",
)
"""Numeric :class:`StreamAggregate` fields collected per seed (the columns
of a :class:`repro.experiments.sweep.MultiSeedResult`)."""


# -- task descriptors (picklable) -----------------------------------------


@dataclass(frozen=True)
class SeedTask:
    """One seed of a ``run_repeated`` sweep.

    ``build`` must be a module-level callable (lambdas and closures do not
    pickle); the figure runners and benchmark scenarios already satisfy
    this.
    """

    build: Callable[[int], Any]
    epochs: int
    warmup: int
    seed: int


@dataclass(frozen=True)
class FigureTask:
    """One seed of a figure-runner invocation.

    ``kwargs`` is a tuple of ``(name, value)`` pairs rather than a dict so
    the descriptor stays hashable/frozen.
    """

    runner: Callable[..., Any]
    seed: int
    kwargs: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class TaskFailure:
    """A captured per-task error (exception text + formatted traceback),
    classified into a coarse ``category`` (``config`` / ``resources`` /
    ``allocation`` / ``figure`` / ``runtime``) via
    :mod:`repro.experiments.errors`.  ``digest`` is the content fingerprint
    of the offending task's configuration, so a failure deep inside a
    pooled sweep names exactly which config produced it."""

    index: int
    task: Any
    error: str
    traceback: str
    category: str = "runtime"
    digest: str = ""


def task_digest(task: Any) -> str:
    """Short content digest of a task descriptor (12 hex chars), built on
    the run cache's canonical form so it is stable across processes."""
    try:
        return runcache.fingerprint(task)[:12]
    except Exception:  # noqa: BLE001 - a digest must never mask the error
        return "unfingerprintable"


class ParallelExecutionError(RuntimeError):
    """One or more tasks failed; ``failures`` holds every captured error."""

    def __init__(self, failures: Sequence[TaskFailure]):
        self.failures = tuple(failures)
        lines = [f"{len(self.failures)} task(s) failed:"]
        for failure in self.failures:
            where = f" (config {failure.digest})" if failure.digest else ""
            lines.append(
                f"  task[{failure.index}] [{failure.category}]{where}: "
                f"{failure.error}"
            )
        super().__init__("\n".join(lines))

    def categories(self) -> Dict[str, int]:
        """Failure count per category (for run reports)."""
        counts: Dict[str, int] = {}
        for failure in self.failures:
            counts[failure.category] = counts.get(failure.category, 0) + 1
        return counts


# -- worker entry points ---------------------------------------------------


def _seed_metrics_compute(task: SeedTask) -> Tuple[float, Dict[str, Dict[str, float]], int]:
    server = task.build(task.seed)
    result = server.run(epochs=task.epochs, warmup=task.warmup)
    streams: Dict[str, Dict[str, float]] = {}
    for name in result.stream_names():
        aggregate = result.aggregate(name)
        streams[name] = {
            metric: getattr(aggregate, metric) for metric in METRIC_FIELDS
        }
    return result.mem_total_bw, streams, server.sim.events_executed


def seed_metrics(
    task: SeedTask,
) -> Tuple[float, Dict[str, Dict[str, float]], int]:
    """Run one seed and reduce it to a picklable numeric summary.

    Returns ``(mem_total_bw, {stream: {metric: value}}, events_executed)``
    over :data:`METRIC_FIELDS`.  Both the serial and the parallel path of
    ``run_repeated`` go through this function, which is what guarantees
    identical :class:`MultiSeedResult` objects either way.  The summary is
    memoized in the content-addressed run cache, keyed on the builder's
    code identity plus ``(epochs, warmup, seed)``.
    """
    payload = (
        "seed_metrics",
        runcache.callable_token(task.build),
        task.epochs,
        task.warmup,
        task.seed,
    )
    return runcache.get_cache().memo(
        payload, functools.partial(_seed_metrics_compute, task)
    )


def run_figure(task: FigureTask) -> Any:
    """Invoke a figure runner for one seed (worker entry point).

    Registry runners are already cache-wrapped (they carry a
    ``__cache_token__``) and handle their own memoization; bare
    module-level runners are memoized here so ``average_figure`` sweeps
    hit the cache too.
    """
    runner = task.runner
    kwargs = dict(task.kwargs)
    if getattr(runner, "__cache_token__", None) is not None:
        return runner(seed=task.seed, **kwargs)
    payload = (
        "run_figure",
        runcache.callable_token(runner),
        task.seed,
        task.kwargs,
    )
    return runcache.get_cache().memo(
        payload, lambda: runner(seed=task.seed, **kwargs)
    )


def _run_one(
    fn: Callable[[Any], Any], index: int, task: Any
) -> Tuple[int, Any, Optional[TaskFailure]]:
    """Run one task, capturing any exception instead of raising.

    Capturing on the worker side keeps a single bad seed from poisoning
    the pool (an unpicklable exception would otherwise break the executor)
    and preserves the worker-side traceback verbatim.
    """
    try:
        return index, fn(task), None
    except Exception as exc:  # noqa: BLE001 - reported via TaskFailure
        return index, None, TaskFailure(
            index=index,
            task=task,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            category=classify(exc),
            digest=task_digest(task),
        )


def _run_chunk(
    fn: Callable[[Any], Any], chunk: Sequence[Tuple[int, Any]]
) -> Tuple[List[Tuple[int, Any, Optional[TaskFailure]]], runcache.CacheStats]:
    """Worker side of chunked dispatch: run a slice of the batch.

    Also returns the worker's cache-stats delta for this chunk so the
    parent's hit/miss report covers pool-side lookups."""
    stats = runcache.get_cache().stats
    before = counts_of(stats)
    outcomes = [_run_one(fn, index, task) for index, task in chunk]
    delta = runcache.CacheStats(**diff_counts(stats, before))
    return outcomes, delta


# -- the warm pool ---------------------------------------------------------


_pool: Optional[ProcessPoolExecutor] = None
_pool_workers: int = 0


def _worker_warmup(environ: Dict[str, str]) -> None:
    """Pool initializer: inherit cache settings and pre-import the hot
    modules so the first real task does not pay import cost."""
    os.environ.update(environ)
    # Imports only; the modules' import side effects build the generated
    # counter snapshot code and register figure runners.
    from repro.experiments import harness, scenarios  # noqa: F401

    runcache.get_cache()


def _cache_environ() -> Dict[str, str]:
    """The parent's run-cache settings, as env for worker initializers."""
    cache = runcache.get_cache()
    return {
        runcache.ENV_CACHE_DIR: str(cache.root),
        runcache.ENV_CACHE_DISABLE: "" if cache.enabled else "1",
    }


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor, created on first use and reused across batches.

    A request for a different worker count (or a previously broken pool)
    tears the old executor down and starts a fresh one.
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers == workers:
        return _pool
    shutdown_pool()
    _pool = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_warmup,
        initargs=(_cache_environ(),),
    )
    _pool_workers = workers
    return _pool


def shutdown_pool(wait: bool = True) -> None:
    """Tear down the shared executor (atexit, tests, broken-pool reset).

    ``wait=False`` abandons it instead — used after a dispatch timeout,
    when joining a hung worker would wedge the parent too.  Outstanding
    futures are cancelled; an already-hung worker process is left to the
    OS."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=wait, cancel_futures=not wait)
        _pool = None
        _pool_workers = 0


def recycle_if_broken() -> bool:
    """Replace the warm pool if a dead worker has poisoned it.

    A :class:`BrokenProcessPool` marks the executor permanently broken;
    every later submit fails instantly.  Rather than leaving the *next*
    batch to discover that, callers in failure-handling paths (the batch
    dispatcher below, the job-service supervisor after a worker death)
    recycle eagerly: tear the broken executor down and warm a fresh one
    with the same worker count.  Returns True when a recycle happened;
    counted in :data:`dispatch_stats` (and from there exported by
    ``obsv.collect_process``)."""
    global _pool
    if _pool is None or not getattr(_pool, "_broken", False):
        return False
    workers = _pool_workers
    shutdown_pool()
    get_pool(workers)
    dispatch_stats.pool_recycles += 1
    return True


atexit.register(shutdown_pool)


# -- dispatch robustness ----------------------------------------------------


ENV_TASK_TIMEOUT = "REPRO_TASK_TIMEOUT"
DEFAULT_TASK_TIMEOUT = 600.0
"""Per-chunk dispatch timeout (seconds).  Generous: a chunk is tens of
simulation runs; the timeout exists to catch a *wedged* worker (deadlocked
fork, livelocked import), not a slow one."""


@dataclass
class DispatchStats:
    """Pool-dispatch incidents, surfaced in the figures CLI run report."""

    timeouts: int = 0
    """Chunks whose worker missed the dispatch timeout."""
    retried_tasks: int = 0
    """Tasks re-run serially in-parent after a timeout."""
    broken_pools: int = 0
    """Whole-batch serial fallbacks after a dead worker."""
    pool_recycles: int = 0
    """Broken executors proactively replaced with warm ones."""
    backoff_seconds: float = 0.0
    """Total time spent backing off before dispatch retries."""

    def reset(self) -> None:
        self.timeouts = 0
        self.retried_tasks = 0
        self.broken_pools = 0
        self.pool_recycles = 0
        self.backoff_seconds = 0.0

    def summary(self) -> str:
        return (
            f"{self.timeouts} timeouts, {self.retried_tasks} tasks retried, "
            f"{self.broken_pools} pool fallbacks, "
            f"{self.pool_recycles} pool recycles"
        )


dispatch_stats = DispatchStats()
"""Process-wide dispatch accounting (reset via ``dispatch_stats.reset()``)."""


DISPATCH_RETRY_POLICY = RetryPolicy(
    max_attempts=2, base_delay=0.2, max_delay=5.0, jitter=0.25
)
"""Backoff applied before re-running stranded or pool-broken tasks.

The delay is deterministic (jitter is a pure function of the batch
fingerprint and attempt number — see :meth:`RetryPolicy.delay`) so a
retried batch is still reproducible.  Replace the module-level value to
tune; tests swap in a zero-delay policy."""


def _backoff(attempt: int, token: str) -> None:
    """Sleep the policy's delay before a dispatch retry (recorded in
    :data:`dispatch_stats` so run reports show time lost to backoff)."""
    delay = DISPATCH_RETRY_POLICY.delay(attempt, token=token)
    if delay > 0:
        dispatch_stats.backoff_seconds += delay
        time.sleep(delay)


def _resolve_timeout(task_timeout: Optional[float]) -> Optional[float]:
    """Effective per-chunk timeout: explicit arg, else ``$REPRO_TASK_TIMEOUT``,
    else the default; ``0`` or negative disables the timeout entirely."""
    if task_timeout is None:
        raw = os.environ.get(ENV_TASK_TIMEOUT, "").strip()
        task_timeout = float(raw) if raw else DEFAULT_TASK_TIMEOUT
    return task_timeout if task_timeout > 0 else None


# -- the engine ------------------------------------------------------------


def resolve_workers(n_tasks: int, max_workers: Optional[int] = None) -> int:
    """Effective worker count: ``min(tasks, max_workers or cpu_count)``."""
    limit = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, min(n_tasks, limit))


def _chunked(items: Sequence[Any], n_chunks: int) -> List[List[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, near-even runs."""
    n_chunks = max(1, min(n_chunks, len(items)))
    size, extra = divmod(len(items), n_chunks)
    chunks: List[List[Any]] = []
    start = 0
    for c in range(n_chunks):
        end = start + size + (1 if c < extra else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    parallel: bool = True,
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
) -> List[Any]:
    """Run ``fn(task)`` for every task; results come back in task order.

    With ``parallel=True`` and more than one effective worker the tasks
    run across the shared warm :class:`ProcessPoolExecutor` (chunked: each
    worker receives one contiguous slice of the batch); otherwise they run
    serially in this process.  Either way every task is attempted, and if
    any failed a :class:`ParallelExecutionError` aggregating all failures
    is raised after the batch completes.

    A chunk whose worker exceeds ``task_timeout`` seconds (default
    :data:`DEFAULT_TASK_TIMEOUT`, override via ``$REPRO_TASK_TIMEOUT``;
    ``<= 0`` disables) is presumed wedged: the executor is abandoned
    without joining it and the stranded tasks are retried exactly once,
    serially, in the parent.  Incidents are counted in
    :data:`dispatch_stats` for the run report.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    workers = resolve_workers(len(tasks), max_workers)
    results: List[Any] = [None] * len(tasks)
    failures: List[TaskFailure] = []

    if not parallel or workers <= 1:
        outcomes = (_run_one(fn, i, task) for i, task in enumerate(tasks))
    else:
        chunks = _chunked(list(enumerate(tasks)), workers)
        timeout = _resolve_timeout(task_timeout)
        try:
            pool = get_pool(workers)
            futures = [
                pool.submit(_run_chunk, fn, chunk) for chunk in chunks
            ]
            outcomes = []
            stranded: List[Tuple[int, Any]] = []
            parent_stats = runcache.get_cache().stats
            for future, chunk in zip(futures, chunks):
                try:
                    chunk_outcomes, chunk_stats = future.result(timeout=timeout)
                except FutureTimeoutError:
                    dispatch_stats.timeouts += 1
                    stranded.extend(chunk)
                    continue
                outcomes.extend(chunk_outcomes)
                parent_stats.merge(chunk_stats)
            if stranded:
                # The worker is wedged, not slow: joining it would wedge
                # us too.  Abandon the executor (no join), back off per
                # the dispatch retry policy (the pool's workers may be
                # contending for whatever starved the first attempt),
                # then run the stranded tasks once, serially, where they
                # cannot hang silently.
                shutdown_pool(wait=False)
                dispatch_stats.retried_tasks += len(stranded)
                _backoff(1, task_digest(tuple(i for i, _ in stranded)))
                outcomes.extend(
                    _run_one(fn, index, task) for index, task in stranded
                )
        except BrokenProcessPool:
            # A dead worker (OOM-kill etc.) poisons the executor; recycle
            # it (warm replacement for the next batch), back off, and run
            # this batch once in-process rather than failing.
            dispatch_stats.broken_pools += 1
            if not recycle_if_broken():
                shutdown_pool()
            _backoff(1, task_digest(len(tasks)))
            outcomes = (_run_one(fn, i, task) for i, task in enumerate(tasks))

    for index, value, failure in outcomes:
        if failure is not None:
            failures.append(failure)
        else:
            results[index] = value

    if failures:
        raise ParallelExecutionError(failures)
    return results
