"""Process-pool execution of multi-seed sweeps and figure batches.

Seeds of a :func:`repro.experiments.sweep.run_repeated` sweep and the
per-seed runs behind :func:`repro.experiments.sweep.average_figure` are
embarrassingly parallel: each builds its own :class:`Server`, runs it, and
reduces to a small numeric summary.  This module fans those runs out over a
:class:`concurrent.futures.ProcessPoolExecutor`.

Design constraints, in order of importance:

* **Bit-identical results.**  Workers return plain picklable summaries
  (floats keyed by stream/metric, or a :class:`FigureResult`), assembled on
  the parent in task order.  The serial path runs the *same* task functions
  in the same order, so ``parallel=True`` and ``parallel=False`` produce
  identical objects — :mod:`tests.test_parallel` locks this.
* **Picklability.**  Task descriptors are frozen dataclasses holding only
  module-level callables and primitives; the worker entry points
  (:func:`seed_metrics`, :func:`run_figure`, :func:`_run_one`) are
  module-level functions.
* **Graceful degradation.**  ``parallel=False`` (the default everywhere),
  ``max_workers<=1``, or a single-CPU host all fall back to a plain loop in
  the calling process — no pool, no forked interpreters.
* **Per-task error capture.**  A failing task does not abort its siblings;
  every task runs to completion and failures are re-raised together as a
  :class:`ParallelExecutionError` carrying per-task tracebacks.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

METRIC_FIELDS = (
    "ipc",
    "llc_hit_rate",
    "llc_miss_rate",
    "mlc_miss_rate",
    "dca_miss_rate",
    "throughput",
    "avg_latency",
    "p99_latency",
)
"""Numeric :class:`StreamAggregate` fields collected per seed (the columns
of a :class:`repro.experiments.sweep.MultiSeedResult`)."""


# -- task descriptors (picklable) -----------------------------------------


@dataclass(frozen=True)
class SeedTask:
    """One seed of a ``run_repeated`` sweep.

    ``build`` must be a module-level callable (lambdas and closures do not
    pickle); the figure runners and benchmark scenarios already satisfy
    this.
    """

    build: Callable[[int], Any]
    epochs: int
    warmup: int
    seed: int


@dataclass(frozen=True)
class FigureTask:
    """One seed of a figure-runner invocation.

    ``kwargs`` is a tuple of ``(name, value)`` pairs rather than a dict so
    the descriptor stays hashable/frozen.
    """

    runner: Callable[..., Any]
    seed: int
    kwargs: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class TaskFailure:
    """A captured per-task error (exception text + formatted traceback)."""

    index: int
    task: Any
    error: str
    traceback: str


class ParallelExecutionError(RuntimeError):
    """One or more tasks failed; ``failures`` holds every captured error."""

    def __init__(self, failures: Sequence[TaskFailure]):
        self.failures = tuple(failures)
        lines = [f"{len(self.failures)} task(s) failed:"]
        for failure in self.failures:
            lines.append(f"  task[{failure.index}]: {failure.error}")
        super().__init__("\n".join(lines))


# -- worker entry points ---------------------------------------------------


def seed_metrics(task: SeedTask) -> Tuple[float, Dict[str, Dict[str, float]]]:
    """Run one seed and reduce it to a picklable numeric summary.

    Returns ``(mem_total_bw, {stream: {metric: value}})`` over
    :data:`METRIC_FIELDS`.  Both the serial and the parallel path of
    ``run_repeated`` go through this function, which is what guarantees
    identical :class:`MultiSeedResult` objects either way.
    """
    server = task.build(task.seed)
    result = server.run(epochs=task.epochs, warmup=task.warmup)
    streams: Dict[str, Dict[str, float]] = {}
    for name in result.stream_names():
        aggregate = result.aggregate(name)
        streams[name] = {
            metric: getattr(aggregate, metric) for metric in METRIC_FIELDS
        }
    return result.mem_total_bw, streams


def run_figure(task: FigureTask) -> Any:
    """Invoke a figure runner for one seed (worker entry point)."""
    return task.runner(seed=task.seed, **dict(task.kwargs))


def _run_one(
    fn: Callable[[Any], Any], index: int, task: Any
) -> Tuple[int, Any, Optional[TaskFailure]]:
    """Run one task, capturing any exception instead of raising.

    Capturing on the worker side keeps a single bad seed from poisoning
    the pool (an unpicklable exception would otherwise break the executor)
    and preserves the worker-side traceback verbatim.
    """
    try:
        return index, fn(task), None
    except Exception as exc:  # noqa: BLE001 - reported via TaskFailure
        return index, None, TaskFailure(
            index=index,
            task=task,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
        )


# -- the engine ------------------------------------------------------------


def resolve_workers(n_tasks: int, max_workers: Optional[int] = None) -> int:
    """Effective worker count: ``min(tasks, max_workers or cpu_count)``."""
    limit = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, min(n_tasks, limit))


def run_tasks(
    fn: Callable[[Any], Any],
    tasks: Sequence[Any],
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> List[Any]:
    """Run ``fn(task)`` for every task; results come back in task order.

    With ``parallel=True`` and more than one effective worker the tasks run
    across a :class:`ProcessPoolExecutor`; otherwise they run serially in
    this process.  Either way every task is attempted, and if any failed a
    :class:`ParallelExecutionError` aggregating all failures is raised
    after the batch completes.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    workers = resolve_workers(len(tasks), max_workers)
    results: List[Any] = [None] * len(tasks)
    failures: List[TaskFailure] = []

    if not parallel or workers <= 1:
        outcomes = (_run_one(fn, i, task) for i, task in enumerate(tasks))
    else:
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = [
                pool.submit(_run_one, fn, i, task)
                for i, task in enumerate(tasks)
            ]
            outcomes = [future.result() for future in futures]
        finally:
            pool.shutdown()

    for index, value, failure in outcomes:
        if failure is not None:
            failures.append(failure)
        else:
            results[index] = value

    if failures:
        raise ParallelExecutionError(failures)
    return results
