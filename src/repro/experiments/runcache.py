"""Content-addressed run cache.

The figure suite re-executes identical ``(config, seed)`` simulations many
times — across figures (every motivation figure shares baselines) and even
within one (``fig15`` computes the Default-model baseline three times).
This module makes a completed run addressable by *what it computes*: a
SHA-256 fingerprint over the canonicalized configuration (workloads, CAT
masks, policy parameters), the seed, the epoch/warm-up counts, and a
code-version salt derived from the ``repro`` source tree.  Any change to
any of those — including editing simulator source — changes the key, so a
hit is always safe to reuse and invalidation is automatic.

Entries are pickles under ``.repro-cache/`` (override with
``--cache-dir`` / ``$REPRO_CACHE_DIR``), wrapped with a schema version and
a key echo; an entry that is corrupt, truncated, version-skewed, or fails
wrapper validation after unpickling is treated as a miss **and deleted**,
so one bad file costs one recompute instead of an error on every future
lookup.  ``--no-cache`` / ``$REPRO_CACHE_DISABLE=1`` turns
the layer off entirely, in which case every call is a plain re-run.

Usage::

    from repro.experiments import runcache

    cache = runcache.get_cache()
    value = cache.memo(("fig15_baseline", epochs, warmup, seed), compute)
    print(cache.stats)   # CacheStats(hits=2, misses=1, stores=1, errors=0)

Keys are built with :func:`fingerprint`, which canonicalizes nested
dataclasses, dicts, tuples, and callables (module + qualname + a hash of
the code object, so editing a builder function invalidates its runs).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import types
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Optional

from repro.obsv.metrics import merge_counts

SCHEMA_VERSION = 5
"""Bumped to 5 when tenancy became first-class: every workload now
carries a :class:`~repro.tenancy.TenantSpec` instead of a bare priority
string, so workload fingerprints (serialized via ``vars``) changed shape
— ``priority`` became a derived property and ``tenant`` (the frozen spec,
with class, core budget, CLOS policy, and SLO targets) entered the
canonical payload.  v4 entries, keyed on the old shape, are evicted on
first lookup.  (v4 added the sampling plan to the key payloads; v3 the
platform fingerprint.)"""
DEFAULT_CACHE_DIR = ".repro-cache"
ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE_DISABLE = "REPRO_CACHE_DISABLE"
ENV_FAULT_INTENSITY = "REPRO_FAULT_INTENSITY"
"""Mirrors :data:`repro.faults.plan.ENV_FAULT_INTENSITY` (kept literal here
to keep this low-level module import-free of the fault layer).  Folded into
every fingerprint: results computed under env-selected fault injection can
never alias fault-free ones."""

_code_salt: Optional[str] = None


def code_salt() -> str:
    """Hash of the ``repro`` source tree (the code-version salt).

    Any edit to any ``repro`` module yields a different salt, so cached
    results can never outlive the code that produced them.  Computed once
    per process.
    """
    global _code_salt
    if _code_salt is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_salt = digest.hexdigest()
    return _code_salt


def _hash_code(digest, code: types.CodeType) -> None:
    """Feed a code object into ``digest`` without process-specific parts.

    ``repr(co_consts)`` is not usable directly: nested code objects (inner
    functions, comprehensions) repr with their memory address, which
    changes every interpreter run.  Recurse into them instead."""
    digest.update(code.co_code)
    digest.update(repr(code.co_names).encode())
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            _hash_code(digest, const)
        else:
            digest.update(repr(const).encode())


def callable_token(fn: Callable) -> list:
    """Stable identity for a callable: module, qualname, and a hash of its
    code object, so editing the function's logic invalidates keys built
    from it even when the function lives outside the ``repro`` tree."""
    explicit = getattr(fn, "__cache_token__", None)
    if explicit is not None:
        return ["callable", *explicit]
    token = ["callable", getattr(fn, "__module__", "?"),
             getattr(fn, "__qualname__", repr(fn))]
    code = getattr(fn, "__code__", None)
    if code is not None:
        digest = hashlib.sha256()
        _hash_code(digest, code)
        token.append(digest.hexdigest()[:16])
    return token


def canonical(obj: Any) -> Any:
    """Reduce ``obj`` to a deterministic JSON-serializable form.

    Handles the config vocabulary of this repo: dataclasses (policy
    objects), plain config objects (workloads — type name + public
    attributes), mappings with sorted keys, sequences, sets, callables
    (via :func:`callable_token`), and scalars.  Anything unrecognized
    falls back to ``repr`` — deterministic for every config type used
    here, and at worst it only widens the key (a spurious miss, never a
    wrong hit)."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if is_dataclass(obj) and not isinstance(obj, type):
        return [
            type(obj).__qualname__,
            {f.name: canonical(getattr(obj, f.name)) for f in fields(obj)},
        ]
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(repr(canonical(v)) for v in obj)
    if callable(obj):
        return callable_token(obj)
    if hasattr(obj, "__dict__"):
        public = {
            k: canonical(v)
            for k, v in sorted(vars(obj).items())
            if not k.startswith("_")
        }
        return [type(obj).__qualname__, public]
    return repr(obj)


def fingerprint(payload: Any) -> str:
    """SHA-256 key for ``payload``: canonical JSON + schema + code salt +
    the ambient fault-injection selection (if any)."""
    blob = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "salt": code_salt(),
            "faults": os.environ.get(ENV_FAULT_INTENSITY, ""),
            "payload": canonical(payload),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting, surfaced in the figures CLI run report."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0

    def merge(self, other) -> None:
        """Fold another stats carrier in (a worker's delta dict or another
        ``CacheStats``); shared helper with the chaos sweep's aggregation."""
        merge_counts(self, other)

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.errors} errors"
        )


MISS = object()
"""Sentinel returned by :meth:`RunCache.get` on a miss (distinguishes a
miss from a legitimately cached ``None``)."""


@dataclass
class RunCache:
    """Content-addressed pickle store under ``root``.

    ``enabled=False`` turns every lookup into a miss and every store into
    a no-op, so call sites never need their own cache-off branches.
    """

    root: Path = field(default_factory=lambda: Path(DEFAULT_CACHE_DIR))
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """Return the cached value for ``key``, or the ``MISS`` sentinel.

        An entry that cannot be unpickled, or whose wrapper fails
        validation (wrong shape, schema skew, key echo mismatch, missing
        value) counts as a miss, bumps ``stats.errors``, and is deleted on
        the spot — a landed bit-flip costs one recompute, not a permanent
        error source."""
        if not self.enabled:
            self.stats.misses += 1
            return MISS
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                wrapper = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except Exception:
            # Truncated write, unreadable pickle, unpicklable payload.
            self._evict(path)
            self.stats.errors += 1
            self.stats.misses += 1
            return MISS
        if (
            not isinstance(wrapper, dict)
            or wrapper.get("schema") != SCHEMA_VERSION
            or wrapper.get("key") != key
            or "value" not in wrapper
        ):
            self._evict(path)
            self.stats.errors += 1
            self.stats.misses += 1
            return MISS
        self.stats.hits += 1
        return wrapper["value"]

    @staticmethod
    def _evict(path: Path) -> None:
        """Best-effort removal of a bad entry (never fails the run)."""
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, value: Any) -> None:
        if not self.enabled:
            return
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            with tmp.open("wb") as fh:
                pickle.dump(
                    {"schema": SCHEMA_VERSION, "key": key, "value": value},
                    fh,
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            os.replace(tmp, path)  # atomic: readers never see partial files
            self.stats.stores += 1
        except OSError:
            # A read-only or full cache dir must never fail the run.
            self.stats.errors += 1

    def memo(self, payload: Any, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``payload``, computing on miss."""
        key = fingerprint(payload)
        value = self.get(key)
        if value is not MISS:
            return value
        value = compute()
        self.put(key, value)
        return value


_cache: Optional[RunCache] = None


def get_cache() -> RunCache:
    """The process-wide cache, configured from the environment on first
    use (workers in a process pool inherit the parent's settings through
    ``REPRO_CACHE_DIR`` / ``REPRO_CACHE_DISABLE``)."""
    global _cache
    if _cache is None:
        root = Path(os.environ.get(ENV_CACHE_DIR, DEFAULT_CACHE_DIR))
        disabled = os.environ.get(ENV_CACHE_DISABLE, "") not in ("", "0")
        _cache = RunCache(root=root, enabled=not disabled)
    return _cache


def configure(
    cache_dir: Optional[str] = None, enabled: Optional[bool] = None
) -> RunCache:
    """Reconfigure the process-wide cache (the figures CLI calls this for
    ``--cache-dir`` / ``--no-cache``) and export the settings so pool
    workers pick them up."""
    cache = get_cache()
    if cache_dir is not None:
        cache.root = Path(cache_dir)
        os.environ[ENV_CACHE_DIR] = str(cache_dir)
    if enabled is not None:
        cache.enabled = enabled
        os.environ[ENV_CACHE_DISABLE] = "" if enabled else "1"
    return cache


def set_cache(cache: Optional[RunCache]) -> None:
    """Swap the process-wide cache (tests use this for isolation)."""
    global _cache
    _cache = cache


@dataclass
class CachedServer:
    """Stand-in for :class:`~repro.experiments.harness.Server` on a cached
    ``run_setup`` hit.

    A real ``Server`` holds live generators and cannot pickle; the figure
    modules only read ``epoch_cycles`` from ``run.server``, so a cached
    :class:`~repro.experiments.harness.RunResult` carries this stub
    instead.  Any other attribute access raises, which keeps accidental
    dependencies on live-server state from silently reading garbage."""

    epoch_cycles: int


def _normalize_platform(kwargs: dict) -> dict:
    """Key-canonical view of a runner's kwargs.

    A ``platform`` given as ``None``, as a preset name, or as the resolved
    :class:`~repro.platform.PlatformSpec` object must address the same
    cache entry, so the kwarg is replaced by the resolved spec's
    fingerprint — and dropped entirely when it resolves to the default
    platform, keeping keys identical to a call that never passed it."""
    if "platform" not in kwargs:
        return kwargs
    from repro.platform import DEFAULT_PLATFORM, get_platform

    normalized = dict(kwargs)
    spec = get_platform(normalized.pop("platform"))
    if spec != DEFAULT_PLATFORM:
        normalized["platform"] = spec.fingerprint()
    return normalized


class CachedFigure:
    """Picklable cache-through wrapper for a registry figure runner.

    Stores the runner's ``(module, qualname)`` and resolves it lazily, so
    the wrapper survives a trip through a process pool.  Calls are
    memoized on the figure id, the call kwargs, and the underlying
    runner's code identity (plus, as always, the global code salt)."""

    __slots__ = ("figure_id", "module", "qualname", "__dict__")

    def __init__(self, figure_id: str, runner: Callable[..., Any]):
        self.figure_id = figure_id
        self.module = runner.__module__
        self.qualname = runner.__qualname__
        # Deterministic identity for key-building (see callable_token).
        self.__cache_token__ = ("figure", figure_id, self.module, self.qualname)
        self.__name__ = getattr(runner, "__name__", figure_id)
        self.__doc__ = runner.__doc__

    def _resolve(self) -> Callable[..., Any]:
        import importlib

        module = importlib.import_module(self.module)
        fn = module
        for part in self.qualname.split("."):
            fn = getattr(fn, part)
        return fn

    _NON_SEMANTIC_KWARGS = frozenset({"checkpoint_dir", "checkpoint_every"})
    """Kwargs that change how a result is computed, never what it is —
    excluded from the key so a checkpointed run and a straight-through
    run of the same figure address the same cache entry."""

    def _payload(self, runner: Callable[..., Any], kwargs: dict) -> tuple:
        kwargs = {
            name: value
            for name, value in kwargs.items()
            if name not in self._NON_SEMANTIC_KWARGS
        }
        return (
            "figure",
            self.figure_id,
            callable_token(runner),
            sorted(_normalize_platform(kwargs).items()),
        )

    def cache_key(self, **kwargs: Any) -> str:
        """The content key a call with these kwargs is memoized under.

        The job service uses this as the dedup identity of a submitted
        figure job, so a service job and a CLI run of the same figure
        share one cache entry."""
        return fingerprint(self._payload(self._resolve(), kwargs))

    def __call__(self, **kwargs: Any) -> Any:
        runner = self._resolve()
        payload = self._payload(runner, kwargs)
        return get_cache().memo(payload, lambda: runner(**kwargs))

    def __getstate__(self):
        return (self.figure_id, self.module, self.qualname)

    def __setstate__(self, state):
        figure_id, module, qualname = state
        self.figure_id = figure_id
        self.module = module
        self.qualname = qualname
        self.__cache_token__ = ("figure", figure_id, module, qualname)
        self.__name__ = qualname.rsplit(".", 1)[-1]
        self.__doc__ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CachedFigure {self.figure_id} -> {self.module}.{self.qualname}>"

