"""Fig. 5 — impact of storage block size and DCA on storage-I/O throughput,
memory bandwidth, and DMA leak.

Expected shape (paper §3.2): throughput grows with block size and
saturates near the 128 KB-equivalent block, *independently of DCA*; with
DCA on, large blocks leak heavily from the DCA ways (unconsumed evictions)
and memory bandwidth grows despite DCA; with DCA off, memory bandwidth is
simply twice the throughput (write + read back).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.figures.base import run_setup
from repro.experiments.report import FigureResult
from repro.platform import PlatformSpec
from repro.telemetry.pcm import PRIORITY_LOW
from repro.workloads.fio import FioWorkload

KB = 1024
MB = 1024 * KB

BLOCK_SIZES: Tuple[int, ...] = (
    4 * KB,
    16 * KB,
    32 * KB,
    128 * KB,
    512 * KB,
    2 * MB,
)


def run(
    epochs: int = 6,
    seed: int = 0xA4,
    block_sizes=BLOCK_SIZES,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Fig. 5",
        title="Storage throughput, memory bandwidth, and DMA leak vs block size",
        columns=[
            "block",
            "tput_dca_on",
            "tput_dca_off",
            "membw_dca_on",
            "membw_dca_off",
            "leak_frac_on",
            "dca_miss_on",
        ],
    )
    for block_bytes in block_sizes:
        row = {"block": f"{block_bytes // KB}KB"}
        for dca_on in (True, False):
            run_result = run_setup(
                [
                    FioWorkload(
                        name="fio",
                        block_bytes=block_bytes,
                        cores=4,
                        io_depth=32,
                        priority=PRIORITY_LOW,
                    )
                ],
                dca_off=() if dca_on else ("fio",),
                epochs=epochs,
                seed=seed,
                platform=platform,
            )
            fio = run_result.aggregate("fio")
            suffix = "on" if dca_on else "off"
            row[f"tput_dca_{suffix}"] = fio.throughput
            row[f"membw_dca_{suffix}"] = run_result.mem_total_bw
            if dca_on:
                window = run_result.window
                dma_writes = sum(
                    s.streams["fio"].counters.dma_writes for s in window
                )
                row["leak_frac_on"] = fio.dma_leaks / dma_writes if dma_writes else 0.0
                row["dca_miss_on"] = fio.dca_miss_rate
        result.add_row(**row)
    result.notes.append(
        "throughput is DCA-independent; leak fraction jumps past the saturation block size"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
