"""Fig. 11 — X-Mem IPC and LLC hit rate vs network packet size under the
Default, Isolate, and A4 schemes (§7.1, storage blocks fixed at 2 MB).

Expected shape: Default degrades the X-Mems as packets grow (DMA bloat);
Isolate is rigid and leaves cache-sensitive X-Mem 1 under-provisioned; A4
keeps X-Mem 1 (HPW) at a high, packet-size-independent hit rate while the
LPWs stay within acceptable ranges and X-Mem 3 is bypass-treated.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.report import FigureResult
from repro.experiments.scenarios import build_server, microbenchmark_workloads
from repro.platform import PlatformSpec, get_platform

MB = 1024 * 1024

PACKET_SIZES: Tuple[int, ...] = (64, 256, 1024, 1514)
SCHEMES: Tuple[str, ...] = ("default", "isolate", "a4")


def run(
    epochs: int = 20,
    warmup: int = 5,
    seed: int = 0xA4,
    packet_sizes=PACKET_SIZES,
    schemes=SCHEMES,
    platform: Optional[PlatformSpec] = None,
    sampling=None,
) -> FigureResult:
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 11",
        title="X-Mem IPC / LLC hit rate vs packet size (storage blocks 2MB)",
        columns=[
            "scheme",
            "pkt",
            "x1_ipc",
            "x1_hit",
            "x2_ipc",
            "x2_hit",
            "x3_ipc",
            "x3_hit",
        ],
    )
    for scheme in schemes:
        for packet_bytes in packet_sizes:
            server = build_server(
                microbenchmark_workloads(
                    packet_bytes=packet_bytes, platform=platform
                ),
                scheme=scheme,
                seed=seed,
                platform=platform,
            )
            run_result = server.run(
                epochs=epochs, warmup=warmup, sampling=sampling
            )
            row = {"scheme": scheme, "pkt": f"{packet_bytes}B"}
            for i in (1, 2, 3):
                agg = run_result.aggregate(f"xmem{i}")
                row[f"x{i}_ipc"] = agg.ipc
                row[f"x{i}_hit"] = agg.llc_hit_rate
            result.add_row(**row)
    result.notes.append(
        "A4 keeps X-Mem 1 (HPW) at stable high hit rates across packet sizes"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
