"""Fig. 11 — X-Mem IPC and LLC hit rate vs network packet size under the
Default, Isolate, and A4 schemes (§7.1, storage blocks fixed at 2 MB).

Expected shape: Default degrades the X-Mems as packets grow (DMA bloat);
Isolate is rigid and leaves cache-sensitive X-Mem 1 under-provisioned; A4
keeps X-Mem 1 (HPW) at a high, packet-size-independent hit rate while the
LPWs stay within acceptable ranges and X-Mem 3 is bypass-treated.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Tuple

from repro.experiments import runcache
from repro.experiments.figures.base import resumable_run
from repro.experiments.report import FigureResult
from repro.experiments.scenarios import build_server, microbenchmark_workloads
from repro.platform import PlatformSpec, get_platform

MB = 1024 * 1024

PACKET_SIZES: Tuple[int, ...] = (64, 256, 1024, 1514)
SCHEMES: Tuple[str, ...] = ("default", "isolate", "a4")


def _build_cell(scheme, packet_bytes, seed, platform):
    return build_server(
        microbenchmark_workloads(packet_bytes=packet_bytes, platform=platform),
        scheme=scheme,
        seed=seed,
        platform=platform,
    )


def run(
    epochs: int = 20,
    warmup: int = 5,
    seed: int = 0xA4,
    packet_sizes=PACKET_SIZES,
    schemes=SCHEMES,
    platform: Optional[PlatformSpec] = None,
    sampling=None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> FigureResult:
    """Each (scheme, packet size) cell runs through
    :func:`~repro.experiments.figures.base.resumable_run` under its own
    content key, so with a checkpoint directory configured (explicitly or
    via ``$REPRO_CHECKPOINT_DIR`` — the job service sets it per job) an
    interrupted figure resumes mid-grid *and* mid-cell.  Without one the
    grid runs exactly as before."""
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 11",
        title="X-Mem IPC / LLC hit rate vs packet size (storage blocks 2MB)",
        columns=[
            "scheme",
            "pkt",
            "x1_ipc",
            "x1_hit",
            "x2_ipc",
            "x2_hit",
            "x3_ipc",
            "x3_hit",
        ],
    )
    for scheme in schemes:
        for packet_bytes in packet_sizes:
            cell_key = runcache.fingerprint(
                (
                    "fig11_cell",
                    scheme,
                    packet_bytes,
                    epochs,
                    warmup,
                    seed,
                    platform.fingerprint(),
                    sampling,
                )
            )
            _, run_result = resumable_run(
                partial(_build_cell, scheme, packet_bytes, seed, platform),
                cell_key,
                epochs,
                warmup,
                sampling=sampling,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=checkpoint_every,
            )
            row = {"scheme": scheme, "pkt": f"{packet_bytes}B"}
            for i in (1, 2, 3):
                agg = run_result.aggregate(f"xmem{i}")
                row[f"x{i}_ipc"] = agg.ipc
                row[f"x{i}_hit"] = agg.llc_hit_rate
            result.add_row(**row)
    result.notes.append(
        "A4 keeps X-Mem 1 (HPW) at stable high hit rates across packet sizes"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
