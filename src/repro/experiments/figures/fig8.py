"""Fig. 8 — I/O-device-aware DCA disabling and trash-way allocation.

* **Fig. 8a** — selectively disabling DCA for the SSD only ([SSD-DCA off])
  removes the storage-driven latency hit on DPDK-T while leaving FIO's
  throughput untouched (O4);
* **Fig. 8b** — with the SSD's DCA off, FIO DMA-bloats into its CAT ways;
  shrinking those from way[2:5] down toward a single way cuts the LLC miss
  rate of an X-Mem sharing way[2:5] without costing FIO throughput (O5).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.figures.base import run_setup, way_label
from repro.experiments.report import FigureResult
from repro.platform import PlatformSpec, get_platform
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload
from repro.workloads.xmem import xmem

KB = 1024
MB = 1024 * KB

BLOCK_SIZES: Tuple[int, ...] = (32 * KB, 128 * KB, 512 * KB, 2 * MB)


def run_fig8a(
    epochs: int = 8,
    seed: int = 0xA4,
    block_sizes=BLOCK_SIZES,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Fig. 8a",
        title="[SSD-DCA off] vs [DCA on]: DPDK-T latency and FIO throughput",
        columns=[
            "block",
            "AL_on",
            "AL_ssdoff",
            "TL_on",
            "TL_ssdoff",
            "fio_on",
            "fio_ssdoff",
        ],
    )
    for block_bytes in block_sizes:
        row = {"block": f"{block_bytes // KB}KB"}
        for ssd_off in (False, True):
            run_result = run_setup(
                [
                    DpdkWorkload(
                        name="dpdk",
                        touch=True,
                        cores=4,
                        packet_bytes=1514,
                        priority=PRIORITY_HIGH,
                    ),
                    FioWorkload(
                        name="fio",
                        block_bytes=block_bytes,
                        cores=4,
                        io_depth=32,
                        priority=PRIORITY_LOW,
                    ),
                ],
                masks={"dpdk": (4, 5), "fio": (2, 3)},
                dca_off=("fio",) if ssd_off else (),
                epochs=epochs,
                seed=seed,
                platform=platform,
            )
            suffix = "ssdoff" if ssd_off else "on"
            dpdk = run_result.aggregate("dpdk")
            row[f"AL_{suffix}"] = dpdk.avg_latency
            row[f"TL_{suffix}"] = dpdk.p99_latency
            row[f"fio_{suffix}"] = run_result.aggregate("fio").throughput
        result.add_row(**row)
    result.notes.append(
        "SSD-DCA off restores DPDK-T latency at uncompromised FIO throughput"
    )
    return result


def run_fig8b(
    epochs: int = 8,
    seed: int = 0xA4,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 8b",
        title="X-Mem (way[2:5]) LLC miss rate as FIO shrinks from way[2:5] to way[2:2]",
        columns=["fio_ways", "xmem_miss", "fio_tput"],
    )
    for n in (5, 4, 3, 2):
        run_result = run_setup(
            [
                FioWorkload(
                    name="fio",
                    block_bytes=2 * MB,
                    cores=4,
                    io_depth=32,
                    priority=PRIORITY_LOW,
                ),
                xmem("xmem", 4.0, cores=2, priority=PRIORITY_HIGH,
                     platform=platform),
            ],
            masks={"fio": (2, n), "xmem": (2, 5)},
            dca_off=("fio",),
            epochs=epochs,
            seed=seed,
            platform=platform,
        )
        result.add_row(
            fio_ways=way_label(2, n),
            xmem_miss=run_result.aggregate("xmem").llc_miss_rate,
            fio_tput=run_result.aggregate("fio").throughput,
        )
    result.notes.append(
        "fewer FIO trash ways -> lower X-Mem miss rate, flat FIO throughput"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_fig8a().render())
    print(run_fig8b().render())
