"""Fig. 12 — network latency and throughput vs storage block size under the
Default, Isolate, and A4 schemes (§7.1, packets fixed at 1514 B).

Expected shape: Default and Isolate degrade as blocks grow (storage-driven
DCA/inclusive-way contention), Isolate worse; A4 detects FIO as a storage
antagonist once blocks are large enough to leak, disables its DCA, and
holds network latency near the stand-alone level.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.report import FigureResult
from repro.experiments.scenarios import build_server, microbenchmark_workloads
from repro.platform import PlatformSpec, get_platform

KB = 1024
MB = 1024 * KB

BLOCK_SIZES: Tuple[int, ...] = (32 * KB, 128 * KB, 512 * KB, 2 * MB)
SCHEMES: Tuple[str, ...] = ("default", "isolate", "a4")


def run(
    epochs: int = 20,
    warmup: int = 5,
    seed: int = 0xA4,
    block_sizes=BLOCK_SIZES,
    schemes=SCHEMES,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 12",
        title="DPDK-T latency/throughput vs storage block size (packets 1514B)",
        columns=["scheme", "block", "avg_lat", "p99_lat", "net_tput", "fio_tput"],
    )
    for scheme in schemes:
        for block_bytes in block_sizes:
            server = build_server(
                microbenchmark_workloads(
                    packet_bytes=1514,
                    block_bytes=block_bytes,
                    platform=platform,
                ),
                scheme=scheme,
                seed=seed,
                platform=platform,
            )
            run_result = server.run(epochs=epochs, warmup=warmup)
            dpdk = run_result.aggregate("dpdk-t")
            result.add_row(
                scheme=scheme,
                block=f"{block_bytes // KB}KB",
                avg_lat=dpdk.avg_latency,
                p99_lat=dpdk.p99_latency,
                net_tput=dpdk.throughput,
                fio_tput=run_result.aggregate("fio").throughput,
            )
    result.notes.append("A4 holds network latency flat across block sizes")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
