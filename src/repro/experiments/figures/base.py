"""Shared machinery for the figure runners.

The motivation experiments (Figs. 3–8) all follow one template: build a
small server, pin workloads to way ranges with CAT, optionally flip DCA off
for some devices, run, and read aggregates.  :func:`run_setup` packages
that.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro import obsv
from repro.experiments import runcache
from repro.experiments.errors import WorkloadConfigError
from repro.experiments.harness import RunResult, Server
from repro.platform import PlatformSpec, get_platform
from repro.workloads.base import Workload

DEFAULT_EPOCHS = 8
DEFAULT_WARMUP = 2

ENV_CHECKPOINT_DIR = "REPRO_CHECKPOINT_DIR"
"""Ambient checkpoint directory (the CLI's ``--checkpoint-dir`` exports
it so process-pool workers inherit the setting; the job-service worker
exports its per-job namespace); an explicit ``checkpoint_dir`` argument
always wins."""


def resumable_run(
    build: Callable[[], Server],
    run_key: str,
    epochs: int,
    warmup: int,
    sampling=None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> Tuple[Server, RunResult]:
    """Run ``build()``'s server to ``epochs``, checkpointing and resuming
    under ``run_key`` when a checkpoint directory is configured.

    This is the restore-and-stitch core shared by :func:`run_setup` and
    the per-cell figure runners (``fig11``): with ``checkpoint_dir`` (or
    ``$REPRO_CHECKPOINT_DIR``) set, the run snapshots every
    ``checkpoint_every`` epochs (default: quarter-run cadence), and a
    rerun with the same ``run_key`` restores the newest snapshot below
    ``epochs``, simulates only the remaining epochs, and stitches the
    restored PCM history back onto the fresh segment — the returned
    :class:`RunResult` is bit-identical to an uninterrupted run.  With no
    directory configured nothing changes: ``build()`` then one plain
    ``server.run``, zero extra work.

    Returns ``(server, result)`` — callers need the server for
    ``epoch_cycles`` / aggregates.
    """
    if checkpoint_dir is None:
        checkpoint_dir = os.environ.get(ENV_CHECKPOINT_DIR) or None
    store = None
    if checkpoint_dir is not None:
        from repro.sim.checkpoint import CheckpointStore

        store = CheckpointStore(checkpoint_dir)
        if checkpoint_every is None:
            checkpoint_every = max(1, epochs // 4)
    server = None
    done = 0
    if store is not None:
        from repro.sim import checkpoint as ckpt

        state = store.latest(run_key, max_epoch=epochs - 1)
        if state is not None and 0 < state.epoch < epochs:
            server = ckpt.restore(state)
            done = state.epoch
            tracer = obsv.TRACER
            if tracer is not None:
                tracer.emit(
                    obsv.KIND_CHECKPOINT,
                    "restore",
                    {"run_key": run_key[:16], "epoch": done, "of": epochs},
                )
    if server is None:
        server = build()
    result = server.run(
        epochs=epochs - done,
        warmup=max(0, warmup - done),
        sampling=sampling,
        checkpoint_store=store,
        checkpoint_every=checkpoint_every or 0,
        run_key=run_key,
    )
    if done:
        # Stitch the pre-checkpoint epochs (restored inside the server's
        # PCM history) back onto this segment's samples so the result is
        # indistinguishable from an uninterrupted run.
        result = RunResult(
            samples=server.pcm.history[-epochs:],
            warmup=warmup,
            server=server,
            sampling=result.sampling,
        )
    return server, result


def run_setup(
    workloads: Iterable[Workload],
    masks: Optional[Dict[str, Tuple[int, int]]] = None,
    dca_off: Iterable[str] = (),
    epochs: int = DEFAULT_EPOCHS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0xA4,
    spare_cores: int = 2,
    platform: Optional[PlatformSpec] = None,
    sampling=None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> RunResult:
    """Run a manager-less setup with explicit CAT masks.

    ``masks`` maps workload name to an inclusive way range (the paper's
    way[m:n]); ``dca_off`` names workloads whose device port runs the
    non-allocating flow.  ``platform`` (a spec or preset name) selects the
    microarchitecture; its fingerprint is part of the cache key, so runs
    on different specs never alias.

    ``sampling`` (a :class:`~repro.sim.sampling.SamplingPlan`) switches
    the run to representative-interval mode; the plan — including its
    error budget — is folded into the cache key, so sampled and exact
    results never alias.  ``checkpoint_dir`` attaches a
    :class:`~repro.sim.checkpoint.CheckpointStore`: the run snapshots
    every ``checkpoint_every`` epochs (default: quarter-run cadence)
    under this setup's cache key, and an interrupted run restarted with
    the same configuration resumes from the newest checkpoint instead of
    simulating from cycle zero.  Checkpoint parameters do *not* enter the
    cache key — they change how a result is computed, never what it is.

    Completed runs are memoized in the content-addressed run cache keyed
    on the full canonical configuration; a warm hit rebuilds the
    :class:`RunResult` from stored epoch samples with a
    :class:`~repro.experiments.runcache.CachedServer` stub (no simulation
    work).  The key must be derived *before* the server mutates the
    workload objects (``setup`` assigns cores/ports).
    """
    workloads = list(workloads)
    dca_off = tuple(dca_off)
    platform = get_platform(platform)
    cache = runcache.get_cache()
    key = runcache.fingerprint(
        (
            "run_setup",
            workloads,
            masks or {},
            dca_off,
            epochs,
            warmup,
            seed,
            spare_cores,
            platform.fingerprint(),
            sampling,
        )
    )
    cached = cache.get(key)
    if cached is not runcache.MISS:
        return RunResult(
            samples=cached["samples"],
            warmup=cached["warmup"],
            server=runcache.CachedServer(epoch_cycles=cached["epoch_cycles"]),
            sampling=cached.get("sampling"),
        )
    def build() -> Server:
        cores = sum(w.num_cores for w in workloads) + spare_cores
        server = Server(cores=cores, seed=seed, platform=platform)
        for workload in workloads:
            server.add_workload(workload)
        for name, (first, last) in (masks or {}).items():
            server.cat.set_mask(server.clos_of(name), range(first, last + 1))
        for name in dca_off:
            workload = server.workload(name)
            if workload.port_id is None:
                raise WorkloadConfigError(
                    f"{name} has no I/O device to disable DCA for"
                )
            server.pcie.port(workload.port_id).disable_dca()
        return server

    server, result = resumable_run(
        build,
        key,
        epochs,
        warmup,
        sampling=sampling,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    cache.put(
        key,
        {
            "samples": result.samples,
            "warmup": result.warmup,
            "epoch_cycles": server.epoch_cycles,
            "sampling": result.sampling,
        },
    )
    return result


def way_label(first: int, last: int) -> str:
    """The paper's way[m:n] notation."""
    return f"way[{first}:{last}]"
