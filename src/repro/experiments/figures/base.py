"""Shared machinery for the figure runners.

The motivation experiments (Figs. 3–8) all follow one template: build a
small server, pin workloads to way ranges with CAT, optionally flip DCA off
for some devices, run, and read aggregates.  :func:`run_setup` packages
that.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.experiments.harness import RunResult, Server
from repro.workloads.base import Workload

DEFAULT_EPOCHS = 8
DEFAULT_WARMUP = 2


def run_setup(
    workloads: Iterable[Workload],
    masks: Optional[Dict[str, Tuple[int, int]]] = None,
    dca_off: Iterable[str] = (),
    epochs: int = DEFAULT_EPOCHS,
    warmup: int = DEFAULT_WARMUP,
    seed: int = 0xA4,
    spare_cores: int = 2,
) -> RunResult:
    """Run a manager-less setup with explicit CAT masks.

    ``masks`` maps workload name to an inclusive way range (the paper's
    way[m:n]); ``dca_off`` names workloads whose device port runs the
    non-allocating flow.
    """
    workloads = list(workloads)
    cores = sum(w.num_cores for w in workloads) + spare_cores
    server = Server(cores=cores, seed=seed)
    for workload in workloads:
        server.add_workload(workload)
    for name, (first, last) in (masks or {}).items():
        server.cat.set_mask(server.clos_of(name), range(first, last + 1))
    for name in dca_off:
        workload = server.workload(name)
        if workload.port_id is None:
            raise ValueError(f"{name} has no I/O device to disable DCA for")
        server.pcie.port(workload.port_id).disable_dca()
    return server.run(epochs=epochs, warmup=warmup)


def way_label(first: int, last: int) -> str:
    """The paper's way[m:n] notation."""
    return f"way[{first}:{last}]"
