"""Fig. 13 — real-world workloads under Default / Isolate / A4-a..d.

Per-workload performance (throughput for the multi-threaded I/O workloads,
IPC for the single-threaded ones — the paper's §7.2 metric choice, since
IPC is inflated by I/O spin loops) normalised to the Default model, plus
LLC hit rates.

Expected shape: Isolate generally below Default; A4-a marginal; A4-b the
big jump for Fastclick (I/O-buffer safeguarding); A4-c adds the FFSB-H DCA
disable; A4-d adds antagonist bypassing and lifts the cache-hungry non-I/O
HPWs.  Overall HPW performance ends ~1.5x Default without notable LPW
loss.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import RunResult
from repro.experiments.report import FigureResult, geometric_mean
from repro.experiments.scenarios import (
    build_server,
    hpw_heavy_workloads,
    lpw_heavy_workloads,
)
from repro.platform import PlatformSpec, get_platform
from repro.telemetry.pcm import PRIORITY_HIGH
from repro.workloads.base import METRIC_IPC, METRIC_THROUGHPUT, Workload

SCHEMES: Tuple[str, ...] = ("default", "isolate", "a4-a", "a4-b", "a4-c", "a4-d")


def performance_of(run: RunResult, workload: Workload) -> float:
    """The paper's §7.2 metric: throughput for multi-threaded I/O workloads,
    IPC for single-threaded ones."""
    agg = run.aggregate(workload.name)
    if workload.performance_metric == METRIC_IPC:
        return agg.ipc
    if workload.performance_metric == METRIC_THROUGHPUT:
        return agg.throughput
    # Latency-centric workloads (Fastclick/DPDK): throughput is the inverse
    # of latency per request under a fixed offered load.
    return agg.throughput


def _run_scenario(
    scenario_name: str,
    workload_factory,
    epochs: int,
    warmup: int,
    seed: int,
    schemes,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    platform = get_platform(platform)
    result = FigureResult(
        figure=scenario_name,
        title="relative performance (vs Default) and LLC hit rate per workload",
        columns=["scheme", "workload", "priority", "rel_perf", "llc_hit", "antagonist"],
    )
    baselines: Dict[str, float] = {}
    hpw_means: Dict[str, float] = {}
    for scheme in schemes:
        workloads = workload_factory(platform)
        server = build_server(
            workloads, scheme=scheme, seed=seed, platform=platform
        )
        run = server.run(epochs=epochs, warmup=warmup)
        antagonists = getattr(server.manager, "antagonists", {})
        rel_hpw: List[float] = []
        for workload in workloads:
            perf = performance_of(run, workload)
            if scheme == "default":
                baselines[workload.name] = perf
            base = baselines.get(workload.name) or 1e-12
            rel = perf / base
            if workload.priority == PRIORITY_HIGH:
                rel_hpw.append(rel)
            result.add_row(
                scheme=scheme,
                workload=workload.name,
                priority=workload.priority,
                rel_perf=rel,
                llc_hit=run.aggregate(workload.name).llc_hit_rate,
                antagonist="*" if workload.name in antagonists else "",
            )
        hpw_means[scheme] = geometric_mean(rel_hpw)
    for scheme, mean in hpw_means.items():
        result.notes.append(f"{scheme}: HPW geomean relative performance {mean:.3f}")
    return result


def run_hpw_heavy(
    epochs: int = 26,
    warmup: int = 6,
    seed: int = 0xA4,
    schemes=SCHEMES,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    """Fig. 13a (seven HPWs, four LPWs)."""
    result = _run_scenario(
        "Fig. 13a (HPW-heavy)", hpw_heavy_workloads, epochs, warmup, seed,
        schemes, platform=platform,
    )
    return result


def run_lpw_heavy(
    epochs: int = 26,
    warmup: int = 6,
    seed: int = 0xA4,
    schemes=SCHEMES,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    """Fig. 13b (four HPWs, seven LPWs)."""
    return _run_scenario(
        "Fig. 13b (LPW-heavy)", lpw_heavy_workloads, epochs, warmup, seed,
        schemes, platform=platform,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run_hpw_heavy().render())
    print(run_lpw_heavy().render())
