"""Fig. 15 — sensitivity of A4 to its thresholds and timing parameters,
on the HPW-heavy scenario, performance normalised to the Default model.

* (a) partitioning thresholds: T1 (HPW_LLC_HIT_THR) and T5
  (ANT_CACHE_MISS_THR).  Lower T1 favours HPWs; an aggressive T5 (80%)
  detects extra "antagonists" and sacrifices a legitimate non-I/O HPW;
* (b) leak-detection thresholds T2/T3/T4: raised far enough, FFSB-H stops
  being detected and performance turns suboptimal;
* (c) timing: longer stable intervals approach the oracle (never-revert)
  policy; the paper's 10 s reaches ~99% of it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.core.policy import A4Policy
from repro.experiments import runcache
from repro.experiments.figures.fig13 import performance_of
from repro.experiments.report import FigureResult, geometric_mean
from repro.experiments.scenarios import build_server, hpw_heavy_workloads
from repro.platform import PlatformSpec, get_platform
from repro.telemetry.pcm import PRIORITY_HIGH


def _hpw_relative_perf(
    policy: Optional[A4Policy],
    scheme: str,
    epochs: int,
    warmup: int,
    seed: int,
    baselines: Dict[str, float],
    platform: PlatformSpec,
    sampling=None,
) -> Dict[str, float]:
    """Run one configuration; return per-workload performance.

    Memoized in the run cache: the sensitivity sweeps re-run the same
    (policy, scheme, seed) corner across sub-figures."""
    return runcache.get_cache().memo(
        ("fig15_hpw_relative_perf", policy, scheme, epochs, warmup, seed,
         baselines, platform.fingerprint(), sampling),
        lambda: _hpw_relative_perf_compute(
            policy, scheme, epochs, warmup, seed, baselines, platform,
            sampling,
        ),
    )


def _hpw_relative_perf_compute(
    policy: Optional[A4Policy],
    scheme: str,
    epochs: int,
    warmup: int,
    seed: int,
    baselines: Dict[str, float],
    platform: PlatformSpec,
    sampling=None,
) -> Dict[str, float]:
    workloads = hpw_heavy_workloads(platform)
    server = build_server(
        workloads, scheme=scheme, seed=seed, policy=policy, platform=platform
    )
    run = server.run(epochs=epochs, warmup=warmup, sampling=sampling)
    perfs = {w.name: performance_of(run, w) for w in workloads}
    perfs["__hpw_geomean__"] = geometric_mean(
        [
            perfs[w.name] / (baselines.get(w.name) or 1e-12)
            for w in workloads
            if w.priority == PRIORITY_HIGH
        ]
        if baselines
        else [1.0]
    )
    perfs["__n_antagonists__"] = len(getattr(server.manager, "antagonists", {}))
    return perfs


def _default_baseline(
    epochs, warmup, seed, platform, sampling=None
) -> Dict[str, float]:
    """Default-model per-workload performance (shared across all three
    sensitivity panels — memoized so the suite computes it once)."""
    return runcache.get_cache().memo(
        ("fig15_default_baseline", epochs, warmup, seed,
         platform.fingerprint(), sampling),
        lambda: _default_baseline_compute(
            epochs, warmup, seed, platform, sampling
        ),
    )


def _default_baseline_compute(
    epochs, warmup, seed, platform, sampling=None
) -> Dict[str, float]:
    workloads = hpw_heavy_workloads(platform)
    server = build_server(
        workloads, scheme="default", seed=seed, platform=platform
    )
    run = server.run(epochs=epochs, warmup=warmup, sampling=sampling)
    return {w.name: performance_of(run, w) for w in workloads}


def run_partitioning(
    epochs: int = 24,
    warmup: int = 6,
    seed: int = 0xA4,
    t1_values=(0.10, 0.20, 0.40),
    t5_values=(0.80, 0.90, 0.95),
    platform: Optional[PlatformSpec] = None,
    sampling=None,
) -> FigureResult:
    """Fig. 15a: T1 and T5 sweeps."""
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 15a",
        title="A4 sensitivity to T1 (HPW_LLC_HIT) and T5 (ANT_CACHE_MISS)",
        columns=["param", "value", "hpw_rel_perf", "n_antagonists"],
    )
    baselines = _default_baseline(epochs, warmup, seed, platform, sampling)
    for t1 in t1_values:
        perfs = _hpw_relative_perf(
            A4Policy.for_platform(platform, hpw_llc_hit_thr=t1),
            "a4", epochs, warmup, seed, baselines, platform, sampling,
        )
        result.add_row(
            param="T1",
            value=t1,
            hpw_rel_perf=perfs["__hpw_geomean__"],
            n_antagonists=perfs["__n_antagonists__"],
        )
    for t5 in t5_values:
        perfs = _hpw_relative_perf(
            A4Policy.for_platform(platform, ant_cache_miss_thr=t5),
            "a4", epochs, warmup, seed, baselines, platform, sampling,
        )
        result.add_row(
            param="T5",
            value=t5,
            hpw_rel_perf=perfs["__hpw_geomean__"],
            n_antagonists=perfs["__n_antagonists__"],
        )
    result.notes.append("lower T1 favours HPWs; aggressive T5 detects more antagonists")
    return result


def run_leak_thresholds(
    epochs: int = 24,
    warmup: int = 6,
    seed: int = 0xA4,
    sweeps=None,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    """Fig. 15b: T2/T3/T4 sweeps — find where FFSB-H stops being detected."""
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 15b",
        title="A4 sensitivity to DMA-leak thresholds (T2/T3/T4)",
        columns=["param", "value", "hpw_rel_perf", "ffsbh_detected"],
    )
    baselines = _default_baseline(epochs, warmup, seed, platform)
    sweeps = sweeps or {
        "T2_dca_ms": ("dmalk_dca_ms_thr", (0.40, 0.70, 0.95)),
        "T3_io_tp": ("dmalk_io_tp_thr", (0.35, 0.60, 0.90)),
        "T4_llc_ms": ("dmalk_llc_ms_thr", (0.40, 0.70, 0.95)),
    }
    for label, (field_name, values) in sweeps.items():
        for value in values:
            policy = replace(
                A4Policy.for_platform(platform), **{field_name: value}
            )
            workloads = hpw_heavy_workloads(platform)
            server = build_server(
                workloads, scheme="a4", seed=seed, policy=policy,
                platform=platform,
            )
            run = server.run(epochs=epochs, warmup=warmup)
            perfs = {w.name: performance_of(run, w) for w in workloads}
            hpw_rel = geometric_mean(
                [
                    perfs[w.name] / (baselines.get(w.name) or 1e-12)
                    for w in workloads
                    if w.priority == PRIORITY_HIGH
                ]
            )
            detected = "ffsb-h" in getattr(server.manager, "antagonists", {})
            result.add_row(
                param=label,
                value=value,
                hpw_rel_perf=hpw_rel,
                ffsbh_detected="yes" if detected else "no",
            )
    result.notes.append(
        "once a threshold exceeds FFSB-H's signature the detection (and the win) is lost"
    )
    return result


def run_timing(
    epochs: int = 30,
    warmup: int = 6,
    seed: int = 0xA4,
    stable_intervals=(2, 5, 10, 20),
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    """Fig. 15c: stable-interval sweep vs the oracle (never revert)."""
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 15c",
        title="A4 periodic-revert overhead vs stable interval (oracle = never revert)",
        columns=["stable_interval", "hpw_rel_perf", "reverts"],
    )
    baselines = _default_baseline(epochs, warmup, seed, platform)

    def one(policy) -> Dict[str, float]:
        workloads = hpw_heavy_workloads(platform)
        server = build_server(
            workloads, scheme="a4", seed=seed, policy=policy,
            platform=platform,
        )
        run = server.run(epochs=epochs, warmup=warmup)
        perfs = {w.name: performance_of(run, w) for w in workloads}
        rel = geometric_mean(
            [
                perfs[w.name] / (baselines.get(w.name) or 1e-12)
                for w in workloads
                if w.priority == PRIORITY_HIGH
            ]
        )
        return {"rel": rel, "reverts": server.manager.reverts}

    oracle = one(A4Policy.for_platform(platform, stable_interval=10 ** 9))
    result.add_row(
        stable_interval="oracle", hpw_rel_perf=oracle["rel"], reverts=0
    )
    for interval in stable_intervals:
        out = one(A4Policy.for_platform(platform, stable_interval=interval))
        result.add_row(
            stable_interval=interval,
            hpw_rel_perf=out["rel"],
            reverts=out["reverts"],
        )
    result.notes.append("longer stable intervals approach the oracle policy")
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run_partitioning().render())
    print(run_leak_thresholds().render())
    print(run_timing().render())
