"""Fig. 14 — I/O latency breakdowns and system-wide metrics for the
HPW-heavy scenario.

* (a) Fastclick network latency split into Rx-ring queueing, packet-pointer
  access, and processing — A4 shortens all three vs Default;
* (b) FFSB-H storage latency (device residency vs host-side read/scan) —
  largely insensitive to the scheme, and reads are no slower with the SSD's
  DCA disabled (A4) than with it enabled (Default);
* (c) I/O throughput per scheme;
* (d) memory read/write bandwidth per scheme — A4 reduces read bandwidth
  via better caching of high-locality data despite higher I/O throughput.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.report import FigureResult
from repro.experiments.scenarios import build_server, hpw_heavy_workloads
from repro.platform import PlatformSpec, get_platform

SCHEMES: Tuple[str, ...] = ("default", "isolate", "a4-d")


def run(
    epochs: int = 26,
    warmup: int = 6,
    seed: int = 0xA4,
    schemes=SCHEMES,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 14",
        title="latency breakdown + I/O throughput + memory bandwidth (HPW-heavy)",
        columns=[
            "scheme",
            "fc_queueing",
            "fc_access",
            "fc_processing",
            "fc_tput",
            "ffsbh_lat",
            "ffsbh_tput",
            "mem_rd_bw",
            "mem_wr_bw",
        ],
    )
    for scheme in schemes:
        server = build_server(
            hpw_heavy_workloads(platform),
            scheme=scheme,
            seed=seed,
            platform=platform,
        )
        run_result = server.run(epochs=epochs, warmup=warmup)
        fastclick = run_result.aggregate("fastclick")
        ffsbh = run_result.aggregate("ffsb-h")
        components = fastclick.latency_components
        result.add_row(
            scheme=scheme,
            fc_queueing=components.get("queueing", 0.0),
            fc_access=components.get("access", 0.0),
            fc_processing=components.get("processing", 0.0),
            fc_tput=fastclick.throughput,
            ffsbh_lat=ffsbh.avg_latency,
            ffsbh_tput=ffsbh.throughput,
            mem_rd_bw=run_result.mem_read_bw,
            mem_wr_bw=run_result.mem_write_bw,
        )
    result.notes.append(
        "A4 shrinks all three Fastclick latency parts; FFSB-H is scheme-insensitive"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
