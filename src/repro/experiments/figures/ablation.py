"""Ablation studies for the design choices DESIGN.md calls out.

Not figures from the paper, but the experiments that justify the model and
compare A4 against the §8 hardware alternatives:

* **Inclusive-way migration** — with `inclusive_migration=False` the
  directory contention of Fig. 3b's blue box disappears, confirming the
  model attributes it to the right mechanism;
* **DDIO write-update** — forcing always-allocate shows how much of DDIO's
  benefit comes from in-place updates of resident I/O lines;
* **Replacement policy** — SRRIP/BRRIP (re-reference interval prediction,
  the related-work mitigation for DMA bloat) vs LRU on the Fig. 3b bloat
  scenario: RRIP evicts dead bloated lines early, partially protecting the
  bystander — A4's software-only bypassing achieves the same end on
  commodity LRU hardware;
* **Trash-way floor** — how many ways an antagonist may keep before the
  bystander notices (the §5.5 "down to one way" choice);
* **Platform geometry** — the same bloat scenario across the
  :mod:`repro.platform` preset registry: how LLC way count, DCA width, and
  the inclusive-way band move the two I/O contentions A4 targets.
"""

from __future__ import annotations

from repro.cache.hierarchy import HierarchyConfig
from repro.cache.llc import LlcConfig
from repro.experiments.harness import Server
from repro.experiments.report import FigureResult
from repro.platform import get_platform
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload
from repro.workloads.xmem import xmem

MB = 1024 * 1024


def _bloat_scenario(
    hierarchy_cfg: HierarchyConfig,
    xmem_ways,
    epochs: int,
    seed: int,
):
    server = Server(cores=8, seed=seed, hierarchy_cfg=hierarchy_cfg)
    server.add_workload(
        DpdkWorkload(
            name="dpdk", touch=True, cores=4, packet_bytes=1024,
            priority=PRIORITY_HIGH,
        )
    )
    server.add_workload(xmem("xmem", 4.0, cores=2, priority=PRIORITY_LOW))
    server.cat.set_mask(server.clos_of("dpdk"), range(5, 7))
    first, last = xmem_ways
    server.cat.set_mask(server.clos_of("xmem"), range(first, last + 1))
    return server.run(epochs=epochs, warmup=2)


def run_migration_ablation(epochs: int = 6, seed: int = 0xA4) -> FigureResult:
    """Directory contention exists iff inclusive-way migration does."""
    result = FigureResult(
        figure="Ablation: inclusive-way migration",
        title="X-Mem at way[9:10] vs DPDK-T, migration on/off",
        columns=["migration", "xmem_miss_at_9_10", "dpdk_migrations"],
    )
    for migration in (True, False):
        cfg = HierarchyConfig(llc=LlcConfig(inclusive_migration=migration))
        run = _bloat_scenario(cfg, (9, 10), epochs, seed)
        window = run.window
        migrations = sum(s.streams["dpdk"].counters.migrations for s in window)
        result.add_row(
            migration="on" if migration else "off",
            xmem_miss_at_9_10=run.aggregate("xmem").llc_miss_rate,
            dpdk_migrations=migrations,
        )
    result.notes.append("without migration the way[9:10] contention vanishes")
    return result


def run_write_update_ablation(epochs: int = 6, seed: int = 0xA4) -> FigureResult:
    """How much does in-place DDIO write-update buy the network workload?"""
    result = FigureResult(
        figure="Ablation: DDIO write-update",
        title="DPDK-T with write-update vs always-allocate DDIO",
        columns=["write_update", "dpdk_avg_lat", "ddio_updates", "ddio_allocates"],
    )
    for write_update in (True, False):
        cfg = HierarchyConfig(ddio_write_update=write_update)
        run = _bloat_scenario(cfg, (3, 4), epochs, seed)
        window = run.window
        updates = sum(s.streams["dpdk"].counters.ddio_updates for s in window)
        allocates = sum(
            s.streams["dpdk"].counters.ddio_allocates for s in window
        )
        result.add_row(
            write_update="on" if write_update else "off",
            dpdk_avg_lat=run.aggregate("dpdk").avg_latency,
            ddio_updates=updates,
            ddio_allocates=allocates,
        )
    result.notes.append(
        "always-allocate turns every ring reuse into a DCA-way eviction"
    )
    return result


def run_replacement_ablation(epochs: int = 6, seed: int = 0xA4) -> FigureResult:
    """RRIP-family policies vs LRU on the DMA-bloat bystander scenario."""
    result = FigureResult(
        figure="Ablation: LLC replacement policy",
        title="X-Mem at way[5:6] (shared with bloating DPDK-T) per policy",
        columns=["policy", "xmem_miss", "xmem_ipc"],
    )
    for policy in ("lru", "nru", "srrip", "brrip", "deadblock"):
        cfg = HierarchyConfig(llc=LlcConfig(replacement=policy))
        run = _bloat_scenario(cfg, (5, 6), epochs, seed)
        agg = run.aggregate("xmem")
        result.add_row(
            policy=policy, xmem_miss=agg.llc_miss_rate, xmem_ipc=agg.ipc
        )
    result.notes.append(
        "plain RRIP cannot tell bloat from victim-cache lines (each is "
        "referenced <= once at the LLC); the dead-block hint can (paper §8)"
    )
    return result


def run_trash_floor_ablation(epochs: int = 6, seed: int = 0xA4) -> FigureResult:
    """The §5.5 choice of squeezing antagonists down to a single way."""
    result = FigureResult(
        figure="Ablation: trash-way floor",
        title="bystander X-Mem (way[2:5]) vs FIO squeezed to n trash ways",
        columns=["fio_trash_ways", "xmem_miss", "fio_tput"],
    )
    for floor in (4, 2, 1):
        server = Server(cores=8, seed=seed)
        fio = FioWorkload(
            name="fio", block_bytes=2 * MB, cores=4, io_depth=32,
            priority=PRIORITY_LOW,
        )
        server.add_workload(fio)
        server.add_workload(xmem("xmem", 4.0, cores=2, priority=PRIORITY_HIGH))
        server.cat.set_mask(server.clos_of("fio"), range(6 - floor, 6))
        server.cat.set_mask(server.clos_of("xmem"), range(2, 6))
        server.pcie.port(fio.port_id).disable_dca()
        run = server.run(epochs=epochs, warmup=2)
        result.add_row(
            fio_trash_ways=floor,
            xmem_miss=run.aggregate("xmem").llc_miss_rate,
            fio_tput=run.aggregate("fio").throughput,
        )
    result.notes.append("one trash way suffices; storage throughput is flat")
    return result


def run_self_invalidation_study(epochs: int = 6, seed: int = 0xA4) -> FigureResult:
    """Related-work baseline (§8): self-invalidating consumed I/O buffers
    (IDIO / Sweeper) vs the unmodified hierarchy, on the two contentions
    A4 addresses in software."""
    result = FigureResult(
        figure="Related work: self-invalidation",
        title="IDIO/Sweeper-style self-invalidation vs baseline hierarchy",
        columns=[
            "hierarchy",
            "xmem_ways",
            "xmem_miss",
            "dpdk_bloats",
            "dpdk_migrations",
        ],
    )
    for self_invalidate in (False, True):
        label = "self-invalidate" if self_invalidate else "baseline"
        for ways in ((5, 6), (9, 10)):  # bloat target / directory target
            cfg = HierarchyConfig(self_invalidate_consumed=self_invalidate)
            run = _bloat_scenario(cfg, ways, epochs, seed)
            window = run.window
            result.add_row(
                hierarchy=label,
                xmem_ways=f"way[{ways[0]}:{ways[1]}]",
                xmem_miss=run.aggregate("xmem").llc_miss_rate,
                dpdk_bloats=sum(
                    s.streams["dpdk"].counters.dma_bloats for s in window
                ),
                dpdk_migrations=sum(
                    s.streams["dpdk"].counters.migrations for s in window
                ),
            )
    result.notes.append(
        "self-invalidation removes both bloat and directory contention in "
        "hardware; A4 reaches the same endpoints with CAT + a PCIe register"
    )
    return result


def run_ddio_ways_study(epochs: int = 6, seed: int = 0xA4) -> FigureResult:
    """Related work (Farshin et al., ATC'20): widen the IIO LLC WAYS
    register instead of managing allocation.

    More DDIO ways absorb more of the storage flood (less leak, better
    network latency) but are carved out of everyone else's LLC — the
    bystander pays.  A4 gets the latency back without the carve-out."""
    from repro.uncore.msr import IIO_LLC_WAYS, ways_to_mask

    result = FigureResult(
        figure="Related work: IIO LLC WAYS",
        title="widening the DDIO ways vs the storage flood",
        columns=[
            "ddio_ways",
            "dpdk_p99",
            "fio_leak_frac",
            "xmem_miss",
        ],
    )
    for n_ways in (2, 4, 6):
        server = Server(cores=10, seed=seed)
        server.add_workload(
            DpdkWorkload(
                name="dpdk", touch=True, cores=4, packet_bytes=1514,
                priority=PRIORITY_HIGH,
            )
        )
        server.add_workload(
            FioWorkload(
                name="fio", block_bytes=2 * MB, cores=4, io_depth=32,
                priority=PRIORITY_LOW,
            )
        )
        server.add_workload(xmem("xmem", 4.0, cores=2, priority=PRIORITY_HIGH))
        server.msr.wrmsr(IIO_LLC_WAYS, ways_to_mask(range(n_ways)))
        server.cat.set_mask(server.clos_of("xmem"), range(6, 8))
        run = server.run(epochs=epochs, warmup=2)
        window = run.window
        dma = sum(s.streams["fio"].counters.dma_writes for s in window)
        fio = run.aggregate("fio")
        result.add_row(
            ddio_ways=n_ways,
            dpdk_p99=run.aggregate("dpdk").p99_latency,
            fio_leak_frac=fio.dma_leaks / dma if dma else 0.0,
            xmem_miss=run.aggregate("xmem").llc_miss_rate,
        )
    result.notes.append(
        "wider DDIO absorbs the flood but taxes co-runners; A4 avoids both"
    )
    return result


def run_platform_ablation(
    epochs: int = 6,
    seed: int = 0xA4,
    platforms=("skylake-sp", "cascadelake-sp", "icelake-sp"),
    dca_ways=(),
) -> FigureResult:
    """The Fig. 3b bloat/directory scenario across platform presets.

    For each preset the bystander X-Mem sits on the platform's *inclusive*
    ways (the directory-contention target, wherever the geometry puts it)
    while DPDK-T floods packets; ``dca_ways`` appends ``skylake-sp+dcaN``
    variants to probe DCA-width sensitivity on one geometry."""
    result = FigureResult(
        figure="Ablation: platform geometry",
        title="DPDK-T vs X-Mem on the inclusive ways, per platform preset",
        columns=[
            "platform",
            "llc_ways",
            "dca_ways",
            "incl_ways",
            "xmem_miss",
            "dpdk_avg_lat",
            "dpdk_migrations",
        ],
    )
    names = list(platforms) + [f"skylake-sp+dca{n}" for n in dca_ways]
    for name in names:
        platform = get_platform(name)
        server = Server(cores=8, seed=seed, platform=platform)
        server.add_workload(
            DpdkWorkload(
                name="dpdk", touch=True, cores=4, packet_bytes=1024,
                priority=PRIORITY_HIGH,
            )
        )
        server.add_workload(
            xmem("xmem", 4.0, cores=2, priority=PRIORITY_LOW,
                 platform=platform)
        )
        standard = platform.standard_ways
        mid = standard[len(standard) // 2]
        server.cat.set_mask(server.clos_of("dpdk"), (mid, mid + 1))
        server.cat.set_mask(
            server.clos_of("xmem"), platform.inclusive_ways
        )
        run = server.run(epochs=epochs, warmup=2)
        window = run.window
        result.add_row(
            platform=platform.name,
            llc_ways=platform.llc_ways,
            dca_ways=len(platform.dca_ways),
            incl_ways=len(platform.inclusive_ways),
            xmem_miss=run.aggregate("xmem").llc_miss_rate,
            dpdk_avg_lat=run.aggregate("dpdk").avg_latency,
            dpdk_migrations=sum(
                s.streams["dpdk"].counters.migrations for s in window
            ),
        )
    result.notes.append(
        "directory contention tracks the inclusive band, not absolute way "
        "indices; wider DCA shifts pressure from bloat to latent overlap"
    )
    return result


ABLATIONS = {
    "ablation-migration": run_migration_ablation,
    "ablation-write-update": run_write_update_ablation,
    "ablation-replacement": run_replacement_ablation,
    "ablation-trash-floor": run_trash_floor_ablation,
    "ablation-platforms": run_platform_ablation,
    "related-self-invalidation": run_self_invalidation_study,
    "related-ddio-ways": run_ddio_ways_study,
}


if __name__ == "__main__":  # pragma: no cover
    for runner in ABLATIONS.values():
        print(runner().render())
