"""Fig. 3 — contention between I/O-intensive DPDK and cache-sensitive X-Mem
as X-Mem's two allocated LLC ways sweep from the DCA ways to the inclusive
ways.

Expected shape (paper §3.1):

* **Fig. 3a (DPDK-NT)** — X-Mem's LLC miss rate spikes only where its ways
  overlap the DCA ways (latent contention); way[5:6] (shared with DPDK-NT)
  and way[9:10] (inclusive) stay clean because untouched packets never
  enter MLCs.
* **Fig. 3b (DPDK-T)** — three contention groups: DCA overlap (latent),
  way[5:6] (DMA bloat of consumed packets), and way[9:10] — the newly
  discovered *directory contention* from I/O lines migrating into the
  inclusive ways on consumption (O1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.figures.base import run_setup, way_label
from repro.experiments.report import FigureResult
from repro.platform import PlatformSpec, get_platform
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.xmem import xmem

SWEEP: Tuple[Tuple[int, int], ...] = tuple((m, m + 1) for m in range(10))
"""X-Mem allocations way[0:1] .. way[9:10]."""

DPDK_WAYS = (5, 6)


def _run(
    touch: bool, positions, epochs: int, seed: int, platform=None
) -> FigureResult:
    platform = get_platform(platform)
    flavour = "DPDK-T" if touch else "DPDK-NT"
    result = FigureResult(
        figure="Fig. 3b" if touch else "Fig. 3a",
        title=f"{flavour} vs X-Mem: X-Mem LLC miss rate by allocated ways",
        columns=["xmem_ways", "xmem_llc_miss", "xmem_mem_bw", "dpdk_avg_lat"],
    )
    for first, last in positions:
        run = run_setup(
            [
                DpdkWorkload(
                    name="dpdk",
                    touch=touch,
                    cores=4,
                    packet_bytes=1024,
                    priority=PRIORITY_HIGH,
                ),
                xmem("xmem", 4.0, cores=2, priority=PRIORITY_LOW,
                     platform=platform),
            ],
            masks={"dpdk": DPDK_WAYS, "xmem": (first, last)},
            epochs=epochs,
            seed=seed,
            platform=platform,
        )
        xm = run.aggregate("xmem")
        window = run.window
        xmem_bw = sum(
            s.streams["xmem"].counters.mem_reads
            + s.streams["xmem"].counters.mem_writes
            for s in window
        ) / (len(window) * run.server.epoch_cycles)
        result.add_row(
            xmem_ways=way_label(first, last),
            xmem_llc_miss=xm.llc_miss_rate,
            xmem_mem_bw=xmem_bw,
            dpdk_avg_lat=run.aggregate("dpdk").avg_latency,
        )
    result.notes.append(
        "expect spikes at DCA overlap (way[0:1]/way[1:2])"
        + (
            ", at way[5:6] (DMA bloat) and way[9:10] (directory contention)"
            if touch
            else "; way[5:6] and way[9:10] stay clean without consumption"
        )
    )
    return result


def run_fig3a(
    epochs: int = 8,
    seed: int = 0xA4,
    positions: Optional[List[Tuple[int, int]]] = None,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    """DPDK-NT (no touch) vs X-Mem."""
    return _run(False, positions or SWEEP, epochs, seed, platform)


def run_fig3b(
    epochs: int = 8,
    seed: int = 0xA4,
    positions: Optional[List[Tuple[int, int]]] = None,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    """DPDK-T (touch) vs X-Mem."""
    return _run(True, positions or SWEEP, epochs, seed, platform)


if __name__ == "__main__":  # pragma: no cover
    print(run_fig3a().render())
    print(run_fig3b().render())
