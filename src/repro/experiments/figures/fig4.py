"""Fig. 4 — validation that disabling DCA removes the inclusive-way
contention.

With the NIC's DCA off, packets take the device-memory-MLC path; no
DMA-written line ever sits in a DCA way in LLC-exclusive state, so nothing
migrates into the inclusive ways — X-Mem allocated at way[9:10] stops
suffering.  The price is a large DPDK-T latency increase (quantified in
Fig. 6's context).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.figures.base import run_setup, way_label
from repro.experiments.report import FigureResult
from repro.platform import PlatformSpec, get_platform
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.xmem import xmem

POSITIONS: Tuple[Tuple[int, int], ...] = ((0, 1), (3, 4), (5, 6), (9, 10))


def run(
    epochs: int = 8,
    seed: int = 0xA4,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 4",
        title="X-Mem LLC miss rate with NIC DCA enabled vs disabled (DPDK-T at way[5:6])",
        columns=["xmem_ways", "miss_dca_on", "miss_dca_off", "dpdk_lat_on", "dpdk_lat_off"],
    )
    for first, last in POSITIONS:
        row = {"xmem_ways": way_label(first, last)}
        for dca_on in (True, False):
            run_result = run_setup(
                [
                    DpdkWorkload(
                        name="dpdk",
                        touch=True,
                        cores=4,
                        packet_bytes=1024,
                        priority=PRIORITY_HIGH,
                    ),
                    xmem("xmem", 4.0, cores=2, priority=PRIORITY_LOW,
                         platform=platform),
                ],
                masks={"dpdk": (5, 6), "xmem": (first, last)},
                dca_off=() if dca_on else ("dpdk",),
                epochs=epochs,
                seed=seed,
                platform=platform,
            )
            suffix = "on" if dca_on else "off"
            row[f"miss_dca_{suffix}"] = run_result.aggregate("xmem").llc_miss_rate
            row[f"dpdk_lat_{suffix}"] = run_result.aggregate("dpdk").avg_latency
        result.add_row(**row)
    result.notes.append(
        "disabling DCA clears the way[9:10] contention but inflates DPDK-T latency"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
