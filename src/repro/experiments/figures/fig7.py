"""Fig. 7 — LLC allocation strategies for I/O workloads: n-Exclude vs
(n+2)-Overlap.

``n-Exclude`` allocates DPDK-T to n ways that exclude the inclusive ways
(intending to dodge directory contention); ``(n+2)-Overlap`` allocates
n+2 ways that *include* them.  Both effectively use the same LLC capacity,
because consumed I/O lines migrate into the inclusive ways regardless of
CAT — but Overlap keeps a larger fraction of the Rx ring write-updated in
place, so it spends less memory bandwidth and serves packets faster (O3).
A cache-sensitive X-Mem runs at way[2:3] as the bystander whose memory
traffic would suffer from misplaced I/O lines.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.figures.base import run_setup, way_label
from repro.experiments.report import FigureResult
from repro.platform import PlatformSpec, get_platform
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.xmem import xmem

N_VALUES: Tuple[int, ...] = (2, 4, 6)


def _strategy_masks(n: int, overlap: bool) -> Tuple[int, int]:
    last_standard = 8
    if overlap:
        # n + 2 ways ending at the last (inclusive) way.
        return (last_standard - n + 1, 10)
    return (last_standard - n + 1, last_standard)


def run(
    epochs: int = 8,
    seed: int = 0xA4,
    n_values=N_VALUES,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    platform = get_platform(platform)
    result = FigureResult(
        figure="Fig. 7",
        title="n-Exclude vs (n+2)-Overlap allocation of DPDK-T",
        columns=["strategy", "dpdk_ways", "AL", "TL", "mem_bw", "xmem_miss"],
    )
    for n in n_values:
        for overlap in (False, True):
            first, last = _strategy_masks(n, overlap)
            label = f"{n + 2}-Overlap" if overlap else f"{n}-Exclude"
            run_result = run_setup(
                [
                    DpdkWorkload(
                        name="dpdk",
                        touch=True,
                        cores=4,
                        packet_bytes=1024,
                        priority=PRIORITY_HIGH,
                    ),
                    xmem("xmem", 4.0, cores=2, priority=PRIORITY_LOW,
                         platform=platform),
                ],
                masks={"dpdk": (first, last), "xmem": (2, 3)},
                epochs=epochs,
                seed=seed,
                platform=platform,
            )
            dpdk = run_result.aggregate("dpdk")
            result.add_row(
                strategy=label,
                dpdk_ways=way_label(first, last),
                AL=dpdk.avg_latency,
                TL=dpdk.p99_latency,
                mem_bw=run_result.mem_total_bw,
                xmem_miss=run_result.aggregate("xmem").llc_miss_rate,
            )
    result.notes.append(
        "(n+2)-Overlap should match or beat n-Exclude on latency and memory bandwidth"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
