"""One module per reproduced table/figure of the paper.

Each module exposes ``run(**kwargs) -> FigureResult`` (some return several)
with ``epochs``/``seed`` knobs so benches can run them quickly and scripts
can run them at full length.  ``REGISTRY`` maps figure ids to runners.
"""

from repro.experiments import runcache
from repro.experiments.figures import (
    ablation,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    tenants,
)

_RUNNERS = {
    "fig3a": fig3.run_fig3a,
    "fig3b": fig3.run_fig3b,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8a": fig8.run_fig8a,
    "fig8b": fig8.run_fig8b,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13a": fig13.run_hpw_heavy,
    "fig13b": fig13.run_lpw_heavy,
    "fig14": fig14.run,
    "fig15a": fig15.run_partitioning,
    "fig15b": fig15.run_leak_thresholds,
    "fig15c": fig15.run_timing,
}
_RUNNERS.update(ablation.ABLATIONS)
_RUNNERS["ablation-tenants"] = tenants.run_tenant_ablation

REGISTRY = {
    figure_id: runcache.CachedFigure(figure_id, runner)
    for figure_id, runner in _RUNNERS.items()
}
"""Figure id -> cache-through runner.  Every registry entry memoizes its
:class:`~repro.experiments.report.FigureResult` in the content-addressed
run cache (keyed on figure id, call kwargs, runner code identity, and the
global code salt), so a second invocation with a warm cache does zero
simulation work.  Disable with ``--no-cache`` / ``$REPRO_CACHE_DISABLE``."""

__all__ = ["REGISTRY", "ablation", "tenants"] + [
    f"fig{n}" for n in (3, 4, 5, 6, 7, 8, 11, 12, 13, 14, 15)
]
