"""Tenant ablation: A4 vs IOCA vs static CAT on N-tenant SLO attainment.

The multi-tenant counterpart of the paper's Fig. 11 comparison: instead of
one fixed workload list and IPC/latency columns, a seeded tenant
population (:mod:`repro.experiments.tenants`) runs under each scheme and
the score is *per-tenant SLO attainment* — did every latency-critical
tenant's p99 stay under its target, did every declared throughput floor
hold.  ``ablation-tenants`` in the figures CLI; cached like every figure,
keyed on (tenants, seed, epochs, scheme list, platform).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.report import FigureResult, slo_attainment_report
from repro.experiments.tenants import build_tenant_server, evaluate_slos

DEFAULT_SCHEMES: Tuple[str, ...] = ("a4", "ioca", "isolate")


def run_tenant_ablation(
    epochs: int = 12,
    seed: int = 0xA4,
    tenants: int = 6,
    schemes: Tuple[str, ...] = DEFAULT_SCHEMES,
    platform: Optional[str] = None,
) -> FigureResult:
    """Run the same generated tenant population under each scheme."""
    by_scheme = {}
    for scheme in schemes:
        server = build_tenant_server(
            tenants, scheme=scheme, seed=seed, platform=platform
        )
        result = server.run(epochs=epochs)
        by_scheme[scheme] = evaluate_slos(result, server.tenants())
    figure = slo_attainment_report(
        figure="Ablation: tenant SLOs",
        title=(
            f"{tenants}-tenant population (seed {seed:#x}): "
            "per-tenant SLO attainment by scheme"
        ),
        by_scheme=by_scheme,
    )
    figure.notes.append(
        "attainment = worst declared axis, capped at 1.0 "
        "(p99: slo/measured; throughput: measured/slo)"
    )
    return figure
