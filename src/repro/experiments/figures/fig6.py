"""Fig. 6 — impact of co-running FIO on DPDK-T latency, with DCA on vs
fully off.

Expected shape (§3.2): with DCA on, DPDK-T's average/p99 latency grows
with the storage block size, peaks near the throughput-saturation block
size, then declines (storage lines stop migrating into the inclusive ways
once they leak before consumption); disabling DCA entirely removes the
storage interference but raises DPDK-T latency to unacceptable levels.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.experiments.figures.base import run_setup
from repro.experiments.report import FigureResult
from repro.platform import PlatformSpec
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload

KB = 1024
MB = 1024 * KB

BLOCK_SIZES: Tuple[int, ...] = (
    32 * KB,
    128 * KB,
    192 * KB,
    384 * KB,
    512 * KB,
    2 * MB,
)


def _one(block_bytes, dca_off, epochs, seed, platform=None):
    workloads = [
        DpdkWorkload(
            name="dpdk", touch=True, cores=4, packet_bytes=1514, priority=PRIORITY_HIGH
        )
    ]
    masks = {"dpdk": (4, 5)}
    if block_bytes is not None:
        workloads.append(
            FioWorkload(
                name="fio",
                block_bytes=block_bytes,
                cores=4,
                io_depth=32,
                priority=PRIORITY_LOW,
            )
        )
        masks["fio"] = (2, 3)
    return run_setup(
        workloads, masks=masks, dca_off=dca_off, epochs=epochs, seed=seed,
        platform=platform,
    )


def run(
    epochs: int = 8,
    seed: int = 0xA4,
    block_sizes=BLOCK_SIZES,
    platform: Optional[PlatformSpec] = None,
) -> FigureResult:
    result = FigureResult(
        figure="Fig. 6",
        title="DPDK-T latency and throughput under FIO, DCA on vs all-DCA-off",
        columns=[
            "block",
            "AL_on",
            "TL_on",
            "TP_on",
            "AL_alloff",
            "TL_alloff",
            "fio_tput",
        ],
    )
    alone = _one(None, (), epochs, seed, platform).aggregate("dpdk")
    result.notes.append(
        f"DPDK-T alone: AL={alone.avg_latency:.0f} TL={alone.p99_latency:.0f} "
        f"TP={alone.throughput:.4f}"
    )
    for block_bytes in block_sizes:
        on = _one(block_bytes, (), epochs, seed, platform)
        off = _one(block_bytes, ("dpdk", "fio"), epochs, seed, platform)
        d_on = on.aggregate("dpdk")
        d_off = off.aggregate("dpdk")
        result.add_row(
            block=f"{block_bytes // KB}KB",
            AL_on=d_on.avg_latency,
            TL_on=d_on.p99_latency,
            TP_on=d_on.throughput,
            AL_alloff=d_off.avg_latency,
            TL_alloff=d_off.p99_latency,
            fio_tput=on.aggregate("fio").throughput,
        )
    result.notes.append(
        "AL/TL rise with block size under DCA, peak near saturation, then decline;"
        " all-DCA-off is uniformly unacceptable"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
