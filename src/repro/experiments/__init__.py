"""Experiment harness, workload scenarios, and figure regeneration."""

from repro.experiments.harness import RunResult, Server, StreamAggregate

__all__ = ["RunResult", "Server", "StreamAggregate"]
