"""Command-line figure regeneration.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig3a fig5
    python -m repro.experiments --all
    python -m repro.experiments --all --quick     # reduced epochs
    python -m repro.experiments --all --jobs 4    # figures across 4 processes

``--quick`` trims epochs for a fast sanity pass; default lengths match the
EXPERIMENTS.md numbers.  ``--jobs N`` (N > 1) fans the selected figures out
over a process pool via :mod:`repro.experiments.parallel`; output order is
unchanged.

``--platform NAME`` runs the selected figures on a
:mod:`repro.platform` preset (``skylake-sp`` — the default, bit-identical
to the historical constants — ``cascadelake-sp``, ``icelake-sp``, or a
``base+dcaN`` DCA-width variant).  ``--sweep-ways N [N ...]`` instead runs
each selected figure across *every* preset plus ``skylake-sp+dcaN``
variants — the platform-sensitivity sweep — and closes with a summary
table.

Completed figures are memoized in the content-addressed run cache
(``.repro-cache/`` by default): rerunning the same figure with unchanged
code and parameters replays the stored result instead of simulating.
``--no-cache`` disables the cache for this invocation; ``--cache-dir``
relocates it.  The closing run report prints hit/miss counters.
"""

from __future__ import annotations

import argparse
import sys
import time

import os

from repro import obsv
from repro.experiments import runcache
from repro.experiments.errors import SweepConfigError
from repro.experiments.figures import REGISTRY
from repro.experiments.parallel import (
    FigureTask,
    dispatch_stats,
    run_figure,
    run_tasks,
)
from repro.platform import get_platform

QUICK_KWARGS = {
    "fig3a": dict(epochs=6),
    "fig3b": dict(epochs=6),
    "fig4": dict(epochs=6),
    "fig5": dict(epochs=5),
    "fig6": dict(epochs=6),
    "fig7": dict(epochs=6),
    "fig8a": dict(epochs=6),
    "fig8b": dict(epochs=6),
    "fig11": dict(epochs=14, warmup=4),
    "fig12": dict(epochs=14, warmup=4),
    "fig13a": dict(epochs=18, warmup=5),
    "fig13b": dict(epochs=18, warmup=5),
    "fig14": dict(epochs=18, warmup=5),
    "fig15a": dict(epochs=16, warmup=5),
    "fig15b": dict(epochs=16, warmup=5),
    "fig15c": dict(epochs=24, warmup=5),
    "ablation-migration": dict(epochs=5),
    "ablation-platforms": dict(epochs=5),
    "ablation-write-update": dict(epochs=5),
    "ablation-replacement": dict(epochs=5),
    "ablation-trash-floor": dict(epochs=5),
    "ablation-tenants": dict(epochs=8),
    "related-self-invalidation": dict(epochs=5),
    "related-ddio-ways": dict(epochs=5),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("figures", nargs="*", help="figure ids (e.g. fig3a fig13a)")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument("--quick", action="store_true", help="reduced epochs")
    parser.add_argument("--seed", type=int, default=0xA4)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="run figures across N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed run cache (always re-simulate)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"run-cache directory (default: {runcache.DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--platform",
        default=None,
        help="run on this microarchitecture preset (skylake-sp, "
        "cascadelake-sp, icelake-sp, or base+dcaN for a DCA-width "
        "variant); passed to every selected figure that takes a "
        "platform parameter",
    )
    parser.add_argument(
        "--sweep-ways",
        nargs="+",
        type=int,
        default=None,
        metavar="N",
        help="platform-sensitivity sweep: run the selected figures across "
        "every preset plus skylake-sp+dcaN variants for each N, then "
        "print a summary table (honours --jobs)",
    )
    parser.add_argument(
        "--sample",
        action="store_true",
        help="representative-interval sampling: skip stationary epochs and "
        "extrapolate, for 10-100x faster long-horizon runs; passed to "
        "every selected figure that takes a sampling parameter "
        "(others warn and run exact)",
    )
    parser.add_argument(
        "--error-budget",
        type=float,
        default=0.02,
        help="target max relative error of sampled aggregates "
        "(default: 0.02; only meaningful with --sample)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="checkpoint/restore directory: run_setup-based figures "
        "snapshot periodically and resume interrupted runs from the "
        "newest checkpoint (exported as $REPRO_CHECKPOINT_DIR so pool "
        "workers inherit it)",
    )
    parser.add_argument(
        "--fault-intensity",
        type=float,
        default=None,
        help="enable deterministic fault injection at this intensity "
        "(exported as $REPRO_FAULT_INTENSITY so pool workers inherit it; "
        "results are cached under a separate key)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="enable the observability layer and write the event trace "
        "as JSONL to PATH (inspect with tools/obsv.py)",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="PATH",
        default=None,
        help="also write the trace as Chrome trace-event JSON "
        "(load in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="enable the observability layer and write the metrics "
        "registry as Prometheus text to PATH (plus a JSON snapshot "
        "at PATH.json)",
    )
    args = parser.parse_args(argv)

    if args.fault_intensity is not None:
        if args.fault_intensity < 0:
            print("--fault-intensity must be >= 0", file=sys.stderr)
            return 2
        os.environ[runcache.ENV_FAULT_INTENSITY] = str(args.fault_intensity)

    if args.checkpoint_dir is not None:
        from repro.experiments.figures import base as figures_base

        os.environ[figures_base.ENV_CHECKPOINT_DIR] = args.checkpoint_dir

    sampling_plan = None
    if args.sample:
        from repro.sim.sampling import SamplingPlan

        try:
            sampling_plan = SamplingPlan(error_budget=args.error_budget)
        except ValueError as exc:
            print(f"--error-budget: {exc}", file=sys.stderr)
            return 2

    cache = runcache.configure(
        cache_dir=args.cache_dir,
        enabled=False if args.no_cache else None,
    )

    obsv_on = bool(args.trace or args.chrome_trace or args.metrics_out)
    if obsv_on:
        obsv.enable()
        obsv.set_registry(None)  # fresh registry per invocation

    def export_obsv() -> None:
        """Flush trace / metrics files (called before every return path).

        Note: with ``--jobs > 1`` events from pool workers are not
        captured — each worker process has its own (disabled) tracer;
        traces cover the parent process only."""
        if not obsv_on:
            return
        from repro.obsv import export as obsv_export
        from repro.obsv.metrics import collect_process, get_registry

        tracer = obsv.TRACER
        if args.trace:
            count = obsv_export.write_jsonl(tracer.events, args.trace)
            print(f"[trace: {count} events -> {args.trace}"
                  f"{f' ({tracer.dropped} dropped)' if tracer.dropped else ''}]")
        if args.chrome_trace:
            obsv_export.write_chrome_trace(tracer.events, args.chrome_trace)
            print(f"[chrome trace -> {args.chrome_trace}]")
        if args.metrics_out:
            registry = collect_process(get_registry())
            if obsv.PROFILER is not None:
                obsv.PROFILER.into_registry(registry)
            registry.gauge(
                "repro_trace_events", help="events in the trace ring"
            ).set(len(tracer))
            registry.gauge(
                "repro_trace_dropped_total", help="events evicted from the ring"
            ).set(tracer.dropped)
            obsv_export.write_prometheus(registry, args.metrics_out)
            import json as _json

            with open(args.metrics_out + ".json", "w") as fh:
                _json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
            print(f"[metrics -> {args.metrics_out} (+ .json snapshot)]")

    if args.list:
        for name in REGISTRY:
            print(name)
        return 0

    targets = list(REGISTRY) if args.all else args.figures
    if not targets:
        parser.print_help()
        return 2
    unknown = [t for t in targets if t not in REGISTRY]
    if unknown:
        print(f"unknown figures: {unknown}; use --list", file=sys.stderr)
        return 2

    if args.platform is not None:
        try:
            get_platform(args.platform)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2

    def kwargs_for(name: str) -> dict:
        kwargs = {}
        if args.quick:
            kwargs.update(QUICK_KWARGS.get(name, {}))
        if sampling_plan is not None:
            from repro.experiments.sweep import _accepts

            if _accepts(REGISTRY[name], "sampling"):
                kwargs["sampling"] = sampling_plan
            else:
                print(
                    f"[{name}: no sampling parameter; running exact]",
                    file=sys.stderr,
                )
        return kwargs

    if args.sweep_ways is not None:
        from repro.experiments.sweep import (
            platform_sweep_summary,
            sweep_platforms,
        )

        started = time.time()
        results = {}
        try:
            for name in targets:
                results.update(
                    sweep_platforms(
                        [name],
                        dca_ways=tuple(args.sweep_ways),
                        seed=args.seed,
                        parallel=args.jobs > 1,
                        max_workers=args.jobs if args.jobs > 1 else None,
                        **kwargs_for(name),
                    )
                )
        except SweepConfigError as exc:
            print(exc, file=sys.stderr)
            return 2
        for (name, platform_name), result in results.items():
            print(result.render())
            print(f"[{name} @ {platform_name}]\n")
        print(platform_sweep_summary(results).render())
        print(
            f"[{len(results)} sweep cells done in "
            f"{time.time() - started:.1f}s]"
        )
        print(f"[run cache: {cache.stats.summary()}]")
        export_obsv()
        return 0

    def platform_kwargs(name: str) -> dict:
        """``--platform`` for runners that accept it (warn on the rest)."""
        if args.platform is None:
            return {}
        from repro.experiments.sweep import _accepts_platform

        if not _accepts_platform(REGISTRY[name]):
            print(
                f"[{name}: no platform parameter; running on the default]",
                file=sys.stderr,
            )
            return {}
        return {"platform": args.platform}

    if args.jobs > 1 and len(targets) > 1:
        tasks = [
            FigureTask(
                REGISTRY[name],
                args.seed,
                tuple({**kwargs_for(name), **platform_kwargs(name)}.items()),
            )
            for name in targets
        ]
        started = time.time()
        results = run_tasks(run_figure, tasks, max_workers=args.jobs)
        for name, result in zip(targets, results):
            print(result.render())
            print(f"[{name}]\n")
        print(
            f"[{len(targets)} figures done in {time.time() - started:.1f}s "
            f"across {args.jobs} jobs]"
        )
        print(f"[run cache: {cache.stats.summary()}]")
        print(f"[dispatch: {dispatch_stats.summary()}]")
        export_obsv()
        return 0

    for name in targets:
        runner = REGISTRY[name]
        kwargs = dict(
            seed=args.seed, **kwargs_for(name), **platform_kwargs(name)
        )
        started = time.time()
        result = runner(**kwargs)
        print(result.render())
        print(f"[{name} done in {time.time() - started:.1f}s]\n")
    print(f"[run cache: {cache.stats.summary()}]")
    export_obsv()
    return 0


if __name__ == "__main__":
    sys.exit(main())
