"""Plain-text rendering of figure results.

Every figure module returns a :class:`FigureResult`; this module renders it
as the aligned ASCII table the bench harness prints — the textual analogue
of the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


@dataclass
class FigureResult:
    """A reproduced table/figure: rows of named columns plus prose notes."""

    figure: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **cells: Cell) -> None:
        self.rows.append(cells)

    def column(self, name: str) -> List[Cell]:
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        return render_table(self)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(result: FigureResult) -> str:
    columns = list(result.columns)
    table = [[format_cell(row.get(c, "")) for c in columns] for row in result.rows]
    widths = [
        max(len(c), *(len(r[i]) for r in table)) if table else len(c)
        for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "-" * len(header)
    lines = [f"== {result.figure}: {result.title} ==", header, rule]
    for row in table:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


@dataclass(frozen=True)
class TenantSlo:
    """One tenant's measured service level against its declared SLO."""

    tenant: str
    tenant_class: str
    p99_latency: float
    slo_p99_latency: Union[float, None]
    throughput: float
    """Completed requests per window epoch."""
    slo_min_throughput: Union[float, None]

    @property
    def latency_attainment(self) -> Union[float, None]:
        """SLO/measured p99, capped at 1.0 (1 = met); None without an SLO
        or when the tenant served nothing (vacuously unmeasurable)."""
        if self.slo_p99_latency is None:
            return None
        if self.p99_latency <= 0:
            return None
        return min(1.0, self.slo_p99_latency / self.p99_latency)

    @property
    def throughput_attainment(self) -> Union[float, None]:
        """measured/SLO throughput, capped at 1.0; None without an SLO."""
        if self.slo_min_throughput is None:
            return None
        return min(1.0, self.throughput / self.slo_min_throughput)

    @property
    def attainment(self) -> float:
        """Worst attainment across the declared axes (1.0 = all SLOs met,
        including the vacuous no-SLO case)."""
        axes = [
            a
            for a in (self.latency_attainment, self.throughput_attainment)
            if a is not None
        ]
        return min(axes) if axes else 1.0

    @property
    def met(self) -> bool:
        return self.attainment >= 1.0


def slo_attainment_report(
    figure: str,
    title: str,
    by_scheme: Dict[str, List[TenantSlo]],
) -> FigureResult:
    """Tabulate per-tenant SLO attainment for several schemes side by side.

    One row per (tenant, scheme); a closing note per scheme gives the
    fraction of declared SLOs met and the mean attainment — the headline
    the tenant ablation compares.
    """
    result = FigureResult(
        figure=figure,
        title=title,
        columns=(
            "tenant", "class", "scheme", "p99", "slo_p99",
            "tput/epoch", "slo_tput", "attainment", "met",
        ),
    )
    for scheme, rows in by_scheme.items():
        for slo in rows:
            result.add_row(
                tenant=slo.tenant,
                **{"class": slo.tenant_class},
                scheme=scheme,
                p99=slo.p99_latency,
                slo_p99=slo.slo_p99_latency
                if slo.slo_p99_latency is not None else "-",
                **{"tput/epoch": slo.throughput},
                slo_tput=slo.slo_min_throughput
                if slo.slo_min_throughput is not None else "-",
                attainment=slo.attainment,
                met="yes" if slo.met else "NO",
            )
    for scheme, rows in by_scheme.items():
        with_slo = [r for r in rows if r.slo_p99_latency is not None
                    or r.slo_min_throughput is not None]
        if not with_slo:
            continue
        met = sum(1 for r in with_slo if r.met)
        mean = sum(r.attainment for r in with_slo) / len(with_slo)
        result.notes.append(
            f"{scheme}: {met}/{len(with_slo)} tenant SLOs met, "
            f"mean attainment {mean:.3f}"
        )
    return result


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Values relative to ``reference`` (1.0 = reference; 0s stay 0)."""
    if reference == 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]


def geometric_mean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for value in positives:
        product *= value
    return product ** (1.0 / len(positives))
