"""Plain-text rendering of figure results.

Every figure module returns a :class:`FigureResult`; this module renders it
as the aligned ASCII table the bench harness prints — the textual analogue
of the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


@dataclass
class FigureResult:
    """A reproduced table/figure: rows of named columns plus prose notes."""

    figure: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **cells: Cell) -> None:
        self.rows.append(cells)

    def column(self, name: str) -> List[Cell]:
        return [row.get(name) for row in self.rows]

    def render(self) -> str:
        return render_table(self)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(result: FigureResult) -> str:
    columns = list(result.columns)
    table = [[format_cell(row.get(c, "")) for c in columns] for row in result.rows]
    widths = [
        max(len(c), *(len(r[i]) for r in table)) if table else len(c)
        for i, c in enumerate(columns)
    ]
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "-" * len(header)
    lines = [f"== {result.figure}: {result.title} ==", header, rule]
    for row in table:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def normalize(values: Sequence[float], reference: float) -> List[float]:
    """Values relative to ``reference`` (1.0 = reference; 0s stay 0)."""
    if reference == 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]


def geometric_mean(values: Sequence[float]) -> float:
    positives = [v for v in values if v > 0]
    if not positives:
        return 0.0
    product = 1.0
    for value in positives:
        product *= value
    return product ** (1.0 / len(positives))
