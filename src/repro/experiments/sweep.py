"""Multi-seed repetition and averaging.

The paper averages every result over five iterations (§6).  This module
provides the equivalent: run a server-builder or a figure runner across
seeds and average the numeric outputs, reporting spread so users can judge
simulation noise (the paper makes the same point about X-Mem's run-to-run
variance in its artifact appendix).
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.errors import FigureShapeError, SweepConfigError
from repro.experiments.harness import Server
from repro.experiments.parallel import (
    METRIC_FIELDS,
    FigureTask,
    SeedTask,
    run_figure,
    run_tasks,
    seed_metrics,
)
from repro.experiments.report import FigureResult
from repro.platform import get_platform

DEFAULT_SEEDS = (0xA4, 0xA5, 0xA6, 0xA7, 0xA8)
"""Five iterations, like the paper."""

DEFAULT_SWEEP_PLATFORMS = ("skylake-sp", "cascadelake-sp", "icelake-sp")
"""The preset registry, in the order the sensitivity sweep visits it."""

_NUMERIC_FIELDS = METRIC_FIELDS
"""Back-compat alias; the canonical tuple lives in
:mod:`repro.experiments.parallel` so worker processes import it without
pulling in this module."""


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


@dataclass
class MetricStats:
    mean: float
    stdev: float
    values: List[float] = field(default_factory=list)

    @property
    def rel_spread(self) -> float:
        return self.stdev / abs(self.mean) if self.mean else 0.0


@dataclass
class MultiSeedResult:
    """Per-stream metric statistics across seeds."""

    seeds: Sequence[int]
    streams: Dict[str, Dict[str, MetricStats]]
    mem_total_bw: MetricStats
    total_events: int = 0
    """Simulated events executed across all seeds, as reported by each
    seed's simulation (a memoized summary carries the count from the run
    that originally produced it)."""

    def metric(self, stream: str, name: str) -> MetricStats:
        return self.streams[stream][name]


def run_repeated(
    build: Callable[[int], Server],
    epochs: int,
    warmup: int,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> MultiSeedResult:
    """Run ``build(seed)`` for each seed and collect metric statistics.

    ``build`` must return a fully configured (workloads + manager) server.
    With ``parallel=True`` the seeds run across a process pool (``build``
    must then be a module-level callable so it pickles); results are
    identical to the serial path because both assemble the same per-seed
    summaries in seed order.
    """
    if not seeds:
        raise SweepConfigError("need at least one seed")
    tasks = [SeedTask(build, epochs, warmup, seed) for seed in seeds]
    summaries = run_tasks(
        seed_metrics, tasks, parallel=parallel, max_workers=max_workers
    )
    per_stream: Dict[str, Dict[str, List[float]]] = {}
    mem_values: List[float] = []
    total_events = 0
    for mem_total_bw, streams, events in summaries:
        mem_values.append(mem_total_bw)
        total_events += events
        for name, metrics in streams.items():
            bucket = per_stream.setdefault(name, {})
            for field_name, value in metrics.items():
                bucket.setdefault(field_name, []).append(value)
    return MultiSeedResult(
        seeds=tuple(seeds),
        streams={
            name: {
                metric: MetricStats(mean(vals), stdev(vals), vals)
                for metric, vals in metrics.items()
            }
            for name, metrics in per_stream.items()
        },
        mem_total_bw=MetricStats(mean(mem_values), stdev(mem_values), mem_values),
        total_events=total_events,
    )


def average_figure(
    runner: Callable[..., FigureResult],
    seeds: Sequence[int] = DEFAULT_SEEDS,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    **kwargs,
) -> FigureResult:
    """Run a figure runner once per seed and average its numeric cells.

    Rows are matched by position (every figure runner is deterministic in
    row order); non-numeric cells are taken from the first run.  With
    ``parallel=True`` the seeds run across a process pool (``runner`` must
    be module-level so it pickles).
    """
    if not seeds:
        raise SweepConfigError("need at least one seed")
    tasks = [
        FigureTask(runner, seed, tuple(kwargs.items())) for seed in seeds
    ]
    results = run_tasks(
        run_figure, tasks, parallel=parallel, max_workers=max_workers
    )
    first = results[0]
    for other in results[1:]:
        if len(other.rows) != len(first.rows):
            raise FigureShapeError(
                "figure runners must be deterministic in shape"
            )
    averaged = FigureResult(
        figure=first.figure,
        title=f"{first.title} (mean of {len(seeds)} seeds)",
        columns=first.columns,
        notes=list(first.notes),
    )
    for index, row in enumerate(first.rows):
        out = {}
        for column, value in row.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[column] = mean(
                    [float(r.rows[index][column]) for r in results]
                )
            else:
                out[column] = value
        averaged.add_row(**out)
    return averaged


# -- platform sensitivity --------------------------------------------------


@dataclass(frozen=True)
class PlatformTask:
    """One (figure, platform) cell of a platform-sensitivity sweep.

    ``platform`` is a preset name (possibly with a ``+dcaN`` suffix) rather
    than a spec object so the descriptor stays tiny and trivially picklable;
    the worker resolves it through the preset registry."""

    figure_id: str
    platform: str
    seed: int
    kwargs: Tuple[Tuple[str, Any], ...] = ()


def run_platform_figure(task: PlatformTask) -> FigureResult:
    """Worker entry point: run one registry figure on one platform.

    Goes through the registry's cache-through wrapper, so the platform name
    lands in the run-cache key alongside the figure id and kwargs."""
    from repro.experiments.figures import REGISTRY

    runner = REGISTRY[task.figure_id]
    return runner(
        seed=task.seed, platform=task.platform, **dict(task.kwargs)
    )


def _accepts(runner, param: str) -> bool:
    """True if a registry runner's underlying function takes ``param``."""
    fn = runner._resolve() if hasattr(runner, "_resolve") else runner
    return param in inspect.signature(fn).parameters


def _accepts_platform(runner) -> bool:
    """True if a registry runner's underlying function takes ``platform``."""
    return _accepts(runner, "platform")


def sweep_platforms(
    figures: Sequence[str],
    platforms: Sequence[str] = DEFAULT_SWEEP_PLATFORMS,
    dca_ways: Sequence[int] = (),
    dca_base: str = "skylake-sp",
    seed: int = 0xA4,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    **kwargs,
) -> Dict[Tuple[str, str], FigureResult]:
    """Run each figure on each platform (presets × DCA-way variants).

    ``dca_ways`` appends ``dca_base+dcaN`` variants — the paper's "what if
    DDIO had N ways" question — to the platform list.  Results come back as
    an insertion-ordered ``{(figure_id, platform_name): FigureResult}``;
    with ``parallel=True`` the cells fan out over the shared process pool
    (identical results either way, same guarantee as ``run_repeated``).
    """
    from repro.experiments.figures import REGISTRY

    names = list(platforms) + [f"{dca_base}+dca{n}" for n in dca_ways]
    if not figures or not names:
        raise SweepConfigError("need at least one figure and one platform")
    for name in names:
        get_platform(name)  # fail fast on unknown presets / bad variants
    for figure_id in figures:
        if figure_id not in REGISTRY:
            raise SweepConfigError(f"unknown figure {figure_id!r}")
        if not _accepts_platform(REGISTRY[figure_id]):
            raise SweepConfigError(
                f"figure {figure_id!r} does not take a platform parameter"
            )
    tasks = [
        PlatformTask(figure_id, name, seed, tuple(sorted(kwargs.items())))
        for figure_id in figures
        for name in names
    ]
    results = run_tasks(
        run_platform_figure, tasks, parallel=parallel, max_workers=max_workers
    )
    return {
        (task.figure_id, task.platform): result
        for task, result in zip(tasks, results)
    }


# -- tenant populations ----------------------------------------------------


DEFAULT_TENANT_SCHEMES = ("a4", "ioca", "isolate")
"""The tenant ablation's comparison set: the paper's scheme, the IOCA
per-tenant baseline, and static CAT."""


@dataclass(frozen=True)
class TenantCellTask:
    """One (tenant count, scheme) cell of a tenant-population sweep.

    Frozen + field types all primitive, so it pickles cheaply into the
    shared process pool (the same shape as :class:`PlatformTask`)."""

    tenants: int
    scheme: str
    seed: int
    epochs: int
    platform: Optional[str] = None


def run_tenant_cell(task: TenantCellTask) -> List:
    """Worker entry point: one generated population under one scheme.

    Returns the per-tenant :class:`~repro.experiments.report.TenantSlo`
    rows (frozen dataclasses — picklable back through the pool)."""
    from repro.experiments.tenants import build_tenant_server, evaluate_slos

    server = build_tenant_server(
        task.tenants,
        scheme=task.scheme,
        seed=task.seed,
        platform=task.platform,
    )
    result = server.run(epochs=task.epochs)
    return evaluate_slos(result, server.tenants())


def tenant_sweep(
    counts: Sequence[int] = (2, 4, 6),
    schemes: Sequence[str] = DEFAULT_TENANT_SCHEMES,
    seed: int = 0xA4,
    epochs: int = 10,
    platform: Optional[str] = None,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> Dict[Tuple[int, str], List]:
    """Run every (tenant count, scheme) cell, optionally through the pool.

    Each count draws its population once (same seed), so all schemes in a
    column face the identical tenants; results come back insertion-ordered
    as ``{(count, scheme): [TenantSlo, ...]}``.
    """
    if not counts or not schemes:
        raise SweepConfigError("need at least one tenant count and scheme")
    tasks = [
        TenantCellTask(n, scheme, seed, epochs, platform)
        for n in counts
        for scheme in schemes
    ]
    results = run_tasks(
        run_tenant_cell, tasks, parallel=parallel, max_workers=max_workers
    )
    return {
        (task.tenants, task.scheme): rows
        for task, rows in zip(tasks, results)
    }


def tenant_sweep_summary(
    results: Dict[Tuple[int, str], List],
) -> FigureResult:
    """Condense a :func:`tenant_sweep`: SLOs met and mean attainment per
    (tenant count, scheme) cell."""
    summary = FigureResult(
        figure="Tenant sweep",
        title="SLO attainment per tenant count and scheme",
        columns=["tenants", "scheme", "slos_met", "slos_total",
                 "mean_attainment"],
    )
    for (count, scheme), rows in results.items():
        with_slo = [r for r in rows if r.slo_p99_latency is not None
                    or r.slo_min_throughput is not None]
        summary.add_row(
            tenants=count,
            scheme=scheme,
            slos_met=sum(1 for r in with_slo if r.met),
            slos_total=len(with_slo),
            mean_attainment=(
                sum(r.attainment for r in with_slo) / len(with_slo)
                if with_slo else 1.0
            ),
        )
    return summary


def platform_sweep_summary(
    results: Dict[Tuple[str, str], FigureResult],
) -> FigureResult:
    """Condense a :func:`sweep_platforms` result into one table: the mean
    of each figure's numeric columns per platform (a coarse sensitivity
    read-out; the per-cell tables carry the detail)."""
    summary = FigureResult(
        figure="Platform sweep",
        title="per-platform mean of each figure's numeric columns",
        columns=["figure", "platform", "column", "mean"],
    )
    for (figure_id, platform_name), result in results.items():
        for column in result.columns:
            values = [
                float(row[column])
                for row in result.rows
                if isinstance(row[column], (int, float))
                and not isinstance(row[column], bool)
            ]
            if values:
                summary.add_row(
                    figure=figure_id,
                    platform=platform_name,
                    column=column,
                    mean=mean(values),
                )
    return summary
