"""Multi-seed repetition and averaging.

The paper averages every result over five iterations (§6).  This module
provides the equivalent: run a server-builder or a figure runner across
seeds and average the numeric outputs, reporting spread so users can judge
simulation noise (the paper makes the same point about X-Mem's run-to-run
variance in its artifact appendix).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.errors import FigureShapeError, SweepConfigError
from repro.experiments.harness import Server
from repro.experiments.parallel import (
    METRIC_FIELDS,
    FigureTask,
    SeedTask,
    run_figure,
    run_tasks,
    seed_metrics,
)
from repro.experiments.report import FigureResult

DEFAULT_SEEDS = (0xA4, 0xA5, 0xA6, 0xA7, 0xA8)
"""Five iterations, like the paper."""

_NUMERIC_FIELDS = METRIC_FIELDS
"""Back-compat alias; the canonical tuple lives in
:mod:`repro.experiments.parallel` so worker processes import it without
pulling in this module."""


def mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


@dataclass
class MetricStats:
    mean: float
    stdev: float
    values: List[float] = field(default_factory=list)

    @property
    def rel_spread(self) -> float:
        return self.stdev / abs(self.mean) if self.mean else 0.0


@dataclass
class MultiSeedResult:
    """Per-stream metric statistics across seeds."""

    seeds: Sequence[int]
    streams: Dict[str, Dict[str, MetricStats]]
    mem_total_bw: MetricStats
    total_events: int = 0
    """Simulated events executed across all seeds, as reported by each
    seed's simulation (a memoized summary carries the count from the run
    that originally produced it)."""

    def metric(self, stream: str, name: str) -> MetricStats:
        return self.streams[stream][name]


def run_repeated(
    build: Callable[[int], Server],
    epochs: int,
    warmup: int,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> MultiSeedResult:
    """Run ``build(seed)`` for each seed and collect metric statistics.

    ``build`` must return a fully configured (workloads + manager) server.
    With ``parallel=True`` the seeds run across a process pool (``build``
    must then be a module-level callable so it pickles); results are
    identical to the serial path because both assemble the same per-seed
    summaries in seed order.
    """
    if not seeds:
        raise SweepConfigError("need at least one seed")
    tasks = [SeedTask(build, epochs, warmup, seed) for seed in seeds]
    summaries = run_tasks(
        seed_metrics, tasks, parallel=parallel, max_workers=max_workers
    )
    per_stream: Dict[str, Dict[str, List[float]]] = {}
    mem_values: List[float] = []
    total_events = 0
    for mem_total_bw, streams, events in summaries:
        mem_values.append(mem_total_bw)
        total_events += events
        for name, metrics in streams.items():
            bucket = per_stream.setdefault(name, {})
            for field_name, value in metrics.items():
                bucket.setdefault(field_name, []).append(value)
    return MultiSeedResult(
        seeds=tuple(seeds),
        streams={
            name: {
                metric: MetricStats(mean(vals), stdev(vals), vals)
                for metric, vals in metrics.items()
            }
            for name, metrics in per_stream.items()
        },
        mem_total_bw=MetricStats(mean(mem_values), stdev(mem_values), mem_values),
        total_events=total_events,
    )


def average_figure(
    runner: Callable[..., FigureResult],
    seeds: Sequence[int] = DEFAULT_SEEDS,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    **kwargs,
) -> FigureResult:
    """Run a figure runner once per seed and average its numeric cells.

    Rows are matched by position (every figure runner is deterministic in
    row order); non-numeric cells are taken from the first run.  With
    ``parallel=True`` the seeds run across a process pool (``runner`` must
    be module-level so it pickles).
    """
    if not seeds:
        raise SweepConfigError("need at least one seed")
    tasks = [
        FigureTask(runner, seed, tuple(kwargs.items())) for seed in seeds
    ]
    results = run_tasks(
        run_figure, tasks, parallel=parallel, max_workers=max_workers
    )
    first = results[0]
    for other in results[1:]:
        if len(other.rows) != len(first.rows):
            raise FigureShapeError(
                "figure runners must be deterministic in shape"
            )
    averaged = FigureResult(
        figure=first.figure,
        title=f"{first.title} (mean of {len(seeds)} seeds)",
        columns=first.columns,
        notes=list(first.notes),
    )
    for index, row in enumerate(first.rows):
        out = {}
        for column, value in row.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[column] = mean(
                    [float(r.rows[index][column]) for r in results]
                )
            else:
                out[column] = value
        averaged.add_row(**out)
    return averaged
