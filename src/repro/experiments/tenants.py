"""Seeded N-tenant scenario generator with realistic traffic shapes.

Today's figures co-run a handful of fixed workloads; this module generates
whole tenant *populations* (ROADMAP item 2): latency-critical service
tenants beside best-effort batch, each with a core budget, an SLO, and a
traffic shape drawn from a seeded RNG —

* **steady** — the tenant serves continuously;
* **diurnal** — long active/quiet swings (multi-epoch day/night cycles);
* **flash-crowd** — short intense bursts separated by long lulls.

Working-set sizes are heavy-tailed (:func:`random.Random.paretovariate`),
mirroring measured object-size distributions: most tenants are small, a
few are LLC-sized monsters.  Everything is derived from ``(n, seed,
platform)`` alone, so the same arguments always produce the identical
scenario (:func:`traffic_trace` is the determinism witness) and the
runcache can key cells on just those inputs.

The generated workloads are :class:`~repro.workloads.phased.PhasedWorkload`
instances with per-request latency recording on, so each tenant exposes
p50/p99 latency and request throughput per epoch — the inputs the SLO
report (:func:`evaluate_slos`) and the IOCA controller feed on.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from repro.experiments.scenarios import build_server
from repro.platform import DEFAULT_PLATFORM, PlatformSpec, get_platform
from repro.tenancy import (
    CLASS_BEST_EFFORT,
    CLASS_LATENCY_CRITICAL,
    TenantSpec,
)
from repro.workloads.base import Workload
from repro.workloads.phased import PhasedWorkload
from repro.workloads.synthetic import AccessProfile

SHAPE_STEADY = "steady"
SHAPE_DIURNAL = "diurnal"
SHAPE_FLASH_CROWD = "flash-crowd"
SHAPES = (SHAPE_STEADY, SHAPE_DIURNAL, SHAPE_FLASH_CROWD)

PARETO_ALPHA = 1.2
"""Shape of the working-set size tail; <2 keeps the variance heavy."""

WS_TAIL_CAP = 8.0
"""Cap on the Pareto multiplier so one tenant cannot dwarf the address
space (the 99.9th percentile of the distribution, roughly)."""


@dataclass(frozen=True)
class TenantTraffic:
    """One generated tenant: its spec plus the drawn traffic parameters.

    Frozen and fully serializable (``asdict``) — the deterministic trace
    the generator promises is exactly the tuple of these."""

    spec: TenantSpec
    shape: str
    working_set_lines: int
    pattern: str
    write_fraction: float
    active_cycles: float
    idle_cycles: float
    duty: float
    """Fraction of wall-clock the tenant is active (active / (active+idle))."""


def _draw_shape(rng: random.Random, index: int) -> str:
    # First two tenants anchor the common case (one steady LC, one diurnal
    # BE); the rest draw freely so small-n scenarios stay representative.
    if index == 0:
        return SHAPE_STEADY
    if index == 1:
        return SHAPE_DIURNAL
    return rng.choice(SHAPES)


def plan_tenants(
    n: int,
    seed: int = 0xA4,
    platform: Optional[PlatformSpec] = None,
    spare_cores: int = 0,
) -> List[TenantTraffic]:
    """Draw an ``n``-tenant population from ``seed`` on ``platform``.

    Tenants alternate latency-critical / best-effort (even/odd index), so
    any ``n >= 2`` mixes both classes.  Core budgets split the platform's
    cores (minus ``spare_cores``) evenly, remainder to the earliest
    tenants; every tenant gets at least one core.
    """
    if n < 1:
        raise ValueError("need at least one tenant")
    platform = get_platform(platform)
    budget = platform.cores - spare_cores
    if budget < n:
        raise ValueError(
            f"{n} tenants need {n} cores; platform {platform.name} has "
            f"{budget} available"
        )
    rng = random.Random(seed)
    per, extra = divmod(budget, n)
    epoch = float(platform.epoch_cycles)
    way_lines = platform.llc_way_lines
    plans: List[TenantTraffic] = []
    for i in range(n):
        latency_critical = i % 2 == 0
        cores = per + (1 if i < extra else 0)
        shape = _draw_shape(rng, i)
        if shape == SHAPE_STEADY:
            active, idle = 4.0 * epoch, 0.0
        elif shape == SHAPE_DIURNAL:
            active = rng.uniform(3.0, 6.0) * epoch
            idle = active * rng.uniform(0.5, 1.0)
        else:  # flash crowd
            active = rng.uniform(0.2, 0.5) * epoch
            idle = rng.uniform(2.0, 4.0) * epoch
        duty = active / (active + idle)
        # Heavy-tailed working sets: most tenants want ~2 LLC ways, the
        # tail wants most of the cache.  Summed across tenants the demand
        # oversubscribes the LLC, so partitioning decisions are what
        # separate met from missed SLOs.
        tail = min(WS_TAIL_CAP, rng.paretovariate(PARETO_ALPHA))
        ws = max(256, int(way_lines * (0.75 + tail)))
        compute = 3.0
        if latency_critical:
            pattern = "rand"
            write_fraction = rng.uniform(0.05, 0.2)
            # Per-request latency = hierarchy latency + compute: ~47 cycles
            # served from the LLC, ~200+ from memory.  A target drawn
            # between those is attainable exactly when the tenant's hot set
            # stays cached — the discrimination the ablation measures.
            slo_p99 = rng.uniform(
                1.4 * platform.llc_hit_cycles, 0.8 * platform.memory_cycles
            )
            optimistic = platform.llc_hit_cycles + compute
            achievable = duty * epoch * cores / optimistic
            slo_tp = achievable * rng.uniform(0.3, 0.6)
            spec = TenantSpec(
                name=f"t{i}-lc",
                tenant_class=CLASS_LATENCY_CRITICAL,
                core_budget=cores,
                slo_p99_latency=round(slo_p99, 1),
                slo_min_throughput=round(slo_tp, 1),
            )
        else:
            pattern = rng.choice(("seq", "rand"))
            write_fraction = rng.uniform(0.2, 0.5)
            # Batch tenants promise at most a throughput floor (half of
            # them promise nothing), sized against memory-latency service.
            pessimistic = platform.memory_cycles + compute
            achievable = duty * epoch * cores / pessimistic
            slo_tp = (
                round(achievable * rng.uniform(0.3, 0.6), 1)
                if rng.random() < 0.5
                else None
            )
            spec = TenantSpec(
                name=f"t{i}-be",
                tenant_class=CLASS_BEST_EFFORT,
                core_budget=cores,
                slo_min_throughput=slo_tp,
            )
        plans.append(
            TenantTraffic(
                spec=spec,
                shape=shape,
                working_set_lines=ws,
                pattern=pattern,
                write_fraction=round(write_fraction, 3),
                active_cycles=round(active, 1),
                idle_cycles=round(idle, 1),
                duty=round(duty, 4),
            )
        )
    return plans


def tenant_workloads(plans: List[TenantTraffic]) -> List[Workload]:
    """Instantiate one service/batch workload per planned tenant."""
    workloads: List[Workload] = []
    for plan in plans:
        spec = plan.spec
        suffix = "svc" if spec.latency_critical else "batch"
        profile = AccessProfile(
            working_set_lines=plan.working_set_lines,
            pattern=plan.pattern,
            write_fraction=plan.write_fraction,
        )
        workloads.append(
            PhasedWorkload(
                name=f"{spec.name}-{suffix}",
                profile=profile,
                priority=spec.priority,
                active_cycles=plan.active_cycles,
                idle_cycles=plan.idle_cycles,
                cores=spec.core_budget,
                tenant=spec,
                record_latency=True,
            )
        )
    return workloads


def traffic_trace(
    n: int,
    seed: int = 0xA4,
    platform: Optional[PlatformSpec] = None,
    spare_cores: int = 0,
) -> List[Dict]:
    """The generator's deterministic witness: every drawn parameter of
    every tenant, as plain dicts.  Same arguments -> identical trace."""
    return [
        asdict(plan)
        for plan in plan_tenants(n, seed, platform, spare_cores)
    ]


def build_tenant_server(
    n: int,
    scheme: str = "a4",
    seed: int = 0xA4,
    platform: Optional[PlatformSpec] = None,
    spare_cores: int = 0,
    **kwargs,
):
    """Generate an ``n``-tenant scenario and assemble its server.

    The workload RNG streams derive from the server seed exactly as in
    every fixed scenario, so two servers built from the same arguments
    run bit-identically regardless of the attached scheme's decisions.
    """
    plans = plan_tenants(n, seed, platform, spare_cores)
    workloads = tenant_workloads(plans)
    return build_server(
        workloads, scheme=scheme, seed=seed, platform=platform, **kwargs
    )


def evaluate_slos(result, tenants) -> List["TenantSlo"]:
    """Measure each tenant's SLO attainment over the run's window.

    A tenant's p99 is its *worst* workload's aggregated p99 (an SLO is a
    promise on every request, not the average stream); throughput is the
    tenant's total completed requests per window epoch.
    """
    from repro.experiments.report import TenantSlo

    epochs = max(1, len(result.window))
    aggregates = result.aggregates()
    rows: List[TenantSlo] = []
    for tenant in tenants:
        aggs = [
            agg
            for name, agg in aggregates.items()
            if result.server.workload(name).tenant.name == tenant.name
        ]
        served = [a for a in aggs if a.requests]
        p99 = max((a.p99_latency for a in served), default=0.0)
        throughput = sum(a.requests for a in aggs) / epochs
        rows.append(
            TenantSlo(
                tenant=tenant.name,
                tenant_class=tenant.tenant_class,
                p99_latency=p99,
                slo_p99_latency=tenant.slo_p99_latency,
                throughput=throughput,
                slo_min_throughput=tenant.slo_min_throughput,
            )
        )
    return rows
