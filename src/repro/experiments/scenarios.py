"""Workload combinations used by the paper's evaluation (§6, §7).

* :func:`microbenchmark_workloads` — §7.1: DPDK-T (HPW) + FIO (LPW) + the
  three X-Mem instances of Table 3;
* :func:`hpw_heavy_workloads` — Fig. 13a: seven HPWs, four LPWs;
* :func:`lpw_heavy_workloads` — Fig. 13b: four HPWs, seven LPWs;
* :func:`build_server` — assemble a server with a scheme manager attached.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.policy import A4Policy
from repro.core.variants import make_manager
from repro.experiments.errors import ConfigError
from repro.experiments.harness import Server
from repro.platform import DEFAULT_PLATFORM, PlatformSpec, get_platform
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.tenancy import TenantSet
from repro.workloads.base import Workload
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fastclick import fastclick
from repro.workloads.ffsb import ffsb_heavy, ffsb_light
from repro.workloads.fio import FioWorkload
from repro.workloads.redis import redis_pair
from repro.workloads.spec import spec_workload
from repro.workloads.xmem import xmem_table3

KB = 1024
MB = 1024 * KB

SERVER_CORES = DEFAULT_PLATFORM.cores
"""The paper's Xeon Gold 6140 core count (one core is the A4 daemon's).
Back-compat alias — the budget now lives on the platform spec."""


def microbenchmark_workloads(
    packet_bytes: int = 1024,
    block_bytes: int = 2 * MB,
    platform: PlatformSpec = DEFAULT_PLATFORM,
) -> List[Workload]:
    """§7.1 setup: DPDK-T (HPW, 4 cores) + FIO (LPW, 4 cores) + Table 3."""
    workloads: List[Workload] = [
        DpdkWorkload(
            name="dpdk-t",
            touch=True,
            cores=4,
            packet_bytes=packet_bytes,
            priority=PRIORITY_HIGH,
        ),
        FioWorkload(
            name="fio",
            block_bytes=block_bytes,
            cores=4,
            io_depth=32,
            priority=PRIORITY_LOW,
        ),
    ]
    workloads.extend(xmem_table3(platform))
    return workloads


def hpw_heavy_workloads(
    platform: PlatformSpec = DEFAULT_PLATFORM,
) -> List[Workload]:
    """Fig. 13a: HPWs in bold — Fastclick, FFSB-L, Redis-S/C, x264, parest,
    xalancbmk; LPWs — FFSB-H, bwaves, lbm, mcf."""
    redis_s, redis_c = redis_pair(PRIORITY_HIGH, PRIORITY_HIGH)
    return [
        fastclick(priority=PRIORITY_HIGH),
        ffsb_heavy(priority=PRIORITY_LOW),
        ffsb_light(priority=PRIORITY_HIGH),
        redis_s,
        redis_c,
        spec_workload("x264", PRIORITY_HIGH, platform=platform),
        spec_workload("parest", PRIORITY_HIGH, platform=platform),
        spec_workload("xalancbmk", PRIORITY_HIGH, platform=platform),
        spec_workload("bwaves", PRIORITY_LOW, platform=platform),
        spec_workload("lbm", PRIORITY_LOW, platform=platform),
        spec_workload("mcf", PRIORITY_LOW, platform=platform),
    ]


def lpw_heavy_workloads(
    platform: PlatformSpec = DEFAULT_PLATFORM,
) -> List[Workload]:
    """Fig. 13b: the LPW-focused combination — x264 and parest move to the
    LP side, FFSB-L joins them, leaving four HPWs."""
    redis_s, redis_c = redis_pair(PRIORITY_HIGH, PRIORITY_HIGH)
    return [
        fastclick(priority=PRIORITY_HIGH),
        ffsb_heavy(priority=PRIORITY_LOW),
        ffsb_light(priority=PRIORITY_LOW),
        redis_s,
        redis_c,
        spec_workload("xalancbmk", PRIORITY_HIGH, platform=platform),
        spec_workload("x264", PRIORITY_LOW, platform=platform),
        spec_workload("parest", PRIORITY_LOW, platform=platform),
        spec_workload("bwaves", PRIORITY_LOW, platform=platform),
        spec_workload("lbm", PRIORITY_LOW, platform=platform),
        spec_workload("mcf", PRIORITY_LOW, platform=platform),
    ]


def daemon_interference_workloads(
    platform: PlatformSpec = DEFAULT_PLATFORM,
) -> List[Workload]:
    """A §5.5-flavoured mix: latency-critical network + cache-sensitive
    service + bursty system daemons (KSM, zswap) that phase in and out —
    the scenario that exercises A4's detection *and* restoration loop."""
    from repro.workloads.sysdaemons import ksm, zswap

    return [
        fastclick(priority=PRIORITY_HIGH),
        spec_workload("parest", PRIORITY_HIGH, platform=platform),
        spec_workload("x264", PRIORITY_HIGH, platform=platform),
        ksm(phased=True, priority=PRIORITY_LOW, platform=platform),
        zswap(phased=True, priority=PRIORITY_LOW, platform=platform),
    ]


def chaos_workloads() -> List[Workload]:
    """The chaos harness's mix: every fault surface in one server —
    network I/O (NIC storms), storage I/O (NVMe stalls, DMA leak), a
    cache-sensitive HPW (hit-rate baseline to corrupt), and a phased
    daemon (forced phase flips)."""
    from repro.workloads.sysdaemons import ksm

    return [
        DpdkWorkload(
            name="dpdk", touch=True, cores=2, priority=PRIORITY_HIGH
        ),
        FioWorkload(
            name="fio",
            block_bytes=2 * MB,
            cores=2,
            io_depth=32,
            priority=PRIORITY_LOW,
        ),
        spec_workload("parest", PRIORITY_HIGH),
        spec_workload("mcf", PRIORITY_LOW),
        ksm(phased=True, priority=PRIORITY_LOW),
    ]


def validate_core_budgets(
    workloads: List[Workload],
    cores: int,
) -> TenantSet:
    """Check workload core demands against the server and tenant budgets.

    Raises :class:`~repro.experiments.errors.ConfigError` naming every
    over-subscribed tenant, at *build* time — before any setup work — so a
    bad scenario fails with the offender's name instead of a mid-setup
    ``CoreAllocationError``.  Returns the implied :class:`TenantSet`.
    """
    tenants = TenantSet.from_workloads(workloads)
    demand = {t.name: 0 for t in tenants}
    for workload in workloads:
        demand[workload.tenant.name] += workload.num_cores
    over = [
        f"{t.name} (wants {demand[t.name]} cores, budget {t.core_budget})"
        for t in tenants
        if demand[t.name] > t.core_budget
    ]
    if over:
        raise ConfigError(
            f"over-subscribed tenants: {'; '.join(over)}"
        )
    total = sum(demand.values())
    if total > cores:
        raise ConfigError(
            f"workloads demand {total} cores but the platform has {cores}; "
            "tenant demands: "
            + ", ".join(f"{name}={n}" for name, n in demand.items())
        )
    return tenants


def build_server(
    workloads: List[Workload],
    scheme: str = "default",
    cores: Optional[int] = None,
    seed: int = 0xA4,
    policy: Optional[A4Policy] = None,
    epoch_cycles: Optional[float] = None,
    fault_plan=None,
    platform: Optional[PlatformSpec] = None,
) -> Server:
    """Assemble a server, add ``workloads``, attach the scheme manager.

    ``fault_plan`` defaults to the environment selection
    (``REPRO_FAULT_INTENSITY``; see :mod:`repro.faults.plan`) so chaos can
    be switched on for any existing experiment without code changes.
    ``platform`` (a spec or preset name) selects the microarchitecture;
    default-policy managers are anchored to it automatically, and the core
    budget defaults to the platform's core count.
    """
    platform = get_platform(platform)
    if cores is None:
        cores = platform.cores
    validate_core_budgets(workloads, cores)
    kwargs = {}
    if epoch_cycles is not None:
        kwargs["epoch_cycles"] = epoch_cycles
    if fault_plan is None:
        from repro.faults.plan import FaultPlan

        fault_plan = FaultPlan.from_env()
    server = Server(
        cores=cores, seed=seed, fault_plan=fault_plan, platform=platform,
        **kwargs,
    )
    server.add_workloads(workloads)
    server.set_manager(make_manager(scheme, policy, platform=platform))
    return server
