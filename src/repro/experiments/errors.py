"""Typed exceptions for the experiment layer.

Every error raised by the harness, sweep, and figure setup paths derives
from :class:`ExperimentError` so callers — in particular the parallel
runner's per-task error capture — can classify failures without string
matching.  Each concrete class *also* inherits the builtin it replaced
(``ValueError`` / ``RuntimeError``), so pre-existing ``except ValueError``
call sites keep working.

Classification of an arbitrary exception (including one re-hydrated from a
worker traceback) goes through :func:`classify`.
"""

from __future__ import annotations


CATEGORY_POOL = "pool"
"""A worker pool broke underneath a dispatch (dead worker, OOM kill)."""

CATEGORY_WORKER_DEATH = "worker-death"
"""A job-service worker process died without recording a failure
(SIGKILL, OOM, segfault) — synthesized by the supervisor, not raised."""

CATEGORY_STALLED = "stalled"
"""A job-service worker stopped heartbeating and was killed by the
supervisor — synthesized by the supervisor, not raised."""

CATEGORY_CORRUPT = "corrupt"
"""A persisted job row failed validation (unreadable spec JSON); the
job cannot be executed, let alone retried."""

FAIL_FAST_CATEGORIES = frozenset({"config", "figure", CATEGORY_CORRUPT})
"""Categories the retry layer never retries: re-running an invalid
configuration, a shape bug, or an unreadable spec yields the same
failure, only later.  Everything else is presumed transient."""

RETRYABLE_CATEGORIES = frozenset(
    {
        "experiment",
        "resources",
        "allocation",
        "runtime",
        CATEGORY_POOL,
        CATEGORY_WORKER_DEATH,
        CATEGORY_STALLED,
    }
)
"""The complement of :data:`FAIL_FAST_CATEGORIES` over the known
taxonomy (documentation + test lock; the retry policy only checks
membership in ``fail_fast``)."""


class ExperimentError(Exception):
    """Base class for all experiment-layer failures."""

    category = "experiment"


class WorkloadConfigError(ExperimentError, ValueError):
    """A workload/figure configuration is invalid — e.g. asking to disable
    DCA for a workload with no I/O device, or an unknown workload name."""

    category = "config"


class InsufficientEpochsError(ExperimentError, ValueError):
    """``epochs`` does not exceed ``warmup``; no measured samples remain."""

    category = "config"


class ConfigError(ExperimentError, ValueError):
    """A scenario configuration violates a platform/tenant budget — e.g.
    workload ``cores=`` sums exceed the platform's core count, or a tenant's
    workloads oversubscribe its declared core budget.  Raised at build time
    so the failure names the offender instead of surfacing mid-setup as a
    generic allocation error."""

    category = "config"


class CoreAllocationError(ExperimentError, RuntimeError):
    """The scenario requests more cores than the simulated server has."""

    category = "resources"


class SweepConfigError(ExperimentError, ValueError):
    """A multi-seed sweep was configured with no seeds."""

    category = "config"


class FigureShapeError(ExperimentError, RuntimeError):
    """A figure runner returned differently-shaped results across seeds;
    runners must be deterministic in shape for seed averaging."""

    category = "figure"


def classify(exc: BaseException) -> str:
    """Return the failure category for ``exc``.

    Typed experiment errors carry their own ``category``; anything else is
    bucketed by builtin family so pool-side tracebacks remain useful.
    RDT/PCIe apply errors get their own ``allocation`` bucket (checked
    before the ``ValueError`` family — :class:`ClosConfigError` *is* a
    ``ValueError``) so a bad mask computed from a sweep config surfaces as
    exactly that, not as a generic config failure.
    """
    from concurrent.futures.process import BrokenProcessPool

    from repro.rdt.cat import ClosConfigError
    from repro.uncore.pcie import PortConfigError

    if isinstance(exc, ExperimentError):
        return exc.category
    if isinstance(exc, BrokenProcessPool):
        return CATEGORY_POOL
    if isinstance(exc, (ClosConfigError, PortConfigError)):
        return "allocation"
    if isinstance(exc, (ValueError, TypeError)):
        return "config"
    if isinstance(exc, MemoryError):
        return "resources"
    return "runtime"


def classify_name(exc_type_name: str) -> str:
    """Best-effort category from an exception *type name* alone.

    The process-pool runner serializes worker failures as
    ``(type_name, message, traceback)`` strings; this maps the name back to
    a category without needing the original object.
    """
    mapping = {
        "WorkloadConfigError": "config",
        "InsufficientEpochsError": "config",
        "SweepConfigError": "config",
        "ConfigError": "config",
        "TenantConfigError": "config",
        "ValueError": "config",
        "TypeError": "config",
        "CoreAllocationError": "resources",
        "MemoryError": "resources",
        "FigureShapeError": "figure",
        "ClosConfigError": "allocation",
        "TransientClosError": "allocation",
        "PortConfigError": "allocation",
        "TransientPortError": "allocation",
        "BrokenProcessPool": CATEGORY_POOL,
    }
    return mapping.get(exc_type_name, "runtime")
