"""The simulated server testbed and run harness.

:class:`Server` assembles one socket — simulator, cache hierarchy, CAT,
memory, PCIe/IIO, PCM — then accepts workloads and an optional LLC manager
(Default / Isolate / A4).  :func:`Server.run` advances the simulation epoch
by epoch, sampling counters and invoking the manager at each boundary,
mirroring the paper's 1-second monitoring loop, and returns a
:class:`RunResult` aggregated over the post-warm-up window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro import obsv
from repro.experiments.errors import CoreAllocationError, InsufficientEpochsError
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.platform import DEFAULT_PLATFORM, PlatformSpec, get_platform
from repro.rdt.cat import CacheAllocation
from repro.rdt.mba import MemoryBandwidthAllocation
from repro.rdt.monitor import OccupancyMonitor
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.telemetry.counters import CounterBank
from repro.telemetry.pcm import EpochSample, PcmSampler
from repro.uncore.iio import IIOAgent
from repro.uncore.memory import MemoryController
from repro.uncore.msr import MsrFile
from repro.uncore.pcie import PcieComplex, PciePort
from repro.workloads.base import Workload

REGION_PAD_LINES = 32
"""Guard gap between allocated regions (keeps streams' sets decorrelated)."""


class Server:
    """One simulated datacenter server socket."""

    def __init__(
        self,
        cores: int = 18,
        epoch_cycles: Optional[float] = None,
        seed: int = 0xA4,
        hierarchy_cfg: Optional[HierarchyConfig] = None,
        fault_plan=None,
        platform: Optional[PlatformSpec] = None,
    ):
        self.platform = get_platform(platform)
        """The microarchitecture this socket simulates; every geometry- or
        timing-dependent component below derives its defaults from it."""
        if epoch_cycles is None:
            epoch_cycles = self.platform.epoch_cycles
        self.sim = Simulator()
        self.rng = DeterministicRng(seed)
        self.counters = CounterBank()
        self.cat = CacheAllocation(ways=self.platform.llc_ways)
        self.mba = MemoryBandwidthAllocation()
        self.memory = MemoryController.for_platform(
            self.counters, self.platform
        )
        hierarchy_cfg = hierarchy_cfg or HierarchyConfig.for_platform(
            self.platform, cores=cores
        )
        hierarchy_cfg.cores = cores
        self.hierarchy = CacheHierarchy(
            hierarchy_cfg, self.cat, self.memory, self.counters, mba=self.mba
        )
        self.iio = IIOAgent(self.hierarchy)
        self.msr = MsrFile(self.hierarchy.llc)
        self.pcie = PcieComplex(self.counters)
        self.pcm = PcmSampler(
            self.counters, epoch_cycles, line_bytes=self.platform.line_bytes
        )
        self.monitor = OccupancyMonitor(self.hierarchy.llc)
        self.faults = None
        if fault_plan is not None and fault_plan.enabled:
            # Interpose on the *control plane* only: the hierarchy and the
            # devices keep their references to the real CAT/PCIe objects
            # (grabbed above), so injected failures hit the manager's
            # writes, never the data path.  Imported lazily so a faultless
            # server never loads the module.
            from repro.faults.inject import (
                FaultInjector,
                FaultyCacheAllocation,
                FaultyPcieView,
            )

            self.faults = FaultInjector(fault_plan, self.rng)
            self.cat = FaultyCacheAllocation(self.cat, self.faults)
            self.pcie = FaultyPcieView(self.pcie, self.faults)
        self.epoch_cycles = epoch_cycles
        self.total_cores = cores
        self.workloads: List[Workload] = []
        self.manager = None
        self.epochs_completed = 0
        """Cumulative epoch count across every ``run`` call (and across a
        checkpoint restore — it pickles with the server), so trace epochs
        and checkpoint indices of a resumed run line up with the
        uninterrupted equivalent."""
        self._next_core = 0
        self._next_addr = 1 << 20
        self._next_port = 0
        self._next_clos = 1
        self._clos: Dict[str, int] = {}

    # -- resource allocation ------------------------------------------------

    def alloc_cores(self, n: int) -> Tuple[int, ...]:
        if self._next_core + n > self.total_cores:
            raise CoreAllocationError(
                f"out of cores: need {n}, have {self.total_cores - self._next_core}"
            )
        cores = tuple(range(self._next_core, self._next_core + n))
        self._next_core += n
        return cores

    def alloc_region(self, lines: int) -> int:
        base = self._next_addr
        self._next_addr += lines + REGION_PAD_LINES
        return base

    def add_port(self, name: str = "") -> PciePort:
        port = self.pcie.add_port(self._next_port, name)
        self._next_port += 1
        return port

    # -- workload / manager management -------------------------------------

    def add_workload(self, workload: Workload) -> Workload:
        """Set a workload up: cores, regions, devices, CLOS, registration.

        May also be called mid-run (between ``run`` calls): the paper's
        Fig. 9 step 1 — the manager is notified so it can re-derive its
        initial partitions for the new workload combination.
        """
        workload.setup(self)
        clos = self._next_clos
        self._next_clos += 1
        self._clos[workload.name] = clos
        for core in workload.cores:
            self.cat.associate(core, clos)
        self.cat.label(clos, workload.tenant.name)
        self.workloads.append(workload)
        self.pcm.register(workload.info())
        if obsv.TRACER is not None:
            obsv.TRACER.emit(
                obsv.KIND_TENANT,
                workload.tenant.name,
                {
                    "workload": workload.name,
                    "clos": clos,
                    "tenant_class": workload.tenant.tenant_class,
                    "cores": list(workload.cores),
                },
            )
        if self.manager is not None:
            self.manager.on_workload_change()
        return workload

    def terminate_workload(self, name: str) -> Workload:
        """Remove a workload from management (its processes idle out; the
        paper's termination event).  Freed cores are not recycled — the
        testbed pins workloads to cores for a run, as in §6."""
        workload = self.workload(name)
        self.workloads.remove(workload)
        self.pcm.unregister(name)
        if self.manager is not None:
            self.manager.on_workload_change()
        return workload

    def add_workloads(self, workloads) -> None:
        for workload in workloads:
            self.add_workload(workload)

    def clos_of(self, name: str) -> int:
        return self._clos[name]

    def workload(self, name: str) -> Workload:
        for workload in self.workloads:
            if workload.name == name:
                return workload
        raise KeyError(name)

    def tenants(self):
        """The :class:`~repro.tenancy.TenantSet` the hosted workloads imply
        (implicit per-workload tenants merged by name)."""
        from repro.tenancy import TenantSet

        return TenantSet.from_workloads(self.workloads)

    def tenant_workloads(self, tenant: str) -> List[Workload]:
        return [w for w in self.workloads if w.tenant.name == tenant]

    def set_manager(self, manager) -> None:
        self.manager = manager
        manager.attach(self)

    # -- execution -------------------------------------------------------------

    def time_shift(self, delta: float) -> None:
        """Advance the wall clock by ``delta`` cycles without simulating.

        The engine fast-forwards (pending events keep their relative
        offsets), and every component holding *absolute* timestamps —
        the memory controller's bandwidth window, in-flight device
        commands, workload latency baselines — is shifted to match, so
        simulation resumes exactly where it left off, just later.  This
        is the primitive interval sampling skips epochs with."""
        self.sim.fast_forward(delta)
        self.memory.time_shift(delta)
        for workload in self.workloads:
            workload.time_shift(delta)

    def _begin_run(self, total_epochs: int = 0):
        """Per-``run`` observability setup shared by the exact and sampled
        executors; returns the context tuple ``_run_epoch`` consumes.

        ``total_epochs`` (the number of epochs this ``run`` call will
        simulate) arms live progress streaming: each epoch then also
        emits a ``progress`` event with done/total, events/s, and an
        ETA — the payload ``tools/service.py watch`` renders."""
        faults = self.faults
        tracer = obsv.TRACER
        profiler = obsv.PROFILER
        if profiler is not None:
            self.sim.profiler = profiler
        epoch_hist = None
        progress = None
        if tracer is not None:
            epoch_hist = obsv.get_registry().histogram(
                "repro_epoch_wall_seconds",
                help="wall time simulating one monitoring epoch",
            )
            # Header event: which microarchitecture produced this trace.
            tracer.platform = self.platform.token
            tracer.emit(
                obsv.KIND_PLATFORM,
                self.platform.name,
                self.platform.fingerprint(),
            )
            if obsv.AUDIT is not None:
                obsv.AUDIT.platform = self.platform.token
            if total_epochs > 0 and (
                tracer.sink is not None or tracer.context is not None
            ):
                # Progress events carry wall-clock rates and per-leg
                # totals, so they are deliberately confined to streaming
                # consumers (a spooled or service-context tracer) — a
                # plain in-memory trace stays deterministic and replay
                # traces stay comparable event-for-event.
                # Totals are absolute (a checkpoint-resumed run reports
                # "epoch 30/40", not "10/10 of the remainder").
                progress = {
                    "base": self.epochs_completed,
                    "total": self.epochs_completed + total_epochs,
                    "started": perf_counter(),
                    "events_base": self.sim.events_executed,
                }
        return (faults, tracer, profiler, epoch_hist, progress)

    def _run_epoch(self, ctx) -> EpochSample:
        """Simulate exactly one monitoring epoch (chaos, events, sample,
        manager) and advance ``epochs_completed``."""
        faults, tracer, profiler, epoch_hist, progress = ctx
        i = self.epochs_completed
        if tracer is not None:
            tracer.epoch = i
            tracer.now = self.sim.now
        if profiler is not None:
            profiler.label = (
                getattr(self.manager, "phase", None) or "epoch"
            )
        if faults is not None:
            # Device chaos is armed before the epoch simulates; delayed
            # CAT commits mature at the boundary, before the manager
            # acts on it; the manager sees the (possibly corrupted)
            # fault view while ``samples`` keeps the true reading.
            faults.epoch_chaos(self)
        wall_started = perf_counter() if tracer is not None else 0.0
        self.sim.run_until(self.sim.now + self.epoch_cycles)
        sample = self.pcm.sample(self.sim.now)
        if tracer is not None:
            wall = perf_counter() - wall_started
            tracer.now = self.sim.now
            tracer.emit(
                obsv.KIND_EPOCH,
                "epoch",
                {
                    "index": i,
                    "events": self.sim.events_executed,
                    "mem_bw": sample.mem_total_bw,
                },
                wall=wall,
            )
            epoch_hist.observe(wall)
            if progress is not None:
                done = self.epochs_completed + 1
                elapsed = perf_counter() - progress["started"]
                session = done - progress["base"]
                rate = 0.0
                if elapsed > 0:
                    rate = (
                        self.sim.events_executed - progress["events_base"]
                    ) / elapsed
                remaining = progress["total"] - done
                eta = (
                    remaining * (elapsed / session)
                    if session > 0 and remaining > 0
                    else 0.0
                )
                tracer.emit(
                    obsv.KIND_PROGRESS,
                    "epoch",
                    {
                        "done": done,
                        "total": progress["total"],
                        "events_per_s": round(rate, 1),
                        "eta_s": round(eta, 3),
                    },
                )
        if self.manager is not None:
            if faults is not None:
                faults.advance_epoch()
                self.manager.on_epoch(faults.filter_sample(sample))
            else:
                self.manager.on_epoch(sample)
        self.epochs_completed += 1
        return sample

    def _maybe_checkpoint(
        self, store, every: int, run_key: Optional[str]
    ) -> None:
        """Write a checkpoint if a store is attached and the cadence says
        so; emits one ``checkpoint`` trace event per snapshot taken."""
        if store is None or every <= 0:
            return
        if self.epochs_completed % every != 0:
            return
        from repro.sim import checkpoint as ckpt

        state = ckpt.snapshot(self)
        key = store.save(run_key or "run", state)
        tracer = obsv.TRACER
        if tracer is not None:
            tracer.now = self.sim.now
            tracer.emit(
                obsv.KIND_CHECKPOINT,
                "snapshot",
                {
                    "epoch": state.epoch,
                    "key": key[:16],
                    "bytes": len(state.payload),
                },
            )

    def run(
        self,
        epochs: int,
        warmup: Optional[int] = None,
        epoch_hook=None,
        sampling=None,
        checkpoint_store=None,
        checkpoint_every: int = 0,
        run_key: Optional[str] = None,
    ) -> "RunResult":
        """Advance the server ``epochs`` monitoring intervals.

        ``sampling`` (a :class:`~repro.sim.sampling.SamplingPlan`) switches
        to the representative-interval executor; exact epoch-by-epoch
        simulation — bit-identical to every previous release — remains the
        default.  ``checkpoint_store`` + ``checkpoint_every`` snapshot the
        whole server every N completed epochs under ``run_key``."""
        if warmup is None:
            warmup = self.platform.warmup_epochs
        if epochs <= warmup:
            raise InsufficientEpochsError(
                "need more epochs than warm-up intervals"
            )
        if sampling is not None:
            from repro.sim.sampling import SampledRun

            return SampledRun(self, sampling).run(
                epochs,
                warmup,
                epoch_hook,
                checkpoint_store=checkpoint_store,
                checkpoint_every=checkpoint_every,
                run_key=run_key,
            )
        samples: List[EpochSample] = []
        ctx = self._begin_run(epochs)
        tracer = ctx[1]
        for _ in range(epochs):
            sample = self._run_epoch(ctx)
            samples.append(sample)
            if epoch_hook is not None:
                epoch_hook(self, sample)
            self._maybe_checkpoint(checkpoint_store, checkpoint_every, run_key)
        if tracer is not None:
            tracer.epoch = -1
        return RunResult(samples=samples, warmup=warmup, server=self)


@dataclass
class StreamAggregate:
    """One workload's metrics averaged over the measurement window."""

    name: str
    ipc: float = 0.0
    llc_hit_rate: float = 0.0
    llc_miss_rate: float = 0.0
    mlc_miss_rate: float = 0.0
    dca_miss_rate: float = 0.0
    throughput: float = 0.0
    """Completed I/O in lines per cycle."""
    avg_latency: float = 0.0
    p99_latency: float = 0.0
    latency_components: Dict[str, float] = field(default_factory=dict)
    requests: int = 0
    dma_leaks: int = 0
    dma_bloats: int = 0
    migrations: int = 0
    packets_dropped: int = 0


@dataclass
class RunResult:
    """Outcome of one experiment run."""

    samples: List[EpochSample]
    warmup: int
    server: Server
    sampling: Optional[object] = None
    """:class:`~repro.sim.sampling.SamplingReport` when the run used
    representative-interval sampling; None for exact runs."""

    @property
    def window(self) -> List[EpochSample]:
        return self.samples[self.warmup:]

    def stream_names(self) -> List[str]:
        names: List[str] = []
        for sample in self.samples:
            for name in sample.streams:
                if name not in names:
                    names.append(name)
        return names

    def aggregate(self, name: str) -> StreamAggregate:
        window = [s.streams[name] for s in self.window if name in s.streams]
        if not window:
            return StreamAggregate(name)
        n = len(window)
        agg = StreamAggregate(name)
        agg.ipc = sum(s.ipc for s in window) / n
        agg.llc_hit_rate = sum(s.llc_hit_rate for s in window) / n
        agg.llc_miss_rate = sum(s.llc_miss_rate for s in window) / n
        agg.mlc_miss_rate = sum(s.mlc_miss_rate for s in window) / n
        agg.dca_miss_rate = sum(s.dca_miss_rate for s in window) / n
        agg.throughput = sum(s.io_throughput_lines_per_cycle for s in window) / n
        agg.requests = sum(s.latency.count for s in window)
        if agg.requests:
            agg.avg_latency = (
                sum(s.latency.mean * s.latency.count for s in window)
                / agg.requests
            )
            weighted = [s for s in window if s.latency.count]
            agg.p99_latency = sum(s.latency.p99 for s in weighted) / len(weighted)
            components: Dict[str, float] = {}
            for s in weighted:
                for key, value in s.latency.components.items():
                    components[key] = components.get(key, 0.0) + value
            agg.latency_components = {
                key: value / len(weighted) for key, value in components.items()
            }
        agg.dma_leaks = sum(s.counters.dma_leaks for s in window)
        agg.dma_bloats = sum(s.counters.dma_bloats for s in window)
        agg.migrations = sum(s.counters.migrations for s in window)
        agg.packets_dropped = sum(s.counters.packets_dropped for s in window)
        return agg

    def aggregates(self) -> Dict[str, StreamAggregate]:
        return {name: self.aggregate(name) for name in self.stream_names()}

    def robustness(self) -> Dict[str, int]:
        """Hardening + fault counters for run reports (empty when the
        manager predates the hardened contract, e.g. a cached stub)."""
        stats: Dict[str, int] = {}
        manager = getattr(self.server, "manager", None)
        if manager is not None and hasattr(manager, "robustness_stats"):
            stats.update(manager.robustness_stats())
        faults = getattr(self.server, "faults", None)
        if faults is not None:
            stats["faults_injected"] = faults.counters.total
        return stats

    @property
    def mem_read_bw(self) -> float:
        window = self.window
        return sum(s.mem_read_bw for s in window) / max(1, len(window))

    @property
    def mem_write_bw(self) -> float:
        window = self.window
        return sum(s.mem_write_bw for s in window) / max(1, len(window))

    @property
    def mem_total_bw(self) -> float:
        return self.mem_read_bw + self.mem_write_bw

    def export_csv(
        self,
        path: str,
        metrics=("ipc", "llc_hit_rate", "io_throughput", "avg_latency"),
    ) -> None:
        """Dump the per-epoch, per-stream time series to ``path`` (CSV).

        For a sampled run a companion ``<path>.sampling.csv`` is written
        alongside, carrying the per-stream extrapolation estimates
        (mean, standard error, relative error) so downstream plots can
        annotate confidence."""
        from repro.telemetry import trace

        trace.write_csv(self.samples, path, metrics)
        if self.sampling is not None:
            self._export_sampling_csv(f"{path}.sampling.csv")

    def _export_sampling_csv(self, path: str) -> None:
        import csv

        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["stream", "metric", "mean", "stderr", "rel_err"])
            for name in sorted(self.sampling.estimates):
                for metric, est in sorted(self.sampling.estimates[name].items()):
                    writer.writerow(
                        [name, metric, est.mean, est.stderr, est.rel_err]
                    )

    def summary(self) -> str:
        """Human-readable per-workload table."""
        lines = [
            f"{'workload':<12} {'IPC':>7} {'LLChit%':>8} {'MLCmiss%':>9} "
            f"{'tput l/c':>9} {'avg lat':>9} {'p99 lat':>9} {'leaks':>7}"
        ]
        for name in self.stream_names():
            agg = self.aggregate(name)
            lines.append(
                f"{name:<12} {agg.ipc:>7.3f} {100 * agg.llc_hit_rate:>8.1f} "
                f"{100 * agg.mlc_miss_rate:>9.1f} {agg.throughput:>9.4f} "
                f"{agg.avg_latency:>9.1f} {agg.p99_latency:>9.1f} "
                f"{agg.dma_leaks:>7}"
            )
        lines.append(
            f"memory bandwidth: read {self.mem_read_bw:.4f} "
            f"write {self.mem_write_bw:.4f} lines/cycle"
        )
        if self.sampling is not None:
            lines.append(self.sampling.summary())
        return "\n".join(lines)
