"""The simulated server testbed and run harness.

:class:`Server` assembles one socket — simulator, cache hierarchy, CAT,
memory, PCIe/IIO, PCM — then accepts workloads and an optional LLC manager
(Default / Isolate / A4).  :func:`Server.run` advances the simulation epoch
by epoch, sampling counters and invoking the manager at each boundary,
mirroring the paper's 1-second monitoring loop, and returns a
:class:`RunResult` aggregated over the post-warm-up window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from repro import obsv
from repro.experiments.errors import CoreAllocationError, InsufficientEpochsError
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.platform import DEFAULT_PLATFORM, PlatformSpec, get_platform
from repro.rdt.cat import CacheAllocation
from repro.rdt.mba import MemoryBandwidthAllocation
from repro.rdt.monitor import OccupancyMonitor
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.telemetry.counters import CounterBank
from repro.telemetry.pcm import EpochSample, PcmSampler
from repro.uncore.iio import IIOAgent
from repro.uncore.memory import MemoryController
from repro.uncore.msr import MsrFile
from repro.uncore.pcie import PcieComplex, PciePort
from repro.workloads.base import Workload

REGION_PAD_LINES = 32
"""Guard gap between allocated regions (keeps streams' sets decorrelated)."""


class Server:
    """One simulated datacenter server socket."""

    def __init__(
        self,
        cores: int = 18,
        epoch_cycles: Optional[float] = None,
        seed: int = 0xA4,
        hierarchy_cfg: Optional[HierarchyConfig] = None,
        fault_plan=None,
        platform: Optional[PlatformSpec] = None,
    ):
        self.platform = get_platform(platform)
        """The microarchitecture this socket simulates; every geometry- or
        timing-dependent component below derives its defaults from it."""
        if epoch_cycles is None:
            epoch_cycles = self.platform.epoch_cycles
        self.sim = Simulator()
        self.rng = DeterministicRng(seed)
        self.counters = CounterBank()
        self.cat = CacheAllocation(ways=self.platform.llc_ways)
        self.mba = MemoryBandwidthAllocation()
        self.memory = MemoryController.for_platform(
            self.counters, self.platform
        )
        hierarchy_cfg = hierarchy_cfg or HierarchyConfig.for_platform(
            self.platform, cores=cores
        )
        hierarchy_cfg.cores = cores
        self.hierarchy = CacheHierarchy(
            hierarchy_cfg, self.cat, self.memory, self.counters, mba=self.mba
        )
        self.iio = IIOAgent(self.hierarchy)
        self.msr = MsrFile(self.hierarchy.llc)
        self.pcie = PcieComplex(self.counters)
        self.pcm = PcmSampler(
            self.counters, epoch_cycles, line_bytes=self.platform.line_bytes
        )
        self.monitor = OccupancyMonitor(self.hierarchy.llc)
        self.faults = None
        if fault_plan is not None and fault_plan.enabled:
            # Interpose on the *control plane* only: the hierarchy and the
            # devices keep their references to the real CAT/PCIe objects
            # (grabbed above), so injected failures hit the manager's
            # writes, never the data path.  Imported lazily so a faultless
            # server never loads the module.
            from repro.faults.inject import (
                FaultInjector,
                FaultyCacheAllocation,
                FaultyPcieView,
            )

            self.faults = FaultInjector(fault_plan, self.rng)
            self.cat = FaultyCacheAllocation(self.cat, self.faults)
            self.pcie = FaultyPcieView(self.pcie, self.faults)
        self.epoch_cycles = epoch_cycles
        self.total_cores = cores
        self.workloads: List[Workload] = []
        self.manager = None
        self._next_core = 0
        self._next_addr = 1 << 20
        self._next_port = 0
        self._next_clos = 1
        self._clos: Dict[str, int] = {}

    # -- resource allocation ------------------------------------------------

    def alloc_cores(self, n: int) -> Tuple[int, ...]:
        if self._next_core + n > self.total_cores:
            raise CoreAllocationError(
                f"out of cores: need {n}, have {self.total_cores - self._next_core}"
            )
        cores = tuple(range(self._next_core, self._next_core + n))
        self._next_core += n
        return cores

    def alloc_region(self, lines: int) -> int:
        base = self._next_addr
        self._next_addr += lines + REGION_PAD_LINES
        return base

    def add_port(self, name: str = "") -> PciePort:
        port = self.pcie.add_port(self._next_port, name)
        self._next_port += 1
        return port

    # -- workload / manager management -------------------------------------

    def add_workload(self, workload: Workload) -> Workload:
        """Set a workload up: cores, regions, devices, CLOS, registration.

        May also be called mid-run (between ``run`` calls): the paper's
        Fig. 9 step 1 — the manager is notified so it can re-derive its
        initial partitions for the new workload combination.
        """
        workload.setup(self)
        clos = self._next_clos
        self._next_clos += 1
        self._clos[workload.name] = clos
        for core in workload.cores:
            self.cat.associate(core, clos)
        self.workloads.append(workload)
        self.pcm.register(workload.info())
        if self.manager is not None:
            self.manager.on_workload_change()
        return workload

    def terminate_workload(self, name: str) -> Workload:
        """Remove a workload from management (its processes idle out; the
        paper's termination event).  Freed cores are not recycled — the
        testbed pins workloads to cores for a run, as in §6."""
        workload = self.workload(name)
        self.workloads.remove(workload)
        self.pcm.unregister(name)
        if self.manager is not None:
            self.manager.on_workload_change()
        return workload

    def add_workloads(self, workloads) -> None:
        for workload in workloads:
            self.add_workload(workload)

    def clos_of(self, name: str) -> int:
        return self._clos[name]

    def workload(self, name: str) -> Workload:
        for workload in self.workloads:
            if workload.name == name:
                return workload
        raise KeyError(name)

    def set_manager(self, manager) -> None:
        self.manager = manager
        manager.attach(self)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        epochs: int,
        warmup: Optional[int] = None,
        epoch_hook=None,
    ) -> "RunResult":
        if warmup is None:
            warmup = self.platform.warmup_epochs
        if epochs <= warmup:
            raise InsufficientEpochsError(
                "need more epochs than warm-up intervals"
            )
        samples: List[EpochSample] = []
        faults = self.faults
        tracer = obsv.TRACER
        profiler = obsv.PROFILER
        if profiler is not None:
            self.sim.profiler = profiler
        epoch_hist = None
        if tracer is not None:
            epoch_hist = obsv.get_registry().histogram(
                "repro_epoch_wall_seconds",
                help="wall time simulating one monitoring epoch",
            )
            # Header event: which microarchitecture produced this trace.
            tracer.platform = self.platform.token
            tracer.emit(
                obsv.KIND_PLATFORM,
                self.platform.name,
                self.platform.fingerprint(),
            )
            if obsv.AUDIT is not None:
                obsv.AUDIT.platform = self.platform.token
        for i in range(epochs):
            if tracer is not None:
                tracer.epoch = i
                tracer.now = self.sim.now
            if profiler is not None:
                profiler.label = (
                    getattr(self.manager, "phase", None) or "epoch"
                )
            if faults is not None:
                # Device chaos is armed before the epoch simulates; delayed
                # CAT commits mature at the boundary, before the manager
                # acts on it; the manager sees the (possibly corrupted)
                # fault view while ``samples`` keeps the true reading.
                faults.epoch_chaos(self)
            wall_started = perf_counter() if tracer is not None else 0.0
            self.sim.run_until(self.sim.now + self.epoch_cycles)
            sample = self.pcm.sample(self.sim.now)
            samples.append(sample)
            if tracer is not None:
                wall = perf_counter() - wall_started
                tracer.now = self.sim.now
                tracer.emit(
                    obsv.KIND_EPOCH,
                    "epoch",
                    {
                        "index": i,
                        "events": self.sim.events_executed,
                        "mem_bw": sample.mem_total_bw,
                    },
                    wall=wall,
                )
                epoch_hist.observe(wall)
            if self.manager is not None:
                if faults is not None:
                    faults.advance_epoch()
                    self.manager.on_epoch(faults.filter_sample(sample))
                else:
                    self.manager.on_epoch(sample)
            if epoch_hook is not None:
                epoch_hook(self, sample)
        if tracer is not None:
            tracer.epoch = -1
        return RunResult(samples=samples, warmup=warmup, server=self)


@dataclass
class StreamAggregate:
    """One workload's metrics averaged over the measurement window."""

    name: str
    ipc: float = 0.0
    llc_hit_rate: float = 0.0
    llc_miss_rate: float = 0.0
    mlc_miss_rate: float = 0.0
    dca_miss_rate: float = 0.0
    throughput: float = 0.0
    """Completed I/O in lines per cycle."""
    avg_latency: float = 0.0
    p99_latency: float = 0.0
    latency_components: Dict[str, float] = field(default_factory=dict)
    requests: int = 0
    dma_leaks: int = 0
    dma_bloats: int = 0
    migrations: int = 0
    packets_dropped: int = 0


@dataclass
class RunResult:
    """Outcome of one experiment run."""

    samples: List[EpochSample]
    warmup: int
    server: Server

    @property
    def window(self) -> List[EpochSample]:
        return self.samples[self.warmup:]

    def stream_names(self) -> List[str]:
        names: List[str] = []
        for sample in self.samples:
            for name in sample.streams:
                if name not in names:
                    names.append(name)
        return names

    def aggregate(self, name: str) -> StreamAggregate:
        window = [s.streams[name] for s in self.window if name in s.streams]
        if not window:
            return StreamAggregate(name)
        n = len(window)
        agg = StreamAggregate(name)
        agg.ipc = sum(s.ipc for s in window) / n
        agg.llc_hit_rate = sum(s.llc_hit_rate for s in window) / n
        agg.llc_miss_rate = sum(s.llc_miss_rate for s in window) / n
        agg.mlc_miss_rate = sum(s.mlc_miss_rate for s in window) / n
        agg.dca_miss_rate = sum(s.dca_miss_rate for s in window) / n
        agg.throughput = sum(s.io_throughput_lines_per_cycle for s in window) / n
        agg.requests = sum(s.latency.count for s in window)
        if agg.requests:
            agg.avg_latency = (
                sum(s.latency.mean * s.latency.count for s in window)
                / agg.requests
            )
            weighted = [s for s in window if s.latency.count]
            agg.p99_latency = sum(s.latency.p99 for s in weighted) / len(weighted)
            components: Dict[str, float] = {}
            for s in weighted:
                for key, value in s.latency.components.items():
                    components[key] = components.get(key, 0.0) + value
            agg.latency_components = {
                key: value / len(weighted) for key, value in components.items()
            }
        agg.dma_leaks = sum(s.counters.dma_leaks for s in window)
        agg.dma_bloats = sum(s.counters.dma_bloats for s in window)
        agg.migrations = sum(s.counters.migrations for s in window)
        agg.packets_dropped = sum(s.counters.packets_dropped for s in window)
        return agg

    def aggregates(self) -> Dict[str, StreamAggregate]:
        return {name: self.aggregate(name) for name in self.stream_names()}

    def robustness(self) -> Dict[str, int]:
        """Hardening + fault counters for run reports (empty when the
        manager predates the hardened contract, e.g. a cached stub)."""
        stats: Dict[str, int] = {}
        manager = getattr(self.server, "manager", None)
        if manager is not None and hasattr(manager, "robustness_stats"):
            stats.update(manager.robustness_stats())
        faults = getattr(self.server, "faults", None)
        if faults is not None:
            stats["faults_injected"] = faults.counters.total
        return stats

    @property
    def mem_read_bw(self) -> float:
        window = self.window
        return sum(s.mem_read_bw for s in window) / max(1, len(window))

    @property
    def mem_write_bw(self) -> float:
        window = self.window
        return sum(s.mem_write_bw for s in window) / max(1, len(window))

    @property
    def mem_total_bw(self) -> float:
        return self.mem_read_bw + self.mem_write_bw

    def export_csv(
        self,
        path: str,
        metrics=("ipc", "llc_hit_rate", "io_throughput", "avg_latency"),
    ) -> None:
        """Dump the per-epoch, per-stream time series to ``path`` (CSV)."""
        from repro.telemetry import trace

        trace.write_csv(self.samples, path, metrics)

    def summary(self) -> str:
        """Human-readable per-workload table."""
        lines = [
            f"{'workload':<12} {'IPC':>7} {'LLChit%':>8} {'MLCmiss%':>9} "
            f"{'tput l/c':>9} {'avg lat':>9} {'p99 lat':>9} {'leaks':>7}"
        ]
        for name in self.stream_names():
            agg = self.aggregate(name)
            lines.append(
                f"{name:<12} {agg.ipc:>7.3f} {100 * agg.llc_hit_rate:>8.1f} "
                f"{100 * agg.mlc_miss_rate:>9.1f} {agg.throughput:>9.4f} "
                f"{agg.avg_latency:>9.1f} {agg.p99_latency:>9.1f} "
                f"{agg.dma_leaks:>7}"
            )
        lines.append(
            f"memory bandwidth: read {self.mem_read_bw:.4f} "
            f"write {self.mem_write_bw:.4f} lines/cycle"
        )
        return "\n".join(lines)
