"""Deprecated: module-level constants for the default (Skylake-SP) platform.

This module used to *define* the simulated testbed's geometry, scaling, and
timing as process-global constants.  The platform is now an explicit,
swappable value — :class:`repro.platform.PlatformSpec` — threaded through
every layer as an instance parameter; see ``docs/platforms.md``.

Importing this shim emits a single :class:`DeprecationWarning` and
re-exports the ``skylake-sp`` preset's values under the historic names, so
legacy code and notebooks keep working with values identical to
``PlatformSpec.presets()["skylake-sp"]``.  New code should accept a
``PlatformSpec`` (or use :data:`repro.platform.DEFAULT_PLATFORM`) instead.
"""

from __future__ import annotations

import warnings

from repro.platform import SKYLAKE_SP as _SKYLAKE_SP

warnings.warn(
    "repro.config is deprecated: thread a repro.platform.PlatformSpec "
    "explicitly (the skylake-sp preset carries these exact values)",
    DeprecationWarning,
    stacklevel=2,
)

LINE_BYTES = _SKYLAKE_SP.line_bytes
LLC_WAYS = _SKYLAKE_SP.llc_ways
LLC_SETS = _SKYLAKE_SP.llc_sets
LLC_WAY_LINES = _SKYLAKE_SP.llc_way_lines
DCA_WAYS = _SKYLAKE_SP.dca_ways
INCLUSIVE_WAYS = _SKYLAKE_SP.inclusive_ways
STANDARD_WAYS = _SKYLAKE_SP.standard_ways
EXTENDED_DIR_WAYS = _SKYLAKE_SP.extended_dir_ways
MLC_SETS = _SKYLAKE_SP.mlc_sets
MLC_WAYS = _SKYLAKE_SP.mlc_ways
MLC_LINES = _SKYLAKE_SP.mlc_lines
PAPER_LLC_WAY_BYTES = _SKYLAKE_SP.paper_llc_way_bytes
CAPACITY_SCALE = _SKYLAKE_SP.capacity_scale

MLC_HIT_CYCLES = _SKYLAKE_SP.mlc_hit_cycles
LLC_HIT_CYCLES = _SKYLAKE_SP.llc_hit_cycles
MEMORY_CYCLES = _SKYLAKE_SP.memory_cycles
EPOCH_CYCLES = _SKYLAKE_SP.epoch_cycles
WARMUP_EPOCHS = _SKYLAKE_SP.warmup_epochs

MEMORY_BANDWIDTH_LINES_PER_CYCLE = _SKYLAKE_SP.memory_bandwidth_lines_per_cycle
NIC_LINE_RATE_LINES_PER_CYCLE = _SKYLAKE_SP.nic_line_rate_lines_per_cycle
SSD_BANDWIDTH_LINES_PER_CYCLE = _SKYLAKE_SP.ssd_bandwidth_lines_per_cycle
SSD_COMMAND_OVERHEAD_CYCLES = _SKYLAKE_SP.ssd_command_overhead_cycles


def lines_for_paper_bytes(paper_bytes: int, minimum: int = 1) -> int:
    """Deprecated alias for ``PlatformSpec.lines_for_paper_bytes`` on the
    ``skylake-sp`` preset."""
    return _SKYLAKE_SP.lines_for_paper_bytes(paper_bytes, minimum)


def packet_lines(packet_bytes: int) -> int:
    """Deprecated alias for ``PlatformSpec.packet_lines`` on the
    ``skylake-sp`` preset."""
    return _SKYLAKE_SP.packet_lines(packet_bytes)
