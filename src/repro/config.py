"""Global geometry, scaling, and timing constants for the simulated testbed.

The paper's server is an Intel Xeon Gold 6140 (Skylake-SP): a 25 MiB,
11-way, non-inclusive LLC shared by 18 cores, each with a 1 MiB private MLC
(L2).  Two LLC ways are reserved for DDIO (the *DCA ways*, the left-most
ways), and two LLC ways double as the shared traditional/extended directory
ways (the *inclusive ways*, the right-most ways) per Yan et al. (S&P'19).

Everything in this repository is expressed in 64-byte cache lines.  We scale
capacities so that one simulated LLC way holds ``LLC_WAY_LINES`` lines while
*ratios* between structures match the paper (see DESIGN.md §1).  Simulated
time is measured in abstract cycles; one A4 control interval ("1 second" in
the paper) is ``EPOCH_CYCLES`` cycles.
"""

from __future__ import annotations

import math

LINE_BYTES = 64
"""Size of one cache line in bytes (real, unscaled)."""

LLC_WAYS = 11
"""Number of LLC data ways (Skylake-SP: 11)."""

LLC_SETS = 256
"""Simulated LLC sets.  One way therefore holds ``LLC_SETS`` lines."""

LLC_WAY_LINES = LLC_SETS
"""Lines per LLC way (direct consequence of one line per set per way)."""

DCA_WAYS = (0, 1)
"""The left-most two ways are the DDIO / DCA ways."""

INCLUSIVE_WAYS = (9, 10)
"""The right-most two ways are the hidden inclusive (shared-directory) ways."""

STANDARD_WAYS = tuple(range(2, 9))
"""Ways that are neither DCA nor inclusive ways."""

EXTENDED_DIR_WAYS = 12
"""Extended-directory (snoop filter) associativity per set."""

MLC_SETS = 32
MLC_WAYS = 4
"""Private MLC geometry: 128 lines, ~0.5x of one LLC way.

The paper's MLC (1 MiB) is ~0.43x of one LLC way (2.327 MiB); keeping this
ratio <1 preserves the DMA-bloat and migration dynamics.
"""

MLC_LINES = MLC_SETS * MLC_WAYS

PAPER_LLC_WAY_BYTES = 25 * 1024 * 1024 // 11
"""Capacity of one LLC way on the paper's Xeon Gold 6140."""

CAPACITY_SCALE = LLC_WAY_LINES * LINE_BYTES / PAPER_LLC_WAY_BYTES
"""Simulated bytes per paper byte (~1/145)."""


def lines_for_paper_bytes(paper_bytes: int, minimum: int = 1) -> int:
    """Convert a capacity quoted in the paper into simulated cache lines.

    E.g. the 4 MB X-Mem working set maps to ~460 lines, which preserves the
    paper's constraint of being larger than two MLCs (256 lines) but smaller
    than two LLC ways (512 lines).
    """
    lines = int(round(paper_bytes * CAPACITY_SCALE / LINE_BYTES))
    return max(minimum, lines)


def packet_lines(packet_bytes: int) -> int:
    """Lines occupied by one network packet.

    Packet payloads are *not* capacity-scaled (a 64 B packet is one line,
    a 1514 B packet 24 lines); instead ring-entry counts are scaled, so the
    ring-footprint : DCA-capacity ratio matches the paper.
    """
    return max(1, math.ceil(packet_bytes / LINE_BYTES))


# --- Timing (abstract cycles) -------------------------------------------

MLC_HIT_CYCLES = 12
LLC_HIT_CYCLES = 44
MEMORY_CYCLES = 200
"""Load-to-use latencies; absolute values are generic Skylake-class numbers,
only their ordering and ratios matter for the reproduced trends."""

EPOCH_CYCLES = 50_000
"""One A4 monitoring interval ("1 second" of wall time in the paper)."""

WARMUP_EPOCHS = 2
"""Epochs discarded by the harness before collecting results (paper: 10 s of
a 70 s run; we keep the same ~15% proportion of a shorter run)."""

# --- Memory-controller model --------------------------------------------

MEMORY_BANDWIDTH_LINES_PER_CYCLE = 1.2
"""Aggregate DRAM bandwidth in lines/cycle.  With a 100 Gbps-equivalent NIC
injecting ~0.2 lines/cycle, memory is comfortably provisioned unless several
antagonists stream at once, mirroring the paper's 6-channel DDR4 testbed."""

# --- Default I/O rates ----------------------------------------------------

NIC_LINE_RATE_LINES_PER_CYCLE = 0.16
"""100 Gbps-equivalent ingress rate in lines/cycle of simulated time.

Calibrated to ~80% of the four consumer cores' aggregate service capacity
when packet lines hit in the DCA ways, mirroring the paper's near-line-rate
Pktgen load: with DCA working the consumers keep up with moderate queueing;
when packet lines leak to memory the service rate halves and the rings
saturate — exactly the latency sensitivity the paper's figures rely on."""

SSD_BANDWIDTH_LINES_PER_CYCLE = 0.11
"""RAID-0 of 4 NVMe SSDs, ~55 Gbps-equivalent peak."""

SSD_COMMAND_OVERHEAD_CYCLES = 120.0
"""Fixed per-command service overhead; sets the block size (~128 KB paper
equivalent) at which storage throughput saturates (Fig. 5a)."""
