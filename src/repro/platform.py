"""Explicit, swappable microarchitecture specification.

A4's whole premise is that LLC management must be *microarchitecture-aware*:
which ways are DCA (DDIO) ways, which double as the hidden inclusive
(shared-directory) ways, how big the private MLC is relative to one LLC way.
Historically this repository hard-coded exactly one platform — the paper's
Skylake-SP Xeon Gold 6140 — as module-level constants in ``repro.config``.

:class:`PlatformSpec` turns that ambient global state into an explicit,
frozen value threaded through every layer (caches, RDT, uncore, devices,
workloads, experiments).  The ``skylake-sp`` preset is numerically identical
to the old constants, so default behaviour is preserved bit-for-bit; other
presets and the :func:`custom` builder unlock the sensitivity studies the
paper could not run on fixed silicon (vary associativity, DCA-way count,
inclusive-way placement — see ``docs/platforms.md``).

This module must not import ``repro.config`` — the shim there imports *us*.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional, Tuple

MAX_CBM_BITS = 32
"""Widest capacity bitmask the RDT model supports (IA32 CBM registers are
32 bits wide on every part we model); caps ``llc_ways``."""


@dataclass(frozen=True)
class PlatformSpec:
    """One microarchitecture: LLC/MLC geometry, way roles, timing, I/O rates.

    Frozen and hashable; every field is validated in ``__post_init__`` so an
    invalid platform cannot be constructed.  All capacities are expressed in
    64-byte-line units via ``line_bytes``; ``paper_llc_way_bytes`` anchors
    the capacity-scaling rule (DESIGN.md §1) that maps paper-quoted byte
    sizes onto the simulated geometry.
    """

    name: str

    # -- geometry ----------------------------------------------------------
    cores: int = 18
    """Cores sharing the LLC (one socket) — the server's core budget."""
    line_bytes: int = 64
    llc_ways: int = 11
    llc_sets: int = 256
    dca_ways: Tuple[int, ...] = (0, 1)
    inclusive_ways: Tuple[int, ...] = (9, 10)
    extended_dir_ways: int = 12
    mlc_sets: int = 32
    mlc_ways: int = 4
    paper_llc_way_bytes: int = 25 * 1024 * 1024 // 11

    # -- timing (abstract cycles) -----------------------------------------
    mlc_hit_cycles: int = 12
    llc_hit_cycles: int = 44
    memory_cycles: int = 200
    epoch_cycles: int = 50_000
    warmup_epochs: int = 2

    # -- bandwidth / I/O rates (lines per cycle) --------------------------
    memory_bandwidth_lines_per_cycle: float = 1.2
    nic_line_rate_lines_per_cycle: float = 0.16
    ssd_bandwidth_lines_per_cycle: float = 0.11
    ssd_command_overhead_cycles: float = 120.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("platform name must be non-empty")
        for attr in ("cores", "line_bytes", "llc_ways", "llc_sets",
                     "mlc_sets", "mlc_ways", "paper_llc_way_bytes",
                     "epoch_cycles"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.warmup_epochs < 0:
            raise ValueError("warmup_epochs must be >= 0")
        for attr in ("mlc_hit_cycles", "llc_hit_cycles", "memory_cycles"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        for attr in ("memory_bandwidth_lines_per_cycle",
                     "nic_line_rate_lines_per_cycle",
                     "ssd_bandwidth_lines_per_cycle"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.ssd_command_overhead_cycles < 0:
            raise ValueError("ssd_command_overhead_cycles must be >= 0")
        if self.llc_ways > MAX_CBM_BITS:
            raise ValueError(
                f"llc_ways={self.llc_ways} exceeds the {MAX_CBM_BITS}-bit "
                "CBM width the RDT model supports"
            )
        # Way-role layout.  A4 assumes the DCA ways are the left-most ways
        # and the inclusive (shared-directory) ways the right-most ways —
        # the zone geometry in core/zones.py is derived from exactly that.
        for label, ways in (("dca_ways", self.dca_ways),
                            ("inclusive_ways", self.inclusive_ways)):
            if not ways:
                raise ValueError(f"{label} must be non-empty")
            if any(w < 0 or w >= self.llc_ways for w in ways):
                raise ValueError(f"{label}={ways} outside 0..{self.llc_ways - 1}")
            if tuple(ways) != tuple(range(ways[0], ways[-1] + 1)):
                raise ValueError(f"{label}={ways} must be contiguous ascending")
        if self.dca_ways[0] != 0:
            raise ValueError("dca_ways must start at way 0 (left-most ways)")
        if self.inclusive_ways[-1] != self.llc_ways - 1:
            raise ValueError(
                "inclusive_ways must end at the last way (right-most ways)"
            )
        if set(self.dca_ways) & set(self.inclusive_ways):
            raise ValueError(
                f"dca_ways={self.dca_ways} and inclusive_ways="
                f"{self.inclusive_ways} overlap"
            )
        if not self.standard_ways:
            raise ValueError(
                "no standard ways left between dca_ways and inclusive_ways"
            )
        if self.extended_dir_ways < len(self.inclusive_ways):
            raise ValueError(
                f"extended_dir_ways={self.extended_dir_ways} must cover at "
                f"least the {len(self.inclusive_ways)} inclusive ways"
            )

    # -- derived geometry --------------------------------------------------

    @property
    def llc_way_lines(self) -> int:
        """Lines per LLC way (one line per set per way)."""
        return self.llc_sets

    @property
    def standard_ways(self) -> Tuple[int, ...]:
        """Ways that are neither DCA nor inclusive ways."""
        reserved = set(self.dca_ways) | set(self.inclusive_ways)
        return tuple(w for w in range(self.llc_ways) if w not in reserved)

    @property
    def mlc_lines(self) -> int:
        return self.mlc_sets * self.mlc_ways

    @property
    def capacity_scale(self) -> float:
        """Simulated bytes per paper byte (~1/145 on ``skylake-sp``)."""
        return self.llc_way_lines * self.line_bytes / self.paper_llc_way_bytes

    @property
    def dca_capacity_lines(self) -> int:
        """Total lines the DCA (DDIO) ways can hold."""
        return len(self.dca_ways) * self.llc_way_lines

    # -- capacity conversion helpers --------------------------------------

    def lines_for_paper_bytes(self, paper_bytes: int, minimum: int = 1) -> int:
        """Convert a capacity quoted in the paper into simulated cache lines.

        E.g. the 4 MB X-Mem working set maps to ~460 lines on ``skylake-sp``,
        preserving the paper's constraint of being larger than two MLCs but
        smaller than two LLC ways.
        """
        lines = int(round(paper_bytes * self.capacity_scale / self.line_bytes))
        return max(minimum, lines)

    def packet_lines(self, packet_bytes: int) -> int:
        """Lines occupied by one network packet.

        Packet payloads are *not* capacity-scaled (a 64 B packet is one
        line, a 1514 B packet 24 lines); ring-entry counts are scaled
        instead, so the ring-footprint : DCA-capacity ratio matches the
        paper.
        """
        return max(1, math.ceil(packet_bytes / self.line_bytes))

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> Dict[str, object]:
        """Stable identity dict: every field, plus a short content hash.

        Folded into run-cache keys and obsv trace/audit headers so each
        artifact records which microarchitecture produced it.
        """
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        blob = json.dumps(payload, sort_keys=True, default=list,
                          separators=(",", ":"))
        payload["sha"] = hashlib.sha256(blob.encode()).hexdigest()[:12]
        return payload

    @property
    def token(self) -> str:
        """Short ``name@sha`` identity string for logs and headers."""
        return f"{self.name}@{self.fingerprint()['sha']}"

    # -- derivation --------------------------------------------------------

    def with_dca_ways(self, count: int) -> "PlatformSpec":
        """A variant of this platform with ``count`` DCA ways (ways
        ``0..count-1``), for DCA-way sensitivity sweeps."""
        return replace(
            self,
            name=f"{self.name}+dca{count}",
            dca_ways=tuple(range(count)),
        )

    @classmethod
    def presets(cls) -> Dict[str, "PlatformSpec"]:
        """Name -> spec for every registered preset (fresh dict per call)."""
        return dict(_PRESETS)


SKYLAKE_SP = PlatformSpec(name="skylake-sp")
"""The paper's testbed — Intel Xeon Gold 6140: a 25 MiB, 11-way,
non-inclusive LLC shared by 18 cores, 1 MiB private MLCs, two DCA ways
(0, 1), two inclusive ways (9, 10).  Numerically identical to the historic
``repro.config`` constants; the default platform everywhere."""

CASCADELAKE_SP = PlatformSpec(
    name="cascadelake-sp",
    # Same 11-way layout as Skylake-SP (Cascade Lake kept the cache
    # microarchitecture); a Xeon Gold 6248-class part has 20 cores, a
    # 27.5 MiB LLC, and faster DDR4-2933 memory.
    cores=20,
    paper_llc_way_bytes=int(27.5 * 1024 * 1024) // 11,
    memory_cycles=190,
    memory_bandwidth_lines_per_cycle=1.4,
)
"""Cascade Lake-SP refresh: identical way roles, larger LLC ways and more
memory bandwidth — separates way-*layout* effects from capacity effects."""

ICELAKE_SP = PlatformSpec(
    name="icelake-sp",
    # Hypothetical Ice Lake-SP-style part: 28 cores, 12-way non-inclusive
    # LLC with a 16-way extended directory, bigger private MLCs
    # (1.25 MiB-class), and DDR4-3200.  Way roles keep A4's shape: DCA
    # left-most, inclusive right-most, with one extra standard way.
    cores=28,
    llc_ways=12,
    inclusive_ways=(10, 11),
    extended_dir_ways=16,
    mlc_sets=40,
    paper_llc_way_bytes=30 * 1024 * 1024 // 12,
    llc_hit_cycles=48,
    memory_cycles=190,
    memory_bandwidth_lines_per_cycle=1.6,
)
"""Hypothetical ``icelake-sp``-style 12/16-way part — exercises a different
associativity, inclusive-way placement, and MLC:LLC-way ratio."""

_PRESETS: Dict[str, PlatformSpec] = {
    spec.name: spec for spec in (SKYLAKE_SP, CASCADELAKE_SP, ICELAKE_SP)
}

DEFAULT_PLATFORM = SKYLAKE_SP
"""Used whenever a ``platform`` parameter is omitted; keeps the historic
single-platform behaviour (and its outputs) bit-identical."""


def get_platform(name_or_spec) -> PlatformSpec:
    """Resolve a preset name (or pass a spec through; ``None`` -> default).

    Accepts ``name+dcaN`` suffixes for DCA-way variants of any preset,
    e.g. ``skylake-sp+dca3``.
    """
    if name_or_spec is None:
        return DEFAULT_PLATFORM
    if isinstance(name_or_spec, PlatformSpec):
        return name_or_spec
    name = str(name_or_spec)
    if name in _PRESETS:
        return _PRESETS[name]
    base, sep, suffix = name.rpartition("+dca")
    if sep and base in _PRESETS and suffix.isdigit():
        return _PRESETS[base].with_dca_ways(int(suffix))
    raise KeyError(
        f"unknown platform {name!r}; presets: {sorted(_PRESETS)} "
        "(or '<preset>+dcaN' for a DCA-way variant)"
    )


def custom(base: str = "skylake-sp", **overrides) -> PlatformSpec:
    """Build a one-off platform for sweeps: start from a preset, override
    any field.  ``custom(llc_ways=16, inclusive_ways=(14, 15), name="big")``.
    Validation applies as usual."""
    spec = get_platform(base)
    if "name" not in overrides:
        overrides["name"] = f"{spec.name}+custom"
    return replace(spec, **overrides)
