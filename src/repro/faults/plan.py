"""Fault-plan configuration for the deterministic fault-injection layer.

A :class:`FaultPlan` names every injection point the chaos layer can
exercise and the per-epoch probability of each fault.  Plans are plain
frozen dataclasses so they canonicalize into run-cache keys and pickle into
pool workers; all randomness is drawn later, by the
:class:`~repro.faults.inject.FaultInjector`, from named
:class:`~repro.sim.rng.DeterministicRng` streams — two runs with the same
seed and plan inject the *same* faults at the *same* epochs.

A plan with every rate at zero is inert, and a server built without a plan
carries no injection code at all (the fault layer is zero-cost off).

Selection surfaces:

* **config** — pass a plan to ``Server(fault_plan=...)`` or
  :func:`repro.experiments.scenarios.build_server`;
* **env** — ``REPRO_FAULT_INTENSITY=0.5`` (see :func:`FaultPlan.from_env`);
* **CLI** — ``tools/chaos.py --intensity`` and
  ``python -m repro.experiments --fault-intensity``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

ENV_FAULT_INTENSITY = "REPRO_FAULT_INTENSITY"

# Per-epoch base rates at intensity 1.0 (see FaultPlan.scaled).
_BASE_RATES = {
    "sample_drop_rate": 0.06,
    "sample_stale_rate": 0.10,
    "sample_corrupt_rate": 0.25,
    "zero_cycle_rate": 0.03,
    "cat_fail_rate": 0.25,
    "cat_delay_rate": 0.20,
    "dca_fail_rate": 0.15,
    "nic_storm_rate": 0.08,
    "nvme_stall_rate": 0.08,
    "phase_flip_rate": 0.06,
}


@dataclass(frozen=True)
class FaultPlan:
    """Per-epoch fault probabilities and magnitudes for every injection
    point.  All rates are probabilities in [0, 1]."""

    # -- telemetry (PcmSampler readings, per stream per epoch) ----------
    sample_drop_rate: float = 0.0
    """The stream's reading vanishes from the epoch sample entirely."""
    sample_stale_rate: float = 0.0
    """The previous epoch's reading is delivered again (stale hold)."""
    sample_corrupt_rate: float = 0.0
    """The reading's counters are garbled (wrapped, zeroed, scaled or
    hit/miss-swapped) before the controller sees them."""
    corrupt_magnitude: float = 8.0
    """Scale bound for the 'scaled' corruption mode."""
    zero_cycle_rate: float = 0.0
    """The whole epoch reads as zero cycles (a PCM fixed-counter glitch);
    every per-cycle rate in it is poison."""

    # -- control plane (CAT masks, PCIe port DCA registers) -------------
    cat_fail_rate: float = 0.0
    """``set_mask`` raises a transient :class:`TransientClosError` (a
    failed/garbled ``pqos`` invocation); the previous mask stays active."""
    cat_delay_rate: float = 0.0
    """The mask write succeeds but commits ``cat_delay_epochs`` late."""
    cat_delay_epochs: int = 2
    dca_fail_rate: float = 0.0
    """A port DCA flip raises a transient :class:`TransientPortError`."""

    # -- device / workload chaos ----------------------------------------
    nic_storm_rate: float = 0.0
    """Per NIC per epoch: a burst storm starts (line rate multiplied by
    ``nic_storm_factor`` for ``nic_storm_epochs`` epochs)."""
    nic_storm_factor: float = 4.0
    nic_storm_epochs: int = 2
    nvme_stall_rate: float = 0.0
    """Per SSD per epoch: the device firmware stalls its service loop for
    ``nvme_stall_cycles`` (garbage-collection pause)."""
    nvme_stall_cycles: float = 30000.0
    phase_flip_rate: float = 0.0
    """Per phased workload per epoch: force an early phase transition."""

    # -- targeting -------------------------------------------------------
    target_tenant: str = ""
    """Restrict telemetry and device/workload faults to one tenant's
    streams, devices, and workloads (empty = every tenant, the historic
    behaviour).  Control-plane faults (CAT/DCA applies) are machine-wide
    operations and ignore the target.  Targeting consumes the same RNG
    draws as an untargeted run — the fault *fires* identically, the
    effect is suppressed for other tenants — so adding a target never
    perturbs the injection schedule."""

    def __post_init__(self) -> None:
        for name in _BASE_RATES:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.cat_delay_epochs < 1 or self.nic_storm_epochs < 1:
            raise ValueError("delay/storm durations must be >= 1 epoch")
        if self.nic_storm_factor < 1.0:
            raise ValueError("nic_storm_factor must be >= 1")
        if self.nvme_stall_cycles < 0 or self.corrupt_magnitude <= 0:
            raise ValueError("magnitudes must be positive")

    @property
    def enabled(self) -> bool:
        """True when any injection point has a nonzero rate."""
        return any(getattr(self, name) > 0.0 for name in _BASE_RATES)

    @property
    def telemetry_faults(self) -> bool:
        return (
            self.sample_drop_rate > 0.0
            or self.sample_stale_rate > 0.0
            or self.sample_corrupt_rate > 0.0
            or self.zero_cycle_rate > 0.0
        )

    @property
    def device_faults(self) -> bool:
        return (
            self.nic_storm_rate > 0.0
            or self.nvme_stall_rate > 0.0
            or self.phase_flip_rate > 0.0
        )

    @classmethod
    def scaled(cls, intensity: float, **overrides) -> "FaultPlan":
        """The standard chaos preset: every base rate multiplied by
        ``intensity`` (clamped to 1), magnitudes at their defaults.
        ``intensity=0`` yields an inert plan; ``intensity=1`` is the
        highest sweep point of the chaos harness."""
        if intensity < 0:
            raise ValueError("intensity must be >= 0")
        rates = {
            name: min(1.0, base * intensity)
            for name, base in _BASE_RATES.items()
        }
        rates.update(overrides)
        return cls(**rates)

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        """Build a scaled plan from ``$REPRO_FAULT_INTENSITY``; ``None``
        when the variable is unset, empty, or zero (the common case)."""
        raw = os.environ.get(ENV_FAULT_INTENSITY, "").strip()
        if not raw:
            return None
        intensity = float(raw)
        if intensity <= 0:
            return None
        return cls.scaled(intensity)

    def describe(self) -> str:
        """One-line summary of the nonzero rates (chaos report header)."""
        active = [
            f"{f.name}={getattr(self, f.name):g}"
            for f in fields(self)
            if f.name in _BASE_RATES and getattr(self, f.name) > 0.0
        ]
        if self.target_tenant:
            active.append(f"target_tenant={self.target_tenant}")
        return ", ".join(active) or "inert"
