"""Deterministic fault injection threaded through the simulated substrate.

A :class:`FaultInjector` is built from a :class:`~repro.faults.plan.FaultPlan`
and the server's :class:`~repro.sim.rng.DeterministicRng`; every injection
point draws from its own named sub-stream (``faults:pcm``, ``faults:cat``,
``faults:dca``, ``faults:devices``) so fault schedules are reproducible,
independent of each other, and independent of the workload RNG streams —
enabling a plan never perturbs the draws the workloads see.

Injection points:

* **Telemetry** — :meth:`FaultInjector.filter_sample` corrupts, stale-holds
  or drops per-stream readings on the *controller's view* of an epoch
  sample; the true sample (what figures aggregate) is untouched, exactly
  like a real PCM glitch that garbles the daemon's read but not the
  machine.
* **CAT** — :class:`FaultyCacheAllocation` wraps the real
  :class:`~repro.rdt.cat.CacheAllocation`: ``set_mask`` may raise a
  :class:`~repro.rdt.cat.TransientClosError` or commit N epochs late.
  Reads always reflect the *committed* state, so the cache hierarchy never
  sees a half-applied mask.
* **DCA** — :class:`FaultyPcieView` interposes on the manager's port
  accessor; ``enable_dca``/``disable_dca`` may raise a
  :class:`~repro.uncore.pcie.TransientPortError`.
* **Devices / workloads** — :meth:`FaultInjector.epoch_chaos` starts NIC
  burst storms (generator rate multiplied for a few epochs), NVMe service
  stalls, and forced phase flips on phased workloads.

A server built without a plan constructs none of these objects — the fault
layer is zero-cost off and off-runs are bit-identical to a tree without it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro import obsv
from repro.faults.plan import FaultPlan
from repro.rdt.cat import CacheAllocation, TransientClosError
from repro.sim.rng import DeterministicRng
from repro.telemetry.counters import StreamCounters
from repro.telemetry.pcm import EpochSample, StreamSample
from repro.uncore.pcie import PciePort, TransientPortError

_GARBLE_COUNTERS = (
    "mlc_hits",
    "mlc_misses",
    "llc_hits",
    "llc_misses",
    "io_reads",
    "io_read_misses",
    "dma_writes",
    "mem_reads",
    "mem_writes",
    "instructions",
    "io_bytes_completed",
)
"""Counters the corruption modes touch — the ones every detector reads."""


@dataclass
class FaultCounters:
    """How many faults of each kind were actually injected (chaos report)."""

    samples_dropped: int = 0
    samples_stale: int = 0
    samples_corrupted: int = 0
    zero_cycle_epochs: int = 0
    cat_failures: int = 0
    cat_delays: int = 0
    dca_failures: int = 0
    nic_storms: int = 0
    nvme_stalls: int = 0
    phase_flips: int = 0

    @property
    def total(self) -> int:
        return sum(getattr(self, f) for f in self.__dataclass_fields__)


class FaultInjector:
    """Draws and applies the faults a :class:`FaultPlan` describes."""

    def __init__(self, plan: FaultPlan, rng: DeterministicRng):
        self.plan = plan
        self._pcm = rng.stream("faults:pcm")
        self._cat = rng.stream("faults:cat")
        self._dca = rng.stream("faults:dca")
        self._dev = rng.stream("faults:devices")
        self.counters = FaultCounters()
        self._held: Dict[str, StreamSample] = {}
        """Last *true* per-stream reading, redelivered on a stale fault."""
        self._delayed: List[Tuple[int, int, Tuple[int, ...], CacheAllocation]] = []
        """Pending delayed CAT commits: (epochs_left, clos, mask, target)."""
        self._storms: Dict[str, int] = {}
        """Active NIC storms: generator owner name -> epochs remaining."""

    @staticmethod
    def _trace(name: str, **data) -> None:
        """One ``fault`` trace event per injected fault, named after the
        :class:`FaultCounters` field it bumped."""
        if obsv.TRACER is not None:
            obsv.TRACER.emit(obsv.KIND_FAULT, name, data)

    # -- tenant targeting ----------------------------------------------------
    # Both predicates sit *after* the fault's RNG draw in every caller (the
    # short-circuit order matters): a targeted run draws the identical
    # schedule as an untargeted one and merely suppresses the effect on
    # other tenants' streams/devices.

    def _targets(self, workload) -> bool:
        target = self.plan.target_tenant
        return not target or workload.tenant.name == target

    def _targets_stream(self, stream: StreamSample) -> bool:
        target = self.plan.target_tenant
        return not target or stream.info.tenant == target

    # -- telemetry ----------------------------------------------------------

    def filter_sample(self, sample: EpochSample) -> EpochSample:
        """The controller's (possibly corrupted) view of ``sample``."""
        plan = self.plan
        if not plan.telemetry_faults:
            return sample
        rng = self._pcm
        if plan.zero_cycle_rate and rng.random() < plan.zero_cycle_rate:
            # Fixed-counter glitch: the whole epoch reads as zero cycles.
            # Machine-wide by nature, so a tenant target suppresses it
            # entirely (the draw above is still consumed).
            if not plan.target_tenant:
                self.counters.zero_cycle_epochs += 1
                self._trace("zero_cycle_epochs")
                self._held.update(sample.streams)
                return replace(sample, epoch_cycles=0.0)
        streams: Dict[str, StreamSample] = {}
        touched = False
        for name, stream in sample.streams.items():
            draw = rng.random()
            if not self._targets_stream(stream):
                streams[name] = stream
            elif draw < plan.sample_drop_rate:
                self.counters.samples_dropped += 1
                self._trace("samples_dropped", stream=name)
                touched = True
            elif draw < plan.sample_drop_rate + plan.sample_stale_rate:
                held = self._held.get(name)
                if held is not None and held is not stream:
                    self.counters.samples_stale += 1
                    self._trace("samples_stale", stream=name)
                    streams[name] = held
                    touched = True
                else:
                    streams[name] = stream
            elif draw < (
                plan.sample_drop_rate
                + plan.sample_stale_rate
                + plan.sample_corrupt_rate
            ):
                self.counters.samples_corrupted += 1
                self._trace("samples_corrupted", stream=name)
                streams[name] = replace(
                    stream, counters=self._garble(stream.counters)
                )
                touched = True
            else:
                streams[name] = stream
        self._held.update(sample.streams)
        if not touched:
            return sample
        return replace(sample, streams=streams)

    def _garble(self, counters: StreamCounters) -> StreamCounters:
        """One corrupted copy of a stream's epoch counters."""
        garbled = counters.snapshot()
        mode = self._pcm.randrange(4)
        if mode == 0:
            # Counter reset mid-epoch: everything reads as zero.
            for name in _GARBLE_COUNTERS:
                setattr(garbled, name, 0)
        elif mode == 1:
            # Wraparound: a negative delta after a 48-bit counter wrap.
            for name in _GARBLE_COUNTERS:
                setattr(garbled, name, -abs(getattr(garbled, name)))
        elif mode == 2:
            # A multiplexing glitch scales counters independently, which
            # garbles every derived rate while staying "plausible".
            for name in _GARBLE_COUNTERS:
                scale = self._pcm.uniform(0.0, self.plan.corrupt_magnitude)
                setattr(garbled, name, int(getattr(garbled, name) * scale))
        else:
            # Event-select mixup: hits and misses come back swapped.
            garbled.llc_hits, garbled.llc_misses = (
                garbled.llc_misses,
                garbled.llc_hits,
            )
            garbled.mlc_hits, garbled.mlc_misses = (
                garbled.mlc_misses,
                garbled.mlc_hits,
            )
        return garbled

    # -- CAT / DCA control plane -------------------------------------------

    def cat_apply(
        self, target: CacheAllocation, clos: int, mask: Tuple[int, ...]
    ) -> None:
        """Commit, delay, or transiently fail one validated mask write."""
        plan = self.plan
        draw = self._cat.random()
        if draw < plan.cat_fail_rate:
            self.counters.cat_failures += 1
            self._trace("cat_failures", clos=clos)
            raise TransientClosError(
                f"injected transient CLOS write failure (clos {clos})"
            )
        # The write is on its way: it supersedes any older delayed write
        # for the same CLOS (hardware applies register writes in order).
        self._delayed = [d for d in self._delayed if d[1] != clos]
        if draw < plan.cat_fail_rate + plan.cat_delay_rate:
            self.counters.cat_delays += 1
            self._trace("cat_delays", clos=clos, epochs=plan.cat_delay_epochs)
            self._delayed.append((plan.cat_delay_epochs, clos, mask, target))
            return
        target.set_mask(clos, mask)

    def dca_apply(self, port: PciePort, enabled: bool) -> None:
        if self._dca.random() < self.plan.dca_fail_rate:
            self.counters.dca_failures += 1
            self._trace("dca_failures", port=port.port_id)
            raise TransientPortError(
                f"injected transient perfctrlsts write failure (port "
                f"{port.port_id})"
            )
        if enabled:
            port.enable_dca()
        else:
            port.disable_dca()

    def advance_epoch(self) -> None:
        """Mature delayed CAT commits at an epoch boundary."""
        if not self._delayed:
            return
        remaining = []
        for epochs_left, clos, mask, target in self._delayed:
            if epochs_left <= 1:
                target.set_mask(clos, mask)
            else:
                remaining.append((epochs_left - 1, clos, mask, target))
        self._delayed = remaining

    # -- device / workload chaos -------------------------------------------

    def epoch_chaos(self, server) -> None:
        """Start/stop device-level chaos for the next epoch.

        ``server`` is duck-typed (``workloads`` with optional ``nic`` /
        ``ssd`` / ``request_flip`` members) so this works against any
        harness that exposes the workload list.
        """
        plan = self.plan
        if not plan.device_faults:
            return
        for name in list(self._storms):
            self._storms[name] -= 1
            if self._storms[name] <= 0:
                del self._storms[name]
        for workload in server.workloads:
            nic = getattr(workload, "nic", None)
            if nic is not None and plan.nic_storm_rate:
                generator = nic.generator
                if workload.name in self._storms:
                    generator.rate_scale = plan.nic_storm_factor
                elif (
                    self._dev.random() < plan.nic_storm_rate
                    and self._targets(workload)
                ):
                    self.counters.nic_storms += 1
                    self._trace("nic_storms", workload=workload.name)
                    self._storms[workload.name] = plan.nic_storm_epochs
                    generator.rate_scale = plan.nic_storm_factor
                else:
                    generator.rate_scale = 1.0
            ssd = getattr(workload, "ssd", None)
            if ssd is not None and plan.nvme_stall_rate:
                if (
                    self._dev.random() < plan.nvme_stall_rate
                    and self._targets(workload)
                ):
                    self.counters.nvme_stalls += 1
                    self._trace("nvme_stalls", workload=workload.name)
                    ssd.inject_stall(plan.nvme_stall_cycles)
            if hasattr(workload, "request_flip") and plan.phase_flip_rate:
                if (
                    self._dev.random() < plan.phase_flip_rate
                    and self._targets(workload)
                ):
                    self.counters.phase_flips += 1
                    self._trace("phase_flips", workload=workload.name)
                    workload.request_flip()


class FaultyCacheAllocation:
    """CAT wrapper: validated writes may transiently fail or commit late.

    Reads (``mask``, ``ways_for_core``, associations) always delegate to
    the inner allocation, i.e. reflect *committed* state only — the cache
    models can never observe an in-flight write, so an injected delay can
    stall the controller but never corrupt the hardware invariant.
    """

    def __init__(self, inner: CacheAllocation, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def set_mask(self, clos, ways) -> None:
        # Invalid requests raise immediately (a caller bug, never chaos).
        mask = self.inner.validate_mask(clos, ways)
        self.injector.cat_apply(self.inner, clos, mask)

    def __getattr__(self, name):
        if name == "inner":
            # During unpickling ``inner`` is not set yet; delegating would
            # recurse forever.  Raising lets pickle fall back to __dict__.
            raise AttributeError(name)
        return getattr(self.inner, name)


class FaultyPortView:
    """One port as seen by the controller: DCA flips may transiently fail."""

    def __init__(self, inner: PciePort, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def enable_dca(self) -> None:
        self.injector.dca_apply(self.inner, True)

    def disable_dca(self) -> None:
        self.injector.dca_apply(self.inner, False)

    def __getattr__(self, name):
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)


class FaultyPcieView:
    """The PCIe complex as seen by the controller.

    ``port()`` hands out :class:`FaultyPortView` wrappers; everything else
    (``add_port`` during workload setup, counters, totals) delegates, so
    devices keep holding the real ports and the data path is unaffected.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    def port(self, port_id: int) -> FaultyPortView:
        return FaultyPortView(self.inner.port(port_id), self.injector)

    def __getattr__(self, name):
        if name == "inner":
            raise AttributeError(name)
        return getattr(self.inner, name)


def check_masks(cat) -> Optional[str]:
    """Invariant check: every committed CLOS mask is valid (non-empty,
    in-bounds, contiguous).  Returns a diagnostic string on violation,
    ``None`` when the invariant holds.  Accepts a wrapped or raw
    :class:`CacheAllocation`."""
    inner = getattr(cat, "inner", cat)
    for clos in range(inner.num_clos):
        mask = inner.mask(clos)
        if not mask:
            return f"CLOS {clos}: empty mask"
        if mask[0] < 0 or mask[-1] >= inner.ways:
            return f"CLOS {clos}: mask {mask} out of bounds"
        if tuple(mask) != tuple(range(mask[0], mask[-1] + 1)):
            return f"CLOS {clos}: non-contiguous mask {mask}"
    return None
