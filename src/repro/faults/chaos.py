"""The chaos harness: sweep fault intensity against the hardened A4 FSM.

Each sweep point runs the :func:`~repro.experiments.scenarios.chaos_workloads`
mix under a :class:`~repro.faults.plan.FaultPlan` scaled to that intensity
and checks three safety properties:

1. **No crash** — the controller survives every injected fault (a raised
   exception fails the sweep);
2. **No invalid CLOS mask** — after every epoch, every committed mask is
   non-empty, in-bounds, and contiguous (:func:`repro.faults.check_masks`);
3. **Bounded performance penalty** — system mean IPC under chaos stays
   above ``ipc_floor`` x the fault-free run's (the hardening must degrade
   gracefully, not fall off a cliff).

The sweep additionally runs a **watchdog probe** at the highest
intensity: the same mix under an A4-a-style policy (antagonist detection
off) so the bare EXPAND/REVERT state machine faces the corrupted
telemetry.  That run must show the oscillation watchdog *engaging*
(``degraded_entries > 0``) — proof the fallback is reachable, not dead
code.  (Under the full-featured policy, detection keeps restarting the
FSM before the expand/revert loop can flip-flop — antagonist churn is
already hysteresis-bounded by the detection cooldown, so the watchdog
legitimately stays quiet there.)

Driven by ``tools/chaos.py`` and ``tests/test_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policy import A4Policy
from repro.faults.inject import check_masks
from repro.faults.plan import FaultPlan
from repro.obsv.metrics import counts_of, merge_counts

DEFAULT_INTENSITIES: Tuple[float, ...] = (0.25, 0.5, 1.0)
DEFAULT_EPOCHS = 80
DEFAULT_SEED = 0xC4A05
DEFAULT_IPC_FLOOR = 0.4
"""Chaos may cost performance (storms and stalls are real work) but never
more than this fraction of fault-free IPC."""


class ChaosError(AssertionError):
    """A safety property failed at some sweep point."""


def chaos_policy() -> A4Policy:
    """The sweep's controller configuration: paper defaults with a shorter
    stable interval and a wider watchdog window, so a short run cycles the
    FSM often enough to be interesting."""
    return A4Policy(
        stable_interval=4,
        watchdog_window=24,
        watchdog_reallocs=4,
        watchdog_cooldown=8,
    )


def fsm_policy() -> A4Policy:
    """The watchdog probe's configuration: A4-a-style (detection features
    off) so corrupted telemetry drives the EXPAND/REVERT loop directly."""
    return A4Policy(
        selective_dca_disable=False,
        pseudo_llc_bypass=False,
        stable_interval=3,
        expand_interval=1,
        watchdog_window=24,
        watchdog_reallocs=4,
        watchdog_cooldown=8,
    )


@dataclass
class ChaosResult:
    """One sweep point's outcome."""

    intensity: float
    epochs: int
    seed: int
    mean_ipc: float
    faults: Dict[str, int] = field(default_factory=dict)
    robustness: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    events: int = 0
    label: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations


def run_chaos(
    intensity: float,
    epochs: int = DEFAULT_EPOCHS,
    seed: int = DEFAULT_SEED,
    policy: Optional[A4Policy] = None,
    label: str = "",
    fault_tenant: str = "",
) -> ChaosResult:
    """One sweep point: run the chaos mix at ``intensity``, checking the
    mask invariant after every epoch.  ``intensity=0`` is the fault-free
    reference run.  ``fault_tenant`` restricts telemetry and device
    faults to that tenant's streams and workloads (the chaos mix carries
    the implicit ``hpw``/``lpw`` tenants)."""
    from repro.experiments.scenarios import build_server, chaos_workloads

    plan = (
        FaultPlan.scaled(intensity, target_tenant=fault_tenant)
        if intensity > 0
        else None
    )
    if plan is not None and not plan.enabled:
        plan = None
    server = build_server(
        chaos_workloads(),
        scheme="a4",
        seed=seed,
        policy=policy or chaos_policy(),
        fault_plan=plan,
    )
    violations: List[str] = []

    def invariant(srv, sample) -> None:
        problem = check_masks(srv.cat)
        if problem is not None:
            epoch = len(violations)
            violations.append(f"epoch {epoch}: {problem}")

    result = server.run(epochs, epoch_hook=invariant)
    aggregates = result.aggregates()
    ipcs = [agg.ipc for agg in aggregates.values()]
    mean_ipc = sum(ipcs) / len(ipcs) if ipcs else 0.0
    faults = server.faults.counters if server.faults is not None else None
    return ChaosResult(
        intensity=intensity,
        epochs=epochs,
        seed=seed,
        mean_ipc=mean_ipc,
        faults=counts_of(faults) if faults is not None else {},
        robustness=result.robustness(),
        violations=violations,
        events=len(server.manager.events),
        label=label,
    )


@dataclass
class SweepReport:
    """A full intensity sweep plus the fault-free reference and the
    watchdog probe."""

    baseline: ChaosResult
    results: List[ChaosResult]
    probe: Optional[ChaosResult] = None
    ipc_floor: float = DEFAULT_IPC_FLOOR

    def all_results(self) -> List[ChaosResult]:
        rows = [self.baseline] + list(self.results)
        if self.probe is not None:
            rows.append(self.probe)
        return rows

    def fault_totals(self) -> Dict[str, int]:
        """Injected-fault counts summed over the whole sweep (shared merge
        helper with the run cache's worker-stats aggregation)."""
        totals: Dict[str, int] = {}
        for res in self.all_results():
            merge_counts(totals, res.faults)
        return totals

    def check(self) -> None:
        """Raise :class:`ChaosError` on any violated safety property."""
        problems: List[str] = []
        for res in self.all_results():
            for violation in res.violations:
                problems.append(
                    f"intensity {res.intensity:g}{res.label and ' ' + res.label}: "
                    f"invalid mask — {violation}"
                )
        if self.baseline.mean_ipc > 0:
            for res in self.results:
                ratio = res.mean_ipc / self.baseline.mean_ipc
                if ratio < self.ipc_floor:
                    problems.append(
                        f"intensity {res.intensity:g}: mean IPC fell to "
                        f"{ratio:.2f}x fault-free (floor {self.ipc_floor:g})"
                    )
        if self.probe is not None and not self.probe.robustness.get(
            "degraded_entries"
        ):
            problems.append(
                f"watchdog probe (intensity {self.probe.intensity:g}): "
                "oscillation watchdog never engaged (degraded_entries == 0)"
            )
        if problems:
            raise ChaosError("; ".join(problems))

    def table(self) -> str:
        lines = [
            f"{'point':>12} {'mean IPC':>9} {'vs clean':>9} {'faults':>7} "
            f"{'retries':>8} {'deferred':>9} {'held':>6} {'degraded':>9} "
            f"{'bad masks':>10}"
        ]
        for res in self.all_results():
            ratio = (
                res.mean_ipc / self.baseline.mean_ipc
                if self.baseline.mean_ipc
                else 0.0
            )
            rob = res.robustness
            point = f"{res.intensity:g}{' ' + res.label if res.label else ''}"
            lines.append(
                f"{point:>12} {res.mean_ipc:>9.3f} {ratio:>8.2f}x "
                f"{sum(res.faults.values()):>7} "
                f"{rob.get('apply_retries', 0):>8} "
                f"{rob.get('apply_deferred', 0):>9} "
                f"{rob.get('held_over', 0):>6} "
                f"{rob.get('degraded_entries', 0):>9} "
                f"{len(res.violations):>10}"
            )
        totals = self.fault_totals()
        injected = ", ".join(
            f"{name}={count}" for name, count in sorted(totals.items()) if count
        )
        lines.append(f"faults injected: {injected or 'none'}")
        return "\n".join(lines)


def run_sweep(
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    epochs: int = DEFAULT_EPOCHS,
    seed: int = DEFAULT_SEED,
    ipc_floor: float = DEFAULT_IPC_FLOOR,
    policy: Optional[A4Policy] = None,
    fault_tenant: str = "",
) -> SweepReport:
    """Run the fault-free reference, every sweep point, and the watchdog
    probe at the highest intensity.

    When ``fault_tenant`` is set the watchdog probe is skipped: faults
    confined to one tenant may never corrupt the telemetry that drives
    the bare EXPAND/REVERT loop, so "the watchdog engages" is not a
    meaningful property of a targeted sweep (the crash/mask/IPC
    properties still hold point by point).
    """
    baseline = run_chaos(0.0, epochs=epochs, seed=seed, policy=policy)
    results = [
        run_chaos(
            intensity,
            epochs=epochs,
            seed=seed,
            policy=policy,
            fault_tenant=fault_tenant,
        )
        for intensity in intensities
    ]
    probe = None
    if not fault_tenant:
        probe = run_chaos(
            max(intensities),
            epochs=epochs,
            seed=seed,
            policy=fsm_policy(),
            label="probe",
        )
    return SweepReport(
        baseline=baseline, results=results, probe=probe, ipc_floor=ipc_floor
    )
