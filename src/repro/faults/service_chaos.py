"""Fault injection for the job service: kill workers, stall heartbeats,
corrupt store rows.

The supervisor takes an optional ``chaos`` collaborator with two hooks:

* ``worker_env() -> dict`` — extra environment merged into every spawned
  worker (how :class:`StallHeartbeat` plants its flag);
* ``maybe_kill(supervisor, job, process) -> bool`` — called each poll
  tick while a worker runs; returning True tells the supervisor the
  worker was just killed by chaos (it stops polling and settles the
  attempt as a worker death).

These are the service-level counterparts of the telemetry faults in
:mod:`repro.faults.plan`: they attack the *infrastructure* (process
lifetime, liveness reporting, on-disk rows) rather than the simulated
machine, and the properties they check are the service's — a killed
worker resumes from its newest checkpoint and still produces the
bit-identical figure; a silent worker is detected and replaced; a
corrupted row is quarantined without wedging the queue.  Used by
``tests/test_service.py`` and ``tools/service_smoke.py``.
"""

from __future__ import annotations

import sqlite3
from typing import Dict

from repro.service.supervisor import ENV_STALL_HEARTBEAT


class KillWorker:
    """SIGKILL up to ``budget`` workers, optionally only once the job has
    something to resume from.

    With ``after_checkpoint=True`` (the default) the kill waits for the
    job's private checkpoint namespace to hold at least one snapshot, so
    the retry exercises the resume path rather than a from-scratch
    re-run.  ``kills`` records how many budget units were spent."""

    def __init__(self, budget: int = 1, after_checkpoint: bool = True):
        self.budget = budget
        self.after_checkpoint = after_checkpoint
        self.kills = 0

    def worker_env(self) -> Dict[str, str]:
        return {}

    def maybe_kill(self, supervisor, job, process) -> bool:
        if self.kills >= self.budget:
            return False
        if self.after_checkpoint:
            from repro.sim.checkpoint import newest_epoch

            if newest_epoch(supervisor.checkpoint_dir(job)) is None:
                return False
        self.kills += 1
        process.kill()
        return True


class StallHeartbeat:
    """Make every worker beat once and then go silent.

    The worker process keeps running (and keeps simulating) — only its
    liveness reporting dies, which is exactly the failure mode the
    supervisor's heartbeat watchdog exists for.  The supervisor must
    SIGKILL the silent worker after ``heartbeat_timeout`` and classify
    the attempt as ``stalled``."""

    def worker_env(self) -> Dict[str, str]:
        return {ENV_STALL_HEARTBEAT: "1"}

    def maybe_kill(self, supervisor, job, process) -> bool:
        return False


def corrupt_job_row(db_path, job_id: int) -> None:
    """Overwrite one job's stored spec with bytes that do not parse as
    JSON — the on-disk corruption :meth:`JobStore.claim` must quarantine
    (row goes DEAD with category ``corrupt``) instead of crashing on or,
    worse, executing."""
    db = sqlite3.connect(str(db_path))
    try:
        db.execute(
            "UPDATE jobs SET spec = ? WHERE id = ?",
            ("\x00not json{{", job_id),
        )
        db.commit()
    finally:
        db.close()
