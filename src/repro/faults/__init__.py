"""Deterministic, seed-driven fault injection for the simulated testbed.

See :mod:`repro.faults.plan` for what can be injected and how plans are
selected, :mod:`repro.faults.inject` for the injection machinery, and
:mod:`repro.faults.chaos` for the sweep harness (``tools/chaos.py``).
The controller-side hardening these faults exercise lives in
:mod:`repro.core.guard`.
"""

from repro.faults.plan import ENV_FAULT_INTENSITY, FaultPlan
from repro.faults.inject import (
    FaultCounters,
    FaultInjector,
    FaultyCacheAllocation,
    FaultyPcieView,
    FaultyPortView,
    check_masks,
)

__all__ = [
    "ENV_FAULT_INTENSITY",
    "FaultPlan",
    "FaultCounters",
    "FaultInjector",
    "FaultyCacheAllocation",
    "FaultyPcieView",
    "FaultyPortView",
    "check_masks",
]
