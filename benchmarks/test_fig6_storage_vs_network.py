"""Fig. 6 — storage blocks inflate network latency with DCA on; turning
all DCA off is uniformly unacceptable."""

from conftest import run_once

from repro.experiments.figures import fig6

KB = 1024
MB = 1024 * KB
SIZES = (32 * KB, 192 * KB, 384 * KB, 2 * MB)


def test_fig6(benchmark):
    result = run_once(benchmark, lambda: fig6.run(epochs=7, block_sizes=SIZES))
    print(result.render())
    rows = {row["block"]: row for row in result.rows}
    baseline_tail = rows["32KB"]["TL_on"]
    # Tail latency grows with block size under DCA...
    worst_tail = max(row["TL_on"] for row in result.rows)
    assert worst_tail > 1.2 * baseline_tail
    # ...while all-DCA-off is far worse than co-running under DCA at the
    # small-block end (the paper's "unacceptable increase").
    assert rows["32KB"]["AL_alloff"] > 5 * rows["32KB"]["AL_on"]
    # FIO throughput still saturates near its large-block peak.
    assert rows["2048KB"]["fio_tput"] > rows["32KB"]["fio_tput"]
