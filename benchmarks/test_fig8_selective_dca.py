"""Fig. 8 — the two mitigation knobs: per-SSD DCA disable (a) and trash
ways (b)."""

import pytest
from conftest import run_once

from repro.experiments.figures import fig8

KB = 1024
MB = 1024 * KB


def test_fig8a_ssd_dca_off(benchmark):
    result = run_once(
        benchmark,
        lambda: fig8.run_fig8a(epochs=7, block_sizes=(32 * KB, 512 * KB, 2 * MB)),
    )
    print(result.render())
    rows = {row["block"]: row for row in result.rows}
    for block in ("512KB", "2048KB"):
        # [SSD-DCA off] at least matches [DCA on] on network latency...
        assert rows[block]["AL_ssdoff"] <= rows[block]["AL_on"] * 1.02
        assert rows[block]["TL_ssdoff"] <= rows[block]["TL_on"] * 1.02
        # ...without costing the SSD throughput.
        assert rows[block]["fio_ssdoff"] == pytest.approx(
            rows[block]["fio_on"], rel=0.12
        )
    # Somewhere in the sweep the DCA-on latency tax is visible.
    assert any(
        row["TL_on"] > 1.15 * row["TL_ssdoff"] for row in result.rows
    )


def test_fig8b_trash_ways(benchmark):
    result = run_once(benchmark, lambda: fig8.run_fig8b(epochs=6))
    print(result.render())
    first, last = result.rows[0], result.rows[-1]
    # Shrinking FIO from 4 shared ways to 1 protects the bystander...
    assert last["xmem_miss"] < first["xmem_miss"] - 0.1
    # ...and storage throughput stays flat (O5).
    assert last["fio_tput"] == pytest.approx(first["fio_tput"], rel=0.1)
