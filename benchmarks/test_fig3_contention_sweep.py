"""Fig. 3 — the three I/O-driven contention groups in the way sweep."""

from conftest import run_once

from repro.experiments.figures import fig3

POSITIONS = [(0, 1), (3, 4), (5, 6), (9, 10)]


def miss_by_ways(result):
    return {row["xmem_ways"]: row["xmem_llc_miss"] for row in result.rows}


def test_fig3a_dpdk_nt(benchmark):
    result = run_once(
        benchmark, lambda: fig3.run_fig3a(epochs=6, positions=POSITIONS)
    )
    print(result.render())
    miss = miss_by_ways(result)
    # Latent contention in the DCA ways only.
    assert miss["way[0:1]"] > 0.4
    # No bloat, no directory contention without consumption.
    assert miss["way[3:4]"] < 0.1
    assert miss["way[5:6]"] < 0.1
    assert miss["way[9:10]"] < 0.15


def test_fig3b_dpdk_t(benchmark):
    result = run_once(
        benchmark, lambda: fig3.run_fig3b(epochs=6, positions=POSITIONS)
    )
    print(result.render())
    miss = miss_by_ways(result)
    # Standard ways stay clean.
    assert miss["way[3:4]"] < 0.1
    # DMA bloat where DPDK-T's CAT mask points.
    assert miss["way[5:6]"] > 0.25
    # The newly discovered directory contention in the inclusive ways.
    assert miss["way[9:10]"] > 0.5
    assert miss["way[9:10]"] > miss["way[3:4]"] + 0.4
