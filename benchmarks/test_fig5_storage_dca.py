"""Fig. 5 — storage throughput saturates with block size regardless of
DCA; large blocks leak from the DCA ways."""

import pytest
from conftest import run_once

from repro.experiments.figures import fig5

KB = 1024
MB = 1024 * KB
SIZES = (4 * KB, 32 * KB, 128 * KB, 2 * MB)


def test_fig5(benchmark):
    result = run_once(benchmark, lambda: fig5.run(epochs=5, block_sizes=SIZES))
    print(result.render())
    rows = {row["block"]: row for row in result.rows}
    # Throughput rises with block size and saturates.
    assert rows["128KB"]["tput_dca_on"] > 3 * rows["4KB"]["tput_dca_on"]
    assert rows["2048KB"]["tput_dca_on"] == pytest.approx(
        rows["128KB"]["tput_dca_on"], rel=0.35
    )
    # DCA does not change storage throughput (the paper's key negative).
    for block in ("32KB", "128KB", "2048KB"):
        assert rows[block]["tput_dca_on"] == pytest.approx(
            rows[block]["tput_dca_off"], rel=0.15
        )
    # DMA leak appears only past the saturation block size.
    assert rows["32KB"]["leak_frac_on"] < 0.05
    assert rows["2048KB"]["leak_frac_on"] > 0.5
    # With DCA off, memory bandwidth ~= 2x throughput (write + read back).
    assert rows["128KB"]["membw_dca_off"] > 1.7 * rows["128KB"]["tput_dca_off"]
