"""Fig. 11 — X-Mem IPC / LLC hit rates vs packet size under the three
schemes: A4 keeps the cache-sensitive HPW flat and fast."""

from conftest import run_once

from repro.experiments.figures import fig11

PACKETS = (256, 1514)


def test_fig11(benchmark):
    result = run_once(
        benchmark,
        lambda: fig11.run(epochs=16, warmup=4, packet_sizes=PACKETS),
    )
    print(result.render())
    rows = {(row["scheme"], row["pkt"]): row for row in result.rows}
    for pkt in ("256B", "1514B"):
        default = rows[("default", pkt)]
        a4 = rows[("a4", pkt)]
        # Paper: X-Mem 1 speedups of 1.3x-1.78x with ~97% hit rates.
        assert a4["x1_ipc"] > 1.3 * default["x1_ipc"]
        assert a4["x1_hit"] > 0.9
    # A4's X-Mem 1 is insensitive to packet size (stable hit rate).
    assert abs(rows[("a4", "256B")]["x1_hit"] - rows[("a4", "1514B")]["x1_hit"]) < 0.05
    # Isolate's rigidity never beats A4 for the cache-sensitive HPW.
    assert rows[("a4", "1514B")]["x1_ipc"] >= rows[("isolate", "1514B")]["x1_ipc"]
