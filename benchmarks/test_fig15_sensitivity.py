"""Fig. 15 — sensitivity of A4 to thresholds and timing."""

from conftest import run_once

from repro.experiments.figures import fig15


def test_fig15a_partitioning_thresholds(benchmark):
    result = run_once(
        benchmark,
        lambda: fig15.run_partitioning(
            epochs=16, warmup=5, t1_values=(0.10, 0.40), t5_values=(0.80, 0.95)
        ),
    )
    print(result.render())
    rows = {(row["param"], row["value"]): row for row in result.rows}
    # A4 beats Default across the threshold range.
    for row in result.rows:
        assert row["hpw_rel_perf"] > 1.0
    # An aggressive T5 detects at least as many antagonists.
    assert (
        rows[("T5", 0.80)]["n_antagonists"]
        >= rows[("T5", 0.95)]["n_antagonists"]
    )


def test_fig15b_leak_thresholds(benchmark):
    # Sweep T3, the storage share of PCIe write throughput: FFSB-H's DCA
    # and LLC miss-rate signatures sit near 100%, so (as in the paper's
    # Fig. 15b) the share threshold is the one that can be raised past the
    # workload's signature.
    sweeps = {"T3_io_tp": ("dmalk_io_tp_thr", (0.35, 0.95))}
    result = run_once(
        benchmark,
        lambda: fig15.run_leak_thresholds(epochs=16, warmup=5, sweeps=sweeps),
    )
    print(result.render())
    rows = {row["value"]: row for row in result.rows}
    # At the paper's threshold FFSB-H is detected; raised past its
    # signature, the detection (and the benefit) disappears.
    assert rows[0.35]["ffsbh_detected"] == "yes"
    assert rows[0.95]["ffsbh_detected"] == "no"
    assert rows[0.35]["hpw_rel_perf"] >= rows[0.95]["hpw_rel_perf"] * 0.95


def test_fig15c_stable_interval(benchmark):
    result = run_once(
        benchmark,
        lambda: fig15.run_timing(epochs=26, warmup=5, stable_intervals=(2, 10)),
    )
    print(result.render())
    rows = {row["stable_interval"]: row for row in result.rows}
    oracle = rows["oracle"]["hpw_rel_perf"]
    # Frequent reverting costs performance; the paper's 10 s interval is
    # within ~1% of the oracle (we allow a wider band at reduced epochs).
    assert rows[10]["hpw_rel_perf"] >= rows[2]["hpw_rel_perf"] * 0.95
    assert rows[10]["hpw_rel_perf"] >= oracle * 0.85
    assert rows[2]["reverts"] >= rows[10]["reverts"]
