"""Fig. 4 — disabling the NIC's DCA removes directory contention, at an
unacceptable network-latency price."""

from conftest import run_once

from repro.experiments.figures import fig4


def test_fig4(benchmark):
    result = run_once(benchmark, lambda: fig4.run(epochs=6))
    print(result.render())
    rows = {row["xmem_ways"]: row for row in result.rows}
    inclusive = rows["way[9:10]"]
    # DCA on: heavy contention at the inclusive ways; DCA off: gone.
    assert inclusive["miss_dca_on"] > 0.5
    assert inclusive["miss_dca_off"] < 0.15
    # Standard ways unaffected either way.
    assert rows["way[3:4]"]["miss_dca_on"] < 0.1
    # The price: DPDK-T latency explodes without DCA.
    assert inclusive["dpdk_lat_off"] > 5 * inclusive["dpdk_lat_on"]
