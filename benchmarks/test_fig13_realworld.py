"""Fig. 13 — the real-world co-location study: Default vs Isolate vs
A4-a..d, HPW-heavy and LPW-heavy."""

from conftest import run_once

from repro.experiments.figures import fig13

SCHEMES = ("default", "isolate", "a4-a", "a4-b", "a4-d")


def rel(rows, scheme, workload):
    for row in rows:
        if row["scheme"] == scheme and row["workload"] == workload:
            return row["rel_perf"]
    raise KeyError((scheme, workload))


def test_fig13a_hpw_heavy(benchmark):
    result = run_once(
        benchmark,
        lambda: fig13.run_hpw_heavy(epochs=18, warmup=5, schemes=SCHEMES),
    )
    print(result.render())
    rows = result.rows
    # Isolate's rigid partitioning does not beat Default for the network HPW.
    assert rel(rows, "isolate", "fastclick") < 1.1
    # Safeguarding I/O buffers (A4-b) is the big Fastclick win over A4-a.
    assert rel(rows, "a4-b", "fastclick") > 1.2 * rel(rows, "a4-a", "fastclick")
    # Full A4 clearly beats Default for the network HPW.
    assert rel(rows, "a4-d", "fastclick") > 1.1
    # The heavy storage LPW is insensitive (paper: FFSB-H unaffected).
    assert 0.85 < rel(rows, "a4-d", "ffsb-h") < 1.15
    # Streaming antagonists don't care about their LLC share.
    assert rel(rows, "a4-d", "bwaves") > 0.8


def test_fig13b_lpw_heavy(benchmark):
    result = run_once(
        benchmark,
        lambda: fig13.run_lpw_heavy(
            epochs=18, warmup=5, schemes=("default", "a4-d")
        ),
    )
    print(result.render())
    rows = result.rows
    # The network HPW still wins under full A4 in the LPW-heavy mix.
    assert rel(rows, "a4-d", "fastclick") > 1.05
    # LPWs stay within an acceptable band (no collapse).
    for lpw in ("x264", "parest", "ffsb-h"):
        assert rel(rows, "a4-d", lpw) > 0.6
