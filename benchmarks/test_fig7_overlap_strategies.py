"""Fig. 7 — (n+2)-Overlap is never worse than n-Exclude: consumed I/O
lines migrate into the inclusive ways regardless of CAT, so excluding them
buys nothing."""

from conftest import run_once

from repro.experiments.figures import fig7


def test_fig7(benchmark):
    result = run_once(benchmark, lambda: fig7.run(epochs=6, n_values=(2, 4)))
    print(result.render())
    rows = {row["strategy"]: row for row in result.rows}
    for n in (2, 4):
        exclude = rows[f"{n}-Exclude"]
        overlap = rows[f"{n + 2}-Overlap"]
        # Overlap matches or beats Exclude on latency and memory bandwidth
        # while nominally using two more ways that Exclude wastes anyway.
        assert overlap["AL"] <= exclude["AL"] * 1.05
        assert overlap["mem_bw"] <= exclude["mem_bw"] * 1.05
