"""Benchmark-suite helpers.

Each benchmark regenerates one of the paper's figures (reduced epochs),
asserts its qualitative *shape* — who wins, roughly by how much, where the
crossovers sit — and prints the reproduced table.  Timings reported by
pytest-benchmark measure the full figure regeneration.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run a figure regeneration exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
