"""Fig. 12 — network latency/throughput vs storage block size: A4 holds
the network HPW near its stand-alone operating point."""

from conftest import run_once

from repro.experiments.figures import fig12

KB = 1024
MB = 1024 * KB
SIZES = (32 * KB, 2 * MB)


def test_fig12(benchmark):
    result = run_once(
        benchmark,
        lambda: fig12.run(epochs=16, warmup=4, block_sizes=SIZES),
    )
    print(result.render())
    rows = {(row["scheme"], row["block"]): row for row in result.rows}
    # At the largest blocks, A4 cuts network latency vs Default (paper: -58%).
    assert (
        rows[("a4", "2048KB")]["avg_lat"]
        < 0.7 * rows[("default", "2048KB")]["avg_lat"]
    )
    # And throughput does not regress.
    assert (
        rows[("a4", "2048KB")]["net_tput"]
        >= rows[("default", "2048KB")]["net_tput"] * 0.98
    )
    # FIO keeps its throughput under A4 despite the DCA disable.
    assert (
        rows[("a4", "2048KB")]["fio_tput"]
        > 0.85 * rows[("default", "2048KB")]["fio_tput"]
    )
