"""Ablation benches for the design choices DESIGN.md calls out."""

import pytest
from conftest import run_once

from repro.experiments.figures import ablation


def test_ablation_inclusive_migration(benchmark):
    result = run_once(benchmark, lambda: ablation.run_migration_ablation(epochs=5))
    print(result.render())
    rows = {row["migration"]: row for row in result.rows}
    # The entire directory contention hinges on the migration mechanism.
    assert rows["on"]["xmem_miss_at_9_10"] > 0.5
    assert rows["off"]["xmem_miss_at_9_10"] < 0.05
    assert rows["off"]["dpdk_migrations"] == 0


def test_ablation_ddio_write_update(benchmark):
    result = run_once(benchmark, lambda: ablation.run_write_update_ablation(epochs=5))
    print(result.render())
    rows = {row["write_update"]: row for row in result.rows}
    # With updates disabled every ring reuse becomes a fresh allocation.
    assert rows["on"]["ddio_updates"] > 0
    assert rows["off"]["ddio_updates"] == 0
    assert rows["off"]["ddio_allocates"] > rows["on"]["ddio_allocates"]


def test_ablation_replacement_policy(benchmark):
    result = run_once(benchmark, lambda: ablation.run_replacement_ablation(epochs=5))
    print(result.render())
    rows = {row["policy"]: row for row in result.rows}
    # Plain RRIP cannot beat LRU here (victim-cache lines are single-use),
    # but the dead-block hint protects the bystander measurably.
    assert rows["deadblock"]["xmem_miss"] < rows["lru"]["xmem_miss"] - 0.03
    assert rows["srrip"]["xmem_miss"] == pytest.approx(
        rows["lru"]["xmem_miss"], abs=0.05
    )


def test_related_self_invalidation(benchmark):
    result = run_once(
        benchmark, lambda: ablation.run_self_invalidation_study(epochs=5)
    )
    print(result.render())
    rows = {
        (row["hierarchy"], row["xmem_ways"]): row for row in result.rows
    }
    # The hardware baseline removes both contentions entirely.
    assert rows[("self-invalidate", "way[9:10]")]["xmem_miss"] < 0.05
    assert rows[("self-invalidate", "way[5:6]")]["xmem_miss"] < 0.05
    assert rows[("self-invalidate", "way[5:6]")]["dpdk_bloats"] == 0
    assert rows[("baseline", "way[9:10]")]["xmem_miss"] > 0.5


def test_related_ddio_ways(benchmark):
    result = run_once(benchmark, lambda: ablation.run_ddio_ways_study(epochs=5))
    print(result.render())
    rows = {row["ddio_ways"]: row for row in result.rows}
    # Widening DDIO eventually absorbs the flood (lower network tail)...
    assert rows[6]["dpdk_p99"] < 0.5 * rows[2]["dpdk_p99"]
    # ...but the bystander pays for the carve-out.
    assert rows[6]["xmem_miss"] > rows[2]["xmem_miss"]


def test_ablation_trash_floor(benchmark):
    result = run_once(benchmark, lambda: ablation.run_trash_floor_ablation(epochs=5))
    print(result.render())
    by_floor = {row["fio_trash_ways"]: row for row in result.rows}
    assert by_floor[1]["xmem_miss"] <= by_floor[4]["xmem_miss"]
    assert by_floor[1]["fio_tput"] == pytest.approx(
        by_floor[4]["fio_tput"], rel=0.1
    )
