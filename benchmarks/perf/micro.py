"""Micro-benchmarks for the individual hot-path layers.

Each benchmark isolates one layer the end-to-end figures hammer:

* ``cpu_access``  — the CPU-side ladder of :meth:`CacheHierarchy.cpu_access`
  (MLC hit, LLC hit + migration, full miss) over a working set larger than
  the MLC, so all three paths are exercised;
* ``dma_write``   — the DDIO ingress path (write-allocate / write-update)
  plus periodic consuming reads, the paper's NIC Rx pattern;
* ``engine``      — raw event-loop throughput of :class:`Simulator` with a
  handful of self-rescheduling generator processes;
* ``counters``    — :class:`StreamCounters` snapshot/delta plus
  :meth:`CounterBank.total`, the per-epoch sampling cost.

Wall times are best-of-``repeats`` to damp scheduler noise.  The three
scenarios CI's bench-gate compares against the committed quick baseline
(``cpu_access``, ``dma_write``, ``engine``) stay best-of-5 even in quick
mode — a single quick rep jitters by 20%+ on a busy host, far beyond the
gate's 0.95x threshold.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.rdt.cat import CacheAllocation
from repro.sim import engine as engine_mod
from repro.sim.engine import Simulator
from repro.telemetry.counters import CounterBank, StreamCounters
from repro.uncore.memory import MemoryController


def _best_of(repeats: int, fn: Callable[[], int]) -> Dict[str, float]:
    """Run ``fn`` (returning its event count) and keep the fastest wall."""
    best_wall = None
    events = 0
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - started
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return {
        "wall_s": best_wall,
        "events": events,
        "events_per_s": events / best_wall if best_wall else 0.0,
    }


def _make_hierarchy(cores: int = 4) -> CacheHierarchy:
    counters = CounterBank()
    memory = MemoryController(counters)
    cfg = HierarchyConfig(cores=cores)
    return CacheHierarchy(cfg, CacheAllocation(), memory, counters)


def bench_cpu_access(quick: bool) -> Dict[str, float]:
    accesses = 40_000 if quick else 200_000
    span = 16_384  # lines; larger than one MLC so misses recycle

    def body() -> int:
        hierarchy = _make_hierarchy()
        now = 0.0
        for i in range(accesses):
            addr = (i * 7) % span
            hierarchy.cpu_access(
                now,
                core=i & 3,
                addr=addr,
                stream="bench",
                write=(i & 15) == 0,
                io_read=False,
            )
            now += 1.0
        return accesses

    return _best_of(5, body)


def bench_dma_write(quick: bool) -> Dict[str, float]:
    writes = 40_000 if quick else 200_000
    span = 8_192

    def body() -> int:
        hierarchy = _make_hierarchy()
        now = 0.0
        for i in range(writes):
            addr = (i * 3) % span
            hierarchy.dma_write(now, addr, "nic", allocating=True)
            if (i & 7) == 0:  # the consumer catches up now and then
                hierarchy.cpu_access(now, core=0, addr=addr, stream="nic", io_read=True)
            now += 1.0
        return writes

    return _best_of(5, body)


def bench_engine(quick: bool) -> Dict[str, float]:
    steps = 50_000 if quick else 250_000
    nprocs = 8

    def body() -> int:
        sim = Simulator()

        def ticker():
            while True:
                yield 1.0

        for p in range(nprocs):
            sim.spawn(f"p{p}", ticker())
        for _ in range(steps):
            sim.step()
        return steps

    return _best_of(5, body)


def bench_counters(quick: bool) -> Dict[str, float]:
    rounds = 4_000 if quick else 20_000
    nstreams = 8

    def body() -> int:
        bank = CounterBank()
        for s in range(nstreams):
            counters = bank.stream(f"s{s}")
            counters.llc_hits = s
            counters.mem_reads = 2 * s
        snap = StreamCounters()
        for _ in range(rounds):
            for counters in bank.streams.values():
                counters.llc_hits += 1
                counters.snapshot().delta(snap)
            bank.total()
        return rounds * nstreams

    return _best_of(1 if quick else 3, body)


def bench_wheel_engine(quick: bool) -> Dict[str, float]:
    """Calendar-wheel stress: many processes at mixed delays.

    Unlike ``engine`` (uniform 1-cycle ticks through ``step()``), this
    drives ``run_until`` with delays straddling the wheel grain, crossing
    bucket boundaries, and occasionally jumping past the wheel span into
    the far heap — the distribution the bucket queue was shaped for."""
    target_events = 40_000 if quick else 200_000
    nprocs = 32
    span = engine_mod.WHEEL_SLOTS * engine_mod.WHEEL_GRAIN
    delays = (
        1.0,
        3.0,
        engine_mod.WHEEL_GRAIN / 2,
        engine_mod.WHEEL_GRAIN * 1.5,
        17.0,
        41.0,
        engine_mod.WHEEL_GRAIN * 5 + 1.0,
        span * 1.25,  # far-heap excursion
        5.0,
        engine_mod.WHEEL_GRAIN,
        2.0,
        73.0,
    )

    def body() -> int:
        sim = Simulator()
        n_delays = len(delays)

        def actor(phase: int):
            k = phase
            while True:
                yield delays[k % n_delays]
                k += 1

        for p in range(nprocs):
            sim.spawn(f"w{p}", actor(p))
        # Mean delay ~ (sum of the ladder)/12; run long enough for the
        # event budget regardless of parameter tuning.
        horizon = (sum(delays) / len(delays)) * (target_events / nprocs)
        sim.run_until(horizon)
        return sim.events_executed

    return _best_of(1 if quick else 3, body)


MICRO_BENCHMARKS = {
    "cpu_access": bench_cpu_access,
    "dma_write": bench_dma_write,
    "engine": bench_engine,
    "wheel_engine": bench_wheel_engine,
    "counters": bench_counters,
}
