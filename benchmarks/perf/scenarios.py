"""Macro-benchmarks: the canonical mixed NIC+NVMe server scenario.

``build_canonical`` is the workload combination every bench number refers
to: a DPDK-T network consumer (DDIO ingress + payload consumption, i.e.
migrations and DMA bloat) sharing the socket with an FIO storage reader
(NVMe DMA bursts).  It is deliberately a module-level function so the
parallel sweep runner can pickle it into worker processes.

Registered benchmarks:

* ``canonical``             — one seed, wall time + simulated-events/s;
* ``multi_seed``            — the paper's five-iteration methodology (§6)
  through :func:`repro.experiments.sweep.run_repeated`, serial loop;
  events are the *simulated* event count summed across seeds;
* ``multi_seed_parallel``   — the same sweep forced through the warm
  process pool, so the pool path is benchmarked too;
* ``cached_figure``         — a figure runner cold (simulating, populating
  a temp cache) then warm (pure cache replay); ``wall_s`` is the warm
  replay and ``cold_s``/``speedup`` record the win;
* ``platform_sweep``        — one small figure across every platform
  preset via :func:`repro.experiments.sweep.sweep_platforms` (cache
  disabled, so it measures real per-platform simulation);
* ``long_horizon``          — the canonical server over a long stationary
  horizon, simulated exactly epoch by epoch;
* ``sampled_long_horizon``  — the same horizon under
  representative-interval sampling; records wall/structural speedup and
  the true error vs the exact run (asserted <= the 2% budget);
* ``multi_tenant``          — the seeded 6-tenant SLO scenario under the
  A4 scheme: generator + phased traffic + per-request latency recording
  + SLO evaluation, the whole tenancy path end to end;
* ``trace_overhead``        — the canonical run with observability off,
  with in-process tracing, and with the full service-worker setup
  (context + spooling sink + progress events); asserts the epoch
  samples are identical all three ways (tracing-off parity) and records
  the spooled overhead.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict

from repro.experiments import runcache
from repro.experiments.harness import Server
from repro.experiments.sweep import DEFAULT_SEEDS, run_repeated
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload

MB = 1024 * 1024


def build_canonical(seed: int) -> Server:
    """The canonical mixed NIC+NVMe server: DPDK-T (HPW) + FIO (LPW)."""
    server = Server(cores=10, seed=seed)
    server.add_workload(
        DpdkWorkload(
            name="dpdk",
            touch=True,
            cores=4,
            packet_bytes=1024,
            priority=PRIORITY_HIGH,
        )
    )
    server.add_workload(
        FioWorkload(
            name="fio",
            block_bytes=1 * MB,
            cores=4,
            io_depth=16,
            priority=PRIORITY_LOW,
        )
    )
    return server


def bench_canonical(quick: bool) -> Dict[str, float]:
    epochs = 3 if quick else 6
    started = time.perf_counter()
    server = build_canonical(0xA4)
    server.run(epochs=epochs, warmup=1)
    wall = time.perf_counter() - started
    events = getattr(server.sim, "events_executed", 0)
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall else 0.0,
        "epochs": epochs,
    }


def _multi_seed(quick: bool, parallel: bool) -> Dict[str, float]:
    epochs = 3 if quick else 5
    seeds = DEFAULT_SEEDS[:3] if quick else DEFAULT_SEEDS
    kwargs = {}
    mode = "serial"
    if parallel:
        # Force at least two workers so the pool path is exercised even on
        # single-CPU hosts (resolve_workers would otherwise fall back).
        workers = max(2, os.cpu_count() or 1)
        kwargs = {"parallel": True, "max_workers": workers}
        mode = f"parallel:{workers}"
    started = time.perf_counter()
    result = run_repeated(
        build_canonical, epochs=epochs, warmup=1, seeds=seeds, **kwargs
    )
    wall = time.perf_counter() - started
    # Simulated events summed across seeds (each worker reports its own
    # simulator's count), so events/s is comparable with ``canonical``.
    events = result.total_events
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall else 0.0,
        "seeds": len(result.seeds),
        "epochs": epochs,
        "mode": mode,
    }


def bench_multi_seed(quick: bool) -> Dict[str, float]:
    return _multi_seed(quick, parallel=False)


def bench_multi_seed_parallel(quick: bool) -> Dict[str, float]:
    return _multi_seed(quick, parallel=True)


def bench_cached_figure(quick: bool) -> Dict[str, float]:
    """Cold figure run (simulation + cache populate) vs warm replay.

    ``wall_s`` is the warm replay — the number the regression gate tracks;
    ``cold_s`` and ``speedup`` document the cache win in the record."""
    from repro.experiments.figures import REGISTRY

    epochs = 3 if quick else 6
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    saved_cache = runcache.get_cache()
    runcache.set_cache(runcache.RunCache(root=Path(cache_dir)))
    try:
        runner = REGISTRY["fig8b"]
        started = time.perf_counter()
        cold = runner(epochs=epochs, seed=0xA4)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = runner(epochs=epochs, seed=0xA4)
        warm_s = time.perf_counter() - started
        assert warm == cold, "cache replay diverged from the cold run"
        stats = runcache.get_cache().stats
        assert stats.hits >= 1, "warm invocation was not a cache hit"
    finally:
        runcache.set_cache(saved_cache)
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "wall_s": warm_s,
        "cold_s": cold_s,
        "speedup": cold_s / warm_s if warm_s else 0.0,
        "events": 1,  # one figure replay
        "events_per_s": 1.0 / warm_s if warm_s else 0.0,
        "epochs": epochs,
    }


def bench_platform_sweep(quick: bool) -> Dict[str, float]:
    """One small figure across every platform preset, serially.

    Tracks the cost of the platform-sensitivity sweep path itself
    (`sweep_platforms` dispatch + per-preset simulation); ``events`` is
    the number of sweep cells so ``events_per_s`` reads as cells/s."""
    from repro.experiments.sweep import (
        DEFAULT_SWEEP_PLATFORMS,
        sweep_platforms,
    )

    epochs = 3 if quick else 6
    started = time.perf_counter()
    results = sweep_platforms(["fig3a"], epochs=epochs, seed=0xA4)
    wall = time.perf_counter() - started
    cells = len(results)
    assert cells == len(DEFAULT_SWEEP_PLATFORMS), "sweep dropped a preset"
    return {
        "wall_s": wall,
        "events": cells,
        "events_per_s": cells / wall if wall else 0.0,
        "platforms": cells,
        "epochs": epochs,
    }


def bench_batched_dma(quick: bool) -> Dict[str, float]:
    """Batched twin of ``dma_write``: the same DDIO ingress traffic shaped
    the way devices actually deliver it — multi-line bursts (NIC packets,
    NVMe quanta) through ``dma_write_burst`` — so the batch-dispatch path
    (vectorized set indices, pre-drawn recency ticks, aggregated victim
    accounting) is what gets measured.  ``events`` counts lines, making
    events/s directly comparable with ``dma_write``."""
    from perf.micro import _best_of, _make_hierarchy

    writes = 40_000 if quick else 200_000
    burst = 24  # a 1514B NIC packet
    span = 8_192

    def body() -> int:
        hierarchy = _make_hierarchy()
        now = 0.0
        issued = 0
        base = 0
        while issued < writes:
            hierarchy.dma_write_burst(now, base % span, burst, "nic", True)
            issued += burst
            base += burst
            if base % (burst * 8) == 0:  # the consumer catches up
                hierarchy.cpu_access(
                    now, core=0, addr=base % span, stream="nic", io_read=True
                )
            now += 1.0
        return issued

    return _best_of(1 if quick else 3, body)


def bench_batched_cpu(quick: bool) -> Dict[str, float]:
    """Batched twin of ``cpu_access``: the same ladder driven through
    ``cpu_access_run`` in runs of consecutive reads (a consumer scanning
    packet payloads), so MLC-hit streaks collapse into bulk updates while
    misses and migrations still take the scalar ladder in place."""
    from perf.micro import _best_of, _make_hierarchy

    accesses = 40_000 if quick else 200_000
    run_len = 64  # one payload scan (4 KB) per run
    span = 16_384

    def body() -> int:
        hierarchy = _make_hierarchy()
        now = 0.0
        issued = 0
        base = 0
        while issued < accesses:
            addrs = range(base % span, base % span + run_len)
            core = (issued >> 6) & 3
            # Cold scan (header parse): the miss ladder, scalar in place.
            hierarchy.cpu_access_run(now, core=core, addrs=addrs, stream="bench")
            # Warm rescan (payload copy): the MLC-hit streak the batch
            # collapses into bulk recency/counter updates.
            hierarchy.cpu_access_run(now, core=core, addrs=addrs, stream="bench")
            issued += 2 * run_len
            base += run_len
            now += 1.0
        return issued

    return _best_of(1 if quick else 3, body)


def _long_horizon_config(quick: bool):
    """Epoch count + sampling plan for the long-horizon pair.

    Full mode is sized so the sampled run demonstrates the ISSUE-7 target
    (>=10x wall clock at <=2% error) on a stationary scenario; quick mode
    keeps CI smoke under a few seconds with a shorter skip leash."""
    from repro.sim.sampling import SamplingPlan

    if quick:
        return 60, SamplingPlan(max_skip=16, error_budget=0.02)
    return 200, SamplingPlan(max_skip=32, error_budget=0.02)


def _run_long_horizon(quick: bool, plan=None):
    epochs, default_plan = _long_horizon_config(quick)
    started = time.perf_counter()
    server = build_canonical(0xA4)
    result = server.run(epochs=epochs, warmup=5, sampling=plan)
    wall = time.perf_counter() - started
    return wall, epochs, server, result


def _sampled_true_error(exact, sampled) -> float:
    """Worst relative error of the sampled aggregates vs the exact run.

    Metrics whose exact magnitude is below 0.01 are excluded: relative
    error against a near-zero denominator (e.g. the storage reader's
    ~1e-3 LLC hit rate in the unmanaged mix) measures noise amplification,
    not extrapolation quality — absolute drift there is negligible."""
    worst = 0.0
    for name in exact.stream_names():
        exact_agg = exact.aggregate(name)
        sampled_agg = sampled.aggregate(name)
        for metric in ("ipc", "llc_hit_rate", "throughput"):
            reference = getattr(exact_agg, metric)
            if abs(reference) < 0.01:
                continue
            estimate = getattr(sampled_agg, metric)
            worst = max(worst, abs(estimate - reference) / abs(reference))
    return worst


def bench_long_horizon(quick: bool) -> Dict[str, float]:
    """Exact long-horizon run of the canonical server (the 10-100x
    motivation case: many stationary epochs simulated one by one)."""
    wall, epochs, server, _ = _run_long_horizon(quick)
    events = server.sim.events_executed
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall else 0.0,
        "epochs": epochs,
    }


def bench_sampled_long_horizon(quick: bool) -> Dict[str, float]:
    """The same horizon under representative-interval sampling.

    Runs exact *and* sampled so the record carries the measured wall
    speedup and the true (not just estimated) error; asserts the error
    budget holds, so a sampler regression fails the bench outright.
    ``wall_s`` (the gated number) is the sampled run."""
    epochs, plan = _long_horizon_config(quick)
    exact_wall, _, _, exact = _run_long_horizon(quick)
    started = time.perf_counter()
    server = build_canonical(0xA4)
    sampled = server.run(epochs=epochs, warmup=5, sampling=plan)
    wall = time.perf_counter() - started
    report = sampled.sampling
    true_err = _sampled_true_error(exact, sampled)
    assert true_err <= plan.error_budget, (
        f"sampled long-horizon error {true_err:.4f} blew the "
        f"{plan.error_budget:.2f} budget"
    )
    events = server.sim.events_executed
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall else 0.0,
        "epochs": epochs,
        "exact_wall_s": exact_wall,
        "wall_speedup_vs_exact": exact_wall / wall if wall else 0.0,
        "structural_speedup": report.speedup_estimate,
        "detailed_epochs": report.detailed_epochs,
        "skipped_epochs": report.skipped_epochs,
        "max_rel_err_true": true_err,
        "max_rel_err_reported": report.max_rel_err(),
    }


def bench_trace_overhead(quick: bool) -> Dict[str, float]:
    """Tracing-off parity and the cost of the full cross-process layer.

    Runs the canonical scenario three ways — observability disabled,
    plain in-process tracing, and tracing with a context plus a spooling
    :class:`~repro.obsv.spool.TraceSink` (the service-worker
    configuration, including per-epoch progress events) — and asserts the
    epoch samples are identical across all three: the layer observes the
    simulation, it never perturbs it.  ``wall_s`` (the gated number) is
    the tracing-off run; the spooled overhead is recorded alongside."""
    from repro import obsv
    from repro.obsv.spool import TraceSink

    epochs = 4 if quick else 8

    def one_run():
        server = build_canonical(0xA4)
        started = time.perf_counter()
        result = server.run(epochs=epochs, warmup=1)
        return server, result, time.perf_counter() - started

    obsv.disable()
    _, baseline, off_wall = one_run()

    obsv.enable()
    try:
        _, traced, traced_wall = one_run()
    finally:
        obsv.disable()
    assert traced.samples == baseline.samples, (
        "in-process tracing perturbed the simulation"
    )

    spool_dir = tempfile.mkdtemp(prefix="repro-bench-spool-")
    try:
        sink = TraceSink(Path(spool_dir))
        obsv.enable(
            context=obsv.TraceContext(run_id="bench", job_id=1, attempt=1),
            sink=sink,
        )
        server, spooled, spooled_wall = one_run()
        sink.close()
        progress_events = len(obsv.TRACER.by_kind(obsv.KIND_PROGRESS))
    finally:
        obsv.disable()
        shutil.rmtree(spool_dir, ignore_errors=True)
    assert spooled.samples == baseline.samples, (
        "spooled tracing perturbed the simulation"
    )
    assert progress_events == epochs, (
        f"expected one progress event per epoch, got {progress_events}"
    )

    events = server.sim.events_executed
    return {
        "wall_s": off_wall,
        "events": events,
        "events_per_s": events / off_wall if off_wall else 0.0,
        "epochs": epochs,
        "traced_wall_s": traced_wall,
        "spooled_wall_s": spooled_wall,
        "spooled_overhead_pct": (
            100.0 * (spooled_wall - off_wall) / off_wall if off_wall else 0.0
        ),
    }


def bench_multi_tenant(quick: bool) -> Dict[str, float]:
    """The seeded 6-tenant scenario end to end: N-tenant generator,
    phased traffic with per-request latency recording, A4 management,
    and the per-tenant SLO evaluation — the whole tenancy path."""
    from repro.experiments.tenants import build_tenant_server, evaluate_slos

    epochs = 4 if quick else 10
    tenants = 6
    started = time.perf_counter()
    server = build_tenant_server(tenants, scheme="a4", seed=0xA4)
    result = server.run(epochs)
    slos = evaluate_slos(result, server.tenants())
    wall = time.perf_counter() - started
    assert len(slos) == tenants, "SLO report dropped a tenant"
    events = server.sim.events_executed
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall else 0.0,
        "epochs": epochs,
        "tenants": tenants,
        "slos_met": sum(1 for row in slos if row.met),
    }


MACRO_BENCHMARKS = {
    "canonical": bench_canonical,
    "multi_seed": bench_multi_seed,
    "multi_seed_parallel": bench_multi_seed_parallel,
    "cached_figure": bench_cached_figure,
    "platform_sweep": bench_platform_sweep,
    "batched_dma": bench_batched_dma,
    "batched_cpu": bench_batched_cpu,
    "long_horizon": bench_long_horizon,
    "sampled_long_horizon": bench_sampled_long_horizon,
    "multi_tenant": bench_multi_tenant,
    "trace_overhead": bench_trace_overhead,
}
