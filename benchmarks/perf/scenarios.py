"""Macro-benchmarks: the canonical mixed NIC+NVMe server scenario.

``build_canonical`` is the workload combination every bench number refers
to: a DPDK-T network consumer (DDIO ingress + payload consumption, i.e.
migrations and DMA bloat) sharing the socket with an FIO storage reader
(NVMe DMA bursts).  It is deliberately a module-level function so the
parallel sweep runner can pickle it into worker processes.

Two benchmarks are registered:

* ``canonical``   — one seed, wall time + simulated-events/second;
* ``multi_seed``  — the paper's five-iteration methodology (§6) through
  :func:`repro.experiments.sweep.run_repeated`; this is the number the
  ISSUE's ≥2x end-to-end target is judged on.  Uses the parallel runner
  when available and beneficial, else the serial loop.
"""

from __future__ import annotations

import inspect
import os
import time
from typing import Dict

from repro.experiments.harness import Server
from repro.experiments.sweep import DEFAULT_SEEDS, run_repeated
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.dpdk import DpdkWorkload
from repro.workloads.fio import FioWorkload

MB = 1024 * 1024


def build_canonical(seed: int) -> Server:
    """The canonical mixed NIC+NVMe server: DPDK-T (HPW) + FIO (LPW)."""
    server = Server(cores=10, seed=seed)
    server.add_workload(
        DpdkWorkload(
            name="dpdk",
            touch=True,
            cores=4,
            packet_bytes=1024,
            priority=PRIORITY_HIGH,
        )
    )
    server.add_workload(
        FioWorkload(
            name="fio",
            block_bytes=1 * MB,
            cores=4,
            io_depth=16,
            priority=PRIORITY_LOW,
        )
    )
    return server


def bench_canonical(quick: bool) -> Dict[str, float]:
    epochs = 3 if quick else 6
    started = time.perf_counter()
    server = build_canonical(0xA4)
    server.run(epochs=epochs, warmup=1)
    wall = time.perf_counter() - started
    events = getattr(server.sim, "events_executed", 0)
    return {
        "wall_s": wall,
        "events": events,
        "events_per_s": events / wall if wall else 0.0,
        "epochs": epochs,
    }


def bench_multi_seed(quick: bool) -> Dict[str, float]:
    epochs = 3 if quick else 5
    seeds = DEFAULT_SEEDS[:3] if quick else DEFAULT_SEEDS
    kwargs = {}
    mode = "serial"
    # The parallel knob landed with the perf stack; keep the harness usable
    # against older revisions so baselines can be recorded from them.
    if "parallel" in inspect.signature(run_repeated).parameters:
        workers = os.cpu_count() or 1
        if workers > 1:
            kwargs = {"parallel": True, "max_workers": workers}
            mode = f"parallel:{workers}"
    started = time.perf_counter()
    result = run_repeated(build_canonical, epochs=epochs, warmup=1, seeds=seeds, **kwargs)
    wall = time.perf_counter() - started
    # One "event" per (seed, epoch) is meaningless; report simulated seeds/s
    # alongside a wall-clock figure comparable across modes.
    return {
        "wall_s": wall,
        "events": len(result.seeds) * epochs,
        "events_per_s": len(result.seeds) * epochs / wall if wall else 0.0,
        "seeds": len(result.seeds),
        "epochs": epochs,
        "mode": mode,
    }


MACRO_BENCHMARKS = {
    "canonical": bench_canonical,
    "multi_seed": bench_multi_seed,
}
