"""Micro- and macro-benchmarks for the simulation hot path.

These are not pytest tests: :mod:`tools.bench` (``python tools/bench.py``)
imports this package, runs every registered benchmark, and writes a
``BENCH_<date>.json`` record at the repo root for regression tracking.

Each benchmark is a callable ``fn(quick: bool) -> dict`` returning at least
``{"wall_s": float, "events": int, "events_per_s": float}``.
"""

from perf.micro import MICRO_BENCHMARKS
from perf.scenarios import MACRO_BENCHMARKS

ALL_BENCHMARKS = {**MICRO_BENCHMARKS, **MACRO_BENCHMARKS}

__all__ = ["ALL_BENCHMARKS", "MICRO_BENCHMARKS", "MACRO_BENCHMARKS"]
