"""Fig. 14 — latency breakdowns and system-wide metrics."""

import pytest
from conftest import run_once

from repro.experiments.figures import fig14


def test_fig14(benchmark):
    result = run_once(benchmark, lambda: fig14.run(epochs=18, warmup=5))
    print(result.render())
    rows = {row["scheme"]: row for row in result.rows}
    default = rows["default"]
    a4 = rows["a4-d"]
    # A4 shortens the Fastclick latency parts vs Default (paper: -15/-20/-23%).
    assert a4["fc_access"] < default["fc_access"]
    assert a4["fc_queueing"] <= default["fc_queueing"] * 1.05
    # Reduced latency translates into network throughput (Fig. 14c).
    assert a4["fc_tput"] >= default["fc_tput"]
    # FFSB-H is insensitive to the scheme (Fig. 14b/c).
    assert a4["ffsbh_tput"] == pytest.approx(default["ffsbh_tput"], rel=0.15)
    # Memory read bandwidth drops despite higher I/O throughput (Fig. 14d).
    assert a4["mem_rd_bw"] < default["mem_rd_bw"] * 1.05
