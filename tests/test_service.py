"""Tests for the crash-safe job service: durable store, supervised
workers, checkpoint-resumable retries, chaos hooks.

The expensive end-to-end properties (SIGKILL a real worker mid-run,
resume from checkpoint, bit-identical figure) run one small single-cell
``fig11`` grid per test with the run cache disabled, so the identity is
earned by simulation resume rather than a cache hit.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import sqlite3
import time
from pathlib import Path

import pytest

from repro.experiments.errors import (
    CATEGORY_CORRUPT,
    CATEGORY_STALLED,
    FAIL_FAST_CATEGORIES,
)
from repro.service.retry import DEFAULT_POLICY, FAST_POLICY, RetryPolicy
from repro.service.store import (
    DEAD,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    SCHEMA_VERSION,
    AdmissionError,
    JobStore,
    TransitionError,
)
from repro.service.supervisor import Supervisor, SupervisorConfig

DEAD_PID = 2**22 + 54321  # beyond default pid_max: never a live process

CELL_KWARGS = {
    "epochs": 12,
    "warmup": 2,
    "schemes": ["a4"],
    "packet_sizes": [64],
    "checkpoint_every": 3,
}


def _store(tmp_path, **kwargs) -> JobStore:
    return JobStore(tmp_path / "jobs.db", **kwargs)


def _supervisor(store, tmp_path, **overrides) -> Supervisor:
    config = SupervisorConfig(
        results_dir=str(tmp_path / "results"),
        checkpoint_root=str(tmp_path / "ckpt"),
        retry=FAST_POLICY,
        worker_env={"REPRO_CACHE_DISABLE": "1"},
    )
    for name, value in overrides.items():
        setattr(config, name, value)
    return Supervisor(store, config)


# -- retry policy -----------------------------------------------------------


def test_retry_policy_backoff_is_bounded_and_deterministic():
    policy = RetryPolicy(max_attempts=5, base_delay=1.0, max_delay=8.0)
    raw = [policy.delay(n, token="job") for n in (1, 2, 3, 4, 5)]
    # Deterministic: the jitter is a pure function of (token, attempt).
    assert raw == [policy.delay(n, token="job") for n in (1, 2, 3, 4, 5)]
    # Different tokens decorrelate (thundering-herd protection).
    assert raw != [policy.delay(n, token="other") for n in (1, 2, 3, 4, 5)]
    # Exponential up to the cap, within the jitter band.
    for attempt, delay in enumerate(raw, start=1):
        nominal = min(8.0, 1.0 * 2 ** (attempt - 1))
        assert nominal * 0.75 <= delay <= nominal * 1.25
    assert raw[3] <= 8.0 * 1.25 and raw[4] <= 8.0 * 1.25


def test_retry_policy_classification():
    assert not DEFAULT_POLICY.retryable("config")
    assert not DEFAULT_POLICY.retryable("corrupt")
    assert DEFAULT_POLICY.retryable("pool")
    assert DEFAULT_POLICY.retryable("worker-death")
    # Fail-fast gives up on attempt one; transient categories get the
    # full attempt budget.
    assert DEFAULT_POLICY.gives_up(1, "figure")
    assert not DEFAULT_POLICY.gives_up(1, "stalled")
    assert DEFAULT_POLICY.gives_up(DEFAULT_POLICY.max_attempts, "stalled")
    assert FAIL_FAST_CATEGORIES <= DEFAULT_POLICY.fail_fast


# -- store schema / migrations ----------------------------------------------


def test_fresh_store_is_at_current_schema(tmp_path):
    with _store(tmp_path) as store:
        assert store.schema_version == SCHEMA_VERSION


def test_v1_store_migrates_in_place(tmp_path):
    from repro.service.store import MIGRATIONS

    path = tmp_path / "jobs.db"
    db = sqlite3.connect(str(path))
    for statement in MIGRATIONS[0].split(";"):
        if statement.strip():
            db.execute(statement)
    db.execute("PRAGMA user_version=1")
    db.execute(
        "INSERT INTO jobs (key, spec, created_at, updated_at) "
        "VALUES ('k', '{}', 0, 0)"
    )
    db.commit()
    db.close()

    with JobStore(path) as store:
        assert store.schema_version == SCHEMA_VERSION
        job = store.job(1)  # pre-migration row readable post-migration
        assert job.key == "k" and job.result_digest is None


def test_newer_schema_is_refused(tmp_path):
    path = tmp_path / "jobs.db"
    db = sqlite3.connect(str(path))
    db.execute(f"PRAGMA user_version={SCHEMA_VERSION + 1}")
    db.close()
    with pytest.raises(Exception, match="newer"):
        JobStore(path)


# -- state machine -----------------------------------------------------------


def test_illegal_transitions_are_rejected(tmp_path):
    with _store(tmp_path) as store:
        job = store.submit({"figure": "f"}, "k").job
        with pytest.raises(TransitionError):
            store.mark_done(job.id, "x", "d")  # QUEUED -> DONE skips RUNNING
        store.claim(owner_pid=os.getpid())
        with pytest.raises(TransitionError):
            store.mark_dead(job.id, "e", "runtime")  # RUNNING -> DEAD
        store.mark_done(job.id, "x", "d")
        with pytest.raises(TransitionError):
            store.requeue(job.id)  # DONE is terminal


def test_claim_respects_backoff_schedule(tmp_path):
    with _store(tmp_path) as store:
        job = store.submit({"figure": "f"}, "k").job
        store.claim(owner_pid=os.getpid())
        store.mark_failed(job.id, "boom", "runtime")
        store.requeue(job.id, delay=30.0)
        assert store.claim(owner_pid=os.getpid()) is None  # not due yet
        eta = store.next_eta()
        assert eta is not None and eta > time.time() + 25


# -- dedup / admission -------------------------------------------------------


def test_submit_dedups_by_key_and_dead_keys_restart(tmp_path):
    with _store(tmp_path) as store:
        first = store.submit({"figure": "f"}, "k")
        second = store.submit({"figure": "f"}, "k")
        assert not first.deduped and second.deduped
        assert second.job.id == first.job.id and second.job.submits == 2
        assert store.counters()["deduped"] == 1

        store.claim(owner_pid=os.getpid())
        store.mark_failed(first.job.id, "boom", "config")
        store.mark_dead(first.job.id, "boom", "config")
        third = store.submit({"figure": "f"}, "k")
        assert not third.deduped and third.job.id != first.job.id


def test_admission_control_sheds_and_counts(tmp_path):
    with _store(tmp_path, queue_limit=1) as store:
        store.submit({"figure": "f"}, "k1")
        with pytest.raises(AdmissionError, match="limit"):
            store.submit({"figure": "f"}, "k2")
        assert store.counters()["shed"] == 1
        # Dedup joins bypass admission: the job already occupies a slot.
        assert store.submit({"figure": "f"}, "k1").deduped


# -- corruption / recovery ---------------------------------------------------


def test_corrupt_spec_row_is_quarantined_at_claim(tmp_path):
    from repro.faults.service_chaos import corrupt_job_row

    with _store(tmp_path) as store:
        bad = store.submit({"figure": "f"}, "bad").job
        good = store.submit({"figure": "f"}, "good").job
        corrupt_job_row(store.path, bad.id)
        claimed = store.claim(owner_pid=os.getpid())
        assert claimed is not None and claimed.id == good.id
        row = store.job(bad.id)
        assert row.state == DEAD and row.category == CATEGORY_CORRUPT
        assert store.counters()["corrupt_rows"] == 1


def test_orphaned_running_jobs_requeue_on_open(tmp_path):
    with _store(tmp_path) as store:
        job = store.submit({"figure": "f"}, "k").job
        store.claim(owner_pid=DEAD_PID)
        store.record_checkpoint(job.id, 4)
    with _store(tmp_path) as store:  # reopen runs recovery
        row = store.job(job.id)
        assert row.state == QUEUED
        assert row.checkpoint_epoch == 4  # resume pointer survives
        assert row.attempts == 1  # the interrupted attempt still counts
        assert store.counters()["recovered"] == 1


def test_recovery_leaves_live_owners_alone(tmp_path):
    with _store(tmp_path) as store:
        store.submit({"figure": "f"}, "k")
        store.claim(owner_pid=os.getpid())  # we are alive
    with _store(tmp_path) as store:
        assert store.jobs(RUNNING)[0].state == RUNNING
        assert store.counters()["recovered"] == 0


def test_wal_survives_torn_log_write(tmp_path):
    """A torn append to the -wal file costs the uncommitted suffix, not
    the database: committed jobs reopen intact."""
    with _store(tmp_path) as store:
        committed = store.submit({"figure": "f"}, "committed").job
        # Flush the committed row into the main db file; the next write's
        # frames then live only in the WAL and are what the tear destroys.
        store._db.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        store.submit({"figure": "f"}, "tail")  # lives in WAL frames

        torn_dir = tmp_path / "torn"
        torn_dir.mkdir()
        shutil.copy(store.path, torn_dir / "jobs.db")
        wal = Path(str(store.path) + "-wal")
        assert wal.exists() and wal.stat().st_size > 0
        frames = wal.read_bytes()
        # Tear mid-frame: keep the header plus half a frame boundary.
        (torn_dir / "jobs.db-wal").write_bytes(frames[: len(frames) // 2 + 7])

    with JobStore(torn_dir / "jobs.db") as reopened:
        check = reopened._db.execute("PRAGMA integrity_check").fetchone()[0]
        assert check == "ok"
        row = reopened.by_key("committed")
        assert row is not None and row.id == committed.id


# -- supervisor end-to-end ---------------------------------------------------


def _cell_spec():
    from repro.experiments.figures import REGISTRY

    figure = REGISTRY["fig11"]
    return figure, {"figure": "fig11", "kwargs": CELL_KWARGS}, figure.cache_key(
        **CELL_KWARGS
    )


def test_sigkill_resumes_from_checkpoint_bit_identical(tmp_path, monkeypatch):
    from repro.experiments import runcache
    from repro.faults.service_chaos import KillWorker

    monkeypatch.setenv(runcache.ENV_CACHE_DISABLE, "1")
    runcache.set_cache(None)
    figure, spec, key = _cell_spec()
    with _store(tmp_path) as store:
        job = store.submit(spec, key).job
        supervisor = _supervisor(store, tmp_path)
        chaos = KillWorker(budget=1, after_checkpoint=True)
        supervisor.chaos = chaos
        report = supervisor.drain()

        row = store.job(job.id)
        assert chaos.kills == 1 and report.kills == 1
        assert row.state == DONE
        assert row.attempts == 2  # killed once, finished on the retry
        assert row.resumes >= 1  # and the retry resumed, not re-ran
        assert store.counters()["resumes"] >= 1

        baseline = figure(**CELL_KWARGS)
        digest = hashlib.sha256(
            pickle.dumps(baseline, protocol=pickle.HIGHEST_PROTOCOL)
        ).hexdigest()
        assert row.result_digest == digest
        with open(row.result_path, "rb") as fh:
            assert pickle.load(fh).rows == baseline.rows


def test_stalled_worker_is_killed_and_classified(tmp_path, monkeypatch):
    from repro.faults.service_chaos import StallHeartbeat

    figure, spec, key = _cell_spec()
    with _store(tmp_path) as store:
        job = store.submit(spec, key, max_attempts=1).job
        supervisor = _supervisor(
            store,
            tmp_path,
            heartbeat_interval=0.05,
            heartbeat_timeout=0.3,
        )
        supervisor.chaos = StallHeartbeat()
        supervisor.drain()
        row = store.job(job.id)
        assert row.state == DEAD  # single attempt, no budget to retry
        assert row.category == CATEGORY_STALLED


def test_failed_fast_category_goes_dead_without_retry(tmp_path):
    with _store(tmp_path) as store:
        job = store.submit(
            {"figure": "no-such-figure", "kwargs": {}}, "bad-figure"
        ).job
        supervisor = _supervisor(store, tmp_path)
        report = supervisor.drain()
        row = store.job(job.id)
        assert row.state == DEAD and row.attempts == 1
        assert report.retries == 0
        assert "no-such-figure" in row.error


def test_supervisor_settles_failed_rows_from_dead_supervisor(tmp_path):
    """A supervisor that crashed between mark_failed and the retry
    decision leaves a FAILED row; the next drain adjudicates it."""
    with _store(tmp_path) as store:
        job = store.submit({"figure": "f"}, "k", max_attempts=1).job
        store.claim(owner_pid=os.getpid())
        store.mark_failed(job.id, "boom", "runtime")
        supervisor = _supervisor(store, tmp_path)
        supervisor.settle_failed()
        assert store.job(job.id).state == DEAD  # budget of 1 already spent


# -- job trace events / metrics ----------------------------------------------


def test_job_lifecycle_emits_trace_events(tmp_path):
    from repro import obsv

    tracer = obsv.enable()
    try:
        with _store(tmp_path, queue_limit=1) as store:
            job = store.submit({"figure": "f"}, "k").job
            with pytest.raises(AdmissionError):
                store.submit({"figure": "f"}, "other")
            store.claim(owner_pid=os.getpid())
            store.mark_failed(job.id, "boom", "runtime")
            store.requeue(job.id, delay=0.0, resume_epoch=2)
        names = [e.name for e in tracer.events if e.kind == obsv.KIND_JOB]
        assert names == ["submit", "shed", "claim", "failed", "requeue"]
    finally:
        obsv.disable()


def test_collect_service_exports_store_gauges(tmp_path):
    from repro.obsv.metrics import MetricsRegistry, collect_service

    with _store(tmp_path, queue_limit=1) as store:
        store.submit({"figure": "f"}, "k")
        with pytest.raises(AdmissionError):
            store.submit({"figure": "f"}, "other")
        registry = collect_service(store, MetricsRegistry())
        snapshot = registry.snapshot()
        assert snapshot["repro_service_queue_depth"]["series"][0]["value"] == 1
        states = {
            tuple(s["labels"].items()): s["value"]
            for s in snapshot["repro_service_jobs"]["series"]
        }
        assert states[(("state", "queued"),)] == 1
        assert snapshot["repro_service_shed_total"]["series"][0]["value"] == 1


# -- cross-process observability ---------------------------------------------


def test_store_migration_v3_adds_progress_columns(tmp_path):
    """A v2 store (pre progress/claimed_at) upgrades in place and its old
    rows read back with the new columns as None."""
    from repro.service.store import MIGRATIONS

    path = tmp_path / "jobs.db"
    db = sqlite3.connect(str(path))
    for migration in MIGRATIONS[:2]:
        for statement in migration.split(";"):
            if statement.strip():
                db.execute(statement)
    db.execute("PRAGMA user_version=2")
    db.execute(
        "INSERT INTO jobs (key, spec, created_at, updated_at) "
        "VALUES ('k', '{}', 0, 0)"
    )
    db.commit()
    db.close()

    with JobStore(path) as store:
        assert store.schema_version == SCHEMA_VERSION
        job = store.job(1)
        assert job.claimed_at is None
        assert job.progress_done is None and job.progress_fraction is None
        assert store.counters()["crashes"] == 0


def test_progress_updates_only_touch_running_rows(tmp_path):
    with _store(tmp_path) as store:
        job = store.submit({"figure": "f"}, "k").job
        store.update_progress(job.id, 2, 10, 100.0, 5.0)  # QUEUED: ignored
        assert store.job(job.id).progress_done is None

        store.claim(owner_pid=os.getpid())
        claimed = store.job(job.id)
        assert claimed.claimed_at is not None
        assert claimed.claimed_at >= claimed.created_at

        store.update_progress(job.id, 3, 12, 250.0, 7.5)
        row = store.job(job.id)
        assert (row.progress_done, row.progress_total) == (3, 12)
        assert row.progress_rate == 250.0 and row.progress_eta == 7.5
        assert row.progress_fraction == pytest.approx(3 / 12)

        store.mark_done(job.id, "x", "d")
        store.update_progress(job.id, 12, 12)  # DONE: ignored
        assert store.job(job.id).progress_done == 3


def test_job_lifecycle_ordering_under_retries(tmp_path):
    """The KIND_JOB stream tells the full retry story in order, with a
    per-process monotonic seq that pins the order even after a merge."""
    from repro import obsv

    tracer = obsv.enable()
    try:
        with _store(tmp_path) as store:
            job = store.submit({"figure": "f"}, "k", max_attempts=2).job
            store.claim(owner_pid=os.getpid())
            store.mark_failed(job.id, "boom", "runtime")
            store.requeue(job.id, delay=0.0, resume_epoch=3)
            store.claim(owner_pid=os.getpid())
            store.mark_failed(job.id, "boom again", "runtime")
            store.mark_dead(job.id, "gave up", "runtime")
        events = [e for e in tracer.events if e.kind == obsv.KIND_JOB]
        assert [e.name for e in events] == [
            "submit", "claim", "failed", "requeue",
            "claim", "failed", "dead",
        ]
        attempts = [
            e.data["attempt"] for e in events if e.name == "claim"
        ]
        assert attempts == [1, 2]
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert all(e.pid == os.getpid() for e in events)
    finally:
        obsv.disable()


def test_worker_spools_trace_and_streams_progress(tmp_path, monkeypatch):
    """With a spool_root configured, the worker shards its trace into the
    job's spool directory — stamped with the job's context — and pushes
    per-epoch progress onto the row, landing at 100% when DONE."""
    from repro.experiments import runcache
    from repro.obsv.spool import read_spool
    from repro.obsv.tracer import KIND_PROGRESS

    monkeypatch.setenv(runcache.ENV_CACHE_DISABLE, "1")
    runcache.set_cache(None)
    figure, spec, key = _cell_spec()
    with _store(tmp_path) as store:
        job = store.submit(spec, key).job
        supervisor = _supervisor(
            store, tmp_path, spool_root=str(tmp_path / "spool")
        )
        supervisor.drain()

        row = store.job(job.id)
        assert row.state == DONE
        assert row.progress_done == row.progress_total == CELL_KWARGS["epochs"]
        assert row.progress_fraction == 1.0

        spool = supervisor.spool_dir(job)
        events = read_spool(spool)
        assert events, "worker spooled nothing"
        assert all(e.run_id == key[:16] for e in events)
        assert all(e.job_id == job.id for e in events)
        assert all(e.attempt == 1 for e in events)
        pids = {e.pid for e in events}
        assert len(pids) == 1 and os.getpid() not in pids
        progress = [e for e in events if e.kind == KIND_PROGRESS]
        assert [p.data["done"] for p in progress] == list(
            range(1, CELL_KWARGS["epochs"] + 1)
        )
        assert all(
            p.data["total"] == CELL_KWARGS["epochs"] for p in progress
        )


def test_flight_recorder_salvages_sigkill_tail(tmp_path, monkeypatch):
    """kill -9 a worker mid-figure: the supervisor emits a crash report
    whose salvaged tail is exactly the victim's spooled shard tail, and
    the durable crash counter records the death."""
    from repro.experiments import runcache
    from repro.faults.service_chaos import KillWorker
    from repro.obsv.flight import crash_report_path, read_crash_report
    from repro.obsv.spool import read_pid_tail

    monkeypatch.setenv(runcache.ENV_CACHE_DISABLE, "1")
    runcache.set_cache(None)
    figure, spec, key = _cell_spec()
    with _store(tmp_path) as store:
        job = store.submit(spec, key).job
        supervisor = _supervisor(
            store, tmp_path, spool_root=str(tmp_path / "spool")
        )
        supervisor.chaos = KillWorker(budget=1, after_checkpoint=True)
        supervisor.drain()

        row = store.job(job.id)
        assert row.state == DONE  # retry resumed and finished
        assert store.counters()["crashes"] == 1

        report_path = crash_report_path(supervisor.result_path(job))
        assert report_path.exists()
        header, salvaged = read_crash_report(report_path)
        assert header["reason"] == "worker_death"
        assert header["job"]["id"] == job.id
        assert header["pid"] not in (0, os.getpid())
        assert salvaged, "no events salvaged from the victim's spool"
        assert all(e.pid == header["pid"] for e in salvaged)

        # The salvaged tail IS the victim's spooled tail, event for event.
        spooled_tail = read_pid_tail(
            supervisor.spool_dir(job),
            header["pid"],
            limit=supervisor.config.crash_events,
        )
        assert salvaged == spooled_tail

        # The finishing attempt wrote its own shards under a new pid.
        from repro.obsv.spool import spool_pids

        assert len(spool_pids(supervisor.spool_dir(job))) == 2


# -- key identity ------------------------------------------------------------


def test_service_key_is_the_runcache_key():
    """The dedup identity of a service job is the figure's cache key, so
    a service job and a CLI run of the same figure share one cache
    entry — and checkpoint plumbing kwargs never change it."""
    from repro.experiments.figures import REGISTRY

    figure = REGISTRY["fig11"]
    base = figure.cache_key(epochs=4, warmup=1)
    assert base == figure.cache_key(
        epochs=4, warmup=1, checkpoint_dir="/elsewhere", checkpoint_every=2
    )
    assert base != figure.cache_key(epochs=5, warmup=1)
