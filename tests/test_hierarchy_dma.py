"""DMA-side behaviour: DDIO write-allocate/update, the non-allocating flow,
DMA leak accounting, and the egress path."""

from repro import config


def test_ddio_write_allocates_into_dca_ways(hierarchy, bank):
    hierarchy.dma_write(0.0, 500, "nic", allocating=True)
    line = hierarchy.llc.lookup(500, touch=False)
    assert line is not None
    assert line.way in config.DCA_WAYS
    assert line.io and line.dirty and not line.consumed
    assert bank.stream("nic").ddio_allocates == 1


def test_ddio_write_update_in_place(hierarchy, bank):
    hierarchy.dma_write(0.0, 500, "nic", allocating=True)
    line = hierarchy.llc.lookup(500, touch=False)
    hierarchy.cpu_access(1.0, 0, 500, "nic", io_read=True)  # consume
    line = hierarchy.llc.lookup(500, touch=False)
    way_after_consume = line.way
    hierarchy.dma_write(2.0, 500, "nic", allocating=True)
    line = hierarchy.llc.lookup(500, touch=False)
    # Write-update: stays wherever it lives (possibly an inclusive way).
    assert line.way == way_after_consume
    assert not line.consumed and line.dirty
    assert bank.stream("nic").ddio_updates == 1


def test_non_allocating_flow_goes_to_memory(hierarchy, bank):
    hierarchy.dma_write(0.0, 600, "ssd", allocating=False)
    assert hierarchy.llc.lookup(600, touch=False) is None
    assert bank.stream("ssd").mem_writes == 1


def test_non_allocating_flow_invalidates_cached_copy(hierarchy):
    hierarchy.dma_write(0.0, 600, "ssd", allocating=True)
    hierarchy.dma_write(1.0, 600, "ssd", allocating=False)
    assert hierarchy.llc.lookup(600, touch=False) is None


def test_dma_write_invalidates_mlc_copies(hierarchy):
    hierarchy.cpu_access(0.0, 0, 700, "s")
    assert hierarchy.mlcs[0].peek(700) is not None
    hierarchy.dma_write(1.0, 700, "nic", allocating=True)
    assert hierarchy.mlcs[0].peek(700) is None


def test_dma_leak_counted_on_unconsumed_eviction(hierarchy, bank):
    # Flood the DCA ways of one set with more unconsumed lines than fit.
    sets = hierarchy.llc.cfg.sets
    for i in range(len(config.DCA_WAYS) + 1):
        hierarchy.dma_write(0.0, 1000 + i * sets, "nic", allocating=True)
    c = bank.stream("nic")
    assert c.dma_leaks == 1
    assert c.mem_writes == 1  # leaked line was dirty


def test_consumed_line_eviction_is_not_a_leak(hierarchy, bank):
    sets = hierarchy.llc.cfg.sets
    hierarchy.dma_write(0.0, 1000, "nic", allocating=True)
    hierarchy.cpu_access(0.5, 0, 1000, "nic", io_read=True)
    # 1000 migrated to an inclusive way; flood DCA ways of the same set.
    for i in range(1, len(config.DCA_WAYS) + 2):
        hierarchy.dma_write(1.0, 1000 + i * sets, "nic", allocating=True)
    assert bank.stream("nic").dma_leaks <= 1  # only unconsumed ones count


def test_io_read_miss_counts_dca_miss(hierarchy, bank):
    hierarchy.cpu_access(0.0, 0, 2000, "nic", io_read=True)  # never DMA-written
    c = bank.stream("nic")
    assert c.io_reads == 1 and c.io_read_misses == 1
    assert c.dca_miss_rate == 1.0


def test_io_read_hit_in_dca_way(hierarchy, bank):
    hierarchy.dma_write(0.0, 2000, "nic", allocating=True)
    hierarchy.cpu_access(1.0, 0, 2000, "nic", io_read=True)
    c = bank.stream("nic")
    assert c.io_reads == 1 and c.io_read_misses == 0


def test_consume_writes_back_modified_line(hierarchy, bank):
    hierarchy.dma_write(0.0, 2000, "nic", allocating=True)
    before = bank.stream("nic").mem_writes
    hierarchy.cpu_access(1.0, 0, 2000, "nic", io_read=True)
    # Modified -> shared transition writes the line back to memory.
    assert bank.stream("nic").mem_writes == before + 1
    line = hierarchy.llc.lookup(2000, touch=False)
    assert line.consumed and not line.dirty


def test_dma_read_from_llc(hierarchy, bank):
    hierarchy.dma_write(0.0, 3000, "nic", allocating=True)
    hierarchy.dma_read(1.0, 3000, "nic")
    assert bank.stream("nic").dma_reads == 1
    assert bank.stream("nic").mem_reads == 0


def test_dma_read_uncached_goes_to_memory_without_allocation(hierarchy, bank):
    hierarchy.dma_read(0.0, 3001, "nic")
    assert bank.stream("nic").mem_reads == 1
    assert hierarchy.llc.lookup(3001, touch=False) is None


def test_dma_read_of_mlc_only_line_read_allocates_inclusive(hierarchy):
    hierarchy.cpu_access(0.0, 0, 3002, "app", write=True)
    assert hierarchy.llc.lookup(3002, touch=False) is None
    hierarchy.dma_read(1.0, 3002, "nic")
    line = hierarchy.llc.lookup(3002, touch=False)
    assert line is not None
    assert line.way in config.INCLUSIVE_WAYS
    assert 0 in line.holders
