"""Tests for geometry/scaling constants (paper Table 1 equivalences)."""

from repro import config


def test_skylake_way_layout():
    assert config.LLC_WAYS == 11
    assert config.DCA_WAYS == (0, 1)
    assert config.INCLUSIVE_WAYS == (9, 10)
    assert config.STANDARD_WAYS == tuple(range(2, 9))
    assert len(config.DCA_WAYS) + len(config.INCLUSIVE_WAYS) + len(
        config.STANDARD_WAYS
    ) == config.LLC_WAYS


def test_extended_directory_geometry():
    # 12 extended ways, 2 of them shared with the traditional directory.
    assert config.EXTENDED_DIR_WAYS == 12
    assert len(config.INCLUSIVE_WAYS) == 2


def test_mlc_to_llc_way_ratio_preserved():
    # Paper: 1 MiB MLC vs 2.327 MiB per LLC way (~0.43x).  Keeping the
    # simulated ratio below 1 preserves bloat/migration dynamics.
    ratio = config.MLC_LINES / config.LLC_WAY_LINES
    assert 0.3 < ratio < 0.7


def test_lines_for_paper_bytes_minimum():
    assert config.lines_for_paper_bytes(1) == 1
    assert config.lines_for_paper_bytes(0, minimum=2) == 2


def test_packet_lines_unscaled():
    assert config.packet_lines(64) == 1
    assert config.packet_lines(1514) == 24


def test_xmem_4mb_constraint():
    # 2 MLCs < 4 MB working set < 2 LLC ways (paper §3.1 setup).
    ws = config.lines_for_paper_bytes(4 * 1024 * 1024)
    assert 2 * config.MLC_LINES < ws < 2 * config.LLC_WAY_LINES


def test_latency_ordering():
    assert config.MLC_HIT_CYCLES < config.LLC_HIT_CYCLES < config.MEMORY_CYCLES
