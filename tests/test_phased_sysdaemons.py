"""Tests for phased workloads and the KSM/zswap daemons, including A4's
phase-change restoration reacting to them."""

import pytest

from repro import config
from repro.core.a4 import A4Manager
from repro.core.policy import A4Policy
from repro.experiments.harness import Server
from repro.workloads.phased import PhasedWorkload
from repro.workloads.sysdaemons import ksm, zswap
from repro.workloads.synthetic import AccessProfile
from repro.workloads.xmem import xmem


def test_phase_validation():
    profile = AccessProfile(working_set_lines=100)
    with pytest.raises(ValueError):
        PhasedWorkload("p", profile, "LPW", active_cycles=0, idle_cycles=10)


def test_phased_workload_is_idle_between_bursts():
    server = Server(cores=2)
    profile = AccessProfile(working_set_lines=1000)
    workload = PhasedWorkload(
        "burst", profile, "LPW",
        active_cycles=config.EPOCH_CYCLES,
        idle_cycles=2 * config.EPOCH_CYCLES,
    )
    server.add_workload(workload)
    result = server.run(epochs=6, warmup=0)
    activity = [
        s.streams["burst"].counters.mlc_hits
        + s.streams["burst"].counters.mlc_misses
        for s in result.samples
    ]
    assert max(activity) > 0
    assert min(activity) == 0  # at least one fully idle epoch


def test_ksm_and_zswap_have_antagonist_signatures():
    server = Server(cores=3)
    server.add_workload(ksm())
    server.add_workload(zswap())
    result = server.run(epochs=4, warmup=1)
    for name in ("ksm", "zswap"):
        agg = result.aggregate(name)
        assert agg.mlc_miss_rate > 0.9
        assert agg.llc_miss_rate > 0.9


def test_phased_factories():
    phased = ksm(phased=True)
    assert isinstance(phased, PhasedWorkload)
    steady = zswap(phased=False)
    assert not isinstance(steady, PhasedWorkload)


def test_a4_detects_and_restores_phased_antagonist():
    server = Server(cores=4)
    server.add_workload(xmem("hp", 1.0, cores=1, priority="HPW"))
    daemon = ksm(
        phased=True,
        active_cycles=6 * config.EPOCH_CYCLES,
        idle_cycles=30 * config.EPOCH_CYCLES,
    )
    server.add_workload(daemon)
    manager = A4Manager(A4Policy())
    server.set_manager(manager)
    server.run(epochs=20, warmup=2)
    # Detected during the scan burst...
    assert any("ksm detected" in e for e in manager.events)
    # ...and restored once the burst ended (idle phase).
    assert any("restore ksm" in e for e in manager.events)
    assert "ksm" not in manager.antagonists
