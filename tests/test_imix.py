"""Tests for mixed packet sizes (IMIX) in the traffic generator."""

import pytest

from repro.devices.packetgen import (
    IMIX_SIMPLE,
    PacketGenConfig,
    PacketGenerator,
)
from repro.experiments.harness import Server
from repro.sim.rng import DeterministicRng
from repro.workloads.dpdk import DpdkWorkload


def make_gen(mix=IMIX_SIMPLE, rate=0.1):
    cfg = PacketGenConfig(
        packet_bytes=1514, line_rate_lines_per_cycle=rate, size_mix=mix
    )
    return PacketGenerator(cfg, DeterministicRng(5).stream("imix"))


def test_mix_weights_validated():
    with pytest.raises(ValueError):
        PacketGenConfig(size_mix=((64, 0.5), (128, 0.4)))
    with pytest.raises(ValueError):
        PacketGenConfig(size_mix=((0, 1.0),))
    with pytest.raises(ValueError):
        PacketGenConfig(size_mix=())


def test_fixed_size_still_default():
    cfg = PacketGenConfig(packet_bytes=1024)
    gen = PacketGenerator(cfg, DeterministicRng(5).stream("fixed"))
    assert {gen.next_packet_lines() for _ in range(50)} == {16}
    assert cfg.max_packet_lines == 16


def test_imix_draws_all_sizes_in_proportion():
    gen = make_gen()
    draws = [gen.next_packet_lines() for _ in range(3000)]
    expected_lines = {1, 9, 24}  # 64B, 576B, 1514B
    assert set(draws) == expected_lines
    small_share = draws.count(1) / len(draws)
    assert small_share == pytest.approx(7 / 12, abs=0.05)


def test_mean_lines_and_gap_consistent():
    cfg = PacketGenConfig(size_mix=IMIX_SIMPLE, line_rate_lines_per_cycle=0.1)
    expected_mean = 1 * 7 / 12 + 9 * 4 / 12 + 24 * 1 / 12
    assert cfg.mean_packet_lines == pytest.approx(expected_mean)
    assert cfg.mean_gap_cycles == pytest.approx(expected_mean / 0.1)


def test_max_packet_lines_bounds_slot_size():
    cfg = PacketGenConfig(size_mix=IMIX_SIMPLE)
    assert cfg.max_packet_lines == 24


def test_dpdk_workload_with_imix_runs():
    server = Server(cores=6)
    workload = DpdkWorkload(
        name="imix", touch=True, cores=4, size_mix=IMIX_SIMPLE, line_rate=0.08
    )
    server.add_workload(workload)
    result = server.run(epochs=4, warmup=1)
    agg = result.aggregate("imix")
    assert agg.requests > 0
    # Achieved line rate tracks the offered rate.
    assert agg.throughput == pytest.approx(0.08, rel=0.25)
