"""Tests for multi-seed repetition and averaging."""

import pytest

from repro.experiments.harness import Server
from repro.experiments.sweep import (
    MetricStats,
    average_figure,
    mean,
    run_repeated,
    stdev,
)
from repro.workloads.xmem import xmem


def build(seed):
    server = Server(cores=3, seed=seed)
    server.add_workload(xmem("a", 2.0, cores=1, pattern="rand"))
    return server


def test_mean_and_stdev():
    assert mean([1.0, 3.0]) == 2.0
    assert mean([]) == 0.0
    assert stdev([2.0, 2.0, 2.0]) == 0.0
    assert stdev([1.0]) == 0.0
    assert stdev([1.0, 3.0]) == pytest.approx(2.0 ** 0.5)


def test_metric_stats_rel_spread():
    stats = MetricStats(mean=2.0, stdev=0.2)
    assert stats.rel_spread == pytest.approx(0.1)
    assert MetricStats(0.0, 0.5).rel_spread == 0.0


def test_run_repeated_collects_all_seeds():
    result = run_repeated(build, epochs=4, warmup=1, seeds=(1, 2, 3))
    stats = result.metric("a", "ipc")
    assert len(stats.values) == 3
    assert stats.mean > 0
    # Different seeds, slightly different outcomes.
    assert len(set(stats.values)) > 1
    assert result.mem_total_bw.mean >= 0


def test_run_repeated_requires_seeds():
    with pytest.raises(ValueError):
        run_repeated(build, epochs=4, warmup=1, seeds=())


def test_run_repeated_single_seed_zero_spread():
    result = run_repeated(build, epochs=4, warmup=1, seeds=(7,))
    assert result.metric("a", "ipc").stdev == 0.0


def test_average_figure_averages_numeric_cells():
    from repro.experiments.figures import fig8

    averaged = average_figure(
        fig8.run_fig8b, seeds=(1, 2), epochs=4
    )
    assert "mean of 2 seeds" in averaged.title
    assert len(averaged.rows) == 4
    assert isinstance(averaged.rows[0]["xmem_miss"], float)
    assert isinstance(averaged.rows[0]["fio_ways"], str)
