"""Tests for the IIO LLC WAYS register and runtime DDIO-way control."""

import pytest

from repro import config
from repro.experiments.harness import Server
from repro.uncore.msr import IIO_LLC_WAYS, MsrFile, mask_to_ways, ways_to_mask
from repro.workloads.xmem import xmem


def test_mask_conversions():
    assert ways_to_mask((0, 1)) == 0b11
    assert ways_to_mask((2, 5)) == 0b100100
    assert mask_to_ways(0b1010) == (1, 3)


def test_default_register_value():
    server = Server(cores=2)
    assert server.msr.rdmsr(IIO_LLC_WAYS) == ways_to_mask(config.DCA_WAYS)


def test_wrmsr_reprograms_ddio_ways():
    server = Server(cores=2)
    server.msr.wrmsr(IIO_LLC_WAYS, 0b1111)
    assert server.hierarchy.llc.dca_ways == (0, 1, 2, 3)
    assert server.msr.rdmsr(IIO_LLC_WAYS) == 0b1111


def test_dma_allocations_follow_new_mask():
    server = Server(cores=2)
    server.msr.wrmsr(IIO_LLC_WAYS, 0b111100)  # ways 2-5
    for addr in range(16):
        server.hierarchy.dma_write(0.0, 5000 + addr, "nic", allocating=True)
    ways = {
        line.way
        for line in server.hierarchy.llc.resident()
        if line.stream == "nic"
    }
    assert ways <= {2, 3, 4, 5}


def test_invalid_writes_rejected():
    server = Server(cores=2)
    with pytest.raises(ValueError):
        server.msr.wrmsr(IIO_LLC_WAYS, 0)  # empty mask
    with pytest.raises(ValueError):
        server.msr.wrmsr(IIO_LLC_WAYS, 1 << 11)  # outside the 11 ways
    with pytest.raises(ValueError):
        server.msr.wrmsr(0x123, 1)
    with pytest.raises(ValueError):
        server.msr.rdmsr(0x123)


def test_wider_ddio_reduces_latent_contention_pressure():
    """Widening DDIO at a fixed ring footprint spreads I/O lines over more
    ways, so a bystander pinned to the old DCA ways suffers less."""

    def run(mask):
        server = Server(cores=8)
        from repro.workloads.dpdk import DpdkWorkload

        server.add_workload(
            DpdkWorkload(name="net", touch=False, cores=4, packet_bytes=1024)
        )
        server.add_workload(xmem("bystander", 4.0, cores=2))
        server.msr.wrmsr(IIO_LLC_WAYS, mask)
        server.cat.set_mask(server.clos_of("bystander"), range(0, 2))
        result = server.run(epochs=5, warmup=1)
        return result.aggregate("bystander").llc_miss_rate

    narrow = run(0b11)         # ways 0-1 only
    wide = run(0b111111)       # ways 0-5
    assert wide < narrow


def test_msrfile_direct():
    server = Server(cores=2)
    msr = MsrFile(server.hierarchy.llc)
    msr.wrmsr(IIO_LLC_WAYS, 0b11)
    assert msr.rdmsr(IIO_LLC_WAYS) == 0b11
