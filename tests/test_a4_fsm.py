"""Direct unit tests of the A4 state machine, driven by hand-crafted
epoch samples against a fake server (no simulation)."""

from dataclasses import dataclass, field
from typing import Optional

from repro.core.a4 import (
    A4Manager,
    PHASE_BASELINE,
    PHASE_EXPANDING,
    PHASE_REVERTING,
    PHASE_STABLE,
)
from repro.core.policy import A4Policy
from repro.rdt.cat import CacheAllocation
from repro.telemetry.counters import StreamCounters
from repro.telemetry.latency import LatencyStats
from repro.telemetry.pcm import EpochSample, StreamInfo, StreamSample
from repro.uncore.pcie import PcieComplex
from repro.telemetry.counters import CounterBank


@dataclass
class FakeWorkload:
    name: str
    kind: str = "non-io"
    priority: str = "HPW"
    port_id: Optional[int] = None
    num_cores: int = 1
    cores: tuple = (0,)


class FakeServer:
    def __init__(self, workloads):
        self.workloads = workloads
        self.cat = CacheAllocation()
        self.pcie = PcieComplex(CounterBank())
        self._clos = {}
        for i, w in enumerate(workloads):
            self._clos[w.name] = i + 1
            if w.port_id is not None:
                self.pcie.add_port(w.port_id, w.name)

    def clos_of(self, name):
        return self._clos[name]

    def workload(self, name):
        for w in self.workloads:
            if w.name == name:
                return w
        raise KeyError(name)


def make_sample(index, hits, extra_counters=None, kinds=None):
    """Build an EpochSample with given per-stream LLC hit rates."""
    streams = {}
    for name, hit_rate in hits.items():
        counters = StreamCounters(
            llc_hits=round(hit_rate * 1000),
            llc_misses=round((1 - hit_rate) * 1000),
        )
        if extra_counters and name in extra_counters:
            for key, value in extra_counters[name].items():
                setattr(counters, key, value)
        streams[name] = StreamSample(
            name=name,
            info=StreamInfo(name, kind=(kinds or {}).get(name, "non-io")),
            counters=counters,
            latency=LatencyStats(),
            epoch_cycles=1000.0,
        )
    return EpochSample(
        index=index,
        time=float(index) * 1000,
        epoch_cycles=1000.0,
        streams=streams,
        mem_read_lines=100,
        mem_write_lines=100,
    )


def attach(workloads, policy=None):
    manager = A4Manager(policy or A4Policy())
    manager.attach(FakeServer(workloads))
    return manager


def test_baseline_records_and_moves_to_expanding():
    manager = attach([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    assert manager.phase == PHASE_BASELINE
    manager.on_epoch(make_sample(0, {"hp": 0.9, "lp": 0.5}))
    assert manager.phase == PHASE_EXPANDING
    assert manager.baseline_hits["hp"] == 0.9
    assert "lp" not in manager.baseline_hits


def test_expansion_every_other_epoch_until_leftmost():
    manager = attach([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    manager.on_epoch(make_sample(0, {"hp": 0.9, "lp": 0.5}))  # baseline
    initial_left = manager.layout.lp_left
    for i in range(1, 20):
        manager.on_epoch(make_sample(i, {"hp": 0.9, "lp": 0.5}))
        if manager.phase != PHASE_EXPANDING:
            break
    assert manager.layout.lp_left == manager.layout.min_lp_left < initial_left
    assert manager.phase == PHASE_STABLE


def test_expansion_rolls_back_on_t1_violation():
    manager = attach([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    manager.on_epoch(make_sample(0, {"hp": 0.9, "lp": 0.5}))
    manager.on_epoch(make_sample(1, {"hp": 0.9, "lp": 0.5}))
    manager.on_epoch(make_sample(2, {"hp": 0.9, "lp": 0.5}))  # expands
    expanded_left = manager.layout.lp_left
    # The expansion hurt the HPW: hit rate collapses beyond T1.
    manager.on_epoch(make_sample(3, {"hp": 0.5, "lp": 0.5}))
    manager.on_epoch(make_sample(4, {"hp": 0.5, "lp": 0.5}))
    assert manager.phase == PHASE_STABLE
    assert manager.layout.lp_left == expanded_left + 1  # rolled back one


def test_revert_cycle_and_return_to_stable():
    policy = A4Policy(stable_interval=3)
    manager = attach(
        [FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")], policy
    )
    i = 0
    manager.on_epoch(make_sample(i, {"hp": 0.9, "lp": 0.5}))
    while manager.phase == PHASE_EXPANDING:
        i += 1
        manager.on_epoch(make_sample(i, {"hp": 0.9, "lp": 0.5}))
    stable_left = manager.layout.lp_left
    while manager.phase == PHASE_STABLE:
        i += 1
        manager.on_epoch(make_sample(i, {"hp": 0.9, "lp": 0.5}))
    assert manager.phase == PHASE_REVERTING
    assert manager.layout.lp_left == manager.layout.initial_lp_left
    # The revert epoch shows nothing better: back to the stable span.
    i += 1
    manager.on_epoch(make_sample(i, {"hp": 0.9, "lp": 0.5}))
    assert manager.phase == PHASE_STABLE
    assert manager.layout.lp_left == stable_left
    assert manager.reverts == 1


def test_revert_finds_uncapturable_phase_change():
    policy = A4Policy(stable_interval=2)
    manager = attach(
        [FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")], policy
    )
    i = 0
    manager.on_epoch(make_sample(i, {"hp": 0.5, "lp": 0.5}))
    while manager.phase == PHASE_EXPANDING:
        i += 1
        manager.on_epoch(make_sample(i, {"hp": 0.5, "lp": 0.5}))
    while manager.phase == PHASE_STABLE:
        i += 1
        manager.on_epoch(make_sample(i, {"hp": 0.5, "lp": 0.5}))
    assert manager.phase == PHASE_REVERTING
    reallocs = manager.reallocations
    # Under the initial partitions the HPW could do far better.
    i += 1
    manager.on_epoch(make_sample(i, {"hp": 0.9, "lp": 0.5}))
    assert manager.reallocations == reallocs + 1
    assert manager.phase == PHASE_BASELINE


def test_storage_detection_flips_port_and_demotes():
    storage = FakeWorkload("ssd", kind="storage-io", priority="HPW", port_id=0)
    manager = attach([FakeWorkload("hp"), storage])
    manager.on_epoch(make_sample(0, {"hp": 0.9, "ssd": 0.1}))  # baseline
    leaky = {
        "ssd": dict(
            io_reads=1000, io_read_misses=900, dma_writes=1000,
            io_bytes_completed=64000,
        )
    }
    manager.on_epoch(
        make_sample(
            1, {"hp": 0.9, "ssd": 0.1}, leaky, kinds={"ssd": "storage-io"}
        )
    )
    assert "ssd" in manager.antagonists
    assert not manager.server.pcie.port(0).dca_enabled
    assert "ssd" in manager.demoted
    assert manager.phase == PHASE_BASELINE  # reallocation restarted


def test_bypass_squeeze_progresses_per_epoch():
    policy = A4Policy()
    antagonist = FakeWorkload("bw", priority="LPW")
    manager = attach([FakeWorkload("hp"), antagonist], policy)
    bad = {"bw": dict(mlc_hits=5, mlc_misses=995)}

    def sample(i):
        return make_sample(i, {"hp": 0.9, "bw": 0.02}, bad)

    manager.on_epoch(sample(0))  # baseline
    manager.on_epoch(sample(1))  # detection -> reallocation
    assert "bw" in manager.antagonists
    manager.on_epoch(sample(2))  # baseline again
    left_before = manager.antagonists["bw"].span_left
    manager.on_epoch(sample(3))
    manager.on_epoch(sample(4))
    state = manager.antagonists["bw"]
    assert state.span_left >= left_before
    assert state.span_left <= policy.trash_way


# -- adversarial samples at the FSM's edges ---------------------------------


def test_zero_cycle_epoch_is_skipped_without_state_change():
    manager = attach([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    sample = make_sample(0, {"hp": 0.9, "lp": 0.5})
    object.__setattr__(sample, "epoch_cycles", 0.0)
    manager.on_epoch(sample)
    assert manager.phase == PHASE_BASELINE
    assert manager.baseline_hits == {}
    assert manager.sanitizer.skipped_epochs == 1
    # The next clean epoch proceeds as if the glitch never happened.
    manager.on_epoch(make_sample(1, {"hp": 0.9, "lp": 0.5}))
    assert manager.phase == PHASE_EXPANDING
    assert manager.baseline_hits["hp"] == 0.9


def test_all_streams_idle_records_no_baseline():
    manager = attach([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    idle = {
        "hp": dict(llc_hits=0, llc_misses=0),
        "lp": dict(llc_hits=0, llc_misses=0),
    }
    for i in range(12):
        manager.on_epoch(make_sample(i, {"hp": 0.0, "lp": 0.0}, idle))
    # An idle reading is *valid* (not a fault): the sanitizer passes it
    # through untouched and the FSM sees a flat 0.0 hit rate — no
    # divide-by-zero, no spurious degradation, no reallocation churn.
    assert manager.sanitizer.stats() == {
        "held_over": 0, "zeroed": 0, "skipped_epochs": 0,
    }
    assert manager.baseline_hits.get("hp") == 0.0
    # The expand/revert cycle may complete once, but a flat signal must
    # not produce churn or trip the watchdog.
    assert manager.reallocations <= 1
    assert not manager.watchdog.degraded


def test_missing_stream_held_over_from_last_good_reading():
    manager = attach([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    manager.on_epoch(make_sample(0, {"hp": 0.9, "lp": 0.5}))
    phase = manager.phase
    manager.on_epoch(make_sample(1, {"lp": 0.5}))  # "hp" vanished
    assert manager.sanitizer.held_over >= 1
    assert manager.phase in (phase, PHASE_EXPANDING, PHASE_STABLE)
    assert manager.baseline_hits["hp"] == 0.9  # baseline survives the gap


def test_corrupted_stream_does_not_perturb_baseline():
    manager = attach([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    manager.on_epoch(make_sample(0, {"hp": 0.9, "lp": 0.5}))
    baseline = dict(manager.baseline_hits)
    garbage = {"hp": dict(llc_hits=-500, llc_misses=-1)}
    for i in range(1, 5):
        manager.on_epoch(make_sample(i, {"hp": 0.9, "lp": 0.5}, garbage))
    assert manager.baseline_hits["hp"] == baseline["hp"]
    assert manager.sanitizer.held_over >= 4


def test_missing_stream_with_no_history_is_tolerated():
    manager = attach([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    # First-ever epoch is already missing a stream: nothing to hold over,
    # the FSM must simply proceed on what it has.
    manager.on_epoch(make_sample(0, {"lp": 0.5}))
    assert manager.sanitizer.held_over == 1
    assert "hp" not in manager.baseline_hits
