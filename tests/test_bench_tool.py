"""Tests for the bench harness's record comparison and gating logic.

``tools/bench.py`` is a script, not a package module; these tests load it
by path and exercise the pure comparison layer (no benchmarks run): the
``--compare`` drift table, the calibration-normalized gate, and the
regressed-name reporting the retry loop feeds on.
"""

import importlib.util
import json
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location("bench_tool", ROOT / "tools" / "bench.py")
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def record(walls, quick=False, calibration=None, git="abc1234"):
    results = {
        name: {
            "wall_s": wall,
            "events": 1000,
            "events_per_s": 1000 / wall,
        }
        for name, wall in walls.items()
    }
    rec = {"schema": 1, "git": git, "quick": quick, "results": results}
    if calibration is not None:
        rec["calibration_ops_per_s"] = calibration
    return rec


def write(tmp_path, name, rec):
    path = tmp_path / name
    path.write_text(json.dumps(rec))
    return path


def test_compare_records_flags_regression(tmp_path, capsys):
    a = write(tmp_path, "a.json", record({"engine": 1.0, "cpu": 2.0}))
    b = write(tmp_path, "b.json", record({"engine": 1.0, "cpu": 2.5}))
    status = bench.compare_records(a, b, fail_below=0.95)
    out = capsys.readouterr().out
    assert status == 1
    assert "cpu" in out and "REGRESSION" in out
    assert "engine" in out


def test_compare_records_passes_at_parity(tmp_path, capsys):
    a = write(tmp_path, "a.json", record({"engine": 1.0}))
    b = write(tmp_path, "b.json", record({"engine": 1.02}))
    assert bench.compare_records(a, b, fail_below=0.95) == 0
    assert "REGRESSION" not in capsys.readouterr().out


def test_compare_records_handles_dropped_and_new(tmp_path, capsys):
    a = write(tmp_path, "a.json", record({"old": 1.0, "shared": 1.0}))
    b = write(tmp_path, "b.json", record({"shared": 1.0, "fresh": 0.5}))
    assert bench.compare_records(a, b, fail_below=0.95) == 0
    out = capsys.readouterr().out
    assert "(dropped)" in out and "(new)" in out


def test_compare_records_warns_on_quick_vs_full(tmp_path, capsys):
    a = write(tmp_path, "a.json", record({"engine": 1.0}, quick=True))
    b = write(tmp_path, "b.json", record({"engine": 1.0}, quick=False))
    bench.compare_records(a, b, fail_below=0.95)
    assert "quick record against a full record" in capsys.readouterr().out


def test_calibration_normalizes_uniform_slowdown(tmp_path, capsys):
    """A host running 25% slower inflates every wall AND deflates the
    calibration loop by the same factor; the normalized gate must pass."""
    a = write(
        tmp_path, "a.json", record({"engine": 1.0}, calibration=1_000_000.0)
    )
    b = write(
        tmp_path,
        "b.json",
        record({"engine": 1.25}, calibration=800_000.0),
    )
    assert bench.compare_records(a, b, fail_below=0.95) == 0
    out = capsys.readouterr().out
    assert "host speed vs baseline" in out
    # Without calibration the same walls are a hard failure.
    a2 = write(tmp_path, "a2.json", record({"engine": 1.0}))
    b2 = write(tmp_path, "b2.json", record({"engine": 1.25}))
    assert bench.compare_records(a2, b2, fail_below=0.95) == 1


def test_calibration_does_not_mask_real_regression(tmp_path):
    """Same host speed (equal calibration), slower code: still fails."""
    a = write(
        tmp_path, "a.json", record({"engine": 1.0}, calibration=1_000_000.0)
    )
    b = write(
        tmp_path,
        "b.json",
        record({"engine": 1.25}, calibration=1_000_000.0),
    )
    assert bench.compare_records(a, b, fail_below=0.95) == 1


def test_compare_returns_regressed_names():
    current = record({"engine": 1.0, "cpu": 2.5, "dma": 1.0})
    previous = record({"engine": 1.0, "cpu": 2.0, "dma": 1.02})
    lines, regressed = bench.compare(current, previous, threshold=0.95)
    assert regressed == ["cpu"]
    assert any("REGRESSION" in line for line in lines)


def test_compare_skips_incomparable_quick_baseline():
    current = record({"engine": 2.0}, quick=False)
    previous = record({"engine": 1.0}, quick=True)
    lines, regressed = bench.compare(current, previous, threshold=0.95)
    assert regressed == []
    assert any("no comparable baseline" in line for line in lines)


def test_calibrate_returns_positive_rate():
    assert bench.calibrate(repeats=1) > 0


def test_committed_quick_baseline_is_valid():
    """CI's bench-gate depends on this record: it must exist, be a quick
    record, carry a calibration number, and cover the gated scenarios."""
    path = ROOT / "BENCH_baseline.quick.json"
    rec = json.loads(path.read_text())
    assert rec["quick"] is True
    assert rec["calibration_ops_per_s"] > 0
    for name in ("engine", "cpu_access", "dma_write"):
        assert rec["results"][name]["wall_s"] > 0


def test_baseline_quick_record_never_sorts_latest(tmp_path):
    """``BENCH_baseline.quick.json`` must sort *before* every dated
    record so it can never become a full run's implicit baseline."""
    names = [
        "BENCH_baseline.quick.json",
        "BENCH_2026-08-06.json",
        "BENCH_2026-08-06.2.json",
    ]
    # bench_records sorts non-matching names first via the empty date key.
    saved = bench.ROOT
    bench.ROOT = tmp_path
    try:
        for name in names:
            write(tmp_path, name, record({"engine": 1.0}))
        ordered = bench.bench_records(exclude=tmp_path / "none.json")
    finally:
        bench.ROOT = saved
    assert [p.name for p in ordered] == [
        "BENCH_baseline.quick.json",
        "BENCH_2026-08-06.json",
        "BENCH_2026-08-06.2.json",
    ]
