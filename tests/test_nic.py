"""Tests for the NIC device model."""

from repro import config
from repro.devices.nic import Nic, NicConfig
from repro.devices.packetgen import PacketGenConfig, PacketGenerator
from repro.devices.ring import RxRing
from repro.sim.engine import Simulator
from repro.sim.rng import DeterministicRng
from repro.telemetry.counters import CounterBank
from repro.uncore.iio import IIOAgent
from repro.uncore.pcie import PcieComplex


def make_nic(hierarchy, bank, rings=2, entries=4, rate=0.1, jitter=0.0):
    iio = IIOAgent(hierarchy)
    port = PcieComplex(bank).add_port(0, "nic")
    generator = PacketGenerator(
        PacketGenConfig(packet_bytes=256, line_rate_lines_per_cycle=rate, jitter=jitter),
        DeterministicRng(3).stream("pkt"),
    )
    ring_list = [
        RxRing(base_addr=10_000 + i * 1000, entries=entries, slot_lines=8)
        for i in range(rings)
    ]
    nic = Nic("nic0", "nic", port, iio, generator, ring_list, bank)
    return nic, port, ring_list


def test_nic_sprays_round_robin(hierarchy, bank):
    sim = Simulator()
    nic, port, rings = make_nic(hierarchy, bank)
    nic.start(sim)
    sim.run_until(200.0)
    assert len(rings[0]) > 0 and len(rings[1]) > 0
    assert abs(len(rings[0]) - len(rings[1])) <= 1


def test_nic_dma_writes_into_dca(hierarchy, bank):
    sim = Simulator()
    nic, port, rings = make_nic(hierarchy, bank, rings=1)
    nic.start(sim)
    sim.run_until(100.0)
    entry = rings[0].peek()
    assert entry is not None
    line = hierarchy.llc.lookup(entry.buffer_addr, touch=False)
    assert line is not None and line.way in config.DCA_WAYS


def test_full_rings_drop_packets(hierarchy, bank):
    sim = Simulator()
    nic, port, rings = make_nic(hierarchy, bank, rings=1, entries=2)
    nic.start(sim)
    sim.run_until(2000.0)  # nobody consumes
    assert rings[0].full
    assert nic.packets_dropped > 0
    assert bank.stream("nic").packets_dropped == nic.packets_dropped


def test_port_accounting(hierarchy, bank):
    sim = Simulator()
    nic, port, rings = make_nic(hierarchy, bank, rings=1, entries=8)
    nic.start(sim)
    sim.run_until(500.0)
    delivered_lines = nic.packets_delivered * 4  # 256B packets = 4 lines
    assert port.inbound_write_lines == delivered_lines


def test_nic_config_validation():
    try:
        NicConfig(ring_entries=0)
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("expected ValueError")
