"""Tests for A4 zone bookkeeping."""

import pytest

from repro.core.policy import A4Policy
from repro.core.zones import ZoneLayout


def test_initial_partitions_without_io():
    layout = ZoneLayout(A4Policy(), io_hpw_present=False)
    assert layout.lp_span() == (9, 10)
    assert layout.io_hpw_span() == (0, 10)
    assert layout.non_io_hpw_span() == (0, 10)


def test_initial_partitions_with_io_safeguarding():
    layout = ZoneLayout(A4Policy(), io_hpw_present=True)
    # LP Zone keeps out of inclusive ways; initial = way[7:8] (Fig. 10b).
    assert layout.lp_span() == (7, 8)
    assert layout.non_io_hpw_span() == (2, 10)
    assert layout.io_hpw_span() == (0, 10)


def test_safeguard_flag_off_ignores_io():
    policy = A4Policy(safeguard_io_buffers=False)
    layout = ZoneLayout(policy, io_hpw_present=True)
    assert layout.lp_span() == (9, 10)
    assert layout.non_io_hpw_span() == (0, 10)


def test_expansion_moves_left_until_min():
    layout = ZoneLayout(A4Policy(), io_hpw_present=True)
    steps = 0
    while layout.can_expand():
        layout.expand()
        steps += 1
    assert layout.lp_span() == (2, 8)
    assert steps == 5
    with pytest.raises(RuntimeError):
        layout.expand()


def test_contract_rolls_back():
    layout = ZoneLayout(A4Policy(), io_hpw_present=True)
    layout.expand()
    layout.contract()
    assert layout.lp_span() == (7, 8)
    with pytest.raises(RuntimeError):
        layout.contract()


def test_reset_restores_initial():
    layout = ZoneLayout(A4Policy(), io_hpw_present=True)
    layout.expand()
    layout.expand()
    layout.reset_lp()
    assert layout.lp_span() == (7, 8)


def test_trash_span_squeezes_to_way8():
    layout = ZoneLayout(A4Policy(), io_hpw_present=True)
    assert layout.trash_span(5) == (5, 8)
    assert layout.trash_span(8) == (8, 8)
    assert layout.trash_span(9) == (8, 8)  # clamped at the trash way


def test_policy_derived_ways():
    policy = A4Policy()
    assert policy.trash_way == 8
    assert policy.min_lp_left == 2
