"""Tests for the NVMe SSD model: admission serialisation, concurrency,
progressive DMA, and the throughput curve."""

import pytest

from repro.devices.nvme import NvmeCommand, NvmeConfig, NvmeSsd
from repro.sim.engine import Simulator
from repro.telemetry.counters import CounterBank
from repro.uncore.iio import IIOAgent
from repro.uncore.pcie import PcieComplex


def make_ssd(hierarchy, bank, **cfg_kwargs):
    iio = IIOAgent(hierarchy)
    port = PcieComplex(bank).add_port(0, "ssd")
    return NvmeSsd("ssd0", port, iio, bank, NvmeConfig(**cfg_kwargs)), port


def test_command_completes_and_writes_block(hierarchy, bank):
    sim = Simulator()
    ssd, port = make_ssd(hierarchy, bank)
    done = []
    cmd = NvmeCommand(
        stream="ssd", buffer_addr=100, lines=8,
        on_complete=lambda now, c: done.append(now),
    )
    ssd.submit(sim, cmd)
    sim.run_until(5000.0)
    assert done, "command must complete"
    assert cmd.completed_at > cmd.submitted_at
    for offset in range(8):
        assert hierarchy.llc.lookup(100 + offset, touch=False) is not None
    assert port.inbound_write_lines == 8
    assert ssd.commands_completed == 1


def test_throughput_saturates_with_block_size():
    cfg = NvmeConfig()
    small = cfg.peak_throughput(1)
    medium = cfg.peak_throughput(14)
    large = cfg.peak_throughput(225)
    assert small < medium <= cfg.bandwidth_lines_per_cycle
    assert large == cfg.bandwidth_lines_per_cycle


def test_admission_serialisation_limits_small_blocks(hierarchy, bank):
    sim = Simulator()
    ssd, _ = make_ssd(
        hierarchy, bank,
        command_overhead_cycles=100.0, quantum_cycles=10.0,
        bandwidth_lines_per_cycle=1.0,
    )
    for i in range(20):
        ssd.submit(sim, NvmeCommand(stream="ssd", buffer_addr=1000 + i * 8, lines=1))
    sim.run_until(1000.0)
    # ~1 command per 100 cycles despite abundant bandwidth.
    assert 5 <= ssd.commands_completed <= 12


def test_parallelism_bounds_active_set(hierarchy, bank):
    sim = Simulator()
    ssd, _ = make_ssd(
        hierarchy, bank,
        parallelism=2, command_overhead_cycles=1.0, quantum_cycles=10.0,
        bandwidth_lines_per_cycle=0.1,
    )
    for i in range(10):
        ssd.submit(sim, NvmeCommand(stream="ssd", buffer_addr=i * 100, lines=50))
    sim.run_until(50.0)
    assert len(ssd._active) <= 2


def test_progressive_dma_spreads_writes(hierarchy, bank):
    sim = Simulator()
    ssd, _ = make_ssd(
        hierarchy, bank,
        parallelism=1, command_overhead_cycles=1.0, quantum_cycles=100.0,
        bandwidth_lines_per_cycle=0.05,
    )
    cmd = NvmeCommand(stream="ssd", buffer_addr=0, lines=50)
    ssd.submit(sim, cmd)
    sim.run_until(300.0)
    # At 0.05 lines/cycle, ~10-15 lines after ~300 cycles: partially written.
    assert 0 < cmd._written < 50
    sim.run_until(3000.0)
    assert cmd._written == 50


def test_fifo_admission_order(hierarchy, bank):
    sim = Simulator()
    ssd, _ = make_ssd(
        hierarchy, bank,
        parallelism=1, command_overhead_cycles=10.0, quantum_cycles=10.0,
    )
    order = []
    for tag in ("a", "b"):
        ssd.submit(
            sim,
            NvmeCommand(
                stream="ssd", buffer_addr=ord(tag) * 100, lines=4,
                on_complete=lambda now, c, t=tag: order.append(t),
            ),
        )
    sim.run_until(5000.0)
    assert order == ["a", "b"]


def test_config_validation():
    with pytest.raises(ValueError):
        NvmeConfig(bandwidth_lines_per_cycle=0)
    with pytest.raises(ValueError):
        NvmeConfig(parallelism=0)
    with pytest.raises(ValueError):
        NvmeConfig(quantum_cycles=0)


def test_queue_depth_reporting(hierarchy, bank):
    sim = Simulator()
    ssd, _ = make_ssd(hierarchy, bank, parallelism=1)
    for i in range(3):
        ssd.submit(sim, NvmeCommand(stream="ssd", buffer_addr=i * 10, lines=4))
    assert ssd.queue_depth == 3
    sim.run_until(10_000.0)
    assert ssd.queue_depth == 0
