"""Tests for the Rx descriptor ring."""

import pytest

from repro.devices.ring import RxRing


def test_push_until_full_then_drop():
    ring = RxRing(base_addr=0, entries=2, slot_lines=4)
    assert ring.push(4, now=1.0) is not None
    assert ring.push(4, now=2.0) is not None
    assert ring.full
    assert ring.push(4, now=3.0) is None  # dropped


def test_fifo_order_and_buffer_addresses():
    ring = RxRing(base_addr=100, entries=3, slot_lines=4)
    ring.push(2, now=1.0)
    ring.push(3, now=2.0)
    first = ring.pop()
    second = ring.pop()
    assert first.buffer_addr == 100 and first.packet_lines == 2
    assert second.buffer_addr == 104 and second.packet_lines == 3


def test_peek_does_not_remove():
    ring = RxRing(base_addr=0, entries=2, slot_lines=4)
    ring.push(1, now=5.0)
    entry = ring.peek()
    assert entry is not None and entry.arrival_time == 5.0
    assert len(ring) == 1
    ring.pop()
    assert ring.empty and ring.peek() is None


def test_pop_empty_raises():
    ring = RxRing(base_addr=0, entries=1, slot_lines=1)
    with pytest.raises(IndexError):
        ring.pop()


def test_wraparound_reuses_buffers():
    ring = RxRing(base_addr=0, entries=2, slot_lines=4)
    for _ in range(5):
        entry = ring.push(1, now=0.0)
        assert entry is not None
        popped = ring.pop()
        assert popped is entry
    # After wrapping, buffer addresses repeat from the fixed pool.
    addrs = set()
    ring.push(1, 0.0)
    addrs.add(ring.pop().buffer_addr)
    ring.push(1, 0.0)
    addrs.add(ring.pop().buffer_addr)
    assert addrs <= {0, 4}


def test_invalid_geometry():
    with pytest.raises(ValueError):
        RxRing(0, entries=0, slot_lines=4)
