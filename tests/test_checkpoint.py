"""Checkpoint/restore round-trip tests (ISSUE 7 tentpole, part A).

The contract under test: snapshot at epoch N, restore, continue M epochs
== one uninterrupted N+M run, *bit-identical* — same simulated clock,
same executed-event count, same per-stream counter state, and (with the
observability layer on) the same trace events.  The matrix covers every
platform preset, both dispatch modes (batched and scalar), and fault
injection, because each snapshots different state at construction time.

Also here: the far-heap ``pending()`` regression (satellite 1 — events
beyond the calendar-wheel horizon must be visible to inspection and to
the snapshot protocol), the :class:`CheckpointStore` durability contract
(corrupt/skewed blobs are evicted, never restored), and the
``run_setup`` resume path.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro import obsv
from repro.experiments import runcache
from repro.experiments.figures.base import run_setup
from repro.experiments.scenarios import (
    build_server,
    microbenchmark_workloads,
    spec_workload,
)
from repro.faults.plan import FaultPlan
from repro.obsv import KIND_CHECKPOINT, KIND_EPOCH, KIND_PLATFORM, KIND_SPAN
from repro.platform import get_platform
from repro.sim import batch, checkpoint
from repro.sim.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    CheckpointStore,
    SimState,
    checkpoint_key,
)
from repro.sim.engine import WHEEL_GRAIN, WHEEL_SLOTS, Simulator
from repro.telemetry.pcm import PRIORITY_HIGH, PRIORITY_LOW
from repro.workloads.redis import redis_pair
from repro.workloads.sysdaemons import ksm
from repro.workloads.xmem import xmem

PLATFORMS = ("skylake-sp", "cascadelake-sp", "icelake-sp")


def _micro_server(platform="skylake-sp", seed=0xA4):
    spec = get_platform(platform)
    return build_server(
        microbenchmark_workloads(platform=spec),
        scheme="a4",
        seed=seed,
        platform=spec,
    )


def _faulted_server(seed=0xA4):
    """Mixed server with every fault wrapper engaged (the wrappers carry
    ``__getattr__`` delegation, historically the pickling trap)."""
    server, client = redis_pair()
    workloads = [
        server,
        client,
        ksm(phased=True, priority=PRIORITY_LOW),
        spec_workload("parest", PRIORITY_HIGH),
    ]
    return build_server(
        workloads,
        scheme="a4",
        cores=8,
        seed=seed,
        fault_plan=FaultPlan.scaled(0.5),
    )


def _stream_state(server):
    out = {}
    for name in sorted(server.counters.streams):
        stream = server.counters.stream(name)
        out[name] = repr(
            vars(stream) if hasattr(stream, "__dict__") else stream
        )
    return out


def _fingerprint(server):
    return (
        server.sim.now,
        server.sim.events_executed,
        server.epochs_completed,
        _stream_state(server),
    )


def _roundtrip(build, n=3, m=3, warmup=1):
    """Run split (n, snapshot, restore, m) and continuous (n+m); both
    fingerprints must agree exactly."""
    first = build()
    first.run(epochs=n, warmup=warmup)
    state = checkpoint.snapshot(first)
    resumed = checkpoint.restore(state)
    resumed.run(epochs=m, warmup=0)
    continuous = build()
    continuous.run(epochs=n + m, warmup=warmup)
    assert _fingerprint(resumed) == _fingerprint(continuous)
    return resumed, continuous


# -- round-trip bit-identity ------------------------------------------------


@pytest.mark.parametrize("platform", PLATFORMS)
def test_roundtrip_bit_identical_per_platform(platform):
    _roundtrip(lambda: _micro_server(platform))


@pytest.mark.parametrize("batching", (True, False), ids=("batch", "scalar"))
def test_roundtrip_bit_identical_both_dispatch_modes(batching):
    previous = batch.set_enabled(batching)
    try:
        _roundtrip(_micro_server)
    finally:
        batch.set_enabled(previous)


def test_roundtrip_bit_identical_under_fault_injection():
    _roundtrip(_faulted_server)


def test_roundtrip_trace_events_identical():
    """Split and continuous runs emit the same trace stream.

    The platform header repeats per ``run()`` call and span wall-times are
    wall-clock, so those kinds are excluded; everything else — epoch
    boundaries (with event counts), controller decisions, mask writes —
    must match field-for-field including the cumulative epoch index."""

    def events():
        return [
            (e.ts, e.epoch, e.kind, e.name, sorted(e.data.items()))
            for e in obsv.TRACER.events
            if e.kind not in (KIND_PLATFORM, KIND_SPAN)
        ]

    obsv.enable()
    first = _micro_server()
    first.run(epochs=3, warmup=1)
    state = checkpoint.snapshot(first)
    resumed = checkpoint.restore(state)
    resumed.run(epochs=3, warmup=0)
    split = events()

    obsv.disable()
    obsv.enable()
    continuous = _micro_server()
    continuous.run(epochs=6, warmup=1)
    cont = events()
    obsv.disable()

    assert split == cont
    assert any(kind == KIND_EPOCH for _, _, kind, _, _ in cont)


def test_restore_is_repeatable():
    """A SimState is a value: restoring it twice yields two independent
    servers that evolve identically."""
    origin = _micro_server()
    origin.run(epochs=2, warmup=1)
    state = checkpoint.snapshot(origin)
    one = checkpoint.restore(state)
    two = checkpoint.restore(state)
    one.run(epochs=2, warmup=0)
    two.run(epochs=2, warmup=0)
    assert _fingerprint(one) == _fingerprint(two)


def test_snapshot_does_not_perturb_the_run():
    """A run that checkpoints mid-way stays bit-identical to one that
    never snapshots."""
    snapshotted = _micro_server()
    snapshotted.run(epochs=2, warmup=1)
    checkpoint.snapshot(snapshotted)
    snapshotted.run(epochs=2, warmup=0)
    plain = _micro_server()
    plain.run(epochs=4, warmup=1)
    assert _fingerprint(snapshotted) == _fingerprint(plain)


# -- SimState ---------------------------------------------------------------


def test_simstate_validate_catches_corruption():
    origin = _micro_server()
    origin.run(epochs=1, warmup=0)
    state = checkpoint.snapshot(origin)
    state.validate()  # pristine state passes

    flipped = dataclasses.replace(state, payload=state.payload + b"\0")
    with pytest.raises(CheckpointError):
        flipped.validate()

    skewed = dataclasses.replace(state, schema=CHECKPOINT_SCHEMA + 1)
    with pytest.raises(CheckpointError):
        skewed.validate()


def test_snapshot_rejects_unpicklable_graph():
    origin = _micro_server()
    origin.run(epochs=1, warmup=0)
    origin.not_picklable = lambda: None  # closures never pickle
    with pytest.raises(CheckpointError):
        checkpoint.snapshot(origin)


# -- the far-heap pending() regression (satellite 1) ------------------------


def test_pending_surfaces_far_heap_events():
    """Events scheduled past the wheel horizon live in the far heap;
    ``pending()`` must surface them (the snapshot protocol and idle
    detection both rely on the full queue being visible)."""
    sim = Simulator()
    span = WHEEL_SLOTS * WHEEL_GRAIN
    near = sim.schedule(10.0, lambda s: None)
    far = sim.schedule(span * 4, lambda s: None)
    assert [e.time for e in sim.pending()] == [10.0, span * 4]

    far.cancel()
    assert [e.time for e in sim.pending()] == [10.0]
    near.cancel()
    assert list(sim.pending()) == []


def test_fast_forward_carries_far_heap_events():
    fired = []
    sim = Simulator()
    span = WHEEL_SLOTS * WHEEL_GRAIN
    sim.schedule(span * 4, lambda s: fired.append(s.now))
    sim.fast_forward(span * 3)
    assert [e.time for e in sim.pending()] == [span * 7]
    sim.run_until(span * 8)
    assert fired == [span * 7]


# -- CheckpointStore --------------------------------------------------------


def _stored_state(epochs=2):
    origin = _micro_server()
    origin.run(epochs=epochs, warmup=1)
    return origin, checkpoint.snapshot(origin)


def test_store_save_load_latest(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    origin, state2 = _stored_state(epochs=2)
    store.save("runA", state2)
    origin.run(epochs=2, warmup=0)
    state4 = checkpoint.snapshot(origin)
    store.save("runA", state4)

    assert store.epochs("runA") == [2, 4]
    loaded = store.load("runA", 2)
    assert loaded is not None
    assert (loaded.epoch, loaded.digest) == (2, state2.digest)
    assert store.load("runA", 99) is None

    assert store.latest("runA").epoch == 4
    assert store.latest("runA", max_epoch=3).epoch == 2
    assert store.latest("runA", max_epoch=1) is None
    assert store.latest("other-run") is None

    resumed = checkpoint.restore(store.latest("runA", max_epoch=3))
    assert resumed.epochs_completed == 2


def test_store_evicts_corrupt_blob(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    _, state = _stored_state()
    store.save("runA", state)
    path = store._blob_path(checkpoint_key("runA", state.epoch))
    path.write_bytes(b"not a pickle")
    assert store.load("runA", state.epoch) is None
    assert not path.exists()  # evicted, not just skipped


def test_store_evicts_schema_skewed_blob(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    _, state = _stored_state()
    key = checkpoint_key("runA", state.epoch)
    store.save("runA", state)
    path = store._blob_path(key)
    path.write_bytes(
        pickle.dumps({"schema": -1, "key": key, "state": state})
    )
    assert store.load("runA", state.epoch) is None
    assert not path.exists()


def test_store_evicts_digest_corrupt_state(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    _, state = _stored_state()
    key = checkpoint_key("runA", state.epoch)
    store.save("runA", state)
    bad = dataclasses.replace(state, payload=state.payload + b"\0")
    path = store._blob_path(key)
    path.write_bytes(
        pickle.dumps({"schema": CHECKPOINT_SCHEMA, "key": key, "state": bad})
    )
    assert store.load("runA", state.epoch) is None
    assert not path.exists()


def test_latest_walks_past_corrupt_newest(tmp_path):
    store = CheckpointStore(tmp_path / "ckpt")
    origin, state2 = _stored_state(epochs=2)
    store.save("runA", state2)
    origin.run(epochs=2, warmup=0)
    state4 = checkpoint.snapshot(origin)
    store.save("runA", state4)
    store._blob_path(checkpoint_key("runA", 4)).write_bytes(b"garbage")
    assert store.latest("runA").epoch == 2


def test_checkpoint_key_separates_runs_epochs_schema():
    assert checkpoint_key("a", 1) != checkpoint_key("b", 1)
    assert checkpoint_key("a", 1) != checkpoint_key("a", 2)
    assert checkpoint_key("a", 1) == checkpoint_key("a", 1)


def test_save_and_load_hold_the_run_key_flock(tmp_path):
    """Blob writes and index reads go through an exclusive sidecar lock,
    so two workers sharing a run key cannot interleave a save with a
    validation-eviction."""
    import fcntl

    store = CheckpointStore(tmp_path / "ckpt")
    _, state = _stored_state()
    store.save("runA", state)
    lock_path = store._lock_path("runA")
    assert lock_path.exists()
    # Hold the lock from "another process" (a separate file description:
    # flock is per-open-file, so a second handle genuinely contends).
    with lock_path.open("a") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        with store._lock_path("runA").open("a") as probe:
            with pytest.raises(BlockingIOError):
                fcntl.flock(probe.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
    # Released: load proceeds normally.
    assert store.load("runA", state.epoch).digest == state.digest


def test_newest_epoch_scans_indices_without_unpickling(tmp_path):
    from repro.sim.checkpoint import newest_epoch

    root = tmp_path / "ckpt"
    assert newest_epoch(root) is None  # no store at all
    store = CheckpointStore(root)
    origin, state2 = _stored_state(epochs=2)
    store.save("runA", state2)
    origin.run(epochs=2, warmup=0)
    store.save("runA", checkpoint.snapshot(origin))
    store.save("runB", state2)
    assert newest_epoch(root) == 4  # max across every run key
    # Destroy every blob: the scan still answers from the indices alone.
    for blob in root.rglob(f"*{checkpoint.CHECKPOINT_SUFFIX}"):
        blob.write_bytes(b"garbage")
    assert newest_epoch(root) == 4


# -- run_setup resume -------------------------------------------------------


def _setup_workloads():
    return [xmem("a", 2.0, cores=1, pattern="rand")]


def test_run_setup_resumes_from_checkpoint(tmp_path):
    """An interrupted ``run_setup`` restarted with the same configuration
    resumes from the newest checkpoint and produces the same result.

    The 'interruption' is simulated by disabling the run cache after the
    first (checkpointing) call: the rerun misses the cache, finds the
    epoch-4 checkpoint, and simulates only the final third."""
    ckpt_dir = tmp_path / "ckpt"
    obsv.enable()
    first = run_setup(
        _setup_workloads(),
        epochs=6,
        warmup=2,
        seed=9,
        checkpoint_dir=str(ckpt_dir),
        checkpoint_every=2,
    )
    saved = [e for e in obsv.TRACER.events if e.kind == KIND_CHECKPOINT]
    assert [e.data["epoch"] for e in saved] == [2, 4, 6]

    runcache.configure(enabled=False)
    obsv.disable()
    obsv.enable()
    second = run_setup(
        _setup_workloads(),
        epochs=6,
        warmup=2,
        seed=9,
        checkpoint_dir=str(ckpt_dir),
        checkpoint_every=2,
    )
    # Only the post-checkpoint epochs (4 and 5) were simulated.
    resumed_epochs = [
        e.data["index"]
        for e in obsv.TRACER.events
        if e.kind == KIND_EPOCH
    ]
    obsv.disable()
    assert resumed_epochs == [4, 5]

    assert len(second.samples) == len(first.samples) == 6
    for name in first.stream_names():
        a, b = first.aggregate(name), second.aggregate(name)
        assert (a.ipc, a.llc_hit_rate, a.throughput) == (
            b.ipc,
            b.llc_hit_rate,
            b.throughput,
        )


def test_run_setup_ignores_checkpoints_from_other_configs(tmp_path):
    """Checkpoints are keyed by the full run configuration: a different
    seed must never resume from another run's snapshot."""
    ckpt_dir = tmp_path / "ckpt"
    run_setup(
        _setup_workloads(),
        epochs=4,
        warmup=1,
        seed=9,
        checkpoint_dir=str(ckpt_dir),
        checkpoint_every=2,
    )
    obsv.enable()
    run_setup(
        _setup_workloads(),
        epochs=4,
        warmup=1,
        seed=10,
        checkpoint_dir=str(ckpt_dir),
        checkpoint_every=2,
    )
    fresh_epochs = [
        e.data["index"]
        for e in obsv.TRACER.events
        if e.kind == KIND_EPOCH
    ]
    obsv.disable()
    assert fresh_epochs == [0, 1, 2, 3]  # full run, no resume
