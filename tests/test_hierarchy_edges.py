"""Edge-case behaviour of the hierarchy that the main test files skip."""

from repro import config


def test_dma_write_update_of_consumed_inclusive_line(hierarchy, bank):
    """Ring-slot reuse: the slot was consumed (migrated + MLC-resident);
    a fresh DMA write must reclaim it in place and invalidate the MLC."""
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    hierarchy.cpu_access(0.5, 0, 100, "nic", io_read=True)
    line = hierarchy.llc.lookup(100, touch=False)
    assert line.way in config.INCLUSIVE_WAYS and line.holders == {0}
    hierarchy.dma_write(1.0, 100, "nic", allocating=True)
    line = hierarchy.llc.lookup(100, touch=False)
    assert line.way in config.INCLUSIVE_WAYS  # write-update in place
    assert not line.consumed and line.dirty
    assert line.holders == set()
    assert hierarchy.mlcs[0].peek(100) is None


def test_second_cpu_read_of_consumed_line_does_not_remigrate(hierarchy, bank):
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    hierarchy.cpu_access(0.5, 0, 100, "nic", io_read=True)
    migrations = bank.stream("nic").migrations
    # Another core reads the same (now shared) line.
    hierarchy.cpu_access(1.0, 1, 100, "nic", io_read=True)
    assert bank.stream("nic").migrations == migrations
    line = hierarchy.llc.lookup(100, touch=False)
    assert line.holders == {0, 1}


def test_rfo_on_io_line_takes_it_out_of_llc(hierarchy):
    hierarchy.dma_write(0.0, 100, "app", allocating=True)
    hierarchy.cpu_access(1.0, 0, 100, "app", write=True)
    assert hierarchy.llc.lookup(100, touch=False) is None
    mlc_line = hierarchy.mlcs[0].peek(100)
    assert mlc_line is not None and mlc_line.dirty and mlc_line.io


def test_dma_read_touch_keeps_line_resident(hierarchy):
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    for _ in range(4):
        hierarchy.dma_read(1.0, 100, "nic")
    assert hierarchy.llc.lookup(100, touch=False) is not None


def test_io_read_of_line_in_own_mlc_is_not_a_dca_miss(hierarchy, bank):
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    hierarchy.cpu_access(0.5, 0, 100, "nic", io_read=True)
    hierarchy.cpu_access(1.0, 0, 100, "nic", io_read=True)  # MLC hit
    counters = bank.stream("nic")
    assert counters.io_reads == 2
    assert counters.io_read_misses == 0


def test_non_allocating_write_back_invalidates_mlc(hierarchy):
    hierarchy.cpu_access(0.0, 0, 100, "app")
    assert hierarchy.mlcs[0].peek(100) is not None
    hierarchy.dma_write(1.0, 100, "ssd", allocating=False)
    assert hierarchy.mlcs[0].peek(100) is None


def test_stream_attribution_follows_last_dma_writer(hierarchy):
    hierarchy.dma_write(0.0, 100, "nic-a", allocating=True)
    hierarchy.dma_write(1.0, 100, "nic-b", allocating=True)
    assert hierarchy.llc.lookup(100, touch=False).stream == "nic-b"


def test_migration_counts_against_io_stream_not_reader(hierarchy, bank):
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    hierarchy.cpu_access(1.0, 0, 100, "reader", io_read=True)
    assert bank.stream("nic").migrations == 1
    assert bank.stream("reader").migrations == 0
