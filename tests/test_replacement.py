"""Tests for the pluggable LLC replacement policies."""

import pytest

from repro.cache.line import LlcLine
from repro.cache.llc import LastLevelCache, LlcConfig
from repro.cache.replacement import (
    BrripPolicy,
    DeadBlockHintPolicy,
    LruPolicy,
    NruPolicy,
    SrripPolicy,
    make_policy,
)


def fill_slots(n, ways=4):
    slots = [None] * ways
    lines = []
    for i in range(n):
        line = LlcLine(addr=i, stream="s", way=i)
        slots[i] = line
        lines.append(line)
    return slots, lines


def test_factory():
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("srrip"), SrripPolicy)
    assert isinstance(make_policy("brrip"), BrripPolicy)
    assert isinstance(make_policy("nru"), NruPolicy)
    with pytest.raises(ValueError):
        make_policy("plru")


def test_empty_way_always_preferred():
    for name in ("lru", "srrip", "brrip", "nru"):
        policy = make_policy(name)
        slots, lines = fill_slots(2, ways=4)
        for line in lines:
            policy.on_fill(line)
        assert policy.victim_way(slots, allowed=range(4)) in (2, 3)


def test_victim_respects_allowed_set():
    for name in ("lru", "srrip", "brrip", "nru"):
        policy = make_policy(name)
        slots, lines = fill_slots(4, ways=4)
        for line in lines:
            policy.on_fill(line)
        assert policy.victim_way(slots, allowed=(1, 2)) in (1, 2)


def test_no_candidates_raises():
    policy = make_policy("lru")
    slots, _ = fill_slots(2)
    with pytest.raises(ValueError):
        policy.victim_way(slots, allowed=(0,), exclude=(0,))


def test_lru_evicts_least_recent():
    policy = LruPolicy()
    slots, lines = fill_slots(4)
    for line in lines:
        policy.on_fill(line)
    policy.on_hit(lines[0])
    assert policy.victim_way(slots, allowed=range(4)) == 1


def test_srrip_protects_rereferenced_lines():
    policy = SrripPolicy()
    slots, lines = fill_slots(4)
    for line in lines:
        policy.on_fill(line)
    policy.on_hit(lines[2])  # rrpv -> 0
    victim = policy.victim_way(slots, allowed=range(4))
    assert victim != 2


def test_srrip_ages_until_distant_line_exists():
    policy = SrripPolicy()
    slots, lines = fill_slots(4)
    for line in lines:
        policy.on_fill(line)
        policy.on_hit(line)  # all rrpv 0
    victim = policy.victim_way(slots, allowed=range(4))
    assert victim in range(4)
    # Ageing must have raised everyone to max rrpv.
    assert all(line.meta["rrpv"] == policy.max_rrpv for line in lines)


def test_brrip_mostly_inserts_distant():
    policy = BrripPolicy(long_interval=32)
    slots, lines = fill_slots(4)
    distant = 0
    for line in lines:
        policy.on_fill(line)
        if line.meta["rrpv"] == policy.max_rrpv:
            distant += 1
    assert distant >= 3


def test_nru_clears_bits_when_all_recent():
    policy = NruPolicy()
    slots, lines = fill_slots(4)
    for line in lines:
        policy.on_fill(line)
    victim = policy.victim_way(slots, allowed=range(4))
    assert victim == 0  # all recent -> bits cleared, first candidate
    # Bits cleared for everyone else now.
    assert all(line.meta["nru"] == 0 for line in lines)


def test_deadblock_marks_consumed_io_lines_distant():
    policy = DeadBlockHintPolicy()
    dead = LlcLine(addr=0, stream="io", way=0, io=True, consumed=True)
    live = LlcLine(addr=1, stream="app", way=1)
    policy.on_fill(dead)
    policy.on_fill(live)
    assert dead.meta["rrpv"] == policy.max_rrpv
    assert live.meta["rrpv"] == policy.max_rrpv - 1


def test_deadblock_evicts_bloat_before_live_lines():
    policy = DeadBlockHintPolicy()
    slots = [None] * 4
    live = []
    for i in range(3):
        line = LlcLine(addr=i, stream="app", way=i)
        policy.on_fill(line)
        slots[i] = line
        live.append(line)
    bloat = LlcLine(addr=9, stream="io", way=3, io=True, consumed=True)
    policy.on_fill(bloat)
    slots[3] = bloat
    assert policy.victim_way(slots, allowed=range(4)) == 3


def test_deadblock_available_from_factory():
    assert isinstance(make_policy("deadblock"), DeadBlockHintPolicy)


def test_rrip_validation():
    with pytest.raises(ValueError):
        SrripPolicy(max_rrpv=0)
    with pytest.raises(ValueError):
        BrripPolicy(long_interval=0)


def test_llc_config_selects_policy():
    llc = LastLevelCache(LlcConfig(sets=4, replacement="srrip"))
    assert isinstance(llc.policy, SrripPolicy)
    with pytest.raises(ValueError):
        LastLevelCache(LlcConfig(sets=4, replacement="bogus"))


def test_srrip_resists_streaming_better_than_lru():
    """A small reused set + a large stream: SRRIP keeps the reused lines."""

    def run(policy_name):
        llc = LastLevelCache(LlcConfig(sets=1, replacement=policy_name))
        hot = []
        for i in range(4):
            line, _ = llc.allocate(i, "hot", allowed_ways=range(11))
            hot.append(i)
        hits = 0
        stream_addr = 1000
        for round_ in range(60):
            for addr in hot:
                if llc.lookup(addr) is not None:
                    hits += 1
                else:
                    llc.allocate(addr, "hot", allowed_ways=range(11))
            for _ in range(8):  # streaming pressure, never re-referenced
                if llc.lookup(stream_addr) is None:
                    llc.allocate(stream_addr, "cold", allowed_ways=range(11))
                stream_addr += 1
        return hits

    assert run("srrip") > run("lru")
