"""Tests for the observability layer: tracer, metrics, audit, exporters,
profiling, the A4 integration, and the zero-cost-when-off guarantee."""

from __future__ import annotations

import importlib.util
import json
import os
from dataclasses import dataclass

import pytest

from repro import obsv
from repro.obsv import export, metrics
from repro.obsv.audit import AuditTrail
from repro.obsv.metrics import (
    MetricsRegistry,
    counts_of,
    diff_counts,
    merge_counts,
)
from repro.obsv.profile import PhaseProfiler
from repro.obsv.tracer import TraceEvent, Tracer

from tests.test_a4_fsm import FakeServer, FakeWorkload, make_sample


# -- tracer -----------------------------------------------------------------


class TestTracer:
    def test_emit_uses_harness_context(self):
        tracer = Tracer()
        tracer.epoch = 7
        tracer.now = 1234.0
        event = tracer.emit(obsv.KIND_MASK, "clos1", {"clos": 1})
        assert event.epoch == 7
        assert event.ts == 1234.0
        assert event.data == {"clos": 1}
        assert tracer.by_kind(obsv.KIND_MASK) == [event]
        assert tracer.for_epoch(7) == [event]
        assert tracer.counts() == {obsv.KIND_MASK: 1}

    def test_ring_is_bounded_and_counts_drops(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.emit(obsv.KIND_FAULT, f"f{i}")
        assert len(tracer) == 3
        assert tracer.dropped == 2
        # Oldest-first eviction: the survivors are the newest three.
        assert [e.name for e in tracer.events] == ["f2", "f3", "f4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_span_records_wall_duration(self):
        tracer = Tracer()
        with tracer.span("section", {"n": 1}):
            pass
        (event,) = tracer.by_kind(obsv.KIND_SPAN)
        assert event.name == "section"
        assert event.wall >= 0.0
        assert event.data == {"n": 1}

    def test_clear_resets_context(self):
        tracer = Tracer(capacity=2)
        tracer.epoch = 3
        for _ in range(4):
            tracer.emit(obsv.KIND_FAULT, "f")
        tracer.clear()
        assert len(tracer) == 0 and tracer.dropped == 0
        assert tracer.epoch == -1 and tracer.now == 0.0


class TestEnableDisable:
    def test_enable_installs_fresh_singletons(self):
        first = obsv.enable()
        first.emit(obsv.KIND_FAULT, "f")
        second = obsv.enable()
        assert second is obsv.TRACER and len(second) == 0
        assert obsv.AUDIT is not None and obsv.AUDIT.tracer is second
        assert obsv.PROFILER is not None
        assert obsv.enabled()

    def test_disable_clears_all(self):
        obsv.enable()
        obsv.disable()
        assert obsv.TRACER is None and obsv.AUDIT is None
        assert obsv.PROFILER is None
        assert not obsv.enabled()

    def test_enable_without_profile(self):
        obsv.enable(profile=False)
        assert obsv.TRACER is not None and obsv.PROFILER is None


# -- metrics registry -------------------------------------------------------


class TestMetrics:
    def test_counter_only_goes_up(self):
        counter = metrics.Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = metrics.Gauge()
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8

    def test_histogram_buckets_are_cumulative(self):
        hist = metrics.Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 2, 3]
        assert hist.count == 4
        assert hist.sum == pytest.approx(55.55)
        assert hist.quantile_bound(0.5) == 1.0

    def test_registry_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", help="x")
        b = registry.counter("repro_x_total")
        assert a is b
        assert registry.help_of("repro_x_total") == "x"
        assert registry.type_of("repro_x_total") == "counter"

    def test_registry_labels_make_distinct_series(self):
        registry = MetricsRegistry()
        a = registry.gauge("repro_g", phase="stable")
        b = registry.gauge("repro_g", phase="expanding")
        assert a is not b
        assert len(registry.items()) == 2

    def test_registry_rejects_type_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(TypeError):
            registry.gauge("repro_x_total")

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total").inc(2)
        registry.histogram("repro_h_seconds", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["repro_c_total"]["series"][0]["value"] == 2
        assert snap["repro_h_seconds"]["series"][0]["value"]["count"] == 1

    def test_process_registry_swap(self):
        fresh = MetricsRegistry()
        metrics.set_registry(fresh)
        assert metrics.get_registry() is fresh
        metrics.set_registry(None)
        assert metrics.get_registry() is not fresh


@dataclass
class _Stats:
    hits: int = 0
    misses: int = 0
    label: str = "x"
    enabled: bool = True


class TestMergeHelpers:
    def test_counts_of_skips_non_numeric_and_bools(self):
        assert counts_of(_Stats(hits=3, misses=1)) == {"hits": 3, "misses": 1}
        assert counts_of({"a": 1, "b": True, "c": "s"}) == {"a": 1}

    def test_counts_of_rejects_other_types(self):
        with pytest.raises(TypeError):
            counts_of(42)

    def test_merge_into_dict_creates_keys(self):
        totals = {"hits": 1}
        merge_counts(totals, _Stats(hits=2, misses=5))
        assert totals == {"hits": 3, "misses": 5}

    def test_merge_into_dataclass_ignores_unknown_keys(self):
        stats = _Stats(hits=1)
        merge_counts(stats, {"hits": 2, "unknown": 9})
        assert stats.hits == 3
        assert not hasattr(stats, "unknown")

    def test_diff_counts(self):
        before = _Stats(hits=1, misses=1)
        after = _Stats(hits=4, misses=1)
        assert diff_counts(after, before) == {"hits": 3, "misses": 0}

    def test_collect_process_exports_runcache_and_dispatch(self):
        registry = metrics.collect_process(MetricsRegistry())
        names = {name for name, _, _ in registry.items()}
        assert "repro_runcache_hits_total" in names
        assert "repro_runcache_enabled" in names
        assert "repro_dispatch_timeouts_total" in names

    def test_collect_robustness_labels_by_manager(self):
        registry = metrics.collect_robustness(
            {"held_over": 3}, manager="a4", registry=MetricsRegistry()
        )
        ((name, labels, metric),) = registry.items()
        assert name == "repro_manager_held_over"
        assert labels == (("manager", "a4"),)
        assert metric.value == 3


# -- audit trail ------------------------------------------------------------


class TestAuditTrail:
    def test_record_defaults_epoch_from_tracer(self):
        tracer = Tracer()
        tracer.epoch = 9
        trail = AuditTrail(tracer=tracer)
        decision = trail.record("reallocate", "attach")
        assert decision.epoch == 9
        # Mirrored into the tracer as a decision event.
        (event,) = tracer.by_kind(obsv.KIND_DECISION)
        assert event.name == "reallocate"
        assert event.data["reason"] == "attach"

    def test_queries_and_explain(self):
        trail = AuditTrail()
        trail.record("reallocate", "attach", epoch=0)
        trail.record(
            "degraded_enter", "oscillation", {"watchdog": {"window": 12}},
            epoch=4,
        )
        assert len(trail.decisions("reallocate")) == 1
        assert trail.for_epoch(4)[0].action == "degraded_enter"
        text = trail.explain(4)
        assert "degraded_enter" in text and "window: 12" in text
        assert "no controller decisions" in trail.explain(99)

    def test_bounded_capacity(self):
        trail = AuditTrail(capacity=2)
        for i in range(4):
            trail.record("reallocate", f"r{i}", epoch=i)
        assert len(trail) == 2
        assert trail.dropped == 2
        assert [d.reason for d in trail.decisions()] == ["r2", "r3"]


# -- exporters --------------------------------------------------------------


def _sample_events():
    return [
        TraceEvent(ts=0.0, epoch=-1, kind=obsv.KIND_MASK, name="clos1",
                   data={"clos": 1, "first": 0, "last": 3}),
        TraceEvent(ts=50.0, epoch=0, kind=obsv.KIND_DECISION, name="reallocate",
                   data={"reason": "attach", "inputs": {"workloads": ["a"]}}),
        TraceEvent(ts=100.0, epoch=0, kind=obsv.KIND_EPOCH, name="epoch",
                   data={"index": 0}, wall=0.25),
        TraceEvent(ts=100.0, epoch=0, kind=obsv.KIND_SPAN, name="export",
                   wall=0.001),
    ]


class TestJsonl:
    def test_round_trip_is_identity(self, tmp_path):
        events = _sample_events()
        path = tmp_path / "trace.jsonl"
        assert export.write_jsonl(events, path) == len(events)
        assert export.read_jsonl(path) == events

    def test_read_rejects_garbage_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ts": 0}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            export.read_jsonl(path)

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export.write_jsonl(_sample_events()[:1], path)
        with open(path, "a") as handle:
            handle.write("\n")
        assert len(export.read_jsonl(path)) == 1


class TestChromeTrace:
    def test_instants_and_completes(self):
        doc = export.to_chrome_trace(_sample_events())
        export.validate_chrome_trace(doc)
        phases = [e["ph"] for e in doc["traceEvents"]]
        # Mask write and decision are instants; the timed epoch and the
        # span become complete events with microsecond durations.
        assert phases == ["i", "i", "X", "X"]
        assert doc["traceEvents"][2]["dur"] == pytest.approx(0.25 * 1e6)
        assert doc["traceEvents"][0]["args"]["epoch"] == -1

    def test_write_and_validate_file(self, tmp_path):
        path = tmp_path / "chrome.json"
        count = export.write_chrome_trace(_sample_events(), path)
        assert count == 4
        with open(path) as handle:
            export.validate_chrome_trace(json.load(handle))

    @pytest.mark.parametrize(
        "doc",
        [
            [],  # array form not emitted by us
            {"events": []},
            {"traceEvents": [{"name": "x"}]},  # missing required keys
            {"traceEvents": [{"name": "x", "ph": "??", "ts": 0,
                              "pid": 1, "tid": "t"}]},
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0,
                              "pid": 1, "tid": "t"}]},  # X without dur
        ],
    )
    def test_validate_rejects(self, doc):
        with pytest.raises(ValueError):
            export.validate_chrome_trace(doc)


class TestPrometheus:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("repro_hits_total", help="hits").inc(3)
        registry.gauge("repro_g", phase="stable").set(1.5)
        registry.histogram("repro_h_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = export.render_prometheus(registry)
        assert "# HELP repro_hits_total hits" in text
        assert "# TYPE repro_h_seconds histogram" in text
        series = export.parse_prometheus(text)
        assert series["repro_hits_total"] == 3
        assert series['repro_g{phase="stable"}'] == 1.5
        assert series['repro_h_seconds_bucket{le="0.1"}'] == 1
        assert series['repro_h_seconds_bucket{le="+Inf"}'] == 1
        assert series["repro_h_seconds_count"] == 1

    @pytest.mark.parametrize(
        "text",
        ["", "repro_x\n", "# BOGUS\n", "repro_x{unterminated 1\n"],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            export.parse_prometheus(text)


# -- profiler ---------------------------------------------------------------


class TestProfiler:
    def test_accumulates_per_label(self):
        profiler = PhaseProfiler()
        profiler.record("stable", 0.1, 100, 1000.0)
        profiler.record("stable", 0.1, 100, 1000.0)
        profiler.record("expanding", 0.3, 50, 500.0)
        assert profiler.phases["stable"].windows == 2
        assert profiler.phases["stable"].events == 200
        assert profiler.total_wall == pytest.approx(0.5)
        table = profiler.table()
        # Widest wall share first.
        assert table.index("expanding") < table.index("stable")

    def test_into_registry(self):
        profiler = PhaseProfiler()
        profiler.record("stable", 0.25, 10, 100.0)
        registry = MetricsRegistry()
        profiler.into_registry(registry)
        names = {(n, dict(l).get("phase")) for n, l, _ in registry.items()}
        assert ("repro_profile_wall_seconds", "stable") in names

    def test_engine_records_only_when_attached(self):
        from repro.sim.engine import Simulator

        sim = Simulator()
        sim.run_until(100.0)  # profiler off: plain delegation
        profiler = PhaseProfiler()
        profiler.label = "warm"
        sim.profiler = profiler
        sim.run_until(200.0)
        assert profiler.phases["warm"].windows == 1
        assert profiler.phases["warm"].cycles == pytest.approx(100.0)


# -- A4 controller integration ----------------------------------------------


def _degraded_manager(max_epochs: int = 60):
    from repro.core.a4 import A4Manager, PHASE_DEGRADED
    from repro.core.policy import A4Policy

    policy = A4Policy(
        stable_interval=1,
        watchdog_window=50,
        watchdog_reallocs=2,
        watchdog_cooldown=3,
    )
    manager = A4Manager(policy)
    manager.attach(
        FakeServer([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
    )
    for i in range(max_epochs):
        if manager.phase == PHASE_DEGRADED:
            return manager
        hit = 0.9 if manager.phase == "baseline" else 0.2
        manager.on_epoch(make_sample(i, {"hp": hit, "lp": 0.5}))
    raise AssertionError("watchdog never tripped")


class TestA4Audit:
    def test_attach_audits_reallocation_with_inputs(self):
        obsv.enable()
        from tests.test_a4_fsm import attach

        attach([FakeWorkload("hp"), FakeWorkload("lp", priority="LPW")])
        (decision,) = obsv.AUDIT.decisions("reallocate")
        assert decision.reason == "attach"
        assert decision.inputs["workloads"] == ["hp", "lp"]

    def test_degraded_entry_records_trigger_evidence(self):
        obsv.enable()
        _degraded_manager()
        entries = obsv.AUDIT.decisions("degraded_enter")
        assert len(entries) == 1
        inputs = entries[0].inputs
        assert inputs["watchdog"]["threshold"] == 2
        assert inputs["reallocations_in_window"] >= 2
        # The T1-crossing evidence that triggered the final reallocation.
        assert "hp" in inputs["trigger_inputs"]["crossed"]
        # The trail explains the epoch it happened in.
        assert "degraded_enter" in obsv.AUDIT.explain(entries[0].epoch)

    def test_phase_transitions_are_traced(self):
        obsv.enable()
        _degraded_manager()
        names = [e.name for e in obsv.TRACER.by_kind(obsv.KIND_PHASE)]
        assert "expanding" in names and "degraded" in names

    def test_controller_is_silent_when_off(self):
        assert obsv.TRACER is None
        manager = _degraded_manager()  # must not raise without a tracer
        assert manager.watchdog.degraded


# -- harness integration & zero-cost-off ------------------------------------


def _small_run(epochs: int = 4):
    from repro.core.a4 import A4Manager
    from repro.core.policy import A4Policy
    from repro.experiments.harness import Server
    from repro.workloads.xmem import xmem

    server = Server(cores=3)
    server.add_workload(xmem("a", 1.0, cores=1))
    server.add_workload(xmem("b", 2.0, cores=1))
    server.set_manager(A4Manager(A4Policy()))
    return server.run(epochs=epochs, warmup=1)


class TestHarnessIntegration:
    def test_traced_run_emits_epochs_and_masks(self):
        metrics.set_registry(None)
        tracer = obsv.enable()
        result = _small_run(epochs=4)
        epoch_events = tracer.by_kind(obsv.KIND_EPOCH)
        assert [e.data["index"] for e in epoch_events] == [0, 1, 2, 3]
        assert all(e.wall > 0 for e in epoch_events)
        assert len(tracer.by_kind(obsv.KIND_MASK)) > 0
        assert tracer.epoch == -1  # context reset after the run
        assert len(result.samples) == 4
        # The per-epoch wall histogram observed once per epoch.
        hist = metrics.get_registry().histogram("repro_epoch_wall_seconds")
        assert hist.count == 4
        # The profiler attributed every epoch window.
        assert sum(s.windows for s in obsv.PROFILER.phases.values()) >= 4

    def test_off_run_is_identical_to_traced_run(self):
        baseline = _small_run()
        obsv.enable()
        traced = _small_run()
        obsv.disable()
        again = _small_run()
        assert traced.samples == baseline.samples
        assert again.samples == baseline.samples


# -- the CLI ----------------------------------------------------------------


@pytest.fixture(scope="module")
def obsv_cli():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    spec = importlib.util.spec_from_file_location(
        "obsv_cli", os.path.join(root, "tools", "obsv.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCli:
    @pytest.fixture()
    def trace_path(self, tmp_path):
        obsv.enable()
        _degraded_manager()
        path = tmp_path / "trace.jsonl"
        export.write_jsonl(obsv.TRACER.events, path)
        obsv.disable()
        return str(path)

    def test_summary(self, obsv_cli, trace_path, capsys):
        assert obsv_cli.main(["summary", trace_path]) == 0
        out = capsys.readouterr().out
        assert "controller decisions:" in out
        assert "degraded_enter" in out

    def test_timeline_filters(self, obsv_cli, trace_path, capsys):
        assert obsv_cli.main(
            ["timeline", trace_path, "--kind", "phase", "--limit", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "clos_write" not in out

    def test_explain_epoch_find(self, obsv_cli, trace_path, capsys):
        assert obsv_cli.main(
            ["explain-epoch", trace_path, "--find", "degraded_enter"]
        ) == 0
        out = capsys.readouterr().out
        assert "[degraded_enter]" in out
        assert "watchdog:" in out

    def test_explain_epoch_no_decisions(self, obsv_cli, trace_path, capsys):
        assert obsv_cli.main(["explain-epoch", trace_path, "9999"]) == 1

    def test_explain_epoch_find_missing(self, obsv_cli, trace_path, capsys):
        assert obsv_cli.main(
            ["explain-epoch", trace_path, "--find", "bloat_treat"]
        ) == 1

    def test_unreadable_trace(self, obsv_cli, tmp_path):
        assert obsv_cli.main(
            ["summary", str(tmp_path / "missing.jsonl")]
        ) == 2


# -- trace context / cross-process stamping ----------------------------------


class TestTraceContext:
    def test_env_round_trip(self):
        from repro.obsv.tracer import TraceContext

        ctx = TraceContext(run_id="abc123", job_id=7, attempt=2)
        assert TraceContext.from_env(ctx.to_env()) == ctx
        none_job = TraceContext(run_id="r")
        assert TraceContext.from_env(none_job.to_env()) == none_job

    @pytest.mark.parametrize(
        "raw", ["", "just-a-run-id", "r|not-an-int|x", "a|b|c|d|e"]
    )
    def test_malformed_env_never_raises(self, raw):
        from repro.obsv.tracer import TraceContext

        ctx = TraceContext.from_env(raw)
        assert isinstance(ctx.attempt, int)

    def test_emit_stamps_pid_seq_and_context(self):
        from repro.obsv.tracer import TraceContext

        tracer = Tracer(
            context=TraceContext(run_id="deadbeef", job_id=3, attempt=2)
        )
        first = tracer.emit(obsv.KIND_FAULT, "a")
        second = tracer.emit(obsv.KIND_FAULT, "b")
        assert first.pid == os.getpid() == second.pid
        assert (first.seq, second.seq) == (1, 2)
        assert first.run_id == "deadbeef"
        assert first.job_id == 3 and first.attempt == 2
        assert first.order_key < second.order_key

    def test_contextless_events_keep_legacy_defaults_on_reload(self, tmp_path):
        """Old JSONL traces (no pid/seq/context keys) reload unchanged."""
        path = tmp_path / "legacy.jsonl"
        path.write_text(
            '{"ts": 1.0, "epoch": 0, "kind": "fault", "name": "f", '
            '"data": {}, "wall": 0.0}\n'
        )
        (event,) = export.read_jsonl(path)
        assert event.pid == 0 and event.seq == 0
        assert event.run_id == "" and event.job_id is None

    def test_enable_from_env_requires_spool(self, tmp_path):
        assert obsv.enable_from_env(environ={}) is None
        assert obsv.TRACER is None
        tracer = obsv.enable_from_env(
            environ={
                obsv.ENV_TRACE_SPOOL: str(tmp_path / "spool"),
                obsv.ENV_TRACE_CONTEXT: "run|5|1",
            }
        )
        try:
            assert tracer is not None and tracer is obsv.TRACER
            assert tracer.sink is not None
            assert tracer.context.job_id == 5
        finally:
            obsv.disable()


# -- the spool ---------------------------------------------------------------


class TestSpool:
    def _traced(self, tmp_path, **sink_kwargs):
        from repro.obsv.spool import TraceSink
        from repro.obsv.tracer import TraceContext

        sink = TraceSink(tmp_path / "spool", **sink_kwargs)
        tracer = Tracer(context=TraceContext(run_id="r", job_id=1), sink=sink)
        return tracer, sink

    def test_segments_flush_and_read_back(self, tmp_path):
        from repro.obsv.spool import read_spool

        tracer, sink = self._traced(tmp_path, segment_events=4)
        for i in range(10):
            tracer.emit(obsv.KIND_FAULT, f"f{i}", ts=float(i))
        sink.close()
        events = read_spool(sink.root)
        assert [e.name for e in events] == [f"f{i}" for i in range(10)]
        assert sink.segments_written == 3  # 4 + 4 + 2 (close)
        assert sink.events_spooled == 10

    def test_progress_and_checkpoint_force_flush(self, tmp_path):
        tracer, sink = self._traced(tmp_path, segment_events=1000)
        tracer.emit(obsv.KIND_FAULT, "f")
        assert sink.segments_written == 0  # still buffered
        tracer.emit(obsv.KIND_PROGRESS, "epoch", {"done": 1, "total": 2})
        assert sink.segments_written == 1  # epoch boundary hit the disk
        tracer.emit(obsv.KIND_CHECKPOINT, "snapshot", {"epoch": 1})
        assert sink.segments_written == 2

    def test_disk_budget_evicts_oldest_shards(self, tmp_path):
        from repro.obsv.spool import list_shards, read_spool

        tracer, sink = self._traced(
            tmp_path, segment_events=1, budget_bytes=600
        )
        for i in range(20):
            tracer.emit(obsv.KIND_FAULT, f"f{i:02d}", ts=float(i))
        assert sink.shards_evicted > 0
        survivors = read_spool(sink.root)
        # Recent history wins: whatever survived is a contiguous tail.
        names = [e.name for e in survivors]
        assert names == [f"f{i:02d}" for i in range(20 - len(names), 20)]
        total = sum(p.stat().st_size for p in list_shards(sink.root))
        assert total <= 600 or len(list_shards(sink.root)) == 1

    def test_merge_orders_across_pids(self, tmp_path):
        from repro.obsv import spool

        root = tmp_path / "spool"
        root.mkdir()
        a = [
            TraceEvent(ts=0.0, epoch=0, kind="fault", name="a0", pid=1, seq=1),
            TraceEvent(ts=2.0, epoch=0, kind="fault", name="a1", pid=1, seq=2),
        ]
        b = [
            TraceEvent(ts=1.0, epoch=0, kind="fault", name="b0", pid=2, seq=1),
        ]
        export.write_jsonl(a, root / spool.shard_name(1, 1))
        export.write_jsonl(b, root / spool.shard_name(2, 1))
        merged = spool.read_spool(root)
        assert [e.name for e in merged] == ["a0", "b0", "a1"]
        assert spool.spool_pids(root) == [1, 2]

    def test_torn_tmp_files_are_ignored(self, tmp_path):
        from repro.obsv import spool

        root = tmp_path / "spool"
        root.mkdir()
        export.write_jsonl(
            [TraceEvent(ts=0.0, epoch=0, kind="fault", name="ok",
                        pid=1, seq=1)],
            root / spool.shard_name(1, 1),
        )
        (root / (spool.shard_name(1, 2) + ".tmp")).write_text("torn{{{")
        (root / "unrelated.txt").write_text("not a shard")
        assert [e.name for e in spool.read_spool(root)] == ["ok"]

    def test_read_pid_tail_returns_seq_ordered_suffix(self, tmp_path):
        from repro.obsv.spool import read_pid_tail

        tracer, sink = self._traced(tmp_path, segment_events=2)
        for i in range(7):
            tracer.emit(obsv.KIND_FAULT, f"f{i}")
        sink.close()
        tail = read_pid_tail(sink.root, tracer.pid, limit=3)
        assert [e.name for e in tail] == ["f4", "f5", "f6"]
        assert read_pid_tail(sink.root, 999999) == []

    def test_follow_spool_yields_each_shard_once(self, tmp_path):
        from repro.obsv.spool import follow_spool

        tracer, sink = self._traced(tmp_path, segment_events=2)
        for i in range(4):
            tracer.emit(obsv.KIND_FAULT, f"f{i}")
        seen = [
            e.name
            for e in follow_spool(sink.root, poll_interval=0.01, max_seconds=0)
        ]
        assert seen == ["f0", "f1", "f2", "f3"]

    def test_sink_survives_unwritable_root(self, tmp_path):
        """A spool failure degrades to dropped segments, never an error
        out of the emit path."""
        tracer, sink = self._traced(tmp_path, segment_events=1)
        sink.root = tmp_path / "vanished" / "spool"  # never created
        tracer.emit(obsv.KIND_FAULT, "f")
        assert sink.write_errors == 1
        assert sink.segments_written == 0


# -- histogram quantiles -----------------------------------------------------


class TestHistogramQuantile:
    def _hist(self):
        hist = metrics.Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            hist.observe(value)
        return hist

    def test_interpolates_within_bucket(self):
        hist = self._hist()
        # rank 2 lands at the top of the (1, 2] bucket.
        assert hist.quantile(0.5) == pytest.approx(2.0)

    def test_first_bucket_interpolates_from_zero(self):
        hist = self._hist()
        # rank 0.5 is halfway through the first bucket's single count.
        assert hist.quantile(0.125) == pytest.approx(0.5)

    def test_overflow_bucket_clamps_to_last_finite_bound(self):
        hist = self._hist()
        assert hist.quantile(1.0) == pytest.approx(4.0)
        assert hist.quantile(0.99) == pytest.approx(4.0)

    def test_empty_histogram_reports_zero(self):
        assert metrics.Histogram(buckets=(1.0,)).quantile(0.5) == 0.0

    def test_invalid_quantile_raises(self):
        hist = self._hist()
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_function_form_matches_method(self):
        hist = self._hist()
        assert metrics.histogram_quantile(
            hist.buckets, hist.counts, hist.count, 0.5
        ) == hist.quantile(0.5)

    def test_empty_bucket_run_returns_bound(self):
        hist = metrics.Histogram(buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(0.6)
        # Both observations sit in the first bucket; p99's rank resolves
        # inside it, never the empty (1, 2] bucket.
        assert hist.quantile(0.99) <= 1.0


# -- chrome export: multi-process streams ------------------------------------


class TestChromeMultiProcess:
    def test_recorded_pids_become_separate_tracks(self):
        events = [
            TraceEvent(ts=0.0, epoch=0, kind="fault", name="w1",
                       pid=11, seq=1, run_id="r", job_id=1, attempt=1),
            TraceEvent(ts=1.0, epoch=0, kind="fault", name="w2",
                       pid=22, seq=1, run_id="r", job_id=1, attempt=2),
            TraceEvent(ts=2.0, epoch=0, kind="fault", name="w1b",
                       pid=11, seq=2, run_id="r", job_id=1, attempt=1),
        ]
        doc = export.to_chrome_trace(events)
        export.validate_chrome_trace(doc)
        entries = doc["traceEvents"]
        metadata = [e for e in entries if e["ph"] == "M"]
        assert {m["pid"] for m in metadata} == {11, 22}
        assert all("job=1" in m["args"]["name"] for m in metadata)
        real = [e for e in entries if e["ph"] != "M"]
        assert [e["pid"] for e in real] == [11, 22, 11]

    def test_legacy_pid_zero_stays_on_synthetic_process(self):
        events = [TraceEvent(ts=0.0, epoch=0, kind="fault", name="f")]
        doc = export.to_chrome_trace(events)
        entries = doc["traceEvents"]
        assert len(entries) == 1  # no metadata rows for legacy traces
        assert entries[0]["pid"] == 1


# -- CLI: multi-source & spool inputs ----------------------------------------


class TestCliMultiSource:
    @pytest.fixture()
    def spool_dir(self, tmp_path):
        from repro.obsv import spool

        root = tmp_path / "spool"
        root.mkdir()
        a = [
            TraceEvent(ts=0.0, epoch=0, kind="fault", name="a0",
                       pid=1, seq=1),
            TraceEvent(ts=2.0, epoch=1, kind="fault", name="a1",
                       pid=1, seq=2),
        ]
        b = [
            TraceEvent(ts=1.0, epoch=0, kind="epoch", name="b0",
                       pid=2, seq=1, wall=0.1),
        ]
        export.write_jsonl(a, root / spool.shard_name(1, 1))
        export.write_jsonl(b, root / spool.shard_name(2, 1))
        return root

    def test_summary_accepts_spool_dir(self, obsv_cli, spool_dir, capsys):
        assert obsv_cli.main(["summary", str(spool_dir)]) == 0
        out = capsys.readouterr().out
        assert "3 events" in out
        assert "2 process(es): 1 2" in out

    def test_summary_merges_multiple_files(self, obsv_cli, tmp_path, capsys):
        one = tmp_path / "one.jsonl"
        two = tmp_path / "two.jsonl"
        export.write_jsonl(
            [TraceEvent(ts=1.0, epoch=0, kind="fault", name="late",
                        pid=1, seq=1)], one
        )
        export.write_jsonl(
            [TraceEvent(ts=0.0, epoch=0, kind="fault", name="early",
                        pid=2, seq=1)], two
        )
        assert obsv_cli.main(
            ["timeline", str(one), str(two), "--limit", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert out.index("early") < out.index("late")  # merged by ts

    def test_tail_shows_newest_events(self, obsv_cli, spool_dir, capsys):
        assert obsv_cli.main(["tail", str(spool_dir), "-n", "2"]) == 0
        out = capsys.readouterr().out
        assert "a1" in out and "b0" in out and "a0" not in out

    def test_tail_follow_needs_a_directory(self, obsv_cli, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        export.write_jsonl(
            [TraceEvent(ts=0.0, epoch=0, kind="fault", name="f")], path
        )
        assert obsv_cli.main(["tail", str(path), "--follow"]) == 2

    def test_tail_follow_streams_spool(self, obsv_cli, spool_dir, capsys):
        assert obsv_cli.main(
            ["tail", str(spool_dir), "-n", "1", "--follow",
             "--max-seconds", "0", "--interval", "0.01"]
        ) == 0
        out = capsys.readouterr().out
        # tail -f semantics: the follower re-reads every shard but must
        # not replay events that predate the initial listing.
        assert out.count("a1") == 1
        assert "a0" not in out and "b0" not in out
