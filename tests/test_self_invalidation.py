"""Tests for the IDIO/Sweeper-style self-invalidation baseline (§8)."""

from repro import config
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.rdt.cat import CacheAllocation
from repro.telemetry.counters import CounterBank
from repro.uncore.memory import MemoryController


def build(self_invalidate=True):
    bank = CounterBank()
    cat = CacheAllocation()
    memory = MemoryController(bank)
    cfg = HierarchyConfig(cores=2, self_invalidate_consumed=self_invalidate)
    return CacheHierarchy(cfg, cat, memory, bank), bank, cat


def test_consume_invalidates_llc_copy_instead_of_migrating():
    hierarchy, bank, _ = build()
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    hierarchy.cpu_access(1.0, 0, 100, "nic", io_read=True)
    assert hierarchy.llc.lookup(100, touch=False) is None
    assert hierarchy.mlcs[0].peek(100) is not None
    assert bank.stream("nic").migrations == 0


def test_consumed_lines_never_bloat():
    hierarchy, bank, _ = build()
    sets = hierarchy.cfg.mlc_sets
    ways = hierarchy.cfg.mlc_ways
    hierarchy.dma_write(0.0, 4096, "nic", allocating=True)
    hierarchy.cpu_access(0.5, 0, 4096, "nic", io_read=True)
    # Conflict the line out of the MLC: it must vanish, not enter the LLC.
    for j in range(1, ways + 1):
        hierarchy.cpu_access(1.0, 0, 4096 + j * sets, "app")
    assert hierarchy.mlcs[0].peek(4096) is None
    assert hierarchy.llc.lookup(4096, touch=False) is None
    assert bank.stream("nic").dma_bloats == 0


def test_regular_lines_still_use_victim_cache():
    hierarchy, bank, _ = build()
    capacity = hierarchy.mlcs[0].capacity_lines
    for addr in range(capacity + 1):
        hierarchy.cpu_access(0.0, 0, addr, "app")
    assert hierarchy.llc.lookup(0, touch=False) is not None


def test_inclusive_ways_stay_free_for_others():
    hierarchy, bank, cat = build()
    # Consume a stream of packets; with self-invalidation nothing of them
    # may end up in the inclusive ways.
    sets = hierarchy.llc.cfg.sets
    for i in range(64):
        addr = 10_000 + i
        hierarchy.dma_write(0.0, addr, "nic", allocating=True)
        hierarchy.cpu_access(0.0, 0, addr, "nic", io_read=True)
    occupied = [
        line
        for line in hierarchy.llc.resident()
        if line.stream == "nic" and line.way in config.INCLUSIVE_WAYS
    ]
    assert occupied == []
    del sets


def test_default_hierarchy_keeps_paper_behaviour():
    hierarchy, bank, _ = build(self_invalidate=False)
    hierarchy.dma_write(0.0, 100, "nic", allocating=True)
    hierarchy.cpu_access(1.0, 0, 100, "nic", io_read=True)
    line = hierarchy.llc.lookup(100, touch=False)
    assert line is not None and line.way in config.INCLUSIVE_WAYS
