"""Property-based tests on A4's zone arithmetic and policy space."""

from hypothesis import given, settings, strategies as st

from repro.core.policy import A4Policy
from repro.core.zones import ZoneLayout

operations = st.lists(
    st.sampled_from(["expand", "contract", "reset"]), max_size=40
)


@settings(max_examples=120, deadline=None)
@given(operations, st.booleans(), st.booleans())
def test_zone_layout_invariants(ops, io_hpw, safeguard):
    policy = A4Policy(safeguard_io_buffers=safeguard)
    layout = ZoneLayout(policy, io_hpw_present=io_hpw)
    for op in ops:
        if op == "expand" and layout.can_expand():
            layout.expand()
        elif op == "contract" and layout.lp_left < layout.initial_lp_left:
            layout.contract()
        elif op == "reset":
            layout.reset_lp()
        first, last = layout.lp_span()
        # LP Zone is a valid, non-empty, in-range span...
        assert 0 <= first <= last < policy.total_ways
        # ...never covering the DCA ways...
        assert first > policy.dca_last_way
        # ...and at least two ways at the initial partition.
        assert last - first >= 1
        if layout.safeguarding:
            assert last < policy.inclusive_first_way
        # HPW spans always contain the inclusive ways.
        hp_first, hp_last = layout.non_io_hpw_span()
        assert hp_last == policy.total_ways - 1
        assert layout.io_hpw_span() == (0, policy.total_ways - 1)


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=10))
def test_trash_span_always_legal(left):
    layout = ZoneLayout(A4Policy(), io_hpw_present=True)
    first, last = layout.trash_span(left)
    assert first <= last == layout.policy.trash_way
    assert first >= min(left, layout.policy.trash_way)


@settings(max_examples=60, deadline=None)
@given(
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.01, max_value=1.0),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_policy_accepts_any_valid_threshold_triple(t1, t2, t5):
    policy = A4Policy(
        hpw_llc_hit_thr=t1, dmalk_dca_ms_thr=t2, ant_cache_miss_thr=t5
    )
    assert policy.trash_way == 8
    assert policy.min_lp_left == 2


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0), st.floats(min_value=0.0, max_value=1.0))
def test_hpw_degradation_symmetric_bounds(baseline, current):
    from repro.core import detectors

    policy = A4Policy()
    degraded = detectors.hpw_hit_rate_degraded(policy, baseline, current)
    if degraded:
        assert current < baseline  # degradation is one-sided
    if baseline == 0.0:
        assert not degraded
