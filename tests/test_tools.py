"""Tests for the operator tools (pcm / pqos / ddiobench analogues)."""

import pytest

from repro.rdt.cat import ClosConfigError
from repro.tools import ddiobench, pcm, pqos


class TestPcmTool:
    def test_monitor_produces_epochs(self):
        outputs = []
        samples = pcm.monitor(
            scenario="microbench", scheme="default", epochs=3,
            echo=outputs.append,
        )
        assert len(samples) == 3
        assert len(outputs) == 3
        assert "IPC" in outputs[0]
        assert "memory:" in outputs[0]

    def test_monitor_drives_manager(self):
        samples = pcm.monitor(
            scenario="microbench", scheme="a4", epochs=3, echo=lambda s: None
        )
        assert len(samples) == 3

    def test_unknown_scenario(self):
        with pytest.raises(ValueError):
            pcm.monitor(scenario="webserver")

    def test_cli(self, capsys):
        assert pcm.main(["--epochs", "2"]) == 0
        assert "epoch 0" in capsys.readouterr().out


class TestPqosTool:
    def test_parse_mask_spec(self):
        clos, ways = pqos.parse_mask_spec("llc:1=0x060")
        assert clos == 1 and ways == [5, 6]

    def test_parse_mask_spec_rejects_garbage(self):
        for bad in ("llc:1", "mba:1=0x3", "llc:1=0x0", "llc:x=0x3"):
            with pytest.raises(ClosConfigError):
                pqos.parse_mask_spec(bad)

    def test_parse_assoc_spec_ranges_and_lists(self):
        clos, cores = pqos.parse_assoc_spec("llc:2=0-3")
        assert clos == 2 and cores == [0, 1, 2, 3]
        clos, cores = pqos.parse_assoc_spec("llc:3=1,4,7")
        assert cores == [1, 4, 7]

    def test_cli_show(self, capsys):
        assert pqos.main(["--show"]) == 0
        out = capsys.readouterr().out
        assert "COS0" in out and "core associations" in out

    def test_cli_applies_masks(self, capsys):
        assert (
            pqos.main(["-e", "llc:1=0x060", "-a", "llc:1=0-1", "--epochs", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "COS1: 0x060" in out
        assert "core 0: COS1" in out


class TestDdioBench:
    def test_probe_nic_footprint_scaling(self):
        results = ddiobench.probe_nic(
            ring_entries_sweep=(4, 32), epochs=3
        )
        small, large = results
        assert large.footprint_lines > small.footprint_lines
        # Small rings fit in the DCA ways and hit well.
        assert small.dca_hit_rate > 0.9
        assert not small.exceeds_dca and large.exceeds_dca

    def test_probe_ssd_leak_onset(self):
        results = ddiobench.probe_ssd(
            block_sweep=(32 * 1024, 2 * 1024 * 1024), epochs=3
        )
        small, large = results
        assert small.leak_fraction < 0.05
        assert large.leak_fraction > 0.5

    def test_render(self):
        results = ddiobench.probe_nic(ring_entries_sweep=(4,), epochs=3)
        text = ddiobench.render(results)
        assert "DCA capacity" in text and "entries/ring" in text

    def test_cli(self, capsys):
        assert ddiobench.main(["--device", "nic", "--epochs", "2"]) == 0
        assert "DCAhit%" in capsys.readouterr().out
