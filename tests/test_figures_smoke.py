"""Smoke tests: every figure runner executes on a reduced configuration and
returns a well-formed result.  Shape assertions live in the benchmarks and
in test_integration_observations; here we only guarantee the harness runs.
"""

import pytest

from repro.experiments.figures import REGISTRY, fig3, fig5, fig8, fig13

KB = 1024


def test_registry_covers_all_paper_figures():
    expected = {
        "fig3a", "fig3b", "fig4", "fig5", "fig6", "fig7", "fig8a", "fig8b",
        "fig11", "fig12", "fig13a", "fig13b", "fig14", "fig15a", "fig15b",
        "fig15c",
        "ablation-migration", "ablation-write-update",
        "ablation-replacement", "ablation-trash-floor",
        "ablation-platforms", "ablation-tenants",
        "related-self-invalidation", "related-ddio-ways",
    }
    assert set(REGISTRY) == expected


def test_fig3_reduced_positions():
    result = fig3.run_fig3a(epochs=4, positions=[(3, 4)])
    assert len(result.rows) == 1
    assert result.rows[0]["xmem_ways"] == "way[3:4]"
    assert 0.0 <= result.rows[0]["xmem_llc_miss"] <= 1.0


def test_fig5_reduced_sizes():
    result = fig5.run(epochs=4, block_sizes=(32 * KB,))
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row["tput_dca_on"] > 0 and row["tput_dca_off"] > 0


def test_fig8b_columns():
    result = fig8.run_fig8b(epochs=4)
    assert result.columns == ["fio_ways", "xmem_miss", "fio_tput"]
    assert len(result.rows) == 4


def test_fig13_single_scheme_runs():
    result = fig13.run_hpw_heavy(epochs=5, warmup=2, schemes=("default",))
    workload_names = {row["workload"] for row in result.rows}
    assert "fastclick" in workload_names and "ffsb-h" in workload_names


def test_cli_quick_kwargs_cover_registry():
    from repro.experiments.__main__ import QUICK_KWARGS

    assert set(QUICK_KWARGS) == set(REGISTRY)


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig3a" in out


def test_cli_rejects_unknown_figure():
    from repro.experiments.__main__ import main

    assert main(["figNope"]) == 2


def test_cli_no_args_shows_help():
    from repro.experiments.__main__ import main

    assert main([]) == 2
